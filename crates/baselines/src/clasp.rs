//! CLASP-style column-vector SpMM on dense tensor cores (Castro et
//! al., PACT'22) — vectorSparse brought to Ampere.
//!
//! A is stored in the *column-vector format*: the rows are partitioned
//! into strips of `pv` (the "private vector" length); within a strip,
//! only columns holding a nonzero vector are stored. The kernel gathers
//! those columns and multiplies with dense `mma.m8n8k16`: a `pv < 8`
//! strip fills only `pv` of the instruction's 8 rows, so MMA
//! utilization is `pv/8` — 25%/50%/100% for pv = 2/4/8, exactly the
//! utilization argument of the paper's §4.2. Like the paper, callers
//! run all `pv ∈ {2,4,8}` and keep the best.

use dlmc::Matrix;
use gpu_sim::{
    simulate_kernel, BlockTrace, GpuSpec, KernelLaunch, KernelStats, MmaOp, TokenAlloc, WarpInstr,
};
use sptc::F16;

use crate::common::SpmmKernel;

/// One pv-strip's stored columns.
#[derive(Clone, Debug)]
struct StripCols {
    row0: usize,
    cols: Vec<u32>,
}

/// Planned CLASP SpMM at a fixed `pv`.
pub struct Clasp {
    a_rows: usize,
    a_cols: usize,
    /// Private-vector length (2, 4 or 8).
    pub pv: usize,
    strips: Vec<StripCols>,
    /// Stored values (vectors, including explicit zeros when the data's
    /// natural vector width is smaller than `pv`).
    values: Vec<F16>,
    /// Per-strip offsets into `values` (cols * pv each).
    value_offsets: Vec<usize>,
}

/// Columns of C per block.
const BLOCK_N: usize = 64;
/// mma rows per instruction.
const MMA_M: usize = 8;
/// K extent per instruction.
const MMA_K: usize = 16;

impl Clasp {
    /// Plans at a given `pv ∈ {2, 4, 8}`.
    pub fn plan(a: &Matrix, pv: usize) -> Clasp {
        assert!(matches!(pv, 2 | 4 | 8), "CLASP supports pv in {{2,4,8}}");
        assert_eq!(a.rows % pv, 0);
        let mut strips = Vec::with_capacity(a.rows / pv);
        let mut values = Vec::new();
        let mut value_offsets = Vec::new();
        for row0 in (0..a.rows).step_by(pv) {
            let mut cols = Vec::new();
            for c in 0..a.cols {
                if !(row0..row0 + pv).all(|r| a.get(r, c).is_zero()) {
                    cols.push(c as u32);
                }
            }
            value_offsets.push(values.len());
            for &c in &cols {
                for r in row0..row0 + pv {
                    values.push(a.get(r, c as usize));
                }
            }
            strips.push(StripCols { row0, cols });
        }
        Clasp {
            a_rows: a.rows,
            a_cols: a.cols,
            pv,
            strips,
            values,
            value_offsets,
        }
    }

    /// Plans every supported `pv` and keeps the fastest at width `n` —
    /// the paper's evaluation protocol for CLASP.
    pub fn plan_best(a: &Matrix, n: usize, spec: &GpuSpec) -> Clasp {
        [2usize, 4, 8]
            .into_iter()
            .map(|pv| Clasp::plan(a, pv))
            .min_by(|x, y| {
                let tx = x.simulate(n, spec).duration_cycles;
                let ty = y.simulate(n, spec).duration_cycles;
                tx.total_cmp(&ty)
            })
            .expect("three candidates")
    }

    /// Stored bytes of the column-vector format.
    pub fn stored_bytes(&self) -> usize {
        self.values.len() * 2 + self.strips.iter().map(|s| s.cols.len() * 4).sum::<usize>()
    }

    fn build_launch(&self, n: usize, _spec: &GpuSpec) -> KernelLaunch {
        // Each block: 4 pv-strips stacked (the warp's 8-row mma tile
        // hosts 8/pv strips... pv=8: 1 strip/tile) x BLOCK_N columns;
        // one warp per mma row-tile, 4 warps.
        let n_blocks = n.div_ceil(BLOCK_N).max(1);
        // Blocks own 32 rows of C (4 warps x 8 mma rows).
        let strips_per_tile = MMA_M / self.pv; // strips sharing one mma tile
        let tiles_per_block = 4usize; // one per warp
        let strips_per_block = strips_per_tile * tiles_per_block;

        let mut blocks = Vec::new();
        for chunk in self.strips.chunks(strips_per_block) {
            // Stacked strips overlap in columns; repeated B rows hit the
            // L1/L2, so memory-system traffic scales with the block's
            // distinct columns (same argument as Sputnik's model).
            let mut distinct = std::collections::HashSet::new();
            let mut gathers = 0usize;
            for s in chunk {
                distinct.extend(s.cols.iter().copied());
                gathers += s.cols.len();
            }
            let reuse = if gathers == 0 {
                1.0
            } else {
                (distinct.len() as f64 / gathers as f64).min(1.0)
            };
            let mut warps = Vec::with_capacity(tiles_per_block);
            for tile_idx in 0..tiles_per_block {
                let tile_strips: Vec<&StripCols> = chunk
                    .iter()
                    .skip(tile_idx * strips_per_tile)
                    .take(strips_per_tile)
                    .collect();
                // The mma k-loop must cover each strip's column list
                // separately (different gathers), so the step count is
                // the SUM of per-strip chunks — this is where pv < 8
                // pays its 8/pv utilization penalty.
                let k_chunks: usize = tile_strips
                    .iter()
                    .map(|s| s.cols.len().div_ceil(MMA_K))
                    .sum();
                let mut trace = Vec::new();
                let mut t = TokenAlloc::new();
                // Independent accumulator chain per 8-column subtile.
                let mut acc: Vec<Option<u32>> = vec![None; BLOCK_N / 8];
                for _ in 0..k_chunks {
                    // Column indices then the gathered A vectors and B
                    // rows (vectorized 128-bit accesses, the format's
                    // main win over CSR).
                    let idx = t.fresh();
                    trace.push(WarpInstr::LdGlobal {
                        bytes: (MMA_K * 4) as u32,
                        transactions: 2,
                        produces: Some(idx),
                        l2_hit: true,
                        consumes: vec![],
                    });
                    let a_tok = t.fresh();
                    trace.push(WarpInstr::LdGlobal {
                        bytes: (MMA_K * self.pv * 2) as u32,
                        transactions: 4,
                        produces: Some(a_tok),
                        l2_hit: true,
                        consumes: vec![],
                    });
                    // Scattered 16-row gather: the bytes that actually
                    // move scale with the block's distinct-column reuse,
                    // but the row addresses stay scattered — one
                    // transaction per row regardless of caching.
                    let b_tok = t.fresh();
                    let b_bytes = ((MMA_K * BLOCK_N * 2) as f64 * reuse).ceil() as u32;
                    trace.push(WarpInstr::LdGlobal {
                        bytes: b_bytes.max(128),
                        transactions: MMA_K as u32,
                        produces: Some(b_tok),
                        l2_hit: true,
                        consumes: vec![idx],
                    });
                    // Per-chunk column-offset decode (the format's
                    // indirect addressing arithmetic).
                    trace.push(WarpInstr::CudaOp {
                        cycles: 8,
                        consumes: vec![idx],
                        produces: None,
                    });
                    // BLOCK_N/8 mma.m8n8k16 per chunk.
                    for slot in acc.iter_mut() {
                        let d = t.fresh();
                        let mut consumes = vec![a_tok, b_tok];
                        if let Some(prev) = slot {
                            consumes.push(*prev);
                        }
                        trace.push(WarpInstr::Mma {
                            op: MmaOp::DenseM8N8K16,
                            consumes,
                            produces: Some(d),
                        });
                        *slot = Some(d);
                    }
                }
                trace.push(WarpInstr::StGlobal {
                    bytes: (MMA_M * BLOCK_N * 2) as u32,
                    consumes: acc.into_iter().flatten().collect(),
                });
                warps.push(trace);
            }
            let block = std::sync::Arc::new(BlockTrace {
                warps,
                smem_bytes: 12 * 1024,
                gmem: Vec::new(),
            });
            blocks.extend(std::iter::repeat_n(block, n_blocks));
        }
        KernelLaunch {
            blocks,
            dram_bytes: (self.stored_bytes() + self.a_cols * n * 2 + self.a_rows * n * 2) as u64,
            block_bias: Vec::new(),
        }
    }
}

impl SpmmKernel for Clasp {
    fn name(&self) -> &'static str {
        "CLASP"
    }

    fn compute(&self, b: &Matrix) -> Vec<f32> {
        assert_eq!(self.a_cols, b.rows);
        let n = b.cols;
        let mut c = vec![0.0f32; self.a_rows * n];
        for (si, strip) in self.strips.iter().enumerate() {
            let base = self.value_offsets[si];
            for (ci, &col) in strip.cols.iter().enumerate() {
                let b_row = b.row(col as usize);
                for dr in 0..self.pv {
                    let v = self.values[base + ci * self.pv + dr];
                    if v.is_zero() {
                        continue;
                    }
                    let vf = v.to_f32();
                    let c_row = &mut c[(strip.row0 + dr) * n..(strip.row0 + dr + 1) * n];
                    for (acc, bv) in c_row.iter_mut().zip(b_row) {
                        *acc += vf * bv.to_f32();
                    }
                }
            }
        }
        c
    }

    fn simulate(&self, n: usize, spec: &GpuSpec) -> KernelStats {
        simulate_kernel(&self.build_launch(n, spec), spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlmc::{dense_rhs, ValueDist, VectorSparseSpec};

    fn gen(v: usize, s: f64) -> Matrix {
        VectorSparseSpec {
            rows: 128,
            cols: 128,
            sparsity: s,
            v,
            dist: ValueDist::SmallInt,
            seed: 17,
        }
        .generate()
    }

    #[test]
    fn compute_matches_reference_all_pv() {
        let a = gen(4, 0.85);
        let b = dense_rhs(128, 32, ValueDist::SmallInt, 18);
        for pv in [2, 4, 8] {
            let c = Clasp::plan(&a, pv);
            assert_eq!(c.compute(&b), a.matmul_reference(&b), "pv={pv}");
        }
    }

    #[test]
    fn matching_pv_is_fastest_for_wide_vectors() {
        let a = gen(8, 0.9);
        let spec = GpuSpec::a100();
        let t2 = Clasp::plan(&a, 2).simulate(256, &spec).duration_cycles;
        let t8 = Clasp::plan(&a, 8).simulate(256, &spec).duration_cycles;
        assert!(t8 < t2, "pv8 {t8} !< pv2 {t2}");
        let best = Clasp::plan_best(&a, 256, &spec);
        assert_eq!(best.pv, 8);
    }

    #[test]
    fn oversized_pv_stores_explicit_zeros() {
        let a = gen(2, 0.9);
        let pv2 = Clasp::plan(&a, 2);
        let pv8 = Clasp::plan(&a, 8);
        assert!(pv8.values.len() > pv2.values.len());
    }

    #[test]
    fn stored_format_skips_zero_vector_columns() {
        let a = gen(4, 0.95);
        let c = Clasp::plan(&a, 4);
        // ~5% of lane-cells nonzero -> stored values ≈ nnz, far below
        // the dense size.
        assert!(c.values.len() < a.rows * a.cols / 10);
    }
}
