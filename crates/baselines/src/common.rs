//! Shared interface for the SpMM comparators (paper §4.1).
//!
//! Every baseline follows the Jigsaw crate's plan/run split: plan once
//! against the stationary A, then compute and/or simulate per B. All
//! baselines run on the same simulated machine with the same cost
//! mechanisms, so relative results are apples-to-apples — the
//! substitution DESIGN.md §2 documents.

use dlmc::Matrix;
use gpu_sim::{GpuSpec, KernelStats};

/// A planned SpMM kernel: functional compute + timing model.
pub trait SpmmKernel {
    /// Display name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Computes `C = A × B` (f32 accumulators, row-major `M × N`).
    fn compute(&self, b: &Matrix) -> Vec<f32>;

    /// Simulates the kernel for an `N`-column B and reports timing.
    fn simulate(&self, n: usize, spec: &GpuSpec) -> KernelStats;
}

/// Splits `total` work items into `shares` nearly equal chunks; chunk
/// `i` gets `chunk_size(total, shares, i)` items.
pub fn chunk_size(total: usize, shares: usize, i: usize) -> usize {
    let base = total / shares;
    let extra = total % shares;
    base + usize::from(i < extra)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_total() {
        for total in [0, 1, 7, 64, 1000] {
            for shares in [1, 3, 8] {
                let sum: usize = (0..shares).map(|i| chunk_size(total, shares, i)).sum();
                assert_eq!(sum, total);
            }
        }
    }
}
