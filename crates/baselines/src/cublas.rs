//! cuBLAS-style dense HGEMM — the normalization baseline of every
//! figure and table in the paper (`cublasHgemm`, §4.1).
//!
//! Modelled as the classic Ampere dense pipeline: double-buffered
//! `cp.async` staging of A and B slabs, `ldmatrix` into fragments, and
//! `mma.m16n8k16` at full tensor-pipe rate, with a tile-size heuristic
//! (large tiles for large N, smaller tiles to fill the device for small
//! N) like the library's kernel selection.

use dlmc::Matrix;
use gpu_sim::{
    simulate_kernel, BlockTrace, GpuSpec, KernelLaunch, KernelStats, MmaOp, TokenAlloc, WarpInstr,
};

use crate::common::SpmmKernel;

/// Tile configuration the heuristic picks from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GemmTile {
    /// Block tile rows.
    pub m: usize,
    /// Block tile columns.
    pub n: usize,
    /// K advanced per main-loop step.
    pub k_step: usize,
    /// Warps per block.
    pub warps: usize,
}

/// The library's selectable tiles (a representative subset).
pub const TILES: [GemmTile; 3] = [
    GemmTile {
        m: 128,
        n: 128,
        k_step: 32,
        warps: 8,
    },
    GemmTile {
        m: 128,
        n: 64,
        k_step: 32,
        warps: 8,
    },
    GemmTile {
        m: 64,
        n: 64,
        k_step: 32,
        warps: 4,
    },
];

/// Picks a tile the way the library's heuristic does: the biggest tile
/// that still launches enough blocks to occupy the device.
pub fn select_tile(m: usize, n: usize, num_sms: usize) -> GemmTile {
    for t in TILES {
        let blocks = m.div_ceil(t.m) * n.div_ceil(t.n);
        if blocks >= num_sms {
            return t;
        }
    }
    TILES[TILES.len() - 1]
}

/// Planned dense GEMM.
pub struct CublasGemm {
    a: Matrix,
}

impl CublasGemm {
    /// Plans `C = A × B` for a dense A (zeros included — the library
    /// cannot skip them).
    pub fn plan(a: &Matrix) -> CublasGemm {
        CublasGemm { a: a.clone() }
    }

    /// Builds the kernel launch (public for diagnostics and benches).
    pub fn build_launch(&self, n: usize, spec: &GpuSpec) -> KernelLaunch {
        let (m, k) = (self.a.rows, self.a.cols);
        let tile = select_tile(m, n, spec.num_sms);
        let k_steps = k.div_ceil(tile.k_step).max(1);
        let grid = m.div_ceil(tile.m) * n.div_ceil(tile.n);

        // Per-warp fragment work per k-step: the warp owns an
        // (m/warp_rows) x n tile. With 8 warps in 2x4 arrangement each
        // warp covers (tile.m/2) x (tile.n/4); mma.m16n8k16 count per
        // 32-wide k-step = (wm/16) * (wn/8) * 2.
        let (warp_rows, warp_cols) = if tile.warps == 8 { (2, 4) } else { (2, 2) };
        let wm = tile.m / warp_rows;
        let wn = tile.n / warp_cols;
        let mmas_per_step = (wm / 16) * (wn / 8) * (tile.k_step / 16);
        // Fragment loads per step: A fragments per 16-row group and B
        // fragments per 8-col group, amortized with ldmatrix.x4.
        let ld_a = (wm / 16) * (tile.k_step / 16);
        let ld_b = (wn / 32).max(1) * (tile.k_step / 16);

        let a_slab = (tile.m * tile.k_step * 2 / tile.warps) as u32;
        let b_slab = (tile.k_step * (tile.n + 8) * 2 / tile.warps) as u32;
        let smem = 2 * (tile.m * tile.k_step + tile.k_step * (tile.n + 8)) * 2;

        let mut trace: Vec<WarpInstr> = Vec::new();
        let mut t = TokenAlloc::new();
        let issue_loads = |trace: &mut Vec<WarpInstr>| {
            trace.push(WarpInstr::CpAsync {
                bytes: a_slab,
                group: 0,
                consumes: vec![],
            });
            trace.push(WarpInstr::CpAsync {
                bytes: b_slab,
                group: 0,
                consumes: vec![],
            });
            trace.push(WarpInstr::CommitGroup { group: 0 });
        };
        // Multi-stage cp.async software pipeline (CUTLASS-style,
        // num_stages = 4): three iterations of loads stay in flight
        // while one computes, fully hiding the DRAM/L2 latency.
        const STAGES: usize = 3;
        let lookahead = (STAGES - 1).min(k_steps);
        for _ in 0..lookahead {
            issue_loads(&mut trace);
        }
        let mut acc: Vec<Option<u32>> = vec![None; mmas_per_step.min(8)];
        // Register-level fragment double buffering: the ldmatrix batch
        // of step n issues before the mma batch of step n-1, so the
        // shared-memory pipe overlaps the tensor pipe.
        let mut frags: Option<(u32, u32)> = None;
        let mut staged: Option<(u32, u32)> = None;
        for step in 0..=k_steps {
            if step < k_steps {
                let outstanding = (k_steps - step).min(lookahead);
                trace.push(WarpInstr::WaitGroup {
                    pending_allowed: outstanding.saturating_sub(1) as u8,
                });
                trace.push(WarpInstr::Barrier);
                if step + lookahead < k_steps {
                    issue_loads(&mut trace);
                }
                let a_tok = t.fresh();
                for _ in 0..ld_a {
                    trace.push(WarpInstr::Ldmatrix {
                        phases: 4,
                        total_ways: 4,
                        produces: Some(a_tok),
                        consumes: vec![],
                    });
                }
                let b_tok = t.fresh();
                for _ in 0..ld_b {
                    trace.push(WarpInstr::Ldmatrix {
                        phases: 4,
                        total_ways: 4,
                        produces: Some(b_tok),
                        consumes: vec![],
                    });
                }
                frags = staged;
                staged = Some((a_tok, b_tok));
            }
            if step > 0 {
                // Compute step-1 with the fragments staged last round.
                let (a_tok, b_tok) = if step < k_steps {
                    frags.expect("fragments staged")
                } else {
                    staged.expect("fragments staged")
                };
                for i in 0..mmas_per_step {
                    let slot = i % acc.len();
                    let d = t.fresh();
                    let mut consumes = vec![a_tok, b_tok];
                    if let Some(prev) = acc[slot] {
                        consumes.push(prev);
                    }
                    trace.push(WarpInstr::Mma {
                        op: MmaOp::DenseM16N8K16,
                        consumes,
                        produces: Some(d),
                    });
                    acc[slot] = Some(d);
                }
                trace.push(WarpInstr::CudaOp {
                    cycles: 1,
                    consumes: vec![],
                    produces: None,
                });
            }
        }
        trace.push(WarpInstr::StGlobal {
            bytes: (wm * wn * 2) as u32,
            consumes: acc.into_iter().flatten().collect(),
        });

        let block = BlockTrace {
            warps: vec![trace; tile.warps],
            smem_bytes: smem,
            gmem: Vec::new(),
        };
        KernelLaunch::replicated(block, grid, (m * k * 2 + k * n * 2 + m * n * 2) as u64)
    }
}

impl SpmmKernel for CublasGemm {
    fn name(&self) -> &'static str {
        "cuBLAS"
    }

    fn compute(&self, b: &Matrix) -> Vec<f32> {
        self.a.matmul_reference(b)
    }

    fn simulate(&self, n: usize, spec: &GpuSpec) -> KernelStats {
        simulate_kernel(&self.build_launch(n, spec), spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlmc::{dense_rhs, ValueDist};

    #[test]
    fn tile_heuristic() {
        let sms = 108;
        // Big problem -> biggest tile.
        assert_eq!(select_tile(2048, 2048, sms), TILES[0]);
        // Small N -> smaller tile to fill the device.
        assert_eq!(select_tile(512, 256, sms), TILES[2]);
    }

    #[test]
    fn compute_is_reference() {
        let a = Matrix::from_f32(4, 4, &[1.0; 16]);
        let b = dense_rhs(4, 4, ValueDist::SmallInt, 1);
        let g = CublasGemm::plan(&a);
        assert_eq!(g.compute(&b), a.matmul_reference(&b));
    }

    #[test]
    fn near_peak_efficiency_on_large_gemm() {
        // A large dense GEMM should land within a reasonable factor of
        // the device's dense tensor peak.
        let spec = GpuSpec::a100();
        let (m, n, k) = (2048usize, 2048usize, 2048usize);
        let a = Matrix::zeros(m, k);
        let stats = CublasGemm::plan(&a).simulate(n, &spec);
        let flops = 2.0 * m as f64 * n as f64 * k as f64;
        let achieved = flops / stats.duration_cycles;
        let peak = spec.peak_dense_tensor_flops_per_cycle();
        let efficiency = achieved / peak;
        assert!(
            (0.35..=1.0).contains(&efficiency),
            "efficiency {efficiency}"
        );
    }

    #[test]
    fn duration_scales_with_k() {
        let spec = GpuSpec::a100();
        let t1 = CublasGemm::plan(&Matrix::zeros(512, 512)).simulate(512, &spec);
        let t2 = CublasGemm::plan(&Matrix::zeros(512, 2048)).simulate(512, &spec);
        assert!(t2.duration_cycles > 2.0 * t1.duration_cycles);
    }
}
