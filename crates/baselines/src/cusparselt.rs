//! cuSparseLt-style 2:4 SpTC GEMM (Mishra et al. 2021) — used directly
//! in Table 3 and as the structured half of SparTA's decomposition.
//!
//! The library requires the whole LHS to satisfy the 2:4 pattern; it
//! compresses to `K/2` and runs `mma.sp` over the *full* K extent — it
//! has no notion of zero-column skipping, which is exactly the gap
//! Jigsaw exploits on sparser-than-50% data. The pipeline modelled here
//! is the library's pre-`cp.async` register-staged double buffering
//! (global load → register → shared store), costing extra instructions
//! and long-scoreboard exposure relative to Jigsaw's async pipeline.

use dlmc::Matrix;
use gpu_sim::{
    simulate_kernel, BlockTrace, GpuSpec, KernelLaunch, KernelStats, MmaOp, TokenAlloc, WarpInstr,
};
use sptc::compress::matrix_satisfies_2_4;

use crate::common::SpmmKernel;

/// Planned 2:4 SpTC GEMM.
pub struct CuSparseLt {
    a: Matrix,
}

/// Error returned when the LHS violates the hardware pattern.
#[derive(Debug, PartialEq, Eq)]
pub struct NotTwoFourError;

impl CuSparseLt {
    /// Plans the GEMM; fails unless every row of A satisfies 2:4.
    pub fn plan(a: &Matrix) -> Result<CuSparseLt, NotTwoFourError> {
        if !a.cols.is_multiple_of(4) || !matrix_satisfies_2_4(&a.data, a.cols) {
            return Err(NotTwoFourError);
        }
        Ok(CuSparseLt { a: a.clone() })
    }

    /// Plans without the 2:4 check — for callers (SparTA) that
    /// constructed A to satisfy the pattern already.
    pub fn plan_unchecked(a: &Matrix) -> CuSparseLt {
        CuSparseLt { a: a.clone() }
    }

    fn build_launch(&self, n: usize, spec: &GpuSpec) -> KernelLaunch {
        let _ = spec;
        let (m, k) = (self.a.rows, self.a.cols);
        let (bt_m, bt_n, warps) = (128usize, 128usize, 8usize);
        let grid = m.div_ceil(bt_m) * n.div_ceil(bt_n);
        let k_steps = k.div_ceil(32).max(1);
        // Warp tile 64x32 (tall tiles amortize B fragments over four
        // mma rows, keeping the shared-memory pipe at tensor rate):
        // (64/16)*(32/8) = 16 mma.sp per 32-k step.
        let mmas_per_step = 16usize;

        let a_slab = (bt_m * 16 * 2 / warps) as u32; // compressed halves
        let b_slab = (32 * (bt_n + 8) * 2 / warps) as u32;
        let smem = 2 * (bt_m * 16 + 32 * (bt_n + 8)) * 2 + 4096;

        let mut trace: Vec<WarpInstr> = Vec::new();
        let mut t = TokenAlloc::new();
        // Register-staged double buffer: the global loads for step n+1
        // issue at the top of iteration n and their register->shared
        // stores at the bottom, hiding the load latency behind the
        // step's tensor work (the pre-cp.async idiom).
        let stage_load = |trace: &mut Vec<WarpInstr>, t: &mut TokenAlloc| {
            let ga = t.fresh();
            trace.push(WarpInstr::LdGlobal {
                bytes: a_slab,
                transactions: 4,
                produces: Some(ga),
                l2_hit: true,
                consumes: vec![],
            });
            let gb = t.fresh();
            trace.push(WarpInstr::LdGlobal {
                bytes: b_slab,
                transactions: 8,
                produces: Some(gb),
                l2_hit: true,
                consumes: vec![],
            });
            (ga, gb)
        };
        let stage_store = |trace: &mut Vec<WarpInstr>, toks: (u32, u32)| {
            trace.push(WarpInstr::StShared {
                conflict_ways: 1,
                consumes: vec![toks.0],
            });
            trace.push(WarpInstr::StShared {
                conflict_ways: 1,
                consumes: vec![toks.1],
            });
        };
        let toks = stage_load(&mut trace, &mut t);
        stage_store(&mut trace, toks);
        let mut acc: Vec<Option<u32>> = vec![None; mmas_per_step];
        // Fragment double buffering as in the dense library: ldmatrix
        // for step n issues before the mma batch of step n-1.
        let mut staged: Option<(u32, u32, u32)> = None;
        for step in 0..k_steps {
            trace.push(WarpInstr::Barrier);
            let next = (step + 1 < k_steps).then(|| stage_load(&mut trace, &mut t));
            // Fragments: compressed A, B, and branchy metadata loads.
            let a_tok = t.fresh();
            for _ in 0..4 {
                trace.push(WarpInstr::Ldmatrix {
                    phases: 4,
                    total_ways: 4,
                    produces: Some(a_tok),
                    consumes: vec![],
                });
            }
            let b_tok = t.fresh();
            for _ in 0..4 {
                trace.push(WarpInstr::Ldmatrix {
                    phases: 4,
                    total_ways: 4,
                    produces: Some(b_tok),
                    consumes: vec![],
                });
            }
            let m_tok = t.fresh();
            trace.push(WarpInstr::LdShared {
                conflict_ways: 1,
                produces: Some(m_tok),
                consumes: vec![],
            });
            trace.push(WarpInstr::CudaOp {
                cycles: 2,
                consumes: vec![m_tok],
                produces: None,
            });
            let frags = staged;
            staged = Some((a_tok, b_tok, m_tok));
            // Compute the *previous* step's batch with the fragments
            // staged last round, overlapping this step's ldmatrix.
            if let Some((fa, fb, fm)) = frags {
                for slot in acc.iter_mut() {
                    let d = t.fresh();
                    let mut consumes = vec![fa, fb, fm];
                    if let Some(prev) = slot {
                        consumes.push(*prev);
                    }
                    trace.push(WarpInstr::Mma {
                        op: MmaOp::SparseM16N8K32,
                        consumes,
                        produces: Some(d),
                    });
                    *slot = Some(d);
                }
            }
            if let Some(toks) = next {
                stage_store(&mut trace, toks);
            }
            trace.push(WarpInstr::CudaOp {
                cycles: 1,
                consumes: vec![],
                produces: None,
            });
        }
        // Drain: the last step's staged fragments still need computing.
        if let Some((fa, fb, fm)) = staged {
            for slot in acc.iter_mut() {
                let d = t.fresh();
                let mut consumes = vec![fa, fb, fm];
                if let Some(prev) = slot {
                    consumes.push(*prev);
                }
                trace.push(WarpInstr::Mma {
                    op: MmaOp::SparseM16N8K32,
                    consumes,
                    produces: Some(d),
                });
                *slot = Some(d);
            }
        }
        trace.push(WarpInstr::StGlobal {
            bytes: (64 * 32 * 2) as u32,
            consumes: acc.into_iter().flatten().collect(),
        });

        KernelLaunch::replicated(
            BlockTrace {
                warps: vec![trace; warps],
                smem_bytes: smem,
                gmem: Vec::new(),
            },
            grid,
            (m * k / 2 * 2 + m * k / 8 + k * n * 2 + m * n * 2) as u64,
        )
    }
}

impl SpmmKernel for CuSparseLt {
    fn name(&self) -> &'static str {
        "cuSparseLt"
    }

    fn compute(&self, b: &Matrix) -> Vec<f32> {
        self.a.matmul_reference(b)
    }

    fn simulate(&self, n: usize, spec: &GpuSpec) -> KernelStats {
        simulate_kernel(&self.build_launch(n, spec), spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sptc::F16;

    fn two_four_matrix(m: usize, k: usize) -> Matrix {
        let mut a = Matrix::zeros(m, k);
        for r in 0..m {
            for g in 0..k / 4 {
                a.set(r, g * 4 + r % 4, F16::ONE);
                a.set(r, g * 4 + (r + 1) % 4, F16::from_f32(2.0));
            }
        }
        a
    }

    #[test]
    fn rejects_violating_matrix() {
        let a = Matrix::from_f32(4, 4, &[1.0; 16]);
        assert!(CuSparseLt::plan(&a).is_err());
    }

    #[test]
    fn accepts_and_computes() {
        let a = two_four_matrix(16, 32);
        let b = dlmc::dense_rhs(32, 8, dlmc::ValueDist::SmallInt, 2);
        let lt = CuSparseLt::plan(&a).unwrap();
        assert_eq!(lt.compute(&b), a.matmul_reference(&b));
    }

    #[test]
    fn runs_at_about_half_the_dense_time() {
        // The library's headline: 2:4 GEMM ≈ 2x dense tensor-core GEMM
        // on large, compute-bound shapes. (Smaller shapes are bound by
        // the register-staged pipeline latency — the disadvantage the
        // paper's §4.5 comparison exploits.)
        let spec = GpuSpec::a100();
        let a = two_four_matrix(2048, 2048);
        let sparse = CuSparseLt::plan(&a).unwrap().simulate(2048, &spec);
        let dense = crate::cublas::CublasGemm::plan(&a).simulate(2048, &spec);
        let ratio = dense.duration_cycles / sparse.duration_cycles;
        assert!((1.4..=2.6).contains(&ratio), "dense/sparse ratio {ratio}");
    }
}
