//! # baselines — the paper's comparator kernels
//!
//! One module per system the evaluation compares against, each with
//! the baseline's real format/algorithm structure implemented
//! functionally plus a warp-trace timing model on the same simulated
//! A100 (see DESIGN.md §2 for the substitution rationale):
//!
//! * [`cublas`] — dense `cublasHgemm`-style tensor-core GEMM (the
//!   normalization baseline),
//! * [`cusparselt`] — 2:4 SpTC GEMM,
//! * [`sputnik`] — CSR SpMM on CUDA cores with row-swizzle balancing,
//! * [`clasp`] — column-vector format on dense `mma.m8n8k16`,
//! * [`magicube`] — quantized L16-R16 vector-sparse SpMM,
//! * [`sparta`] — 2:4 + residual decomposition (cuSparseLt ⊕ Sputnik),
//! * [`venom`] — V:N:M pruning with an SpTC kernel.

#![warn(missing_docs)]

pub mod clasp;
pub mod common;
pub mod cublas;
pub mod cusparselt;
pub mod magicube;
pub mod sparta;
pub mod sputnik;
pub mod venom;

pub use clasp::Clasp;
pub use common::SpmmKernel;
pub use cublas::CublasGemm;
pub use cusparselt::CuSparseLt;
pub use magicube::Magicube;
pub use sparta::{decompose_2_4, Sparta};
pub use sputnik::{Csr, Sputnik};
pub use venom::Venom;
