//! Magicube-style quantized vector-sparse SpMM (Li, Osawa, Hoefler,
//! SC'22), L16-R16 configuration — the variant the paper benchmarks.
//!
//! Magicube stores vector-sparse matrices in its SR-BCRS format and
//! emulates 16-bit×16-bit products on the *integer* tensor cores: each
//! logical L16-R16 MMA decomposes into four 8-bit MMAs plus shift/add
//! recombination on the CUDA cores. The instruction amplification and
//! the dequantization epilogue are what Jigsaw's fp16 SpTC path avoids.
//! Magicube's kernels are specially optimized for v = 8 (the paper
//! measures 50% fewer bank conflicts and ~10% fewer instructions than
//! its v = 2/4 paths); smaller vectors leave its MMA tiles
//! underutilized just like CLASP's.

use dlmc::Matrix;
use gpu_sim::{
    simulate_kernel, BlockTrace, GpuSpec, KernelLaunch, KernelStats, MmaOp, TokenAlloc, WarpInstr,
};

use crate::common::SpmmKernel;

/// Planned Magicube SpMM (L16-R16).
pub struct Magicube {
    a: Matrix,
    /// Vector width of the stored format (detected from the data's
    /// vertical run structure; the paper generates v ∈ {2,4,8}).
    pub v: usize,
    /// Nonzero vector-columns per 16-row mma strip.
    strip_cols: Vec<usize>,
}

/// Rows per mma tile (m16 integer MMA).
const MMA_M: usize = 16;
/// K extent covered per logical L16R16 step.
const MMA_K: usize = 16;
/// Columns of C per block.
const BLOCK_N: usize = 64;

impl Magicube {
    /// Plans the SpMM for data of vector width `v`.
    pub fn plan(a: &Matrix, v: usize) -> Magicube {
        assert!(matches!(v, 2 | 4 | 8));
        assert_eq!(a.rows % MMA_M, 0);
        let strip_cols = (0..a.rows)
            .step_by(MMA_M)
            .map(|row0| {
                (0..a.cols)
                    .filter(|&c| !a.column_zero_in_strip(c, row0, row0 + MMA_M))
                    .count()
            })
            .collect();
        Magicube {
            a: a.clone(),
            v,
            strip_cols,
        }
    }

    fn build_launch(&self, n: usize, _spec: &GpuSpec) -> KernelLaunch {
        let n_blocks = n.div_ceil(BLOCK_N).max(1);
        // v = 8 path: tuned kernel (fewer bank conflicts, lighter
        // dequantization inner loop, per the paper's Nsight findings).
        let gather_inflation = 1usize;
        let (conflict_ways, dequant_cycles) = if self.v == 8 {
            (1u32, 2u32)
        } else {
            (2u32, 3u32)
        };

        let mut blocks = Vec::new();
        for (si, &cols) in self.strip_cols.iter().enumerate() {
            let _ = si;
            let k_chunks = cols.div_ceil(MMA_K) * gather_inflation;
            let _ = gather_inflation;
            let mut trace = Vec::new();
            let mut t = TokenAlloc::new();
            // Independent accumulator chain per 8-column subtile.
            let mut acc: Vec<Option<u32>> = vec![None; BLOCK_N / 8];
            for _ in 0..k_chunks {
                let idx = t.fresh();
                trace.push(WarpInstr::LdGlobal {
                    bytes: (MMA_K * 4) as u32,
                    transactions: 2,
                    produces: Some(idx),
                    l2_hit: true,
                    consumes: vec![],
                });
                let a_tok = t.fresh();
                trace.push(WarpInstr::Ldmatrix {
                    phases: 2,
                    total_ways: 2 * conflict_ways,
                    produces: Some(a_tok),
                    consumes: vec![],
                });
                let b_tok = t.fresh();
                trace.push(WarpInstr::Ldmatrix {
                    phases: 4,
                    total_ways: 4 * conflict_ways,
                    produces: Some(b_tok),
                    consumes: vec![idx],
                });
                // BLOCK_N/8 logical L16R16 MMAs, each = 4 int8 MMAs
                // (modelled as 2 f16-rate ops: int8 runs 2x f16) plus
                // recombination adds.
                for slot in acc.iter_mut() {
                    let mut last = None;
                    for _ in 0..2 {
                        let d = t.fresh();
                        let mut consumes = vec![a_tok, b_tok];
                        if let Some(prev) = slot {
                            consumes.push(*prev);
                        }
                        trace.push(WarpInstr::Mma {
                            op: MmaOp::DenseM16N8K16,
                            consumes,
                            produces: Some(d),
                        });
                        last = Some(d);
                    }
                    *slot = last;
                    trace.push(WarpInstr::CudaOp {
                        cycles: dequant_cycles,
                        consumes: vec![],
                        produces: None,
                    });
                }
            }
            // Dequantization epilogue.
            trace.push(WarpInstr::CudaOp {
                cycles: 8,
                consumes: vec![],
                produces: None,
            });
            trace.push(WarpInstr::StGlobal {
                bytes: (MMA_M * BLOCK_N * 2) as u32,
                consumes: acc.into_iter().flatten().collect(),
            });
            let block = std::sync::Arc::new(BlockTrace {
                warps: vec![trace; 4],
                smem_bytes: 16 * 1024,
                gmem: Vec::new(),
            });
            blocks.extend(std::iter::repeat_n(block, n_blocks));
        }
        let stored = self.a.nnz() * 2 + self.strip_cols.iter().sum::<usize>() * 4;
        KernelLaunch {
            blocks,
            dram_bytes: (stored + self.a.cols * n * 2 + self.a.rows * n * 2) as u64,
            block_bias: Vec::new(),
        }
    }
}

impl SpmmKernel for Magicube {
    fn name(&self) -> &'static str {
        "Magicube"
    }

    fn compute(&self, b: &Matrix) -> Vec<f32> {
        // L16-R16 keeps 16-bit mantissas: numerically we model it as
        // the exact product (quantization error is out of scope for
        // the performance study).
        self.a.matmul_reference(b)
    }

    fn simulate(&self, n: usize, spec: &GpuSpec) -> KernelStats {
        simulate_kernel(&self.build_launch(n, spec), spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlmc::{dense_rhs, ValueDist, VectorSparseSpec};

    fn gen(v: usize, s: f64) -> Matrix {
        VectorSparseSpec {
            rows: 128,
            cols: 256,
            sparsity: s,
            v,
            dist: ValueDist::SmallInt,
            seed: 23,
        }
        .generate()
    }

    #[test]
    fn compute_is_exact_product() {
        let a = gen(4, 0.9);
        let b = dense_rhs(256, 16, ValueDist::SmallInt, 24);
        assert_eq!(Magicube::plan(&a, 4).compute(&b), a.matmul_reference(&b));
    }

    #[test]
    fn v8_path_is_faster_than_v2_path() {
        let spec = GpuSpec::a100();
        let t8 = Magicube::plan(&gen(8, 0.9), 8).simulate(256, &spec);
        let t2 = Magicube::plan(&gen(2, 0.9), 2).simulate(256, &spec);
        assert!(t8.duration_cycles < t2.duration_cycles);
        // And with fewer bank conflicts per smem instruction.
        let c8 = t8.totals.smem_bank_conflicts as f64 / t8.totals.smem_instructions as f64;
        let c2 = t2.totals.smem_bank_conflicts as f64 / t2.totals.smem_instructions as f64;
        assert!(c8 < c2);
    }

    #[test]
    fn skips_zero_columns_per_strip() {
        let spec = GpuSpec::a100();
        let t95 = Magicube::plan(&gen(8, 0.95), 8).simulate(256, &spec);
        let t80 = Magicube::plan(&gen(8, 0.80), 8).simulate(256, &spec);
        assert!(t95.duration_cycles < t80.duration_cycles);
    }
}
