//! SparTA-style decomposition (Zheng et al., OSDI'22), the paper's
//! half-precision re-implementation (§4.1): split A into a part that
//! satisfies the 2:4 pattern (run with cuSparseLt on the SpTC) and the
//! violating remainder (run with Sputnik on CUDA cores), then add the
//! two partial products.
//!
//! The decomposition keeps, per aligned group of four, the two
//! largest-magnitude elements in the structured part; overflow goes to
//! the residual. Total time is the sum of the two kernel durations —
//! the paper notes exactly this decomposition overhead, plus the
//! underutilized SpTC at high sparsity (the structured part still runs
//! the full `K/2` reduction regardless of how empty it is).

use dlmc::Matrix;
use gpu_sim::{GpuSpec, KernelStats};

use crate::common::SpmmKernel;
use crate::cusparselt::CuSparseLt;
use crate::sputnik::Sputnik;

/// Planned SparTA SpMM.
pub struct Sparta {
    structured: CuSparseLt,
    residual: Sputnik,
    /// Nonzeros that fell into the residual part.
    pub residual_nnz: usize,
}

/// Splits `a` into a 2:4-satisfying part and the remainder.
pub fn decompose_2_4(a: &Matrix) -> (Matrix, Matrix) {
    assert_eq!(a.cols % 4, 0);
    let mut structured = Matrix::zeros(a.rows, a.cols);
    let mut residual = Matrix::zeros(a.rows, a.cols);
    for r in 0..a.rows {
        for g in 0..a.cols / 4 {
            let base = g * 4;
            let mut idx: Vec<usize> = (0..4).filter(|&i| !a.get(r, base + i).is_zero()).collect();
            // Keep the two largest magnitudes in the structured part.
            idx.sort_by(|&x, &y| {
                a.get(r, base + y)
                    .to_f32()
                    .abs()
                    .total_cmp(&a.get(r, base + x).to_f32().abs())
            });
            for (rank, &i) in idx.iter().enumerate() {
                let v = a.get(r, base + i);
                if rank < 2 {
                    structured.set(r, base + i, v);
                } else {
                    residual.set(r, base + i, v);
                }
            }
        }
    }
    (structured, residual)
}

impl Sparta {
    /// Plans the decomposed SpMM.
    pub fn plan(a: &Matrix) -> Sparta {
        let (structured, residual) = decompose_2_4(a);
        let residual_nnz = residual.nnz();
        Sparta {
            structured: CuSparseLt::plan_unchecked(&structured),
            residual: Sputnik::plan(&residual),
            residual_nnz,
        }
    }
}

impl SpmmKernel for Sparta {
    fn name(&self) -> &'static str {
        "SparTA"
    }

    fn compute(&self, b: &Matrix) -> Vec<f32> {
        let mut c = self.structured.compute(b);
        if self.residual_nnz > 0 {
            for (acc, r) in c.iter_mut().zip(self.residual.compute(b)) {
                *acc += r;
            }
        }
        c
    }

    fn simulate(&self, n: usize, spec: &GpuSpec) -> KernelStats {
        let s1 = self.structured.simulate(n, spec);
        if self.residual_nnz == 0 {
            return s1;
        }
        let s2 = self.residual.simulate(n, spec);
        // Two sequential kernels plus the element-wise addition pass
        // (modelled as a bandwidth-bound epilogue folded into s2's
        // fixed overhead already counted once more).
        let mut out = s1.clone();
        out.duration_cycles += s2.duration_cycles;
        out.duration_us += s2.duration_us;
        out.blocks += s2.blocks;
        out.totals.absorb(&s2.totals);
        out.waves += s2.waves;
        out.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlmc::{dense_rhs, ValueDist, VectorSparseSpec};
    use sptc::compress::matrix_satisfies_2_4;

    fn gen(s: f64) -> Matrix {
        VectorSparseSpec {
            rows: 64,
            cols: 128,
            sparsity: s,
            v: 2,
            dist: ValueDist::SmallInt,
            seed: 31,
        }
        .generate()
    }

    #[test]
    fn decomposition_is_exact_and_structured() {
        let a = gen(0.5);
        let (s, r) = decompose_2_4(&a);
        assert!(matrix_satisfies_2_4(&s.data, s.cols));
        // s + r == a elementwise.
        for i in 0..a.data.len() {
            let sum = s.data[i].to_f32() + r.data[i].to_f32();
            assert_eq!(sum, a.data[i].to_f32());
        }
    }

    #[test]
    fn high_sparsity_leaves_tiny_residual() {
        let a = gen(0.9);
        let sparta = Sparta::plan(&a);
        assert!(sparta.residual_nnz < a.nnz() / 10);
    }

    #[test]
    fn compute_matches_reference() {
        // Use a denser matrix so the residual path is exercised.
        let a = gen(0.3);
        let b = dense_rhs(128, 16, ValueDist::SmallInt, 32);
        let sparta = Sparta::plan(&a);
        assert!(sparta.residual_nnz > 0);
        assert_eq!(sparta.compute(&b), a.matmul_reference(&b));
    }

    #[test]
    fn simulation_adds_both_kernels() {
        let spec = GpuSpec::a100();
        let a = gen(0.3);
        let sparta = Sparta::plan(&a);
        let total = sparta.simulate(64, &spec);
        let structured_only = sparta.structured.simulate(64, &spec);
        assert!(total.duration_cycles > structured_only.duration_cycles);
    }
}
