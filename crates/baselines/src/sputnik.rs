//! Sputnik-style CSR SpMM on CUDA cores (Gale et al., SC'20).
//!
//! 1-D tiling: each thread block owns a strip of C rows × an N chunk;
//! per nonzero the kernel gathers the matching row of B and runs FMAs
//! on the CUDA cores. *Row-swizzle load balancing* sorts rows by
//! length and deals them round-robin so concurrent blocks carry equal
//! work. Developed for V100: no tensor cores, no `cp.async` — on an
//! A100 model it is latency/bandwidth-bound, which is why the paper
//! sees it reach cuBLAS parity only near 98% sparsity.

use dlmc::Matrix;
use gpu_sim::{
    simulate_kernel, BlockTrace, GpuSpec, KernelLaunch, KernelStats, TokenAlloc, WarpInstr,
};
use sptc::F16;

use crate::common::SpmmKernel;

/// CSR with explicit f16 values.
#[derive(Clone, Debug)]
pub struct Csr {
    /// Matrix height.
    pub rows: usize,
    /// Matrix width.
    pub cols: usize,
    /// Row offsets (`rows + 1`).
    pub row_offsets: Vec<usize>,
    /// Column indices per nonzero.
    pub col_indices: Vec<u32>,
    /// Values per nonzero.
    pub values: Vec<F16>,
}

impl Csr {
    /// Builds CSR from a dense matrix.
    pub fn from_matrix(a: &Matrix) -> Csr {
        let mut row_offsets = Vec::with_capacity(a.rows + 1);
        let mut col_indices = Vec::new();
        let mut values = Vec::new();
        row_offsets.push(0);
        for r in 0..a.rows {
            for c in 0..a.cols {
                let v = a.get(r, c);
                if !v.is_zero() {
                    col_indices.push(c as u32);
                    values.push(v);
                }
            }
            row_offsets.push(col_indices.len());
        }
        Csr {
            rows: a.rows,
            cols: a.cols,
            row_offsets,
            col_indices,
            values,
        }
    }

    /// Nonzeros in row `r`.
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_offsets[r + 1] - self.row_offsets[r]
    }

    /// Total stored bytes (offsets u32 + indices u32 + values f16).
    pub fn stored_bytes(&self) -> usize {
        (self.row_offsets.len() + self.col_indices.len()) * 4 + self.values.len() * 2
    }
}

/// Planned Sputnik SpMM.
pub struct Sputnik {
    csr: Csr,
    /// Rows sorted by descending nnz (row swizzle).
    swizzled_rows: Vec<usize>,
}

/// Rows of C per thread block.
const BLOCK_ROWS: usize = 32;
/// Columns of C per thread block.
const BLOCK_N: usize = 64;
/// Warps per block.
const WARPS: usize = 4;
/// Nonzeros processed per inner-loop iteration of a warp.
const CHUNK: usize = 8;

impl Sputnik {
    /// Plans the SpMM (CSR conversion + row swizzle).
    pub fn plan(a: &Matrix) -> Sputnik {
        let csr = Csr::from_matrix(a);
        let mut swizzled_rows: Vec<usize> = (0..csr.rows).collect();
        swizzled_rows.sort_by_key(|&r| std::cmp::Reverse(csr.row_nnz(r)));
        Sputnik { csr, swizzled_rows }
    }

    fn build_launch(&self, n: usize, spec: &GpuSpec) -> KernelLaunch {
        let n_blocks = n.div_ceil(BLOCK_N).max(1);
        let row_blocks = self.csr.rows.div_ceil(BLOCK_ROWS).max(1);
        let fma_per_cycle = spec.cuda_fp16_fma_per_cycle_per_scheduler as u32;

        let mut blocks = Vec::with_capacity(row_blocks * n_blocks);
        for rb in 0..row_blocks {
            // Row swizzle: block rb takes swizzled rows rb, rb+RB, ...
            // dealing the longest rows round-robin across blocks.
            let rows: Vec<usize> = (0..BLOCK_ROWS)
                .map(|i| rb + i * row_blocks)
                .filter(|&i| i < self.swizzled_rows.len())
                .map(|i| self.swizzled_rows[i])
                .collect();
            let block = std::sync::Arc::new(self.build_block(&rows, fma_per_cycle));
            blocks.extend(std::iter::repeat_n(block, n_blocks));
        }
        KernelLaunch {
            blocks,
            dram_bytes: (self.csr.stored_bytes() + self.csr.cols * n * 2 + self.csr.rows * n * 2)
                as u64,
            block_bias: Vec::new(),
        }
    }

    fn build_block(&self, rows: &[usize], fma_per_cycle: u32) -> BlockTrace {
        // B-row gather volume: rows inside a block share columns (vector
        // sparsity makes runs of rows identical), and repeated rows hit
        // the L1/L2 — charge each *distinct* column once per block.
        let mut distinct = std::collections::HashSet::new();
        let mut nnz_block = 0usize;
        for &r in rows {
            for i in self.csr.row_offsets[r]..self.csr.row_offsets[r + 1] {
                distinct.insert(self.csr.col_indices[i]);
            }
            nnz_block += self.csr.row_nnz(r);
        }
        let reuse = if nnz_block == 0 {
            1.0
        } else {
            distinct.len() as f64 / nnz_block as f64
        };
        let warps = (0..WARPS)
            .map(|w| {
                let mut trace = Vec::new();
                let mut t = TokenAlloc::new();
                // Each warp handles every WARPS-th row of the block.
                for (i, &r) in rows.iter().enumerate() {
                    if i % WARPS != w {
                        continue;
                    }
                    let nnz = self.csr.row_nnz(r);
                    let chunks = nnz.div_ceil(CHUNK);
                    // Index prefetch, one chunk ahead (Sputnik's
                    // software pipelining) — the B gather still pays
                    // its own L2 round trip before the FMAs can issue.
                    let mut idx_next = t.fresh();
                    if chunks > 0 {
                        trace.push(WarpInstr::LdGlobal {
                            bytes: (CHUNK * 6) as u32,
                            transactions: 2,
                            produces: Some(idx_next),
                            l2_hit: true,
                            consumes: vec![],
                        });
                    }
                    for c in 0..chunks {
                        let idx_tok = idx_next;
                        if c + 1 < chunks {
                            idx_next = t.fresh();
                            trace.push(WarpInstr::LdGlobal {
                                bytes: (CHUNK * 6) as u32,
                                transactions: 2,
                                produces: Some(idx_next),
                                l2_hit: true,
                                consumes: vec![],
                            });
                        }
                        // Gather CHUNK rows of B for this N slab —
                        // scattered rows; repeated columns are cached,
                        // so the memory-system traffic scales by the
                        // block's distinct-column fraction.
                        let b_tok = t.fresh();
                        let bytes = ((CHUNK * BLOCK_N * 2) as f64 * reuse).ceil() as u32;
                        trace.push(WarpInstr::LdGlobal {
                            bytes: bytes.max(32),
                            transactions: (CHUNK as f64 * reuse).ceil() as u32 * 4,
                            produces: Some(b_tok),
                            l2_hit: true,
                            consumes: vec![idx_tok],
                        });
                        // FMA work on the CUDA pipes.
                        let useful = (CHUNK * BLOCK_N) as u32;
                        trace.push(WarpInstr::CudaOp {
                            cycles: (useful / fma_per_cycle).max(1),
                            consumes: vec![b_tok],
                            produces: None,
                        });
                    }
                    trace.push(WarpInstr::StGlobal {
                        bytes: (BLOCK_N * 2) as u32,
                        consumes: vec![],
                    });
                }
                trace
            })
            .collect();
        BlockTrace {
            warps,
            smem_bytes: 8 * 1024,
            gmem: Vec::new(),
        }
    }
}

impl SpmmKernel for Sputnik {
    fn name(&self) -> &'static str {
        "Sputnik"
    }

    fn compute(&self, b: &Matrix) -> Vec<f32> {
        assert_eq!(self.csr.cols, b.rows);
        let n = b.cols;
        let mut c = vec![0.0f32; self.csr.rows * n];
        for r in 0..self.csr.rows {
            for i in self.csr.row_offsets[r]..self.csr.row_offsets[r + 1] {
                let col = self.csr.col_indices[i] as usize;
                let v = self.csr.values[i].to_f32();
                let b_row = b.row(col);
                let c_row = &mut c[r * n..(r + 1) * n];
                for (acc, bv) in c_row.iter_mut().zip(b_row) {
                    *acc += v * bv.to_f32();
                }
            }
        }
        c
    }

    fn simulate(&self, n: usize, spec: &GpuSpec) -> KernelStats {
        simulate_kernel(&self.build_launch(n, spec), spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlmc::{dense_rhs, ValueDist, VectorSparseSpec};

    #[test]
    fn csr_roundtrip_compute() {
        let a = VectorSparseSpec {
            rows: 32,
            cols: 64,
            sparsity: 0.8,
            v: 2,
            dist: ValueDist::SmallInt,
            seed: 3,
        }
        .generate();
        let b = dense_rhs(64, 16, ValueDist::SmallInt, 4);
        let s = Sputnik::plan(&a);
        assert_eq!(s.compute(&b), a.matmul_reference(&b));
    }

    #[test]
    fn row_swizzle_orders_by_length() {
        let mut a = Matrix::zeros(4, 16);
        for c in 0..10 {
            a.set(2, c, F16::ONE);
        }
        a.set(0, 0, F16::ONE);
        let s = Sputnik::plan(&a);
        assert_eq!(s.swizzled_rows[0], 2);
    }

    #[test]
    fn sparser_is_faster() {
        let spec = GpuSpec::a100();
        let mk = |s| {
            VectorSparseSpec {
                rows: 512,
                cols: 512,
                sparsity: s,
                v: 4,
                dist: ValueDist::Uniform,
                seed: 6,
            }
            .generate()
        };
        let t80 = Sputnik::plan(&mk(0.8)).simulate(256, &spec);
        let t98 = Sputnik::plan(&mk(0.98)).simulate(256, &spec);
        assert!(t98.duration_cycles < t80.duration_cycles);
    }

    #[test]
    fn stored_bytes_counts_csr() {
        let a = Matrix::zeros(4, 8);
        let csr = Csr::from_matrix(&a);
        assert_eq!(csr.stored_bytes(), 5 * 4);
    }
}
