//! VENOM-style V:N:M SpMM (Castro et al., SC'23) — paper §4.5/Table 3.
//!
//! VENOM prunes weights into the V:N:M format: vertical vectors of
//! length V; within every group of M columns only N carry nonzero
//! vectors, and the kept columns map straight onto the SpTC's 2:4
//! pattern. Its Spatha kernel therefore skips the pruned columns (like
//! Jigsaw's zero-column skipping) but keeps a per-M-group index
//! decode in the inner loop — cheaper for large V (fewer groups per
//! row strip), which is why the paper's Table 3 gap narrows from
//! V = 32 to V = 128. Compared to Jigsaw it lacks the interleaved
//! metadata path and the deepened pipeline.

use dlmc::Matrix;
use gpu_sim::{
    simulate_kernel, BlockTrace, GpuSpec, KernelLaunch, KernelStats, MmaOp, TokenAlloc, WarpInstr,
};

use crate::common::SpmmKernel;

/// Planned VENOM SpMM.
pub struct Venom {
    a: Matrix,
    /// Vector length V (32, 64 or 128 in the paper's evaluation).
    pub v: usize,
    /// N of the N:M column pattern (2 for SpTC mapping).
    pub n_blk: usize,
    /// M of the N:M column pattern.
    pub m_blk: usize,
}

/// Columns of C per block.
const BLOCK_N: usize = 64;
/// Rows per mma.
const MMA_M: usize = 16;

impl Venom {
    /// Plans for a matrix pruned with the (v, n_blk, m_blk) pattern
    /// (see [`dlmc::venom_pruned`]).
    pub fn plan(a: &Matrix, v: usize, n_blk: usize, m_blk: usize) -> Venom {
        Venom {
            a: a.clone(),
            v,
            n_blk,
            m_blk,
        }
    }

    fn build_launch(&self, n: usize, _spec: &GpuSpec) -> KernelLaunch {
        let (m, k) = (self.a.rows, self.a.cols);
        let n_blocks = n.div_ceil(BLOCK_N).max(1);
        let row_strips = m.div_ceil(MMA_M);
        // Kept columns per strip: n_blk per m_blk group; the inner
        // scalar 2:4 level compresses them onto the SpTC, so one
        // mma.sp advances 32 kept columns of A.
        let kept_cols = k / self.m_blk * self.n_blk;
        let k_steps = kept_cols.div_ceil(32).max(1);
        // Index decode work per step: one group header per M-group
        // touched; a step spans 32/n_blk groups; smaller V also means
        // the vertical vector boundary is crossed more often per
        // BLOCK_TILE of rows (128/V extra decodes).
        let groups_per_step = (32 / self.n_blk).max(1);
        let decode_cycles = (groups_per_step as u32 / 4).max(1) + (256 / self.v as u32);

        let mut trace = Vec::new();
        let mut t = TokenAlloc::new();
        let stage = |trace: &mut Vec<WarpInstr>| {
            trace.push(WarpInstr::CpAsync {
                bytes: (MMA_M * 16 * 2) as u32,
                group: 0,
                consumes: vec![],
            });
            trace.push(WarpInstr::CpAsync {
                bytes: (32 * (BLOCK_N + 8) * 2 / 4) as u32,
                group: 0,
                consumes: vec![],
            });
            trace.push(WarpInstr::CommitGroup { group: 0 });
        };
        stage(&mut trace);
        let mut acc: Vec<Option<u32>> = vec![None; 4];
        for step in 0..k_steps {
            if step + 1 < k_steps {
                // Shallow pipeline: the column-index decode gates the
                // next B gather (VENOM has no col_idx prefetch stage).
                let idx = t.fresh();
                trace.push(WarpInstr::LdGlobal {
                    bytes: (groups_per_step * 4) as u32,
                    transactions: 2,
                    produces: Some(idx),
                    l2_hit: true,
                    consumes: vec![],
                });
                trace.push(WarpInstr::CudaOp {
                    cycles: decode_cycles,
                    consumes: vec![idx],
                    produces: None,
                });
                stage(&mut trace);
            }
            trace.push(WarpInstr::WaitGroup {
                pending_allowed: u8::from(step + 1 < k_steps),
            });
            trace.push(WarpInstr::Barrier);
            let a_tok = t.fresh();
            trace.push(WarpInstr::Ldmatrix {
                phases: 4,
                total_ways: 4,
                produces: Some(a_tok),
                consumes: vec![],
            });
            // Branchy metadata load (no interleave).
            let m_tok = t.fresh();
            trace.push(WarpInstr::LdShared {
                conflict_ways: 1,
                produces: Some(m_tok),
                consumes: vec![],
            });
            trace.push(WarpInstr::CudaOp {
                cycles: 2,
                consumes: vec![m_tok],
                produces: None,
            });
            for slot in acc.iter_mut() {
                let b_tok = t.fresh();
                trace.push(WarpInstr::Ldmatrix {
                    phases: 4,
                    total_ways: 4,
                    produces: Some(b_tok),
                    consumes: vec![],
                });
                let d = t.fresh();
                let mut consumes = vec![a_tok, b_tok, m_tok];
                if let Some(prev) = slot {
                    consumes.push(*prev);
                }
                trace.push(WarpInstr::Mma {
                    op: MmaOp::SparseM16N8K32,
                    consumes,
                    produces: Some(d),
                });
                *slot = Some(d);
            }
        }
        trace.push(WarpInstr::StGlobal {
            bytes: (MMA_M * 32 * 2) as u32,
            consumes: acc.into_iter().flatten().collect(),
        });

        let block = BlockTrace {
            warps: vec![trace; 4],
            smem_bytes: 26 * 1024,
            gmem: Vec::new(),
        };
        let stored = self.a.nnz() * 2 + (m / self.v).max(1) * (k / self.m_blk) * 4;
        KernelLaunch::replicated(
            block,
            row_strips * n_blocks,
            (stored + k * n * 2 + m * n * 2) as u64,
        )
    }
}

impl SpmmKernel for Venom {
    fn name(&self) -> &'static str {
        "VENOM"
    }

    fn compute(&self, b: &Matrix) -> Vec<f32> {
        self.a.matmul_reference(b)
    }

    fn simulate(&self, n: usize, spec: &GpuSpec) -> KernelStats {
        simulate_kernel(&self.build_launch(n, spec), spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlmc::{dense_rhs, venom_pruned, ValueDist};

    #[test]
    fn compute_matches_reference() {
        let a = venom_pruned(64, 64, 32, 2, 8, ValueDist::SmallInt, 40);
        let b = dense_rhs(64, 16, ValueDist::SmallInt, 41);
        let v = Venom::plan(&a, 32, 2, 8);
        assert_eq!(v.compute(&b), a.matmul_reference(&b));
    }

    #[test]
    fn larger_v_is_faster() {
        let spec = GpuSpec::a100();
        let a32 = venom_pruned(512, 512, 32, 2, 16, ValueDist::Ones, 42);
        let a128 = venom_pruned(512, 512, 128, 2, 16, ValueDist::Ones, 43);
        let t32 = Venom::plan(&a32, 32, 2, 16).simulate(256, &spec);
        let t128 = Venom::plan(&a128, 128, 2, 16).simulate(256, &spec);
        assert!(t128.duration_cycles <= t32.duration_cycles);
    }

    #[test]
    fn sparser_pattern_is_faster() {
        // Higher m_blk (fewer kept columns) -> fewer k-steps.
        let spec = GpuSpec::a100();
        let a10 = venom_pruned(512, 640, 64, 2, 10, ValueDist::Ones, 44);
        let a40 = venom_pruned(512, 640, 64, 2, 40, ValueDist::Ones, 45);
        let t10 = Venom::plan(&a10, 64, 2, 10).simulate(256, &spec);
        let t40 = Venom::plan(&a40, 64, 2, 40).simulate(256, &spec);
        assert!(t40.duration_cycles < t10.duration_cycles);
    }
}
