//! Criterion benchmarks of the compiled execution path against the
//! `execute_fast` oracle: compile cost, pooled vs fresh execution, and
//! the fast/compiled throughput pair the `exec_bench` binary gates on
//! (at a smaller shape suitable for repeated sampling).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dlmc::{dense_rhs, ValueDist, VectorSparseSpec};
use jigsaw_core::{execute_fast, CompiledKernel, JigsawConfig, JigsawSpmm, WorkspacePool};

fn planned(m: usize, k: usize) -> JigsawSpmm {
    let a = VectorSparseSpec {
        rows: m,
        cols: k,
        sparsity: 0.9,
        v: 4,
        dist: ValueDist::Uniform,
        seed: 42,
    }
    .generate();
    JigsawSpmm::plan(&a, JigsawConfig::v4(32)).expect("valid tiling")
}

fn bench_compile(c: &mut Criterion) {
    let spmm = planned(1024, 1024);
    let mut group = c.benchmark_group("compile");
    group.sample_size(10);
    group.bench_function("1024sq_s90_v4", |b| {
        b.iter(|| black_box(CompiledKernel::compile(&spmm.format)))
    });
    group.finish();
}

fn bench_execute(c: &mut Criterion) {
    let spmm = planned(1024, 1024);
    let kernel = spmm.compiled().clone();
    let pool = WorkspacePool::new();
    let mut group = c.benchmark_group("exec_compiled");
    group.sample_size(20);
    for &n in &[64usize, 256] {
        let b_mat = dense_rhs(1024, n, ValueDist::Uniform, 7);
        group.bench_with_input(BenchmarkId::new("fast", n), &b_mat, |b, bm| {
            b.iter(|| black_box(execute_fast(&spmm.format, bm)))
        });
        group.bench_with_input(BenchmarkId::new("compiled", n), &b_mat, |b, bm| {
            b.iter(|| black_box(kernel.execute(bm)))
        });
        group.bench_with_input(BenchmarkId::new("compiled_pooled", n), &b_mat, |b, bm| {
            b.iter(|| black_box(kernel.execute_pooled(bm, &pool)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compile, bench_execute);
criterion_main!(benches);
