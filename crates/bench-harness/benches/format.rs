//! Benchmarks of the reorder-aware storage format: compression build
//! and the metadata interleave transform.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dlmc::{ValueDist, VectorSparseSpec};
use jigsaw_core::{JigsawConfig, JigsawFormat, ReorderPlan};
use sptc::metadata::{deinterleave_two_ops, interleave_two_ops};

fn bench_format_build(c: &mut Criterion) {
    let a = VectorSparseSpec {
        rows: 512,
        cols: 512,
        sparsity: 0.9,
        v: 4,
        dist: ValueDist::Uniform,
        seed: 8,
    }
    .generate();
    let plan = ReorderPlan::build(&a, &JigsawConfig::v4(32));
    let mut group = c.benchmark_group("format_build_512x512");
    group.sample_size(20);
    for interleaved in [false, true] {
        group.bench_function(format!("interleaved_{interleaved}"), |b| {
            b.iter(|| black_box(JigsawFormat::build(&a, &plan, interleaved)))
        });
    }
    group.finish();
}

fn bench_interleave(c: &mut Criterion) {
    let op0: [u32; 16] = std::array::from_fn(|i| i as u32 * 0x01010101);
    let op1: [u32; 16] = std::array::from_fn(|i| !(i as u32));
    c.bench_function("metadata_interleave_roundtrip", |b| {
        b.iter(|| {
            let block = interleave_two_ops(&op0, &op1);
            black_box(deinterleave_two_ops(&block))
        })
    });
}

criterion_group!(benches, bench_format_build, bench_interleave);
criterion_main!(benches);
