//! Overhead of the observability layer on the hot path.
//!
//! With tracing disabled, every instrumented call site reduces to one
//! relaxed atomic load (`jigsaw_obs::enabled()`), so
//! `JigsawSpmm::run` must show no measurable regression versus the
//! pre-instrumentation baseline. The disabled/enabled pair below makes
//! the cost of each mode directly comparable in one criterion report.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dlmc::{dense_rhs, ValueDist, VectorSparseSpec};
use gpu_sim::GpuSpec;
use jigsaw_core::{JigsawConfig, JigsawSpmm};

fn workload() -> (JigsawSpmm, dlmc::Matrix, GpuSpec) {
    let a = VectorSparseSpec {
        rows: 512,
        cols: 512,
        sparsity: 0.95,
        v: 8,
        dist: ValueDist::Uniform,
        seed: 9,
    }
    .generate();
    let b = dense_rhs(512, 64, ValueDist::Uniform, 10);
    let spmm = JigsawSpmm::plan(&a, JigsawConfig::v4(32)).expect("valid tiling");
    (spmm, b, GpuSpec::a100())
}

fn bench_run_tracing_disabled(c: &mut Criterion) {
    jigsaw_obs::set_enabled(false);
    let (spmm, b, spec) = workload();
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(20);
    group.bench_function("run_tracing_disabled", |bench| {
        bench.iter(|| black_box(spmm.run(&b, &spec)))
    });
    group.finish();
}

fn bench_run_tracing_enabled(c: &mut Criterion) {
    jigsaw_obs::set_enabled(true);
    let (spmm, b, spec) = workload();
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(20);
    group.bench_function("run_tracing_enabled", |bench| {
        bench.iter(|| black_box(spmm.run(&b, &spec)))
    });
    group.finish();
    jigsaw_obs::set_enabled(false);
}

criterion_group!(
    benches,
    bench_run_tracing_disabled,
    bench_run_tracing_enabled
);
criterion_main!(benches);
