//! Host-side benchmarks of the "one-time light preprocessing" the paper
//! amortizes over inference: Algorithm 1 tile reorder, strip reorder,
//! and whole-matrix planning — plus the DESIGN.md ablation of the
//! bank-conflict-aware search preference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dlmc::{ValueDist, VectorSparseSpec};
use jigsaw_core::reorder::tile::{
    reorder_tile, reorder_tile_bidirectional, ColumnMasks, DEFAULT_WORK_LIMIT,
};
use jigsaw_core::reorder::{reorder_strip, ReorderPlan};
use jigsaw_core::JigsawConfig;
use rand::prelude::*;

fn random_masks(density_bits: u32, seed: u64) -> ColumnMasks {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut masks = [0u16; 16];
    for m in masks.iter_mut() {
        *m = (0..density_bits)
            .map(|_| 1u16 << rng.gen_range(0..16))
            .fold(0, |a, b| a | b);
    }
    masks
}

fn bench_tile_reorder(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1_tile_reorder");
    for &bits in &[1u32, 3, 6] {
        let masks = random_masks(bits, 42);
        group.bench_with_input(BenchmarkId::new("bank_aware", bits), &masks, |b, masks| {
            b.iter(|| black_box(reorder_tile(masks, true, DEFAULT_WORK_LIMIT)))
        });
        group.bench_with_input(BenchmarkId::new("first_fit", bits), &masks, |b, masks| {
            b.iter(|| black_box(reorder_tile(masks, false, DEFAULT_WORK_LIMIT)))
        });
        // DESIGN.md §6 ablation: the paper's literal bidirectional
        // search vs the memoized exact-cover DFS.
        group.bench_with_input(
            BenchmarkId::new("paper_bidirectional", bits),
            &masks,
            |b, masks| b.iter(|| black_box(reorder_tile_bidirectional(masks))),
        );
    }
    group.finish();
}

fn bench_strip_reorder(c: &mut Criterion) {
    let mut group = c.benchmark_group("strip_reorder");
    for &(sparsity, v) in &[(0.8, 2usize), (0.95, 8)] {
        let a = VectorSparseSpec {
            rows: 64,
            cols: 1024,
            sparsity,
            v,
            dist: ValueDist::Uniform,
            seed: 7,
        }
        .generate();
        group.bench_function(format!("s{:.0}_v{v}", sparsity * 100.0), |b| {
            b.iter(|| black_box(reorder_strip(&a, 0, 64, true)))
        });
    }
    group.finish();
}

fn bench_full_plan(c: &mut Criterion) {
    let a = VectorSparseSpec {
        rows: 512,
        cols: 512,
        sparsity: 0.9,
        v: 4,
        dist: ValueDist::Uniform,
        seed: 9,
    }
    .generate();
    let mut group = c.benchmark_group("full_plan_512x512");
    group.sample_size(20);
    for bt in JigsawConfig::BLOCK_TILE_CANDIDATES {
        group.bench_function(format!("bt{bt}"), |b| {
            b.iter(|| black_box(ReorderPlan::build(&a, &JigsawConfig::v4(bt))))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_tile_reorder,
    bench_strip_reorder,
    bench_full_plan
);
criterion_main!(benches);
