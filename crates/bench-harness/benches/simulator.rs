//! Benchmarks of the `gpu-sim` timing engine itself: per-block
//! simulation throughput and whole-kernel simulation with block
//! deduplication.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use gpu_sim::{
    simulate_block, simulate_kernel, BlockTrace, EngineConfig, GpuSpec, KernelLaunch, MmaOp,
    TokenAlloc, WarpInstr,
};

/// A representative tensor-pipeline block: 8 warps x 64 steps of
/// (ldmatrix + mma + async staging).
fn pipeline_block() -> BlockTrace {
    let mut warps = Vec::new();
    for _ in 0..8 {
        let mut t = TokenAlloc::new();
        let mut trace = Vec::new();
        for step in 0..64 {
            trace.push(WarpInstr::CpAsync {
                bytes: 2048,
                group: 0,
                consumes: vec![],
            });
            trace.push(WarpInstr::CommitGroup { group: 0 });
            trace.push(WarpInstr::WaitGroup {
                pending_allowed: u8::from(step + 1 < 64),
            });
            trace.push(WarpInstr::Barrier);
            let a = t.fresh();
            trace.push(WarpInstr::Ldmatrix {
                phases: 4,
                total_ways: 4,
                produces: Some(a),
                consumes: vec![],
            });
            for _ in 0..8 {
                trace.push(WarpInstr::Mma {
                    op: MmaOp::SparseM16N8K32,
                    consumes: vec![a],
                    produces: None,
                });
            }
        }
        warps.push(trace);
    }
    BlockTrace {
        warps,
        smem_bytes: 28 * 1024,
        gmem: Vec::new(),
    }
}

fn bench_block(c: &mut Criterion) {
    let block = pipeline_block();
    let cfg = EngineConfig {
        spec: GpuSpec::a100(),
        resident_blocks: 1,
    };
    let instrs: u64 = block.warps.iter().map(|w| w.len() as u64).sum();
    let mut group = c.benchmark_group("engine");
    group.throughput(Throughput::Elements(instrs));
    group.bench_function("simulate_block_8warps_64steps", |b| {
        b.iter(|| black_box(simulate_block(&block, &cfg)))
    });
    group.finish();
}

fn bench_kernel(c: &mut Criterion) {
    let spec = GpuSpec::a100();
    let launch = KernelLaunch::replicated(pipeline_block(), 512, 8 << 20);
    let mut group = c.benchmark_group("device");
    group.sample_size(30);
    group.bench_function("simulate_kernel_512_identical_blocks", |b| {
        b.iter(|| black_box(simulate_kernel(&launch, &spec)))
    });
    group.finish();
}

criterion_group!(benches, bench_block, bench_kernel);
criterion_main!(benches);
