//! End-to-end benchmarks: plan + simulate + functional execution of
//! the Jigsaw SpMM on realistic workloads, per table/figure driver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dlmc::{dense_rhs, ValueDist, VectorSparseSpec};
use gpu_sim::GpuSpec;
use jigsaw_core::{execute_fast, JigsawConfig, JigsawSpmm};

fn bench_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan");
    group.sample_size(10);
    for &(s, v) in &[(0.9f64, 4usize), (0.98, 8)] {
        let a = VectorSparseSpec {
            rows: 512,
            cols: 1024,
            sparsity: s,
            v,
            dist: ValueDist::Uniform,
            seed: 3,
        }
        .generate();
        group.bench_with_input(
            BenchmarkId::new("512x1024", format!("s{:.0}_v{v}", s * 100.0)),
            &a,
            |b, a| b.iter(|| black_box(JigsawSpmm::plan(a, JigsawConfig::v4(32)))),
        );
    }
    group.finish();
}

fn bench_execute(c: &mut Criterion) {
    let a = VectorSparseSpec {
        rows: 512,
        cols: 512,
        sparsity: 0.95,
        v: 8,
        dist: ValueDist::Uniform,
        seed: 4,
    }
    .generate();
    let b_mat = dense_rhs(512, 128, ValueDist::Uniform, 5);
    let spmm = JigsawSpmm::plan(&a, JigsawConfig::v4(32)).expect("valid tiling");
    let mut group = c.benchmark_group("execute");
    group.sample_size(20);
    group.bench_function("fast_512x512x128", |b| {
        b.iter(|| black_box(execute_fast(&spmm.format, &b_mat)))
    });
    group.finish();
}

fn bench_simulate(c: &mut Criterion) {
    let spec = GpuSpec::a100();
    let a = VectorSparseSpec {
        rows: 1024,
        cols: 1024,
        sparsity: 0.95,
        v: 8,
        dist: ValueDist::Uniform,
        seed: 6,
    }
    .generate();
    let spmm = JigsawSpmm::plan(&a, JigsawConfig::v4(32)).expect("valid tiling");
    let mut group = c.benchmark_group("simulate");
    group.sample_size(20);
    for &n in &[256usize, 1024] {
        group.bench_function(format!("jigsaw_1024sq_n{n}"), |b| {
            b.iter(|| black_box(spmm.simulate(n, &spec)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_plan, bench_execute, bench_simulate);
criterion_main!(benches);
