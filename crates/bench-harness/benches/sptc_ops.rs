//! Benchmarks of the SpTC functional emulation: f16 conversion, 2:4
//! compression, fragment distribution, and `mma.sp` execution.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use rand::prelude::*;
use sptc::compress::compress_tile_2_4;
use sptc::fragment::{F16Fragment, FragKind};
use sptc::mma::{dense_tile_reference, mma_sp_tile};
use sptc::F16;

fn random_2_4_tile(seed: u64) -> Vec<F16> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tile = vec![F16::ZERO; 16 * 32];
    for r in 0..16 {
        for g in 0..8 {
            for _ in 0..2 {
                let p = rng.gen_range(0..4usize);
                tile[r * 32 + g * 4 + p] = F16::from_f32(rng.gen_range(-4..=4) as f32);
            }
        }
    }
    tile
}

fn bench_f16(c: &mut Criterion) {
    let values: Vec<f32> = (0..4096).map(|i| (i as f32) * 0.37 - 700.0).collect();
    let mut group = c.benchmark_group("f16_conversion");
    group.throughput(Throughput::Elements(values.len() as u64));
    group.bench_function("from_f32_4096", |b| {
        b.iter(|| {
            values
                .iter()
                .map(|&v| F16::from_f32(v).to_bits() as u32)
                .sum::<u32>()
        })
    });
    group.finish();
}

fn bench_compress(c: &mut Criterion) {
    let tile = random_2_4_tile(1);
    c.bench_function("compress_tile_16x32", |b| {
        b.iter(|| black_box(compress_tile_2_4(&tile, 32)))
    });
}

fn bench_fragments(c: &mut Criterion) {
    let tile: Vec<F16> = (0..16 * 16).map(|i| F16::from_f32(i as f32)).collect();
    c.bench_function("fragment_load_store_a16x16", |b| {
        b.iter(|| {
            let frag = F16Fragment::load(FragKind::A16x16, &tile);
            black_box(frag.store())
        })
    });
}

fn bench_mma_sp(c: &mut Criterion) {
    let a = random_2_4_tile(2);
    let b_tile: Vec<F16> = (0..32 * 8).map(|i| F16::from_f32((i % 9) as f32)).collect();
    let acc = vec![0.0f32; 128];
    let mut group = c.benchmark_group("mma");
    group.bench_function("mma_sp_tile_16x8x32", |b| {
        b.iter(|| black_box(mma_sp_tile(&a, &b_tile, &acc)))
    });
    group.bench_function("dense_reference_16x8x32", |b| {
        b.iter(|| black_box(dense_tile_reference(&a, &b_tile, &acc, 32)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_f16,
    bench_compress,
    bench_fragments,
    bench_mma_sp
);
criterion_main!(benches);
