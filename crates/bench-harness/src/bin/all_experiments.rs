//! Runs every experiment and rewrites EXPERIMENTS.md with the
//! paper-vs-measured tables.

use bench_harness::experiments::{fig1, fig10, fig11, fig12, overhead, table2, table3};
use bench_harness::report::experiments_markdown;
use bench_harness::runner::{sim_spec, write_json};
use bench_harness::suite;

fn main() {
    let spec = sim_spec();
    let suite_label = if suite::full_suite() { "full" } else { "quick" };

    eprintln!("[1/7] Figure 1 (native 2:4 support)...");
    let f1 = fig1::run();
    println!("{}\n", f1.to_text());

    eprintln!("[2/7] Table 2 (speedups vs baselines)...");
    let t2 = table2::run(&spec);
    println!("{}\n", t2.to_text());

    eprintln!("[3/7] Figure 10 (speedup vs N)...");
    let f10 = fig10::run(&t2.comparisons);
    println!("{}\n", f10.to_text());

    eprintln!("[4/7] Figure 11 (reorder success)...");
    let f11 = fig11::run();
    println!("{}\n", f11.to_text());

    eprintln!("[5/7] Figure 12 (ablation)...");
    let f12 = fig12::run(&spec);
    println!("{}\n", f12.to_text());

    eprintln!("[6/7] Table 3 (VENOM/cuSparseLt)...");
    let t3 = table3::run(&spec);
    println!("{}\n", t3.to_text());

    eprintln!("[7/7] Overhead (§4.6)...");
    let oh = overhead::run();
    println!("{}\n", oh.to_text());

    for (name, json) in [
        ("fig1", serde_json::to_value(&f1).unwrap()),
        ("table2", serde_json::to_value(&t2).unwrap()),
        ("fig10", serde_json::to_value(&f10).unwrap()),
        ("fig11", serde_json::to_value(&f11).unwrap()),
        ("fig12", serde_json::to_value(&f12).unwrap()),
        ("table3", serde_json::to_value(&t3).unwrap()),
        ("overhead", serde_json::to_value(&oh).unwrap()),
    ] {
        write_json(name, &json);
    }

    let md = experiments_markdown(&f1, &t2, &f10, &f11, &f12, &t3, &oh, suite_label);
    std::fs::write("EXPERIMENTS.md", &md).expect("write EXPERIMENTS.md");
    eprintln!("EXPERIMENTS.md written ({} bytes)", md.len());
}
