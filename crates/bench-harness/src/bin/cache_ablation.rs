//! Regenerates the cache-hierarchy ablation (DESIGN.md §18).
//!
//! * default: full sweep, writes `results/BENCH_cache_ablation.json`.
//! * `--smoke`: runs the tiny sweep twice in-process, asserts the two
//!   runs serialize bit-identically, and schema-checks the document
//!   without touching `results/` — the CI determinism gate.
use bench_harness::experiments::cache_ablation;
use bench_harness::obs_export::{bench_doc, check_bench_text, write_bench_json};
use bench_harness::runner::write_json;

fn main() {
    jigsaw_obs::set_enabled(true);
    if std::env::args().any(|a| a == "--smoke") {
        let first = cache_ablation::run_smoke();
        let second = cache_ablation::run_smoke();
        let (a, b) = (
            serde_json::to_string(&first).expect("serialize"),
            serde_json::to_string(&second).expect("serialize"),
        );
        assert_eq!(a, b, "smoke sweep must be bit-identical across runs");
        let doc = bench_doc("cache_ablation", &first).to_string();
        match check_bench_text(&doc) {
            Ok(exp) => println!("smoke OK: deterministic, schema {exp} valid"),
            Err(e) => {
                eprintln!("smoke FAILED: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let result = cache_ablation::run();
    println!("{}", result.to_text());
    write_json("cache_ablation", &result);
    match write_bench_json("cache_ablation", &result) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("BENCH export failed: {e}"),
    }
}
