//! CI gate for the structured benchmark exports.
//!
//! Schema mode (default): finds every `results/BENCH_*.json` (or the
//! files named on the command line), parses each with the zero-dep
//! `jigsaw_obs` parser, and verifies the `jigsaw-bench/v1` schema —
//! stable top-level keys plus the counters/gauges/traces observability
//! section. Exits non-zero if any file fails or none are found.
//!
//! Perf mode (`--perf <baseline> <candidate> [--tolerance F]`):
//! compares two bench documents of the same experiment. For exec docs
//! it gates machine-neutral speedup ratios (compiled kernel over
//! `execute_fast`) row-for-row per `(shape, variant, selection,
//! fusion)` and fails on regression — candidate speedup below
//! `(1 - tolerance) ×` its baseline row on any shape, or an unfused
//! `avx2_fma` row below the baseline's committed absolute floor.
//! Baseline rows for ISAs this host lacks are skipped with a note.
//! For serving docs it gates the fused-assembly rows per batch size,
//! with an absolute 1.0× fused-over-two-touch floor at batch ≥ 4.
use std::path::PathBuf;
use std::process::ExitCode;

use bench_harness::obs_export::{check_bench_text, check_perf_text};

fn perf_mode(args: &[String]) -> ExitCode {
    let mut files = Vec::new();
    let mut tolerance = 0.25f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--tolerance" {
            match it.next().and_then(|t| t.parse().ok()) {
                Some(t) => tolerance = t,
                None => {
                    eprintln!("check_bench: --tolerance requires a number in [0, 1)");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            files.push(arg.clone());
        }
    }
    let [baseline, candidate] = files.as_slice() else {
        eprintln!("usage: check_bench --perf <baseline.json> <candidate.json> [--tolerance F]");
        return ExitCode::FAILURE;
    };
    let read = |path: &str| std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"));
    let result = read(baseline)
        .and_then(|b| read(candidate).map(|c| (b, c)))
        .and_then(|(b, c)| check_perf_text(&b, &c, tolerance));
    match result {
        Ok(report) => {
            println!(
                "ok   perf gate ({:.0}% tolerance): {report}",
                tolerance * 100.0
            );
            ExitCode::SUCCESS
        }
        Err(problem) => {
            eprintln!("FAIL perf gate: {problem}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--perf") {
        return perf_mode(&args[1..]);
    }
    let mut files: Vec<PathBuf> = args.into_iter().map(PathBuf::from).collect();
    if files.is_empty() {
        if let Ok(entries) = std::fs::read_dir("results") {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if name.starts_with("BENCH_") && name.ends_with(".json") {
                    files.push(entry.path());
                }
            }
        }
        files.sort();
    }
    if files.is_empty() {
        eprintln!("check_bench: no results/BENCH_*.json files to validate");
        eprintln!("run an experiment first, e.g. `cargo run -p bench-harness --bin serving`");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in &files {
        match std::fs::read_to_string(path).map_err(|e| e.to_string()) {
            Ok(text) => match check_bench_text(&text) {
                Ok(experiment) => {
                    println!("ok   {} (experiment {experiment:?})", path.display())
                }
                Err(problem) => {
                    eprintln!("FAIL {}: {problem}", path.display());
                    failed = true;
                }
            },
            Err(e) => {
                eprintln!("FAIL {}: {e}", path.display());
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
