//! CI gate for the structured benchmark exports: finds every
//! `results/BENCH_*.json` (or the files named on the command line),
//! parses each with the zero-dep `jigsaw_obs` parser, and verifies the
//! `jigsaw-bench/v1` schema — stable top-level keys plus the
//! counters/gauges/traces observability section. Exits non-zero if any
//! file fails or none are found.
use std::path::PathBuf;
use std::process::ExitCode;

use bench_harness::obs_export::check_bench_text;

fn main() -> ExitCode {
    let mut files: Vec<PathBuf> = std::env::args().skip(1).map(PathBuf::from).collect();
    if files.is_empty() {
        if let Ok(entries) = std::fs::read_dir("results") {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if name.starts_with("BENCH_") && name.ends_with(".json") {
                    files.push(entry.path());
                }
            }
        }
        files.sort();
    }
    if files.is_empty() {
        eprintln!("check_bench: no results/BENCH_*.json files to validate");
        eprintln!("run an experiment first, e.g. `cargo run -p bench-harness --bin serving`");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in &files {
        match std::fs::read_to_string(path).map_err(|e| e.to_string()) {
            Ok(text) => match check_bench_text(&text) {
                Ok(experiment) => {
                    println!("ok   {} (experiment {experiment:?})", path.display())
                }
                Err(problem) => {
                    eprintln!("FAIL {}: {problem}", path.display());
                    failed = true;
                }
            },
            Err(e) => {
                eprintln!("FAIL {}: {e}", path.display());
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
