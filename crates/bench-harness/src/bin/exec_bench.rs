//! Functional-execution throughput: `execute_fast` (the differential
//! oracle) vs the [`CompiledKernel`] microkernel variants on the
//! fig10-style shapes (M=K=4096, sparsity 0.9, v=4, N ∈ {16, 64, 256}).
//!
//! For every N, one `selection=static` row is emitted per variant the
//! host can run (`jigsaw_core::compiled::dispatch`), so the export
//! shows the ISA ladder side by side: `scalar` is the portable floor,
//! `avx2_fma` is the row CI floors, `narrow_n` is the FlashSparse-style
//! register-blocked variant for skinny N, `avx512f`/`neon` ride along
//! where the host supports them, and `sorted_stream` prices the opt-in
//! column-sorted transform. One `selection=tuned` row per N then runs
//! the measured-feedback cost table (`KernelPolicy::Tuned`): its
//! calibration pass seeds the table deterministically and the row's
//! `variant` names the kernel the table actually picked. The bench
//! fails if tuned selection lands below 75% of the best static variant
//! at any N — a cost table worse than a static ladder is a regression.
//!
//! Each static variant row also gets a `fusion=on` twin that times
//! `execute_prepaneled_into_opts` over a prebuilt panel image — the
//! serve fused hot path, where batch assembly already emitted B
//! panel-major and the execute skips phase 1. The `off`/`on` gap is
//! the panelization share fusion moves out of the kernel's critical
//! path.
//!
//! Emits `results/BENCH_exec.json`, the committed perf baseline that
//! `check_bench --perf` gates CI against. The gated quantity is the
//! *speedup ratio* (variant over fast, both measured in the same
//! process on the same machine), which is stable across host speeds in
//! a way absolute wall times are not; every row gates against its own
//! `(shape, variant, selection)` baseline row, with the absolute
//! `required_speedup` floor applied to the `avx2_fma` rows only, so
//! baselines regenerated on exotic hosts do not move the bar.

use std::time::Instant;

use bench_harness::obs_export::write_bench_json;
use dlmc::{dense_rhs, Matrix, ValueDist, VectorSparseSpec};
use jigsaw_core::compiled::dispatch;
use jigsaw_core::{
    execute_fast, max_relative_error, panelize_into, ExecOptions, JigsawConfig, JigsawSpmm,
    KernelPolicy, PanelizedB,
};
use serde::Serialize;

/// One (shape, N, variant, selection) measurement.
#[derive(Clone, Debug, Serialize)]
pub struct ShapeResult {
    pub m: usize,
    pub k: usize,
    pub n: usize,
    pub sparsity: f64,
    pub v: usize,
    pub nnz: usize,
    /// Microkernel variant name (`dispatch::KernelKind::name`). For
    /// tuned rows this is the variant the cost table selected.
    pub variant: String,
    /// How the variant was chosen: `static` (forced) or `tuned`
    /// (measured-feedback cost table).
    pub selection: String,
    /// Assembly mode: `off` rows time the full two-phase execute
    /// (panelize + microkernel); `on` rows time
    /// `execute_prepaneled_into_opts` over a prebuilt [`PanelizedB`] —
    /// the serve fused hot path, where panelization already happened
    /// at batch assembly.
    pub fusion: String,
    /// Best-of-k wall time of `execute_fast`, milliseconds.
    pub fast_ms: f64,
    /// Best-of-k wall time of the compiled variant, milliseconds.
    pub compiled_ms: f64,
    /// Machine-neutral ratio: `fast_ms / compiled_ms`.
    pub speedup: f64,
}

/// Tuned-vs-static summary for one N.
#[derive(Clone, Debug, Serialize)]
pub struct TunedGate {
    pub n: usize,
    /// Variant the cost table picked for this shape bucket.
    pub tuned_variant: String,
    pub tuned_speedup: f64,
    /// Best static-variant speedup at the same N.
    pub best_static_speedup: f64,
    /// `tuned_speedup / best_static_speedup` — floored at 0.75.
    pub ratio: f64,
}

/// The exec-bench document body (`data` in the bench export).
#[derive(Clone, Debug, Serialize)]
pub struct ExecBench {
    /// Per-(shape, N, variant, selection) measurements.
    pub shapes: Vec<ShapeResult>,
    /// Tuned-selection acceptance per N: tuned must reach at least
    /// 75% of the best static variant.
    pub tuned_gates: Vec<TunedGate>,
    /// Smallest speedup across the floored (`avx2_fma` static) rows —
    /// the number CI floors. Falls back to the overall minimum on
    /// hosts without AVX2.
    pub min_speedup: f64,
    /// One-time compile cost of the kernel, milliseconds.
    pub compile_ms: f64,
    /// Acceptance floor the suite commits to (gated variant ≥ 2× fast).
    pub required_speedup: f64,
}

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    jigsaw_obs::set_enabled(true);
    let (m, k, sparsity, v) = (4096usize, 4096usize, 0.9f64, 4usize);
    println!("generating A ({m}x{k}, sparsity {sparsity}, v={v})...");
    let a = VectorSparseSpec {
        rows: m,
        cols: k,
        sparsity,
        v,
        dist: ValueDist::Uniform,
        seed: 42,
    }
    .generate();

    println!("planning...");
    let t = Instant::now();
    let spmm = JigsawSpmm::plan(&a, JigsawConfig::v4(32)).expect("4096-sq tiles");
    println!("planned in {:.1} ms", t.elapsed().as_secs_f64() * 1e3);

    let t = Instant::now();
    let kernel = spmm.compiled().clone();
    let compile_ms = t.elapsed().as_secs_f64() * 1e3;
    println!(
        "compiled in {compile_ms:.1} ms ({} nnz, {} stream bytes)",
        kernel.nnz(),
        kernel.stream_bytes()
    );

    let variants = dispatch::available_kernels();
    println!(
        "variants on this host: {}",
        variants
            .iter()
            .map(|kind| kind.name())
            .collect::<Vec<_>>()
            .join(", ")
    );

    let mut shapes = Vec::new();
    let mut tuned_gates = Vec::new();
    for &n in &[16usize, 64, 256] {
        let b: Matrix = dense_rhs(k, n, ValueDist::Uniform, 7);
        let oracle = execute_fast(&spmm.format, &b);
        let fast_ms = best_of(3, || execute_fast(&spmm.format, &b));
        let mut best_static = f64::NEG_INFINITY;
        for &kind in &variants {
            let opts = ExecOptions::from(KernelPolicy::Forced(kind));
            // Parity first: the bench never times a wrong kernel. The
            // scalar variant is bit-exact; fused and reordered
            // variants are held to the kernel_parity tolerances.
            let c = kernel.execute_opts(&b, &opts);
            if kind.bit_exact() {
                assert_eq!(c, oracle, "{} parity", kind.name());
            } else {
                let err = max_relative_error(&c, &oracle);
                assert!(err < 1e-4, "{} parity, err {err}", kind.name());
            }
            let compiled_ms = best_of(5, || kernel.execute_opts(&b, &opts));
            let speedup = fast_ms / compiled_ms;
            best_static = best_static.max(speedup);
            println!(
                "N={n:4}  {:<13} fast {fast_ms:9.2} ms   compiled {compiled_ms:8.2} ms   speedup {speedup:.2}x",
                kind.name()
            );
            shapes.push(ShapeResult {
                m,
                k,
                n,
                sparsity,
                v,
                nnz: a.nnz(),
                variant: kind.name().to_string(),
                selection: "static".to_string(),
                fusion: "off".to_string(),
                fast_ms,
                compiled_ms,
                speedup,
            });
        }

        // Fused rows: the same variants over a *prebuilt* panel image,
        // through `execute_prepaneled_into_opts`. This is the serve
        // fused hot path — batch assembly already emitted B
        // panel-major, so the kernel skips phase 1. The gap between an
        // `on` row and its `off` twin is the panelization share the
        // fusion removes from the execute.
        let mut panels = vec![0.0f32; k * n];
        panelize_into(&b, &mut panels).expect("panel scratch sized k*n");
        let prepaneled = PanelizedB::new(k, n, &panels).expect("prepaneled layout");
        let mut c_buf = vec![0.0f32; m * n];
        for &kind in &variants {
            let opts = ExecOptions::from(KernelPolicy::Forced(kind));
            // The stream kernels accumulate into C, so the reused
            // buffer is re-zeroed before the parity run (the timing
            // loop keeps accumulating — same work, values ignored).
            c_buf.fill(0.0);
            kernel
                .execute_prepaneled_into_opts(&prepaneled, &mut c_buf, &opts)
                .expect("prepaneled execute");
            if kind.bit_exact() {
                assert_eq!(c_buf, oracle, "{} prepaneled parity", kind.name());
            } else {
                let err = max_relative_error(&c_buf, &oracle);
                assert!(err < 1e-4, "{} prepaneled parity, err {err}", kind.name());
            }
            let compiled_ms = best_of(5, || {
                kernel
                    .execute_prepaneled_into_opts(&prepaneled, &mut c_buf, &opts)
                    .expect("prepaneled execute")
            });
            let speedup = fast_ms / compiled_ms;
            println!(
                "N={n:4}  {:<13} fast {fast_ms:9.2} ms   prepaneled {compiled_ms:6.2} ms   speedup {speedup:.2}x (fused)",
                kind.name()
            );
            shapes.push(ShapeResult {
                m,
                k,
                n,
                sparsity,
                v,
                nnz: a.nnz(),
                variant: kind.name().to_string(),
                selection: "static".to_string(),
                fusion: "on".to_string(),
                fast_ms,
                compiled_ms,
                speedup,
            });
        }

        // Tuned selection over the same shape. The first execution
        // seeds the cost table (one-shot deterministic calibration);
        // measurement then times steady-state tuned dispatch, and the
        // row records which variant the table actually picked.
        let opts = ExecOptions::tuned();
        let c = kernel.execute_opts(&b, &opts);
        let err = max_relative_error(&c, &oracle);
        assert!(err < 1e-4, "tuned parity, err {err}");
        let compiled_ms = best_of(5, || kernel.execute_opts(&b, &opts));
        let picked = dispatch::selected_kind_shaped(&opts, Some(kernel.workload(n)));
        let speedup = fast_ms / compiled_ms;
        let ratio = speedup / best_static;
        println!(
            "N={n:4}  tuned→{:<7} fast {fast_ms:9.2} ms   compiled {compiled_ms:8.2} ms   speedup {speedup:.2}x ({:.0}% of best static)",
            picked.name(),
            ratio * 100.0
        );
        shapes.push(ShapeResult {
            m,
            k,
            n,
            sparsity,
            v,
            nnz: a.nnz(),
            variant: picked.name().to_string(),
            selection: "tuned".to_string(),
            fusion: "off".to_string(),
            fast_ms,
            compiled_ms,
            speedup,
        });
        tuned_gates.push(TunedGate {
            n,
            tuned_variant: picked.name().to_string(),
            tuned_speedup: speedup,
            best_static_speedup: best_static,
            ratio,
        });
    }

    // CI floors the static avx2_fma rows only (the one ISA every
    // gating host has); other variants gate relative to their own
    // baseline rows.
    let gated: Vec<f64> = shapes
        .iter()
        .filter(|s| s.variant == "avx2_fma" && s.selection == "static" && s.fusion == "off")
        .map(|s| s.speedup)
        .collect();
    let min_speedup = if gated.is_empty() {
        shapes
            .iter()
            .map(|s| s.speedup)
            .fold(f64::INFINITY, f64::min)
    } else {
        gated.into_iter().fold(f64::INFINITY, f64::min)
    };
    let result = ExecBench {
        shapes,
        tuned_gates,
        min_speedup,
        compile_ms,
        required_speedup: 2.0,
    };
    println!(
        "min gated speedup: {min_speedup:.2}x (required ≥ {:.1}x)",
        2.0
    );
    match write_bench_json("exec", &result) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write bench export: {e}"),
    }
    let mut failed = false;
    if min_speedup < result.required_speedup {
        eprintln!("FAIL: compiled kernel below the required speedup floor");
        failed = true;
    }
    for gate in &result.tuned_gates {
        if gate.ratio < 0.75 {
            eprintln!(
                "FAIL: tuned selection at N={} reached only {:.0}% of the best \
                 static variant ({:.2}x vs {:.2}x)",
                gate.n,
                gate.ratio * 100.0,
                gate.tuned_speedup,
                gate.best_static_speedup
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
