//! Functional-execution throughput: `execute_fast` (the differential
//! oracle) vs [`CompiledKernel`] on the fig10-style shapes
//! (M=K=4096, sparsity 0.9, v=4, N ∈ {64, 256}).
//!
//! Emits `results/BENCH_exec.json`, the committed perf baseline that
//! `check_bench --perf` gates CI against. The gated quantity is the
//! *speedup ratio* (compiled over fast, both measured in the same
//! process on the same machine), which is stable across host speeds in
//! a way absolute wall times are not.

use std::time::Instant;

use bench_harness::obs_export::write_bench_json;
use dlmc::{dense_rhs, Matrix, ValueDist, VectorSparseSpec};
use jigsaw_core::{execute_fast, JigsawConfig, JigsawSpmm};
use serde::Serialize;

/// One (shape, N) measurement.
#[derive(Clone, Debug, Serialize)]
pub struct ShapeResult {
    pub m: usize,
    pub k: usize,
    pub n: usize,
    pub sparsity: f64,
    pub v: usize,
    pub nnz: usize,
    /// Best-of-k wall time of `execute_fast`, milliseconds.
    pub fast_ms: f64,
    /// Best-of-k wall time of `CompiledKernel::execute`, milliseconds.
    pub compiled_ms: f64,
    /// Machine-neutral ratio: `fast_ms / compiled_ms`.
    pub speedup: f64,
}

/// The exec-bench document body (`data` in the bench export).
#[derive(Clone, Debug, Serialize)]
pub struct ExecBench {
    /// Per-(shape, N) measurements.
    pub shapes: Vec<ShapeResult>,
    /// Smallest speedup across all shapes — the number CI floors.
    pub min_speedup: f64,
    /// One-time compile cost of the kernel, milliseconds.
    pub compile_ms: f64,
    /// Acceptance floor the suite commits to (compiled ≥ 2× fast).
    pub required_speedup: f64,
}

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    jigsaw_obs::set_enabled(true);
    let (m, k, sparsity, v) = (4096usize, 4096usize, 0.9f64, 4usize);
    println!("generating A ({m}x{k}, sparsity {sparsity}, v={v})...");
    let a = VectorSparseSpec {
        rows: m,
        cols: k,
        sparsity,
        v,
        dist: ValueDist::Uniform,
        seed: 42,
    }
    .generate();

    println!("planning...");
    let t = Instant::now();
    let spmm = JigsawSpmm::plan(&a, JigsawConfig::v4(32)).expect("4096-sq tiles");
    println!("planned in {:.1} ms", t.elapsed().as_secs_f64() * 1e3);

    let t = Instant::now();
    let kernel = spmm.compiled().clone();
    let compile_ms = t.elapsed().as_secs_f64() * 1e3;
    println!(
        "compiled in {compile_ms:.1} ms ({} nnz, {} stream bytes)",
        kernel.nnz(),
        kernel.stream_bytes()
    );

    let mut shapes = Vec::new();
    for &n in &[64usize, 256] {
        let b: Matrix = dense_rhs(k, n, ValueDist::Uniform, 7);
        // Parity first: the bench never times a wrong kernel.
        assert_eq!(kernel.execute(&b), execute_fast(&spmm.format, &b));
        let fast_ms = best_of(3, || execute_fast(&spmm.format, &b));
        let compiled_ms = best_of(5, || kernel.execute(&b));
        let speedup = fast_ms / compiled_ms;
        println!(
            "N={n:4}  fast {fast_ms:9.2} ms   compiled {compiled_ms:8.2} ms   speedup {speedup:.2}x"
        );
        shapes.push(ShapeResult {
            m,
            k,
            n,
            sparsity,
            v,
            nnz: a.nnz(),
            fast_ms,
            compiled_ms,
            speedup,
        });
    }

    let min_speedup = shapes
        .iter()
        .map(|s| s.speedup)
        .fold(f64::INFINITY, f64::min);
    let result = ExecBench {
        shapes,
        min_speedup,
        compile_ms,
        required_speedup: 2.0,
    };
    println!("min speedup: {min_speedup:.2}x (required ≥ {:.1}x)", 2.0);
    match write_bench_json("exec", &result) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write bench export: {e}"),
    }
    if min_speedup < result.required_speedup {
        eprintln!("FAIL: compiled kernel below the required speedup floor");
        std::process::exit(1);
    }
}
