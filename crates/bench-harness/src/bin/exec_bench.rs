//! Functional-execution throughput: `execute_fast` (the differential
//! oracle) vs the [`CompiledKernel`] microkernel variants on the
//! fig10-style shapes (M=K=4096, sparsity 0.9, v=4, N ∈ {64, 256}).
//!
//! One row is emitted per `(shape, N, variant)` for every variant the
//! host can run (`jigsaw_core::compiled::dispatch`), so the export
//! shows the ISA ladder side by side: `scalar` is the portable floor,
//! `avx2_fma` is the row CI gates on, `avx512f`/`neon` ride along
//! where the host supports them, and `sorted_stream` prices the
//! opt-in column-sorted transform.
//!
//! Emits `results/BENCH_exec.json`, the committed perf baseline that
//! `check_bench --perf` gates CI against. The gated quantity is the
//! *speedup ratio* (variant over fast, both measured in the same
//! process on the same machine), which is stable across host speeds in
//! a way absolute wall times are not; the gate reads only the
//! `avx2_fma` rows, so baselines regenerated on exotic hosts do not
//! move the bar.

use std::time::Instant;

use bench_harness::obs_export::write_bench_json;
use dlmc::{dense_rhs, Matrix, ValueDist, VectorSparseSpec};
use jigsaw_core::compiled::dispatch;
use jigsaw_core::{execute_fast, max_relative_error, ExecOptions, JigsawConfig, JigsawSpmm};
use serde::Serialize;

/// One (shape, N, variant) measurement.
#[derive(Clone, Debug, Serialize)]
pub struct ShapeResult {
    pub m: usize,
    pub k: usize,
    pub n: usize,
    pub sparsity: f64,
    pub v: usize,
    pub nnz: usize,
    /// Microkernel variant name (`dispatch::KernelKind::name`).
    pub variant: String,
    /// Best-of-k wall time of `execute_fast`, milliseconds.
    pub fast_ms: f64,
    /// Best-of-k wall time of the compiled variant, milliseconds.
    pub compiled_ms: f64,
    /// Machine-neutral ratio: `fast_ms / compiled_ms`.
    pub speedup: f64,
}

/// The exec-bench document body (`data` in the bench export).
#[derive(Clone, Debug, Serialize)]
pub struct ExecBench {
    /// Per-(shape, N, variant) measurements.
    pub shapes: Vec<ShapeResult>,
    /// Smallest speedup across the gated (`avx2_fma`) rows — the
    /// number CI floors. Falls back to the overall minimum on hosts
    /// without AVX2.
    pub min_speedup: f64,
    /// One-time compile cost of the kernel, milliseconds.
    pub compile_ms: f64,
    /// Acceptance floor the suite commits to (gated variant ≥ 2× fast).
    pub required_speedup: f64,
}

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    jigsaw_obs::set_enabled(true);
    let (m, k, sparsity, v) = (4096usize, 4096usize, 0.9f64, 4usize);
    println!("generating A ({m}x{k}, sparsity {sparsity}, v={v})...");
    let a = VectorSparseSpec {
        rows: m,
        cols: k,
        sparsity,
        v,
        dist: ValueDist::Uniform,
        seed: 42,
    }
    .generate();

    println!("planning...");
    let t = Instant::now();
    let spmm = JigsawSpmm::plan(&a, JigsawConfig::v4(32)).expect("4096-sq tiles");
    println!("planned in {:.1} ms", t.elapsed().as_secs_f64() * 1e3);

    let t = Instant::now();
    let kernel = spmm.compiled().clone();
    let compile_ms = t.elapsed().as_secs_f64() * 1e3;
    println!(
        "compiled in {compile_ms:.1} ms ({} nnz, {} stream bytes)",
        kernel.nnz(),
        kernel.stream_bytes()
    );

    let variants = dispatch::available_kernels();
    println!(
        "variants on this host: {}",
        variants
            .iter()
            .map(|kind| kind.name())
            .collect::<Vec<_>>()
            .join(", ")
    );

    let mut shapes = Vec::new();
    for &n in &[64usize, 256] {
        let b: Matrix = dense_rhs(k, n, ValueDist::Uniform, 7);
        let oracle = execute_fast(&spmm.format, &b);
        let fast_ms = best_of(3, || execute_fast(&spmm.format, &b));
        for &kind in &variants {
            let opts = ExecOptions::forced(kind);
            // Parity first: the bench never times a wrong kernel. The
            // scalar variant is bit-exact; fused and reordered
            // variants are held to the kernel_parity tolerances.
            let c = kernel.execute_opts(&b, &opts);
            if kind.bit_exact() {
                assert_eq!(c, oracle, "{} parity", kind.name());
            } else {
                let err = max_relative_error(&c, &oracle);
                assert!(err < 1e-4, "{} parity, err {err}", kind.name());
            }
            let compiled_ms = best_of(5, || kernel.execute_opts(&b, &opts));
            let speedup = fast_ms / compiled_ms;
            println!(
                "N={n:4}  {:<13} fast {fast_ms:9.2} ms   compiled {compiled_ms:8.2} ms   speedup {speedup:.2}x",
                kind.name()
            );
            shapes.push(ShapeResult {
                m,
                k,
                n,
                sparsity,
                v,
                nnz: a.nnz(),
                variant: kind.name().to_string(),
                fast_ms,
                compiled_ms,
                speedup,
            });
        }
    }

    // CI floors the avx2_fma rows only (the one ISA every gating host
    // has); other variants are informational.
    let gated: Vec<f64> = shapes
        .iter()
        .filter(|s| s.variant == "avx2_fma")
        .map(|s| s.speedup)
        .collect();
    let min_speedup = if gated.is_empty() {
        shapes
            .iter()
            .map(|s| s.speedup)
            .fold(f64::INFINITY, f64::min)
    } else {
        gated.into_iter().fold(f64::INFINITY, f64::min)
    };
    let result = ExecBench {
        shapes,
        min_speedup,
        compile_ms,
        required_speedup: 2.0,
    };
    println!(
        "min gated speedup: {min_speedup:.2}x (required ≥ {:.1}x)",
        2.0
    );
    match write_bench_json("exec", &result) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write bench export: {e}"),
    }
    if min_speedup < result.required_speedup {
        eprintln!("FAIL: compiled kernel below the required speedup floor");
        std::process::exit(1);
    }
}
