//! Regenerates paper Figure 1.
use bench_harness::experiments::fig1;
use bench_harness::runner::write_json;

fn main() {
    let result = fig1::run();
    println!("{}", result.to_text());
    write_json("fig1", &result);
}
