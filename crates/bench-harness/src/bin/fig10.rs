//! Regenerates paper Figure 10 (speedup vs N series).
use bench_harness::experiments::{fig10, table2};
use bench_harness::obs_export::write_bench_json;
use bench_harness::runner::{sim_spec, write_json};

fn main() {
    // Record plan/simulator counters and traces for the BENCH export.
    jigsaw_obs::set_enabled(true);
    let t2 = table2::run(&sim_spec());
    let result = fig10::run(&t2.comparisons);
    println!("{}", result.to_text());
    write_json("fig10", &result);
    match write_bench_json("fig10", &result) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("BENCH export failed: {e}"),
    }
}
