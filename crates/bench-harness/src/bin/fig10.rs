//! Regenerates paper Figure 10 (speedup vs N series).
use bench_harness::experiments::{fig10, table2};
use bench_harness::runner::write_json;
use gpu_sim::GpuSpec;

fn main() {
    let t2 = table2::run(&GpuSpec::a100());
    let result = fig10::run(&t2.comparisons);
    println!("{}", result.to_text());
    write_json("fig10", &result);
}
