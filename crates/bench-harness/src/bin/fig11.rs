//! Regenerates paper Figure 11 (reorder success rates).
use bench_harness::experiments::fig11;
use bench_harness::runner::write_json;

fn main() {
    let result = fig11::run();
    println!("{}", result.to_text());
    write_json("fig11", &result);
}
