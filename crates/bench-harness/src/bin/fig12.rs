//! Regenerates paper Figure 12 (kernel-version ablation).
use bench_harness::experiments::fig12;
use bench_harness::runner::write_json;
use gpu_sim::GpuSpec;

fn main() {
    let result = fig12::run(&GpuSpec::a100());
    println!("{}", result.to_text());
    write_json("fig12", &result);
}
