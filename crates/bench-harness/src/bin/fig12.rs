//! Regenerates paper Figure 12 (kernel-version ablation).
use bench_harness::experiments::fig12;
use bench_harness::obs_export::write_bench_json;
use bench_harness::runner::{sim_spec, write_json};

fn main() {
    // Record plan/simulator counters and traces for the BENCH export.
    jigsaw_obs::set_enabled(true);
    let result = fig12::run(&sim_spec());
    println!("{}", result.to_text());
    write_json("fig12", &result);
    match write_bench_json("fig12", &result) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("BENCH export failed: {e}"),
    }
}
