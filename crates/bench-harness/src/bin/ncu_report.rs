//! Prints Nsight-style reports for Jigsaw and cuBLAS on one workload —
//! a quick look at what the simulator measures.

use baselines::{CublasGemm, SpmmKernel};
use bench_harness::runner::sim_spec;
use dlmc::{ValueDist, VectorSparseSpec};
use gpu_sim::ncu_style_report;
use jigsaw_core::JigsawSpmm;

fn main() {
    let spec = sim_spec();
    let a = VectorSparseSpec {
        rows: 1024,
        cols: 1024,
        sparsity: 0.95,
        v: 8,
        dist: ValueDist::Ones,
        seed: 1,
    }
    .generate();
    let n = 512;
    let (jig, _) = JigsawSpmm::plan_tuned(&a, n, &spec).expect("candidate set is non-empty");
    println!(
        "{}",
        ncu_style_report(
            "jigsaw_spmm (95% sparse, v=8)",
            &jig.simulate(n, &spec),
            &spec
        )
    );
    println!(
        "{}",
        ncu_style_report(
            "cublas_hgemm (dense reference)",
            &CublasGemm::plan(&a).simulate(n, &spec),
            &spec
        )
    );
}
