//! Regenerates the paper's §4.6 storage-overhead analysis.
use bench_harness::experiments::overhead;
use bench_harness::runner::write_json;

fn main() {
    let result = overhead::run();
    println!("{}", result.to_text());
    write_json("overhead", &result);
}
