//! Model-sensitivity study: perturb the simulator's architectural
//! parameters and check that the paper's qualitative conclusions —
//! Jigsaw beats every sparse baseline, and beats cuBLAS at high
//! sparsity — survive. This is the validation a simulator-based
//! reproduction owes its reader (DESIGN.md §2).

use baselines::{Clasp, CublasGemm, Magicube, SpmmKernel, Sputnik};
use bench_harness::runner::render_table;
use dlmc::{ValueDist, VectorSparseSpec};
use gpu_sim::GpuSpec;
use jigsaw_core::JigsawSpmm;

struct Variant {
    name: &'static str,
    spec: GpuSpec,
}

fn variants() -> Vec<Variant> {
    let base = GpuSpec::a100();
    let mut v = vec![Variant {
        name: "baseline A100",
        spec: base.clone(),
    }];

    let mut s = base.clone();
    s.l2_bytes_per_cycle *= 0.7;
    v.push(Variant {
        name: "L2 bw -30%",
        spec: s,
    });

    let mut s = base.clone();
    s.l2_bytes_per_cycle *= 1.3;
    v.push(Variant {
        name: "L2 bw +30%",
        spec: s,
    });

    let mut s = base.clone();
    s.gmem_latency = (s.gmem_latency as f64 * 1.5) as u64;
    s.l2_latency = (s.l2_latency as f64 * 1.5) as u64;
    v.push(Variant {
        name: "mem latency +50%",
        spec: s,
    });

    let mut s = base.clone();
    s.dram_bytes_per_cycle *= 0.7;
    v.push(Variant {
        name: "DRAM bw -30%",
        spec: s,
    });

    let mut s = base.clone();
    s.smem_latency *= 2;
    v.push(Variant {
        name: "smem latency x2",
        spec: s,
    });

    let mut s = base.clone();
    s.kernel_fixed_overhead *= 3;
    v.push(Variant {
        name: "fixed overhead x3",
        spec: s,
    });

    v
}

fn main() {
    let a = VectorSparseSpec {
        rows: 2048,
        cols: 2048,
        sparsity: 0.95,
        v: 8,
        dist: ValueDist::Ones,
        seed: 1,
    }
    .generate();
    let n = 512;
    println!(
        "sensitivity of the headline comparison (2048x2048 @ 95% v=8, N={n}):\n\
         speedup of Jigsaw over each baseline under perturbed machine models\n"
    );

    let header: Vec<String> = ["machine", "cuBLAS", "CLASP", "Magicube", "Sputnik"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    let mut all_hold = true;
    for variant in variants() {
        let spec = &variant.spec;
        let (jig, _) = JigsawSpmm::plan_tuned(&a, n, spec).expect("candidate set is non-empty");
        let tj = jig.simulate(n, spec).duration_cycles;
        let speedups = [
            CublasGemm::plan(&a).simulate(n, spec).duration_cycles / tj,
            Clasp::plan_best(&a, n, spec)
                .simulate(n, spec)
                .duration_cycles
                / tj,
            Magicube::plan(&a, 8).simulate(n, spec).duration_cycles / tj,
            Sputnik::plan(&a).simulate(n, spec).duration_cycles / tj,
        ];
        // The paper's qualitative claim at 95%/v8: Jigsaw wins (or at
        // worst ties, within model tolerance) everywhere.
        if speedups.iter().any(|&s| s < 0.9) {
            all_hold = false;
        }
        rows.push(
            std::iter::once(variant.name.to_string())
                .chain(speedups.iter().map(|s| format!("{s:.2}x")))
                .collect(),
        );
    }
    println!("{}", render_table(&header, &rows));
    println!(
        "\nconclusion ordering {} under all perturbations",
        if all_hold { "HOLDS" } else { "BREAKS" }
    );
    std::process::exit(i32::from(!all_hold));
}
