//! Serving-layer experiment: batched vs unbatched × warm vs cold on
//! the virtual-clock scheduler (see `jigsaw_serve::sim`), plus the
//! sharded zipf sweep over {1, 2, 4, 8} consistent-hash shards.
use bench_harness::experiments::serving::{self, ShardSweepSpec};
use bench_harness::obs_export::write_bench_json;
use bench_harness::runner::write_json;
use bench_harness::suite;
use gpu_sim::GpuSpec;

fn main() {
    // Record plan/simulator counters and traces for the BENCH export.
    jigsaw_obs::set_enabled(true);
    let full = suite::full_suite();
    let requests = if full { 256 } else { 64 };
    let sweep = if full {
        ShardSweepSpec::default()
    } else {
        ShardSweepSpec {
            requests: 2_000,
            ..ShardSweepSpec::default()
        }
    };
    let result = serving::run(&GpuSpec::a100(), requests, &sweep);
    println!("{}", result.to_text());
    write_json("serving", &result);
    match write_bench_json("serving", &result) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("BENCH export failed: {e}"),
    }
}
