//! Serving-layer experiment: batched vs unbatched × warm vs cold on
//! the virtual-clock scheduler (see `jigsaw_serve::sim`).
use bench_harness::experiments::serving;
use bench_harness::obs_export::write_bench_json;
use bench_harness::runner::write_json;
use bench_harness::suite;
use gpu_sim::GpuSpec;

fn main() {
    // Record plan/simulator counters and traces for the BENCH export.
    jigsaw_obs::set_enabled(true);
    let requests = if suite::full_suite() { 256 } else { 64 };
    let result = serving::run(&GpuSpec::a100(), requests);
    println!("{}", result.to_text());
    write_json("serving", &result);
    match write_bench_json("serving", &result) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("BENCH export failed: {e}"),
    }
}
