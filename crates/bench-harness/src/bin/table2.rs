//! Regenerates paper Table 2.
use bench_harness::experiments::table2;
use bench_harness::obs_export::write_bench_json;
use bench_harness::runner::{sim_spec, write_json};

fn main() {
    // Record plan/simulator counters and traces for the BENCH export.
    jigsaw_obs::set_enabled(true);
    let result = table2::run(&sim_spec());
    println!("{}", result.to_text());
    write_json("table2", &result);
    match write_bench_json("table2", &result) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("BENCH export failed: {e}"),
    }
}
