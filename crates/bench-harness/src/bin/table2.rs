//! Regenerates paper Table 2.
use bench_harness::experiments::table2;
use bench_harness::runner::write_json;
use gpu_sim::GpuSpec;

fn main() {
    let result = table2::run(&GpuSpec::a100());
    println!("{}", result.to_text());
    write_json("table2", &result);
}
