//! Regenerates paper Table 3 (VENOM / cuSparseLt comparison).
use bench_harness::experiments::table3;
use bench_harness::runner::write_json;
use gpu_sim::GpuSpec;

fn main() {
    let result = table3::run(&GpuSpec::a100());
    println!("{}", result.to_text());
    write_json("table3", &result);
}
