//! Regenerates paper Table 3 (VENOM / cuSparseLt comparison).
use bench_harness::experiments::table3;
use bench_harness::runner::{sim_spec, write_json};

fn main() {
    let result = table3::run(&sim_spec());
    println!("{}", result.to_text());
    write_json("table3", &result);
}
