//! Cache-on/off ablation: the same Jigsaw plans simulated with the
//! DRAM-roofline-only device model (`GpuSpec::a100()`) and with the
//! sectored L1/L2 hierarchy (`GpuSpec::a100_with_caches()`,
//! DESIGN.md §18), across kernel versions and output widths.
//!
//! The cache-off rows double as a replay fixture: the cache model is
//! off by default, so a later checkout must reproduce their
//! `duration_cycles` bit-identically (see
//! `crates/bench-harness/tests/cache_ablation_replay.rs`).

use gpu_sim::GpuSpec;
use jigsaw_core::{JigsawConfig, JigsawSpmm};
use serde::{Deserialize, Serialize};

use crate::runner::render_table;

/// One (strategy, N, cache mode) measurement.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Kernel version label (`v0` / `v2` / `v4_32`).
    pub strategy: String,
    /// Output width.
    pub n: usize,
    /// `"on"` or `"off"`.
    pub cache: String,
    /// Simulated kernel duration.
    pub duration_cycles: f64,
    /// L1 sector hit rate (0 when the cache model is off).
    pub l1_hit_rate: f64,
    /// L2 sector hit rate (0 when the cache model is off).
    pub l2_hit_rate: f64,
    /// Sectors the L1 pulled from L2.
    pub l1_sector_reads: u64,
    /// Sectors the L2 pulled from DRAM.
    pub l2_sector_reads: u64,
    /// L1 misses coalesced into an in-flight fill.
    pub mshr_merges: u64,
}

/// Ablation result.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CacheAblation {
    /// All rows, strategy-major then N then cache mode.
    pub rows: Vec<Row>,
}

/// The fixed evaluation matrix (same generator point as the simulator
/// differential fixture: 256×512, 95% sparse, v = 8, seed 33).
fn matrix(rows: usize, cols: usize) -> dlmc::Matrix {
    dlmc::VectorSparseSpec {
        rows,
        cols,
        sparsity: 0.95,
        v: 8,
        dist: dlmc::ValueDist::Uniform,
        seed: 33,
    }
    .generate()
}

/// The strategies the ablation sweeps: the unoptimized baseline, the
/// pipelined version, and the tile-tuned version.
fn strategies() -> Vec<(String, JigsawConfig)> {
    vec![
        ("v0".to_string(), JigsawConfig::v0()),
        ("v2".to_string(), JigsawConfig::v2()),
        ("v4_32".to_string(), JigsawConfig::v4(32)),
    ]
}

/// Sweeps `strategies × ns × {off, on}` over one matrix.
fn sweep(a: &dlmc::Matrix, strats: &[(String, JigsawConfig)], ns: &[usize]) -> CacheAblation {
    let off_spec = GpuSpec::a100();
    let on_spec = GpuSpec::a100_with_caches();
    let mut rows = Vec::new();
    for (name, config) in strats {
        let kernel = JigsawSpmm::plan(a, *config).expect("plan");
        for &n in ns {
            for (cache, spec) in [("off", &off_spec), ("on", &on_spec)] {
                let stats = kernel.simulate(n, spec);
                let (l1_hit, l2_hit, l1_sect, l2_sect, merges) = match &stats.cache {
                    Some(c) => (
                        c.l1.hit_rate(),
                        c.l2.hit_rate(),
                        c.l1.sector_reads,
                        c.l2.sector_reads,
                        c.l1.mshr_merges + c.l2.mshr_merges,
                    ),
                    None => (0.0, 0.0, 0, 0, 0),
                };
                rows.push(Row {
                    strategy: name.clone(),
                    n,
                    cache: cache.to_string(),
                    duration_cycles: stats.duration_cycles,
                    l1_hit_rate: l1_hit,
                    l2_hit_rate: l2_hit,
                    l1_sector_reads: l1_sect,
                    l2_sector_reads: l2_sect,
                    mshr_merges: merges,
                });
            }
        }
    }
    CacheAblation { rows }
}

/// Full ablation: all three strategies at N ∈ {32, 64, 256} on the
/// 256×512 fixture matrix.
pub fn run() -> CacheAblation {
    sweep(&matrix(256, 512), &strategies(), &[32, 64, 256])
}

/// Tiny deterministic sweep for CI smoke: two strategies, one N, on a
/// 128×256 matrix — small enough to run twice per CI job.
pub fn run_smoke() -> CacheAblation {
    let strats: Vec<_> = strategies()
        .into_iter()
        .filter(|(name, _)| name == "v0" || name == "v4_32")
        .collect();
    sweep(&matrix(128, 256), &strats, &[64])
}

impl CacheAblation {
    /// Renders the ablation table.
    pub fn to_text(&self) -> String {
        let header: Vec<String> = [
            "strategy",
            "N",
            "cache",
            "cycles",
            "L1 hit",
            "L2 hit",
            "L1→L2 sect",
            "L2→DRAM sect",
            "merges",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.strategy.clone(),
                    r.n.to_string(),
                    r.cache.clone(),
                    format!("{:.0}", r.duration_cycles),
                    format!("{:.1}%", 100.0 * r.l1_hit_rate),
                    format!("{:.1}%", 100.0 * r.l2_hit_rate),
                    r.l1_sector_reads.to_string(),
                    r.l2_sector_reads.to_string(),
                    r.mshr_merges.to_string(),
                ]
            })
            .collect();
        let mut out =
            String::from("Cache ablation — sectored L1/L2 model on vs off (DESIGN.md §18)\n");
        out.push_str(&render_table(&header, &rows));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_is_deterministic_and_covers_both_modes() {
        let a = run_smoke();
        let b = run_smoke();
        assert_eq!(a, b, "two in-process runs must be bit-identical");
        assert!(a.rows.iter().any(|r| r.cache == "on"));
        assert!(a.rows.iter().any(|r| r.cache == "off"));
        for r in &a.rows {
            if r.cache == "off" {
                assert_eq!((r.l1_hit_rate, r.l2_hit_rate), (0.0, 0.0));
                assert_eq!(r.l1_sector_reads, 0);
            } else {
                assert!(r.l1_sector_reads > 0, "cache-on rows must carry traffic");
            }
        }
    }

    #[test]
    fn cache_on_hit_rates_spread_across_the_sweep() {
        let result = run();
        let on: Vec<&Row> = result.rows.iter().filter(|r| r.cache == "on").collect();
        let max = on.iter().map(|r| r.l2_hit_rate).fold(0.0, f64::max);
        let min = on.iter().map(|r| r.l2_hit_rate).fold(1.0, f64::min);
        assert!(
            max - min >= 0.05,
            "L2 hit rate spread {min:.3}..{max:.3} too small to be informative"
        );
    }
}
