//! Figure 1: proportion of DLMC-style matrices that natively satisfy
//! the SpTC 2:4 pattern, per vector width, across sparsity levels.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use sptc::compress::matrix_satisfies_2_4;

use dlmc::{ValueDist, VectorSparseSpec};

use crate::runner::render_table;
use crate::suite::shapes;

/// Sparsity axis of Figure 1.
pub const SPARSITIES: &[f64] = &[0.50, 0.60, 0.70, 0.80, 0.90, 0.95, 0.98];

/// One curve point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Point {
    /// Sparsity level.
    pub sparsity: f64,
    /// Vector width.
    pub v: usize,
    /// Fraction of sampled matrices satisfying 2:4 everywhere.
    pub fraction: f64,
}

/// Figure 1 result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig1 {
    /// All curve points.
    pub points: Vec<Point>,
}

/// Samples per (shape, sparsity, v) cell.
const SAMPLES: u64 = 4;

/// Runs the experiment.
pub fn run() -> Fig1 {
    let cells: Vec<(f64, usize)> = SPARSITIES
        .iter()
        .flat_map(|&s| dlmc::VECTOR_WIDTHS.iter().map(move |&v| (s, v)))
        .collect();
    let points = cells
        .par_iter()
        .map(|&(sparsity, v)| {
            let mut total = 0usize;
            let mut ok = 0usize;
            for shape in shapes() {
                for sample in 0..SAMPLES {
                    let m = VectorSparseSpec {
                        rows: shape.m,
                        cols: shape.k,
                        sparsity,
                        v,
                        dist: ValueDist::Ones,
                        seed: 7_000 + sample * 31 + (v as u64) * 7 + (sparsity * 100.0) as u64,
                    }
                    .generate();
                    total += 1;
                    if matrix_satisfies_2_4(&m.data, m.cols) {
                        ok += 1;
                    }
                }
            }
            Point {
                sparsity,
                v,
                fraction: ok as f64 / total as f64,
            }
        })
        .collect();
    Fig1 { points }
}

impl Fig1 {
    /// Fraction at a grid point.
    pub fn fraction(&self, sparsity: f64, v: usize) -> f64 {
        self.points
            .iter()
            .find(|p| (p.sparsity - sparsity).abs() < 1e-9 && p.v == v)
            .map(|p| p.fraction)
            .unwrap_or(f64::NAN)
    }

    /// Renders the table.
    pub fn to_text(&self) -> String {
        let header: Vec<String> = std::iter::once("sparsity".to_string())
            .chain(dlmc::VECTOR_WIDTHS.iter().map(|v| format!("v={v}")))
            .collect();
        let rows: Vec<Vec<String>> = SPARSITIES
            .iter()
            .map(|&s| {
                std::iter::once(format!("{:.0}%", s * 100.0))
                    .chain(
                        dlmc::VECTOR_WIDTHS
                            .iter()
                            .map(|&v| format!("{:.1}%", 100.0 * self.fraction(s, v))),
                    )
                    .collect()
            })
            .collect();
        format!(
            "Figure 1 — matrices natively satisfying the 2:4 SpTC pattern\n{}",
            render_table(&header, &rows)
        )
    }
}
