//! Figure 10: SpMM speedup over cuBLAS as a function of the output
//! width N, per sparsity level and vector width — re-slicing the
//! comparisons Table 2 gathered.

use serde::{Deserialize, Serialize};

use crate::runner::{render_table, Comparison};
use crate::suite::geomean;

/// Methods plotted in Figure 10 (speedups normalized to cuBLAS;
/// cuBLAS itself is the 1.0 line).
pub const METHODS: &[&str] = &["Jigsaw", "CLASP", "Magicube", "Sputnik", "SparTA"];

/// One series point: geomean speedup over cuBLAS.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Point {
    /// Sparsity level.
    pub sparsity: f64,
    /// Vector width.
    pub v: usize,
    /// Output width.
    pub n: usize,
    /// Method name.
    pub method: String,
    /// Geometric-mean speedup vs cuBLAS across the shape suite.
    pub speedup_vs_cublas: f64,
}

/// Figure 10 result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig10 {
    /// All series points.
    pub points: Vec<Point>,
}

/// Builds the figure from Table 2's raw comparisons.
pub fn run(comparisons: &[Comparison]) -> Fig10 {
    let mut points = Vec::new();
    for &sparsity in dlmc::SPARSITY_LEVELS {
        for &v in dlmc::VECTOR_WIDTHS {
            for &n in dlmc::N_SWEEP {
                for &method in METHODS {
                    let speedups: Vec<f64> = comparisons
                        .iter()
                        .filter(|c| (c.sparsity - sparsity).abs() < 1e-9 && c.v == v && c.n == n)
                        .filter_map(|c| {
                            let cublas = c.duration("cuBLAS")?;
                            let t = c.duration(method)?;
                            Some(cublas / t)
                        })
                        .collect();
                    if !speedups.is_empty() {
                        points.push(Point {
                            sparsity,
                            v,
                            n,
                            method: method.to_string(),
                            speedup_vs_cublas: geomean(&speedups),
                        });
                    }
                }
            }
        }
    }
    Fig10 { points }
}

impl Fig10 {
    /// Point lookup.
    pub fn speedup(&self, sparsity: f64, v: usize, n: usize, method: &str) -> f64 {
        self.points
            .iter()
            .find(|p| {
                (p.sparsity - sparsity).abs() < 1e-9 && p.v == v && p.n == n && p.method == method
            })
            .map(|p| p.speedup_vs_cublas)
            .unwrap_or(f64::NAN)
    }

    /// Renders one panel per (sparsity, v).
    pub fn to_text(&self) -> String {
        let mut out = String::from(
            "Figure 10 — speedup over cuBLAS vs output width N (geomean across shapes)\n",
        );
        for &sparsity in dlmc::SPARSITY_LEVELS {
            for &v in dlmc::VECTOR_WIDTHS {
                out.push_str(&format!("\n[sparsity {:.0}%, v={v}]\n", sparsity * 100.0));
                let header: Vec<String> = std::iter::once("N".to_string())
                    .chain(METHODS.iter().map(|m| m.to_string()))
                    .collect();
                let rows: Vec<Vec<String>> = dlmc::N_SWEEP
                    .iter()
                    .map(|&n| {
                        std::iter::once(n.to_string())
                            .chain(
                                METHODS
                                    .iter()
                                    .map(|&m| format!("{:.2}", self.speedup(sparsity, v, n, m))),
                            )
                            .collect()
                    })
                    .collect();
                out.push_str(&render_table(&header, &rows));
            }
        }
        out
    }
}
