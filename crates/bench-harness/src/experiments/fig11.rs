//! Figure 11: proportion of matrices supporting the SpTC pattern after
//! the multi-granularity sparsity reorder, per `BLOCK_TILE` and vector
//! width across sparsity levels (paper §4.3).

use jigsaw_core::{JigsawConfig, ReorderPlan};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use dlmc::{ValueDist, VectorSparseSpec};

use crate::runner::render_table;
use crate::suite::full_suite;

/// Sparsity axis (the paper's 80–98% random-pruning range).
pub const SPARSITIES: &[f64] = &[0.80, 0.85, 0.90, 0.95, 0.98];

/// One measured point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Point {
    /// Sparsity level.
    pub sparsity: f64,
    /// Vector width.
    pub v: usize,
    /// `BLOCK_TILE_M` granularity.
    pub block_tile: usize,
    /// Fraction of matrices reordered successfully (K did not grow).
    pub success_rate: f64,
    /// Mean evictions per successful matrix (retry pressure).
    pub avg_evictions: f64,
    /// Mean fraction of the dense K actually computed.
    pub avg_k_fraction: f64,
}

/// Figure 11 result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig11 {
    /// All points.
    pub points: Vec<Point>,
}

/// Shapes for the reorder study: the DLMC K range including the small-K
/// failure cases §4.3 highlights.
fn study_shapes() -> &'static [dlmc::LayerShape] {
    if full_suite() {
        dlmc::REORDER_STUDY_SHAPES
    } else {
        &dlmc::REORDER_STUDY_SHAPES[..5]
    }
}

/// Samples per cell.
const SAMPLES: u64 = 3;

/// Runs the experiment.
pub fn run() -> Fig11 {
    let cells: Vec<(f64, usize, usize)> = SPARSITIES
        .iter()
        .flat_map(|&s| {
            dlmc::VECTOR_WIDTHS.iter().flat_map(move |&v| {
                JigsawConfig::BLOCK_TILE_CANDIDATES
                    .iter()
                    .map(move |&bt| (s, v, bt))
            })
        })
        .collect();
    let points: Vec<Point> = cells
        .par_iter()
        .map(|&(sparsity, v, block_tile)| {
            let mut successes = 0usize;
            let mut total = 0usize;
            let mut evictions = 0usize;
            let mut k_fraction = 0.0f64;
            for shape in study_shapes() {
                for sample in 0..SAMPLES {
                    let a = VectorSparseSpec {
                        rows: shape.m,
                        cols: shape.k,
                        sparsity,
                        v,
                        dist: ValueDist::Ones,
                        seed: 9_000
                            + sample * 131
                            + (v as u64) * 17
                            + block_tile as u64
                            + (sparsity * 1000.0) as u64,
                    }
                    .generate();
                    let stats = ReorderPlan::build(&a, &JigsawConfig::v4(block_tile)).stats();
                    total += 1;
                    if stats.success {
                        successes += 1;
                    }
                    evictions += stats.evictions;
                    k_fraction += stats.avg_k_fraction;
                }
            }
            Point {
                sparsity,
                v,
                block_tile,
                success_rate: successes as f64 / total as f64,
                avg_evictions: evictions as f64 / total as f64,
                avg_k_fraction: k_fraction / total as f64,
            }
        })
        .collect();
    Fig11 { points }
}

impl Fig11 {
    /// Point lookup.
    pub fn point(&self, sparsity: f64, v: usize, bt: usize) -> Option<&Point> {
        self.points
            .iter()
            .find(|p| (p.sparsity - sparsity).abs() < 1e-9 && p.v == v && p.block_tile == bt)
    }

    /// Renders the table.
    pub fn to_text(&self) -> String {
        let mut out = String::from(
            "Figure 11 — reorder success rate (and computed K fraction) after \
             multi-granularity sparsity reorder\n",
        );
        for &bt in &JigsawConfig::BLOCK_TILE_CANDIDATES {
            out.push_str(&format!("\n[BLOCK_TILE = {bt}]\n"));
            let header: Vec<String> = std::iter::once("sparsity".to_string())
                .chain(dlmc::VECTOR_WIDTHS.iter().map(|v| format!("v={v}")))
                .collect();
            let rows: Vec<Vec<String>> =
                SPARSITIES
                    .iter()
                    .map(|&s| {
                        std::iter::once(format!("{:.0}%", s * 100.0))
                            .chain(dlmc::VECTOR_WIDTHS.iter().map(
                                |&v| match self.point(s, v, bt) {
                                    Some(p) => format!(
                                        "{:.0}% (K×{:.2})",
                                        100.0 * p.success_rate,
                                        p.avg_k_fraction
                                    ),
                                    None => "-".to_string(),
                                },
                            ))
                            .collect()
                    })
                    .collect();
            out.push_str(&render_table(&header, &rows));
        }
        out
    }
}
