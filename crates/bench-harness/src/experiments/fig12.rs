//! Figure 12: ablation of the kernel optimizations — v0 (baseline,
//! no bank-conflict elimination) through v4 (BLOCK_TILE tuning) at 95%
//! sparsity, v = 8, with the Nsight-style counters the paper quotes.

use gpu_sim::GpuSpec;
use jigsaw_core::{JigsawConfig, JigsawSpmm};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use baselines::{CublasGemm, SpmmKernel};

use crate::runner::render_table;
use crate::suite::{geomean, shapes};

/// The paper's measured average speedups for v0..v4 (vs cuBLAS).
pub const PAPER_FIG12: [f64; 5] = [0.89, 1.20, 1.23, 1.40, 1.82];

/// Per-version measurement.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VersionResult {
    /// Version label (`v0`..`v4`).
    pub version: String,
    /// Geomean speedup vs cuBLAS over the suite.
    pub speedup_vs_cublas: f64,
    /// Shared-memory bank conflicts per smem instruction.
    pub conflicts_per_smem_instr: f64,
    /// Long-scoreboard stall cycles per issued instruction.
    pub long_scoreboard_per_instr: f64,
    /// Short-scoreboard stall cycles per issued instruction.
    pub short_scoreboard_per_instr: f64,
    /// Shared-memory instructions issued (normalized per mma).
    pub smem_instr_per_mma: f64,
}

/// Figure 12 result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig12 {
    /// v0..v4 in order.
    pub versions: Vec<VersionResult>,
}

/// Evaluation point (paper: 95% sparsity, v = 8).
pub const SPARSITY: f64 = 0.95;
/// Vector width.
pub const V: usize = 8;
/// Output width used for the counters discussion (§4.4 uses 512).
pub const N: usize = 512;

/// Per-version sample: (speedup, conflicts/smem, long-sb, short-sb,
/// smem/mma, duration).
type VersionSample = (f64, f64, f64, f64, f64, f64);

/// Runs the ablation.
pub fn run(spec: &GpuSpec) -> Fig12 {
    // Per shape: cuBLAS reference + all versions.
    let shape_results: Vec<Vec<VersionSample>> = shapes()
        .par_iter()
        .map(|shape| {
            let a = dlmc::VectorSparseSpec {
                rows: shape.m,
                cols: shape.k,
                sparsity: SPARSITY,
                v: V,
                dist: dlmc::ValueDist::Ones,
                seed: 4_400 + shape.m as u64,
            }
            .generate();
            let cublas = CublasGemm::plan(&a).simulate(N, spec).duration_cycles;

            let mut per_version = Vec::new();
            let configs = [
                JigsawConfig::v0(),
                JigsawConfig::v1(),
                JigsawConfig::v2(),
                JigsawConfig::v3(),
            ];
            for config in configs {
                let spmm = JigsawSpmm::plan(&a, config).expect("preset tiling is valid");
                let stats = spmm.simulate(N, spec);
                per_version.push((
                    cublas / stats.duration_cycles,
                    stats.totals.smem_bank_conflicts as f64
                        / stats.totals.smem_instructions.max(1) as f64,
                    stats.long_scoreboard_per_instr,
                    stats.short_scoreboard_per_instr,
                    stats.totals.smem_instructions as f64
                        / stats.totals.mma_instructions.max(1) as f64,
                    stats.duration_cycles,
                ));
            }
            // v4: BLOCK_TILE-tuned.
            let (spmm, _) =
                JigsawSpmm::plan_tuned(&a, N, spec).expect("candidate set is non-empty");
            let stats = spmm.simulate(N, spec);
            per_version.push((
                cublas / stats.duration_cycles,
                stats.totals.smem_bank_conflicts as f64
                    / stats.totals.smem_instructions.max(1) as f64,
                stats.long_scoreboard_per_instr,
                stats.short_scoreboard_per_instr,
                stats.totals.smem_instructions as f64 / stats.totals.mma_instructions.max(1) as f64,
                stats.duration_cycles,
            ));
            per_version
        })
        .collect();

    let versions = (0..5)
        .map(|vi| {
            let speedups: Vec<f64> = shape_results.iter().map(|s| s[vi].0).collect();
            let mean = |f: fn(&VersionSample) -> f64| {
                shape_results.iter().map(|s| f(&s[vi])).sum::<f64>() / shape_results.len() as f64
            };
            VersionResult {
                version: format!("v{vi}"),
                speedup_vs_cublas: geomean(&speedups),
                conflicts_per_smem_instr: mean(|t| t.1),
                long_scoreboard_per_instr: mean(|t| t.2),
                short_scoreboard_per_instr: mean(|t| t.3),
                smem_instr_per_mma: mean(|t| t.4),
            }
        })
        .collect();
    Fig12 { versions }
}

impl Fig12 {
    /// Renders the table.
    pub fn to_text(&self) -> String {
        let header: Vec<String> = [
            "version",
            "speedup vs cuBLAS",
            "paper",
            "bank conf/smem",
            "long sb/instr",
            "short sb/instr",
            "smem instr/mma",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let rows: Vec<Vec<String>> = self
            .versions
            .iter()
            .enumerate()
            .map(|(i, v)| {
                vec![
                    v.version.clone(),
                    format!("{:.2}", v.speedup_vs_cublas),
                    format!("{:.2}", PAPER_FIG12[i]),
                    format!("{:.3}", v.conflicts_per_smem_instr),
                    format!("{:.2}", v.long_scoreboard_per_instr),
                    format!("{:.2}", v.short_scoreboard_per_instr),
                    format!("{:.2}", v.smem_instr_per_mma),
                ]
            })
            .collect();
        format!(
            "Figure 12 — ablation at {:.0}% sparsity, v={} (geomean vs cuBLAS)\n{}",
            SPARSITY * 100.0,
            V,
            render_table(&header, &rows)
        )
    }
}
