//! The paper's tables and figures, one module each. Every module
//! exposes `run(..)` returning a serializable result with a
//! `to_text()` renderer; `all_experiments` composes them into
//! EXPERIMENTS.md.

pub mod cache_ablation;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod overhead;
pub mod serving;
pub mod table2;
pub mod table3;
