//! §4.6 memory-overhead analysis: the reorder-aware storage format's
//! footprint relative to the dense representation, analytic (the
//! paper's formula) and measured on real compressed matrices.

use jigsaw_core::{JigsawConfig, JigsawFormat, JigsawSpmm};
use serde::{Deserialize, Serialize};

use dlmc::{ValueDist, VectorSparseSpec};

use crate::runner::render_table;

/// Paper §4.6: fraction of the dense footprint per `BLOCK_TILE`.
pub const PAPER_FRACTIONS: [(usize, f64); 3] = [(16, 0.5625), (32, 0.50), (64, 0.46875)];

/// One row of the overhead table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Row {
    /// `BLOCK_TILE_M`.
    pub block_tile: usize,
    /// The paper's analytic fraction of dense (charges 4-byte indices,
    /// ignores deleted zero columns).
    pub paper_fraction: f64,
    /// Measured fraction of dense for this implementation's layout at
    /// 80% sparsity (zero-column savings included).
    pub measured_fraction_s80: f64,
    /// Measured fraction at 95% sparsity.
    pub measured_fraction_s95: f64,
}

/// Overhead result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Overhead {
    /// One row per `BLOCK_TILE`.
    pub rows: Vec<Row>,
}

/// Matrix used for the measured columns.
const M: usize = 1024;
/// K dimension.
const K: usize = 1024;

/// Runs the analysis.
pub fn run() -> Overhead {
    let measured = |bt: usize, sparsity: f64| {
        let a = VectorSparseSpec {
            rows: M,
            cols: K,
            sparsity,
            v: 4,
            dist: ValueDist::Ones,
            seed: 77,
        }
        .generate();
        let spmm = JigsawSpmm::plan(&a, JigsawConfig::v4(bt)).expect("candidate tiling is valid");
        spmm.format.measured_bytes() as f64 / (2.0 * (M * K) as f64)
    };
    let rows = JigsawConfig::BLOCK_TILE_CANDIDATES
        .iter()
        .map(|&bt| Row {
            block_tile: bt,
            paper_fraction: JigsawFormat::paper_analytic_fraction(bt),
            measured_fraction_s80: measured(bt, 0.80),
            measured_fraction_s95: measured(bt, 0.95),
        })
        .collect();
    Overhead { rows }
}

impl Overhead {
    /// Renders the table.
    pub fn to_text(&self) -> String {
        let header: Vec<String> = [
            "BLOCK_TILE",
            "paper formula",
            "measured @80%",
            "measured @95%",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.block_tile.to_string(),
                    format!("{:.2}%", 100.0 * r.paper_fraction),
                    format!("{:.2}%", 100.0 * r.measured_fraction_s80),
                    format!("{:.2}%", 100.0 * r.measured_fraction_s95),
                ]
            })
            .collect();
        format!(
            "Section 4.6 — storage footprint as a fraction of dense f16\n\
             (the paper's formula keeps zero columns and 4-byte indices;\n\
             the measured layout deletes skipped columns and packs\n\
             block_col_idx as u8, hence the smaller measured numbers)\n{}",
            render_table(&header, &rows)
        )
    }
}
