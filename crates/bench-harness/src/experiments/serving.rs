//! Serving-layer experiment: the same seeded open-loop workload run
//! under {batched, unbatched} × {warm, cold} policies on the
//! virtual-clock scheduler. Quantifies the two amortization effects
//! the serving layer stacks on top of the kernel: micro-batching
//! (simulated SpMM cost is sublinear in N — paper Fig 10) and plan
//! caching (the §3.1 one-time reorder, charged only on cold starts).

use gpu_sim::GpuSpec;
use serde::{Deserialize, Serialize};

use jigsaw_serve::{
    default_zoo, generate_schedule, simulate_schedule, LoadSpec, ModelRegistry, RegistryConfig,
    SimConfig,
};

use crate::runner::render_table;

/// One serving configuration's outcome.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Row {
    /// Policy label (`batched+warm`, `unbatched+cold`, …).
    pub policy: String,
    /// Requests completed.
    pub completed: u64,
    /// Kernel launches (batches).
    pub batches: u64,
    /// Mean requests coalesced per batch.
    pub avg_occupancy: f64,
    /// Virtual-time makespan, cycles.
    pub makespan_cycles: f64,
    /// Completed requests per 10⁹ cycles of elapsed virtual time.
    pub requests_per_gcycle: f64,
    /// p50 request latency, cycles.
    pub p50_latency_cycles: f64,
    /// p95 request latency, cycles.
    pub p95_latency_cycles: f64,
    /// p99 request latency, cycles.
    pub p99_latency_cycles: f64,
    /// Registry hits over the run.
    pub cache_hits: u64,
    /// Registry misses over the run.
    pub cache_misses: u64,
    /// Admitted requests that terminated with a typed error.
    pub failed: u64,
    /// Admitted requests shed on deadline expiry before dispatch.
    pub shed_expired: u64,
    /// Queue depth at end of run (0 once drained).
    pub queue_depth: usize,
    /// Models whose circuit breaker was not Closed at end of run.
    pub breakers_open: u64,
}

/// The serving experiment result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Serving {
    /// Requests in the workload.
    pub requests: usize,
    /// Workload seed.
    pub seed: u64,
    /// One row per policy.
    pub rows: Vec<Row>,
}

/// Batching window, cycles (~35 µs at the A100 clock).
const WINDOW_CYCLES: f64 = 50_000.0;
/// Maximum batch width, columns.
const MAX_BATCH_N: usize = 256;

fn run_policy(
    label: &str,
    batched: bool,
    warm: bool,
    schedule: &[jigsaw_serve::SimRequest],
    zoo_seed: u64,
    spec: &GpuSpec,
) -> Row {
    // A fresh registry per policy so "cold" truly re-plans.
    let registry = ModelRegistry::new(RegistryConfig::default()).expect("no artifact dir");
    for m in default_zoo(zoo_seed) {
        registry.register(&m.name, m.weights(), m.config);
    }
    if warm {
        registry.warm_all().expect("zoo models plan");
    }
    let cfg = if batched {
        SimConfig::batched(spec.clone(), MAX_BATCH_N, WINDOW_CYCLES)
    } else {
        SimConfig::unbatched(spec.clone())
    };
    let report = simulate_schedule(&registry, schedule, &cfg);
    assert!(report.metrics.conserves(), "serving run conserves requests");
    let stats = registry.stats();
    Row {
        policy: label.to_string(),
        completed: report.metrics.completed,
        batches: report.metrics.batches,
        avg_occupancy: report.metrics.avg_batch_occupancy(),
        makespan_cycles: report.makespan_cycles,
        requests_per_gcycle: report.requests_per_gcycle(),
        p50_latency_cycles: report.metrics.latency_cycles.percentile(50.0),
        p95_latency_cycles: report.metrics.latency_cycles.percentile(95.0),
        p99_latency_cycles: report.metrics.latency_cycles.percentile(99.0),
        cache_hits: stats.hits,
        cache_misses: stats.misses,
        failed: report.metrics.failed,
        shed_expired: report.metrics.shed_expired,
        queue_depth: report.metrics.queue_depth,
        breakers_open: report.metrics.breakers_open,
    }
}

/// Runs all four policies over one seeded workload.
pub fn run(spec: &GpuSpec, requests: usize) -> Serving {
    let zoo_seed = 90;
    let load = LoadSpec {
        requests,
        seed: 0xBEEF,
        n_choices: vec![8, 16, 32],
        mean_gap_cycles: 2_000.0,
    };
    let schedule = generate_schedule(&default_zoo(zoo_seed), &load);
    let rows = vec![
        run_policy("batched+warm", true, true, &schedule, zoo_seed, spec),
        run_policy("batched+cold", true, false, &schedule, zoo_seed, spec),
        run_policy("unbatched+warm", false, true, &schedule, zoo_seed, spec),
        run_policy("unbatched+cold", false, false, &schedule, zoo_seed, spec),
    ];
    Serving {
        requests,
        seed: load.seed,
        rows,
    }
}

impl Serving {
    /// Throughput of a policy.
    pub fn throughput(&self, policy: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.policy == policy)
            .map(|r| r.requests_per_gcycle)
    }

    /// Renders the table.
    pub fn to_text(&self) -> String {
        let header: Vec<String> = [
            "policy",
            "req/Gcycle",
            "batches",
            "occupancy",
            "p50 lat",
            "p99 lat",
            "cache hit/miss",
            "failed/shed",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.policy.clone(),
                    format!("{:.1}", r.requests_per_gcycle),
                    r.batches.to_string(),
                    format!("{:.2}", r.avg_occupancy),
                    format!("{:.0}", r.p50_latency_cycles),
                    format!("{:.0}", r.p99_latency_cycles),
                    format!("{}/{}", r.cache_hits, r.cache_misses),
                    format!("{}/{}", r.failed, r.shed_expired),
                ]
            })
            .collect();
        format!(
            "Serving — {} requests, seed {:#x}; batching window {} cycles,\n\
             max batch {} columns (virtual-clock scheduler, A100 spec)\n{}",
            self.requests,
            self.seed,
            WINDOW_CYCLES,
            MAX_BATCH_N,
            render_table(&header, &rows)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_warm_beats_unbatched_cold() {
        let result = run(&GpuSpec::a100(), 48);
        assert_eq!(result.rows.len(), 4);
        for r in &result.rows {
            assert_eq!(r.completed, 48, "{} completed all", r.policy);
            assert!(r.requests_per_gcycle > 0.0);
            assert_eq!(r.failed, 0, "{} healthy run has no failures", r.policy);
            assert_eq!(r.shed_expired, 0);
            assert_eq!(r.queue_depth, 0, "queues drained");
            assert_eq!(r.breakers_open, 0);
        }
        let best = result.throughput("batched+warm").unwrap();
        let worst = result.throughput("unbatched+cold").unwrap();
        assert!(
            best > worst,
            "batched+warm ({best:.1}) must beat unbatched+cold ({worst:.1})"
        );
        // Batching is the dominant axis: warm-vs-cold only shifts the
        // one-time planning charge.
        let batched_cold = result.throughput("batched+cold").unwrap();
        let unbatched_warm = result.throughput("unbatched+warm").unwrap();
        assert!(best >= batched_cold);
        assert!(unbatched_warm > worst);
        let warm_row = result
            .rows
            .iter()
            .find(|r| r.policy == "batched+warm")
            .unwrap();
        assert_eq!(warm_row.cache_misses, 4, "only the warm-up plans");
        assert!(warm_row.cache_hits >= warm_row.batches);
        assert!(warm_row.avg_occupancy > 1.0, "requests were coalesced");
        let text = result.to_text();
        assert!(text.contains("batched+warm") && text.contains("req/Gcycle"));
    }
}
