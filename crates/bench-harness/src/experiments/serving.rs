//! Serving-layer experiment: the same seeded open-loop workload run
//! under {batched, unbatched} × {warm, cold} policies on the
//! virtual-clock scheduler. Quantifies the two amortization effects
//! the serving layer stacks on top of the kernel: micro-batching
//! (simulated SpMM cost is sublinear in N — paper Fig 10) and plan
//! caching (the §3.1 one-time reorder, charged only on cold starts).

use std::time::Instant;

use dlmc::{dense_rhs, Matrix, ValueDist};
use gpu_sim::GpuSpec;
use serde::{Deserialize, Serialize};

use jigsaw_core::panelize_into;
use jigsaw_serve::{
    assemble_panels, concat_columns, default_zoo, generate_schedule, generate_zipf_schedule,
    scaled_zoo, simulate_schedule, simulate_sharded, HealthConfig, HedgeConfig, LoadSpec,
    ModelRegistry, RegistryConfig, ReplicationConfig, ShardConfig, ShardSimConfig, SimConfig,
    SimRequest, StealConfig, ZipfLoadSpec,
};

use crate::runner::render_table;

/// One serving configuration's outcome.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Row {
    /// Policy label (`batched+warm`, `unbatched+cold`, …).
    pub policy: String,
    /// Requests completed.
    pub completed: u64,
    /// Kernel launches (batches).
    pub batches: u64,
    /// Mean requests coalesced per batch.
    pub avg_occupancy: f64,
    /// Virtual-time makespan, cycles.
    pub makespan_cycles: f64,
    /// Completed requests per 10⁹ cycles of elapsed virtual time.
    pub requests_per_gcycle: f64,
    /// p50 request latency, cycles.
    pub p50_latency_cycles: f64,
    /// p95 request latency, cycles.
    pub p95_latency_cycles: f64,
    /// p99 request latency, cycles.
    pub p99_latency_cycles: f64,
    /// Registry hits over the run.
    pub cache_hits: u64,
    /// Registry misses over the run.
    pub cache_misses: u64,
    /// Admitted requests that terminated with a typed error.
    pub failed: u64,
    /// Admitted requests shed on deadline expiry before dispatch.
    pub shed_expired: u64,
    /// Queue depth at end of run (0 once drained).
    pub queue_depth: usize,
    /// Models whose circuit breaker was not Closed at end of run.
    pub breakers_open: u64,
}

/// One shard count's outcome under the shared zipf workload.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ShardRow {
    /// Shards in the ring.
    pub shards: usize,
    /// Requests completed across all shards.
    pub completed: u64,
    /// Requests redirected to a less-loaded replica at admission.
    pub forwarded: u64,
    /// Requests an idle shard pulled from an overloaded peer.
    pub stolen: u64,
    /// Breaker fast-rejects summed over shards.
    pub breaker_rejects: u64,
    /// Requests shed on deadline expiry.
    pub shed_expired: u64,
    /// Requests that terminated with a typed error.
    pub failed: u64,
    /// Hot-model promotions over the run.
    pub promotions: u64,
    /// Hot-model demotions over the run.
    pub demotions: u64,
    /// Cluster-wide p50 request latency, cycles.
    pub p50_latency_cycles: f64,
    /// Cluster-wide p95 request latency, cycles.
    pub p95_latency_cycles: f64,
    /// Cluster-wide p99 request latency, cycles.
    pub p99_latency_cycles: f64,
    /// Virtual-time makespan, cycles.
    pub makespan_cycles: f64,
    /// Completed requests per 10⁹ cycles of elapsed virtual time.
    pub requests_per_gcycle: f64,
    /// Per-shard submitted counts (routing balance).
    pub per_shard_submitted: Vec<u64>,
    /// Per-shard completed counts.
    pub per_shard_completed: Vec<u64>,
    /// Per-shard p99 latency, cycles (0 for an idle shard).
    pub per_shard_p99_latency_cycles: Vec<f64>,
}

/// One batch size's host-side assembly comparison: the fused
/// panel-major emit (`assemble_panels`, one touch of every F16 column)
/// against the two-touch oracle (`concat_columns` into one `Matrix`,
/// then phase-1 panelization). Both paths are timed on the host clock
/// over identical parts and asserted bit-exact before timing.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FusionRow {
    /// Parts coalesced into the batch.
    pub batch: usize,
    /// Reduction dimension (rows of every part).
    pub k: usize,
    /// Columns per part.
    pub n_per_part: usize,
    /// Total batch width, columns.
    pub total_n: usize,
    /// Best-of-k wall time of the fused panel-major emit, nanoseconds.
    pub fused_assemble_ns: f64,
    /// Best-of-k wall time of concat + panelize, nanoseconds.
    pub unfused_assemble_ns: f64,
    /// `unfused_assemble_ns / fused_assemble_ns` — the host-copy work
    /// the fused path removes. CI floors this at 1.0 for batch ≥ 4.
    pub speedup: f64,
}

/// One tail-tolerance policy's outcome under the straggler workload
/// (DESIGN.md §17): the same zipf schedule on the same ring with one
/// shard degraded to a 10× straggler, hedging + health scoring off
/// (`unhedged`) versus on (`hedged`). CI floors the hedged p99 at
/// ≤ 1.0× the unhedged p99 and the work amplification at
/// `1 + budget_fraction`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HedgeRow {
    /// Policy label (`unhedged` or `hedged`).
    pub policy: String,
    /// Shards in the ring.
    pub shards: usize,
    /// Shard degraded into the straggler.
    pub straggler_shard: usize,
    /// Straggler service-time multiplier.
    pub straggler_factor: f64,
    /// Requests completed.
    pub completed: u64,
    /// Hedged duplicates launched.
    pub hedges: u64,
    /// Hedges whose duplicate finished first.
    pub hedge_wins: u64,
    /// Hedge losers cancelled before execution.
    pub hedge_cancels: u64,
    /// Straggler ejections by the health scorer.
    pub health_ejections: u64,
    /// Cluster-wide p50 request latency, cycles.
    pub p50_latency_cycles: f64,
    /// Cluster-wide p95 request latency, cycles.
    pub p95_latency_cycles: f64,
    /// Cluster-wide p99 request latency, cycles.
    pub p99_latency_cycles: f64,
    /// Total executed work: busy cycles summed over shards.
    pub busy_cycles: f64,
    /// `busy_cycles / unhedged busy_cycles` — executed-work
    /// amplification the retry budget must bound (1.0 on the
    /// unhedged row by construction).
    pub work_amplification: f64,
    /// Retry-budget accrual fraction the bound derives from.
    pub budget_fraction: f64,
}

/// Workload shape for the sharded sweep. The same schedule (same
/// offered load) runs at every shard count, so rows compare scaling,
/// not workload drift.
#[derive(Clone, Debug)]
pub struct ShardSweepSpec {
    /// Requests in the zipf workload.
    pub requests: usize,
    /// Distinct models in the scaled zoo.
    pub models: usize,
    /// Simulated user population.
    pub users: usize,
    /// Workload seed.
    pub seed: u64,
    /// Shard counts to sweep.
    pub shard_counts: Vec<usize>,
    /// Mean inter-arrival gap, cycles — sized to saturate one shard so
    /// the sweep shows queueing relief, not idle devices.
    pub mean_gap_cycles: f64,
}

impl Default for ShardSweepSpec {
    fn default() -> Self {
        ShardSweepSpec {
            requests: 20_000,
            models: 24,
            users: 1_000_000,
            seed: 0x51AB,
            shard_counts: vec![1, 2, 4, 8],
            mean_gap_cycles: 600.0,
        }
    }
}

/// The serving experiment result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Serving {
    /// Requests in the workload.
    pub requests: usize,
    /// Workload seed.
    pub seed: u64,
    /// One row per policy.
    pub rows: Vec<Row>,
    /// Requests in the sharded zipf workload.
    pub shard_requests: usize,
    /// Simulated user population behind the zipf workload.
    pub users: usize,
    /// Zipf workload seed.
    pub zipf_seed: u64,
    /// One row per shard count, same offered load.
    pub shard_rows: Vec<ShardRow>,
    /// One row per batch size: fused vs two-touch batch assembly,
    /// host-timed over identical parts.
    pub fusion_rows: Vec<FusionRow>,
    /// Unhedged-vs-hedged pair under an injected 10× straggler shard,
    /// same schedule and ring (DESIGN.md §17).
    pub hedge_rows: Vec<HedgeRow>,
}

/// Batching window, cycles (~35 µs at the A100 clock).
const WINDOW_CYCLES: f64 = 50_000.0;
/// Maximum batch width, columns.
const MAX_BATCH_N: usize = 256;

fn run_policy(
    label: &str,
    batched: bool,
    warm: bool,
    schedule: &[jigsaw_serve::SimRequest],
    zoo_seed: u64,
    spec: &GpuSpec,
) -> Row {
    // A fresh registry per policy so "cold" truly re-plans.
    let registry = ModelRegistry::new(RegistryConfig::default()).expect("no artifact dir");
    for m in default_zoo(zoo_seed) {
        registry.register(&m.name, m.weights(), m.config);
    }
    if warm {
        registry.warm_all().expect("zoo models plan");
    }
    let cfg = if batched {
        SimConfig::batched(spec.clone(), MAX_BATCH_N, WINDOW_CYCLES)
    } else {
        SimConfig::unbatched(spec.clone())
    };
    let report = simulate_schedule(&registry, schedule, &cfg);
    assert!(report.metrics.conserves(), "serving run conserves requests");
    let stats = registry.stats();
    Row {
        policy: label.to_string(),
        completed: report.metrics.completed,
        batches: report.metrics.batches,
        avg_occupancy: report.metrics.avg_batch_occupancy(),
        makespan_cycles: report.makespan_cycles,
        requests_per_gcycle: report.requests_per_gcycle(),
        p50_latency_cycles: report.metrics.latency_cycles.percentile(50.0),
        p95_latency_cycles: report.metrics.latency_cycles.percentile(95.0),
        p99_latency_cycles: report.metrics.latency_cycles.percentile(99.0),
        cache_hits: stats.hits,
        cache_misses: stats.misses,
        failed: report.metrics.failed,
        shed_expired: report.metrics.shed_expired,
        queue_depth: report.metrics.queue_depth,
        breakers_open: report.metrics.breakers_open,
    }
}

/// Runs the zipf workload at each shard count. One warm registry and
/// one schedule serve every row, so differences are pure topology.
fn run_shard_sweep(spec: &GpuSpec, sweep: &ShardSweepSpec) -> Vec<ShardRow> {
    let zoo = scaled_zoo(sweep.models, 90);
    let registry = ModelRegistry::new(RegistryConfig {
        // The scaled zoo must stay fully resident: an eviction mid-run
        // would surface as a cold fetch the sharded sim rejects.
        budget_bytes: 1 << 30,
        ..RegistryConfig::default()
    })
    .expect("no artifact dir");
    for m in &zoo {
        registry.register(&m.name, m.weights(), m.config);
    }
    registry.warm_all().expect("zoo models plan");
    let schedule: Vec<SimRequest> = generate_zipf_schedule(
        &zoo,
        &ZipfLoadSpec {
            requests: sweep.requests,
            users: sweep.users,
            seed: sweep.seed,
            mean_gap_cycles: sweep.mean_gap_cycles,
            ..ZipfLoadSpec::default()
        },
    )
    .into_iter()
    .map(|z| z.req)
    .collect();
    sweep
        .shard_counts
        .iter()
        .map(|&shards| {
            let cfg = ShardSimConfig::new(
                ShardConfig::new(shards)
                    .with_replication(ReplicationConfig::cycles(48, 2, 1_000_000.0))
                    .with_steal(StealConfig::threshold(16)),
                SimConfig::batched(spec.clone(), MAX_BATCH_N, WINDOW_CYCLES),
            );
            let report = simulate_sharded(&registry, &schedule, &cfg);
            assert!(report.totals.conserves(), "sharded run conserves requests");
            ShardRow {
                shards,
                completed: report.totals.completed,
                forwarded: report.forwarded,
                stolen: report.stolen,
                breaker_rejects: report.totals.breaker_rejects,
                shed_expired: report.totals.shed_expired,
                failed: report.totals.failed,
                promotions: report.promotions,
                demotions: report.demotions,
                p50_latency_cycles: report.latency_cycles.percentile(50.0),
                p95_latency_cycles: report.latency_cycles.percentile(95.0),
                p99_latency_cycles: report.latency_cycles.percentile(99.0),
                makespan_cycles: report.makespan_cycles,
                requests_per_gcycle: report.requests_per_gcycle(),
                per_shard_submitted: report.lanes.iter().map(|l| l.metrics.submitted).collect(),
                per_shard_completed: report.lanes.iter().map(|l| l.metrics.completed).collect(),
                per_shard_p99_latency_cycles: report
                    .lanes
                    .iter()
                    .map(|l| l.metrics.latency_cycles.percentile(99.0))
                    .collect(),
            }
        })
        .collect()
}

/// Straggler service-time multiplier in the hedge sweep.
const STRAGGLER_FACTOR: f64 = 10.0;
/// Shard degraded into the straggler.
const STRAGGLER_SHARD: usize = 0;
/// Shards in the hedge sweep's ring.
const HEDGE_SHARDS: usize = 4;

/// Runs the straggler workload twice on the same ring — tail
/// tolerance off, then on — and reports both as [`HedgeRow`]s with
/// the work amplification normalized to the unhedged run.
fn run_hedge_sweep(spec: &GpuSpec) -> Vec<HedgeRow> {
    let zoo = scaled_zoo(8, 33);
    let registry = ModelRegistry::new(RegistryConfig {
        budget_bytes: 1 << 30,
        ..RegistryConfig::default()
    })
    .expect("no artifact dir");
    for m in &zoo {
        registry.register(&m.name, m.weights(), m.config);
    }
    registry.warm_all().expect("zoo models plan");
    let schedule: Vec<SimRequest> = generate_zipf_schedule(
        &zoo,
        &ZipfLoadSpec {
            requests: 1_200,
            seed: 47,
            mean_gap_cycles: 300.0,
            ..ZipfLoadSpec::default()
        },
    )
    .into_iter()
    .map(|z| z.req)
    .collect();
    let hedge = HedgeConfig::cycles();
    let budget_fraction = hedge.budget_fraction;
    let cfg = |tolerant: bool| {
        let mut shard = ShardConfig::new(HEDGE_SHARDS)
            .with_replication(ReplicationConfig::cycles(32, 2, 500_000.0))
            .with_steal(StealConfig::threshold(8));
        if tolerant {
            shard = shard.with_health(HealthConfig::cycles()).with_hedge(hedge);
        }
        // A tighter window than the throughput sweep: tail latency is
        // the quantity under test, and a long coalescing window would
        // smear the straggler's effect into every percentile.
        ShardSimConfig::new(shard, SimConfig::batched(spec.clone(), 128, 20_000.0))
            .with_straggler(STRAGGLER_SHARD, STRAGGLER_FACTOR)
    };
    let unhedged = simulate_sharded(&registry, &schedule, &cfg(false));
    let hedged = simulate_sharded(&registry, &schedule, &cfg(true));
    assert!(unhedged.totals.conserves(), "unhedged run conserves");
    assert!(hedged.totals.conserves(), "hedged run conserves");
    let busy =
        |r: &jigsaw_serve::ShardSimReport| r.lanes.iter().map(|l| l.busy_cycles).sum::<f64>();
    let base_busy = busy(&unhedged);
    let row = |policy: &str, r: &jigsaw_serve::ShardSimReport| HedgeRow {
        policy: policy.to_string(),
        shards: HEDGE_SHARDS,
        straggler_shard: STRAGGLER_SHARD,
        straggler_factor: STRAGGLER_FACTOR,
        completed: r.totals.completed,
        hedges: r.hedges,
        hedge_wins: r.hedge_wins,
        hedge_cancels: r.hedge_cancels,
        health_ejections: r.health_ejections,
        p50_latency_cycles: r.latency_cycles.percentile(50.0),
        p95_latency_cycles: r.latency_cycles.percentile(95.0),
        p99_latency_cycles: r.latency_cycles.percentile(99.0),
        busy_cycles: busy(r),
        work_amplification: busy(r) / base_busy,
        budget_fraction,
    };
    vec![row("unhedged", &unhedged), row("hedged", &hedged)]
}

/// Reduction dimension of the fusion sweep's parts — deep enough that
/// assembly moves real bytes (`k × total_n` F16 reads per batch).
const FUSION_K: usize = 2048;
/// Columns per request in the fusion sweep (a typical skinny RHS).
const FUSION_N_PER_PART: usize = 8;

fn time_ns(mut f: impl FnMut()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_nanos() as f64
}

/// Times fused vs two-touch batch assembly at each batch size. The
/// fused emit (`assemble_panels`) converts each part's F16 columns
/// directly into panel-major f32 scratch; the two-touch oracle copies
/// once into a concatenated `Matrix` and again through phase-1
/// panelization. Bit-exactness is asserted before anything is timed.
/// The two paths are measured **interleaved** (fused, unfused, fused,
/// …) with best-of-`reps` each, so a transient stall — a rayon pool
/// wake-up, a scheduler hiccup — cannot land on one side only and
/// flip the ratio at these ~100 µs scales.
fn run_fusion_sweep(batch_sizes: &[usize], reps: usize) -> Vec<FusionRow> {
    batch_sizes
        .iter()
        .map(|&batch| {
            let parts: Vec<Matrix> = (0..batch)
                .map(|i| {
                    dense_rhs(
                        FUSION_K,
                        FUSION_N_PER_PART,
                        ValueDist::Uniform,
                        0xF00D + i as u64,
                    )
                })
                .collect();
            let refs: Vec<&Matrix> = parts.iter().collect();
            let total_n = batch * FUSION_N_PER_PART;
            let mut fused = vec![0.0f32; FUSION_K * total_n];
            let mut oracle = vec![0.0f32; FUSION_K * total_n];
            assemble_panels(&refs, &mut fused).expect("fused emit");
            let cat = concat_columns(&refs).expect("oracle concat");
            panelize_into(&cat, &mut oracle).expect("oracle panelize");
            assert_eq!(fused, oracle, "fused emit is bit-exact at batch {batch}");
            let mut fused_assemble_ns = f64::INFINITY;
            let mut unfused_assemble_ns = f64::INFINITY;
            for _ in 0..reps {
                fused_assemble_ns = fused_assemble_ns.min(time_ns(|| {
                    assemble_panels(&refs, &mut fused).expect("fused emit");
                }));
                unfused_assemble_ns = unfused_assemble_ns.min(time_ns(|| {
                    let cat = concat_columns(&refs).expect("oracle concat");
                    panelize_into(&cat, &mut oracle).expect("oracle panelize");
                }));
            }
            FusionRow {
                batch,
                k: FUSION_K,
                n_per_part: FUSION_N_PER_PART,
                total_n,
                fused_assemble_ns,
                unfused_assemble_ns,
                speedup: unfused_assemble_ns / fused_assemble_ns,
            }
        })
        .collect()
}

/// Runs all four policies over one seeded workload, then the sharded
/// zipf sweep over the same device spec.
pub fn run(spec: &GpuSpec, requests: usize, sweep: &ShardSweepSpec) -> Serving {
    let zoo_seed = 90;
    let load = LoadSpec {
        requests,
        seed: 0xBEEF,
        n_choices: vec![8, 16, 32],
        mean_gap_cycles: 2_000.0,
    };
    let schedule = generate_schedule(&default_zoo(zoo_seed), &load);
    let rows = vec![
        run_policy("batched+warm", true, true, &schedule, zoo_seed, spec),
        run_policy("batched+cold", true, false, &schedule, zoo_seed, spec),
        run_policy("unbatched+warm", false, true, &schedule, zoo_seed, spec),
        run_policy("unbatched+cold", false, false, &schedule, zoo_seed, spec),
    ];
    let shard_rows = run_shard_sweep(spec, sweep);
    let fusion_rows = run_fusion_sweep(&[1, 2, 4, 8, 16], 25);
    let hedge_rows = run_hedge_sweep(spec);
    Serving {
        requests,
        seed: load.seed,
        rows,
        shard_requests: sweep.requests,
        users: sweep.users,
        zipf_seed: sweep.seed,
        shard_rows,
        fusion_rows,
        hedge_rows,
    }
}

impl Serving {
    /// Throughput of a policy.
    pub fn throughput(&self, policy: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.policy == policy)
            .map(|r| r.requests_per_gcycle)
    }

    /// Renders the table.
    pub fn to_text(&self) -> String {
        let header: Vec<String> = [
            "policy",
            "req/Gcycle",
            "batches",
            "occupancy",
            "p50 lat",
            "p99 lat",
            "cache hit/miss",
            "failed/shed",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.policy.clone(),
                    format!("{:.1}", r.requests_per_gcycle),
                    r.batches.to_string(),
                    format!("{:.2}", r.avg_occupancy),
                    format!("{:.0}", r.p50_latency_cycles),
                    format!("{:.0}", r.p99_latency_cycles),
                    format!("{}/{}", r.cache_hits, r.cache_misses),
                    format!("{}/{}", r.failed, r.shed_expired),
                ]
            })
            .collect();
        let shard_header: Vec<String> = [
            "shards",
            "completed",
            "p50 lat",
            "p99 lat",
            "fwd/stolen",
            "brk/shed/failed",
            "req/Gcycle",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let shard_rows: Vec<Vec<String>> = self
            .shard_rows
            .iter()
            .map(|r| {
                vec![
                    r.shards.to_string(),
                    r.completed.to_string(),
                    format!("{:.0}", r.p50_latency_cycles),
                    format!("{:.0}", r.p99_latency_cycles),
                    format!("{}/{}", r.forwarded, r.stolen),
                    format!("{}/{}/{}", r.breaker_rejects, r.shed_expired, r.failed),
                    format!("{:.1}", r.requests_per_gcycle),
                ]
            })
            .collect();
        let fusion_header: Vec<String> =
            ["batch", "total N", "fused µs", "two-touch µs", "speedup"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let fusion_rows: Vec<Vec<String>> = self
            .fusion_rows
            .iter()
            .map(|r| {
                vec![
                    r.batch.to_string(),
                    r.total_n.to_string(),
                    format!("{:.1}", r.fused_assemble_ns / 1e3),
                    format!("{:.1}", r.unfused_assemble_ns / 1e3),
                    format!("{:.2}x", r.speedup),
                ]
            })
            .collect();
        let hedge_header: Vec<String> = [
            "policy",
            "p50 lat",
            "p95 lat",
            "p99 lat",
            "hedges (wins/cancels)",
            "ejections",
            "work amp",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let hedge_rows: Vec<Vec<String>> = self
            .hedge_rows
            .iter()
            .map(|r| {
                vec![
                    r.policy.clone(),
                    format!("{:.0}", r.p50_latency_cycles),
                    format!("{:.0}", r.p95_latency_cycles),
                    format!("{:.0}", r.p99_latency_cycles),
                    format!("{} ({}/{})", r.hedges, r.hedge_wins, r.hedge_cancels),
                    r.health_ejections.to_string(),
                    format!("{:.3}x", r.work_amplification),
                ]
            })
            .collect();
        format!(
            "Serving — {} requests, seed {:#x}; batching window {} cycles,\n\
             max batch {} columns (virtual-clock scheduler, A100 spec)\n{}\n\
             Sharded — {} zipf requests from {} users, seed {:#x};\n\
             consistent-hash ring, hot-model replication, work stealing\n{}\n\
             Fused assembly — panel-major emit vs concat+panelize,\n\
             k={}, {} columns/part (host-timed, bit-exact asserted)\n{}\n\
             Tail tolerance — {} shards, shard {} a {:.0}× straggler;\n\
             hedge past rolling p95, retry budget {:.0}% (DESIGN.md §17)\n{}",
            self.requests,
            self.seed,
            WINDOW_CYCLES,
            MAX_BATCH_N,
            render_table(&header, &rows),
            self.shard_requests,
            self.users,
            self.zipf_seed,
            render_table(&shard_header, &shard_rows),
            FUSION_K,
            FUSION_N_PER_PART,
            render_table(&fusion_header, &fusion_rows),
            HEDGE_SHARDS,
            STRAGGLER_SHARD,
            STRAGGLER_FACTOR,
            self.hedge_rows
                .first()
                .map(|r| r.budget_fraction * 100.0)
                .unwrap_or(0.0),
            render_table(&hedge_header, &hedge_rows)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sweep shape small enough for debug-mode CI: 8 models, two
    /// shard counts, a load that still queues on one shard.
    fn tiny_sweep() -> ShardSweepSpec {
        ShardSweepSpec {
            requests: 600,
            models: 8,
            users: 10_000,
            seed: 0x51AB,
            shard_counts: vec![1, 4],
            mean_gap_cycles: 300.0,
        }
    }

    #[test]
    fn batched_warm_beats_unbatched_cold() {
        let result = run(&GpuSpec::a100(), 48, &tiny_sweep());
        assert_eq!(result.rows.len(), 4);
        for r in &result.rows {
            assert_eq!(r.completed, 48, "{} completed all", r.policy);
            assert!(r.requests_per_gcycle > 0.0);
            assert_eq!(r.failed, 0, "{} healthy run has no failures", r.policy);
            assert_eq!(r.shed_expired, 0);
            assert_eq!(r.queue_depth, 0, "queues drained");
            assert_eq!(r.breakers_open, 0);
        }
        let best = result.throughput("batched+warm").unwrap();
        let worst = result.throughput("unbatched+cold").unwrap();
        assert!(
            best > worst,
            "batched+warm ({best:.1}) must beat unbatched+cold ({worst:.1})"
        );
        // Batching is the dominant axis: warm-vs-cold only shifts the
        // one-time planning charge.
        let batched_cold = result.throughput("batched+cold").unwrap();
        let unbatched_warm = result.throughput("unbatched+warm").unwrap();
        assert!(best >= batched_cold);
        assert!(unbatched_warm > worst);
        let warm_row = result
            .rows
            .iter()
            .find(|r| r.policy == "batched+warm")
            .unwrap();
        assert_eq!(warm_row.cache_misses, 4, "only the warm-up plans");
        assert!(warm_row.cache_hits >= warm_row.batches);
        assert!(warm_row.avg_occupancy > 1.0, "requests were coalesced");
        let text = result.to_text();
        assert!(text.contains("batched+warm") && text.contains("req/Gcycle"));
        assert!(text.contains("Sharded") && text.contains("fwd/stolen"));
        assert!(text.contains("Fused assembly") && text.contains("two-touch µs"));
        assert!(text.contains("Tail tolerance") && text.contains("work amp"));
    }

    /// The fusion sweep covers every requested batch size, its widths
    /// fold up, and both paths stay bit-exact (asserted inside the
    /// sweep itself — reaching the rows at all proves it held).
    #[test]
    fn fusion_sweep_rows_are_well_formed() {
        let rows = run_fusion_sweep(&[1, 4, 16], 3);
        assert_eq!(rows.len(), 3);
        for (row, &batch) in rows.iter().zip(&[1usize, 4, 16]) {
            assert_eq!(row.batch, batch);
            assert_eq!(row.total_n, batch * row.n_per_part);
            assert!(row.fused_assemble_ns > 0.0);
            assert!(row.unfused_assemble_ns > 0.0);
            assert!(row.speedup > 0.0);
        }
    }

    /// The hedge sweep's two rows carry the §17 acceptance shape:
    /// hedged p99 at or below the unhedged p99, work amplification
    /// within the retry budget, and the tolerance machinery visibly
    /// engaged against the straggler.
    #[test]
    fn hedge_sweep_bounds_tail_within_budget() {
        let rows = run_hedge_sweep(&GpuSpec::a100());
        assert_eq!(rows.len(), 2);
        let (unhedged, hedged) = (&rows[0], &rows[1]);
        assert_eq!(unhedged.policy, "unhedged");
        assert_eq!(hedged.policy, "hedged");
        assert_eq!(unhedged.completed, hedged.completed, "same offered load");
        assert_eq!(unhedged.hedges, 0);
        assert_eq!(unhedged.work_amplification, 1.0);
        assert!(
            hedged.hedges > 0 || hedged.health_ejections > 0,
            "tail tolerance engaged"
        );
        assert!(
            hedged.p99_latency_cycles <= 0.5 * unhedged.p99_latency_cycles,
            "hedged p99 {:.0} vs unhedged {:.0}",
            hedged.p99_latency_cycles,
            unhedged.p99_latency_cycles
        );
        assert!(
            hedged.work_amplification <= 1.0 + hedged.budget_fraction,
            "work amplification {:.3} over budget",
            hedged.work_amplification
        );
    }

    #[test]
    fn shard_sweep_scales_tail_latency() {
        let result = run(&GpuSpec::a100(), 16, &tiny_sweep());
        assert_eq!(result.shard_rows.len(), 2);
        let one = &result.shard_rows[0];
        let four = &result.shard_rows[1];
        assert_eq!(one.shards, 1);
        assert_eq!(four.shards, 4);
        for row in &result.shard_rows {
            assert_eq!(row.completed, 600, "no drops at this load");
            assert_eq!(row.per_shard_submitted.len(), row.shards);
            assert_eq!(
                row.per_shard_completed.iter().sum::<u64>(),
                row.completed,
                "lane counts fold to the total"
            );
        }
        assert!(
            four.p99_latency_cycles < one.p99_latency_cycles,
            "4-shard p99 {} must beat 1-shard p99 {} at the same offered load",
            four.p99_latency_cycles,
            one.p99_latency_cycles
        );
        assert!(four.promotions > 0, "zipf head went hot");
    }
}
