//! Table 2: average and maximum speedup of Jigsaw over cuBLAS and the
//! SOTA SpMM implementations, per sparsity level and vector width.

use gpu_sim::GpuSpec;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::runner::{compare_all, render_table, Comparison};
use crate::suite::{workloads, Workload};

/// Methods reported in Table 2, in column order.
pub const METHODS: &[&str] = &["cuBLAS", "CLASP", "Magicube", "Sputnik", "SparTA"];

/// The paper's Table 2 reference numbers `(avg, max)` indexed by
/// `(sparsity, v, method)` — used by EXPERIMENTS.md for side-by-side
/// comparison.
// Some measured speedups happen to equal π to two decimals.
#[allow(clippy::approx_constant)]
pub const PAPER_TABLE2: &[(f64, usize, &str, f64, f64)] = &[
    (0.80, 2, "cuBLAS", 0.77, 1.27),
    (0.80, 4, "cuBLAS", 0.89, 1.34),
    (0.80, 8, "cuBLAS", 1.00, 1.67),
    (0.90, 2, "cuBLAS", 1.00, 1.58),
    (0.90, 4, "cuBLAS", 1.13, 1.95),
    (0.90, 8, "cuBLAS", 1.35, 1.85),
    (0.95, 2, "cuBLAS", 1.19, 1.73),
    (0.95, 4, "cuBLAS", 1.44, 2.83),
    (0.95, 8, "cuBLAS", 1.78, 4.12),
    (0.98, 2, "cuBLAS", 1.43, 1.89),
    (0.98, 4, "cuBLAS", 1.72, 4.14),
    (0.98, 8, "cuBLAS", 2.14, 5.45),
    (0.80, 2, "CLASP", 1.13, 1.97),
    (0.80, 4, "CLASP", 1.32, 1.90),
    (0.80, 8, "CLASP", 1.38, 1.90),
    (0.90, 2, "CLASP", 1.09, 1.53),
    (0.90, 4, "CLASP", 1.26, 1.60),
    (0.90, 8, "CLASP", 1.36, 1.89),
    (0.95, 2, "CLASP", 1.08, 1.55),
    (0.95, 4, "CLASP", 1.28, 1.62),
    (0.95, 8, "CLASP", 1.34, 1.77),
    (0.98, 2, "CLASP", 1.15, 1.69),
    (0.98, 4, "CLASP", 1.28, 1.76),
    (0.98, 8, "CLASP", 1.31, 1.85),
    (0.80, 2, "Magicube", 2.90, 6.47),
    (0.80, 4, "Magicube", 2.68, 6.25),
    (0.80, 8, "Magicube", 1.75, 2.50),
    (0.90, 2, "Magicube", 3.09, 8.62),
    (0.90, 4, "Magicube", 2.77, 6.14),
    (0.90, 8, "Magicube", 1.71, 2.44),
    (0.95, 2, "Magicube", 3.03, 7.40),
    (0.95, 4, "Magicube", 3.01, 7.08),
    (0.95, 8, "Magicube", 1.70, 2.56),
    (0.98, 2, "Magicube", 3.31, 8.77),
    (0.98, 4, "Magicube", 3.22, 8.43),
    (0.98, 8, "Magicube", 1.70, 2.82),
    (0.80, 2, "Sputnik", 1.91, 3.84),
    (0.80, 4, "Sputnik", 2.23, 4.49),
    (0.80, 8, "Sputnik", 2.71, 5.25),
    (0.90, 2, "Sputnik", 1.65, 2.43),
    (0.90, 4, "Sputnik", 1.91, 3.46),
    (0.90, 8, "Sputnik", 2.39, 4.65),
    (0.95, 2, "Sputnik", 1.46, 2.09),
    (0.95, 4, "Sputnik", 1.74, 2.60),
    (0.95, 8, "Sputnik", 2.11, 3.83),
    (0.98, 2, "Sputnik", 1.40, 1.73),
    (0.98, 4, "Sputnik", 1.60, 2.38),
    (0.98, 8, "Sputnik", 1.87, 3.68),
    (0.80, 2, "SparTA", 1.56, 3.14),
    (0.80, 4, "SparTA", 1.71, 3.16),
    (0.80, 8, "SparTA", 1.77, 2.85),
    (0.90, 2, "SparTA", 1.89, 3.15),
    (0.90, 4, "SparTA", 1.99, 2.98),
    (0.90, 8, "SparTA", 2.17, 3.09),
    (0.95, 2, "SparTA", 2.18, 3.04),
    (0.95, 4, "SparTA", 2.43, 3.16),
    (0.95, 8, "SparTA", 2.68, 3.59),
    (0.98, 2, "SparTA", 2.56, 3.46),
    (0.98, 4, "SparTA", 2.81, 3.61),
    (0.98, 8, "SparTA", 3.09, 4.46),
];

/// One Table 2 cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Cell {
    /// Sparsity level.
    pub sparsity: f64,
    /// Vector width.
    pub v: usize,
    /// Baseline name.
    pub method: String,
    /// Average speedup over the suite × N grid.
    pub avg: f64,
    /// Maximum speedup.
    pub max: f64,
}

/// Table 2 result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table2 {
    /// All cells.
    pub cells: Vec<Cell>,
    /// Raw per-workload comparisons (reused by Figure 10).
    pub comparisons: Vec<Comparison>,
}

/// Runs Table 2 (and gathers the data Figure 10 re-slices).
pub fn run(spec: &GpuSpec) -> Table2 {
    let jobs: Vec<(Workload, usize)> = workloads()
        .into_iter()
        .flat_map(|w| dlmc::N_SWEEP.iter().map(move |&n| (w, n)))
        .collect();
    let comparisons: Vec<Comparison> = jobs
        .par_iter()
        .map(|(w, n)| compare_all(w, *n, spec))
        .collect();

    let mut cells = Vec::new();
    for &sparsity in dlmc::SPARSITY_LEVELS {
        for &v in dlmc::VECTOR_WIDTHS {
            for &method in METHODS {
                let speedups: Vec<f64> = comparisons
                    .iter()
                    .filter(|c| (c.sparsity - sparsity).abs() < 1e-9 && c.v == v)
                    .filter_map(|c| c.speedup_over(method))
                    .collect();
                if speedups.is_empty() {
                    continue;
                }
                let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
                let max = speedups.iter().copied().fold(f64::MIN, f64::max);
                cells.push(Cell {
                    sparsity,
                    v,
                    method: method.to_string(),
                    avg,
                    max,
                });
            }
        }
    }
    Table2 { cells, comparisons }
}

impl Table2 {
    /// Cell lookup.
    pub fn cell(&self, sparsity: f64, v: usize, method: &str) -> Option<&Cell> {
        self.cells
            .iter()
            .find(|c| (c.sparsity - sparsity).abs() < 1e-9 && c.v == v && c.method == method)
    }

    /// Renders the paper-style table.
    pub fn to_text(&self) -> String {
        let header: Vec<String> = ["Sparsity", "v"]
            .iter()
            .map(|s| s.to_string())
            .chain(METHODS.iter().map(|m| m.to_string()))
            .collect();
        let mut rows = Vec::new();
        for &sparsity in dlmc::SPARSITY_LEVELS {
            for &v in dlmc::VECTOR_WIDTHS {
                let mut row = vec![format!("{:.0}%", sparsity * 100.0), v.to_string()];
                for &method in METHODS {
                    match self.cell(sparsity, v, method) {
                        Some(c) => row.push(format!("{:.2}/{:.2}", c.avg, c.max)),
                        None => row.push("-".to_string()),
                    }
                }
                rows.push(row);
            }
        }
        format!(
            "Table 2 — Jigsaw speedup avg/max over each baseline\n{}",
            render_table(&header, &rows)
        )
    }
}
