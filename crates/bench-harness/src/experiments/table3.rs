//! Table 3: Jigsaw vs VENOM and cuSparseLt on matrices already pruned
//! to VENOM's V:N:M pattern (no reordering needed) — paper §4.5.

use gpu_sim::GpuSpec;
use jigsaw_core::JigsawSpmm;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use baselines::{CuSparseLt, SpmmKernel, Venom};
use dlmc::{venom_two_level, ValueDist};

use crate::runner::render_table;
use crate::suite::geomean;

/// VENOM vector lengths evaluated (the paper's columns).
pub const V_VALUES: &[usize] = &[32, 64, 128];

/// `(sparsity, m_blk)` pairs: VENOM's two levels keep 2-of-`m_blk`
/// vector columns and 2:4 scalars inside, so sparsity =
/// `1 - (2/m_blk)/2 = 1 - 1/m_blk`.
pub const SPARSITY_MBLK: &[(f64, usize)] = &[(0.80, 5), (0.90, 10), (0.95, 20), (0.98, 50)];

/// The paper's Table 3 `(sparsity, v, method, avg_speedup)`.
pub const PAPER_TABLE3: &[(f64, usize, &str, f64)] = &[
    (0.80, 32, "VENOM", 1.91),
    (0.80, 64, "VENOM", 1.63),
    (0.80, 128, "VENOM", 1.50),
    (0.90, 32, "VENOM", 1.53),
    (0.90, 64, "VENOM", 1.37),
    (0.90, 128, "VENOM", 1.33),
    (0.95, 32, "VENOM", 1.32),
    (0.95, 64, "VENOM", 1.22),
    (0.95, 128, "VENOM", 1.21),
    (0.98, 32, "VENOM", 1.22),
    (0.98, 64, "VENOM", 1.14),
    (0.98, 128, "VENOM", 1.15),
    (0.80, 32, "cuSparseLt", 2.10),
    (0.80, 64, "cuSparseLt", 2.12),
    (0.80, 128, "cuSparseLt", 2.01),
    (0.90, 32, "cuSparseLt", 2.16),
    (0.90, 64, "cuSparseLt", 2.19),
    (0.90, 128, "cuSparseLt", 2.08),
    (0.95, 32, "cuSparseLt", 2.19),
    (0.95, 64, "cuSparseLt", 2.21),
    (0.95, 128, "cuSparseLt", 2.15),
    (0.98, 32, "cuSparseLt", 2.31),
    (0.98, 64, "cuSparseLt", 2.32),
    (0.98, 128, "cuSparseLt", 2.28),
];

/// One Table 3 cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Cell {
    /// Sparsity level.
    pub sparsity: f64,
    /// VENOM vector length V.
    pub v: usize,
    /// Baseline name.
    pub method: String,
    /// Average Jigsaw speedup.
    pub avg: f64,
}

/// Table 3 result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table3 {
    /// All cells.
    pub cells: Vec<Cell>,
}

/// Shapes evaluated (rows divide by V up to 128; K divides by every
/// m_blk and keeps the compacted width a multiple of 4).
const SHAPES: &[(usize, usize)] = &[(1024, 1000), (2048, 2000)];
/// Output width.
const N: usize = 512;

/// Runs the experiment.
pub fn run(spec: &GpuSpec) -> Table3 {
    let grid: Vec<(f64, usize, usize)> = SPARSITY_MBLK
        .iter()
        .flat_map(|&(s, m_blk)| V_VALUES.iter().map(move |&v| (s, m_blk, v)))
        .collect();
    let cells: Vec<Vec<Cell>> = grid
        .par_iter()
        .map(|&(sparsity, m_blk, v)| {
            let mut venom_speedups = Vec::new();
            let mut lt_speedups = Vec::new();
            for &(rows, cols) in SHAPES {
                let (full, compact) = venom_two_level(
                    rows,
                    cols,
                    v,
                    2,
                    m_blk,
                    ValueDist::Ones,
                    5_500 + v as u64 + m_blk as u64,
                );
                // Jigsaw consumes the full layout directly (reorder
                // skips the pruned columns); VENOM's kernel runs its
                // native format; cuSparseLt takes the compacted
                // kept-column matrix, which is plain 2:4.
                let (jig, _) =
                    JigsawSpmm::plan_tuned(&full, N, spec).expect("candidate set is non-empty");
                let tj = jig.simulate(N, spec).duration_cycles;
                let tv = Venom::plan(&full, v, 2, m_blk)
                    .simulate(N, spec)
                    .duration_cycles;
                let tl = CuSparseLt::plan(&compact)
                    .expect("compacted VENOM matrix is 2:4")
                    .simulate(N, spec)
                    .duration_cycles;
                venom_speedups.push(tv / tj);
                lt_speedups.push(tl / tj);
            }
            vec![
                Cell {
                    sparsity,
                    v,
                    method: "VENOM".to_string(),
                    avg: geomean(&venom_speedups),
                },
                Cell {
                    sparsity,
                    v,
                    method: "cuSparseLt".to_string(),
                    avg: geomean(&lt_speedups),
                },
            ]
        })
        .collect();
    Table3 {
        cells: cells.into_iter().flatten().collect(),
    }
}

impl Table3 {
    /// Cell lookup.
    pub fn cell(&self, sparsity: f64, v: usize, method: &str) -> Option<&Cell> {
        self.cells
            .iter()
            .find(|c| (c.sparsity - sparsity).abs() < 1e-9 && c.v == v && c.method == method)
    }

    /// Renders the paper-style table.
    pub fn to_text(&self) -> String {
        let mut header = vec!["Sparsity".to_string()];
        for m in ["VENOM", "cuSparseLt"] {
            for v in V_VALUES {
                header.push(format!("{m} V={v}"));
            }
        }
        let rows: Vec<Vec<String>> = SPARSITY_MBLK
            .iter()
            .map(|&(s, _)| {
                let mut row = vec![format!("{:.0}%", s * 100.0)];
                for m in ["VENOM", "cuSparseLt"] {
                    for &v in V_VALUES {
                        row.push(match self.cell(s, v, m) {
                            Some(c) => format!("{:.2}x", c.avg),
                            None => "-".to_string(),
                        });
                    }
                }
                row
            })
            .collect();
        format!(
            "Table 3 — Jigsaw speedup on VENOM-pruned matrices\n{}",
            render_table(&header, &rows)
        )
    }
}
