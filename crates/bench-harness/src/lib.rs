//! # bench-harness — experiment reproduction harness
//!
//! One binary per table/figure of the paper's evaluation (see
//! DESIGN.md §5):
//!
//! * `fig1` — native 2:4 satisfaction rates on the DLMC-style suite,
//! * `table2` — avg/max Jigsaw speedups vs cuBLAS and the SOTA SpMM
//!   baselines across sparsity × vector width,
//! * `fig10` — speedup-vs-N series,
//! * `fig11` — multi-granularity reorder success rates,
//! * `fig12` — the v0..v4 ablation with Nsight-style counters,
//! * `table3` — VENOM / cuSparseLt comparison on pre-pruned matrices,
//! * `overhead` — §4.6 storage-footprint analysis,
//! * `all_experiments` — everything above plus EXPERIMENTS.md rewrite.
//!
//! Set `JIGSAW_SUITE=full` for the full transformer shape table.

pub mod experiments;
pub mod obs_export;
pub mod report;
pub mod runner;
pub mod suite;
