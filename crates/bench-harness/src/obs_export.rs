//! Structured benchmark export: every experiment binary can emit a
//! `results/BENCH_<experiment>.json` document that bundles the
//! experiment's own result data with a snapshot of the observability
//! registry (counters, gauges, traces) taken through the
//! [`jigsaw_obs::JsonSink`].
//!
//! The document schema is versioned and its top-level keys are stable
//! (`schema`, `experiment`, `data`, `observability`, in that order),
//! so downstream tooling — and the `check_bench` CI binary — can parse
//! any emitted file with [`jigsaw_obs::parse`] alone.

use std::io;
use std::path::{Path, PathBuf};

use jigsaw_obs::{Json, JsonSink, Sink};
use serde::Serialize;

/// Schema tag written into every exported document.
pub const BENCH_SCHEMA: &str = "jigsaw-bench/v1";

/// The four stable top-level keys of a bench document, in order.
pub const BENCH_KEYS: [&str; 4] = ["schema", "experiment", "data", "observability"];

/// Converts any serializable experiment result into the zero-dep
/// [`Json`] model by rendering it with the workspace serializer and
/// re-parsing. Falls back to an empty object if the value does not
/// render (the shim serializer is infallible in practice).
pub fn to_obs_json<T: Serialize>(value: &T) -> Json {
    serde_json::to_string(value)
        .ok()
        .and_then(|text| jigsaw_obs::parse(&text).ok())
        .unwrap_or_else(Json::obj)
}

/// Builds the versioned bench document for `experiment`: the
/// experiment's result under `data`, plus the current global
/// observability snapshot under `observability`, exported through the
/// JSON sink.
pub fn bench_doc<T: Serialize>(experiment: &str, value: &T) -> Json {
    let observability = JsonSink
        .emit(&jigsaw_obs::global().snapshot())
        .and_then(|text| jigsaw_obs::parse(&text).ok())
        .unwrap_or_else(Json::obj);
    Json::obj()
        .with("schema", BENCH_SCHEMA)
        .with("experiment", experiment)
        .with("data", to_obs_json(value))
        .with("observability", observability)
}

/// Writes `BENCH_<experiment>.json` under `dir`, returning the path.
pub fn write_bench_json_to<T: Serialize>(
    dir: &Path,
    experiment: &str,
    value: &T,
) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("BENCH_{experiment}.json"));
    std::fs::write(&path, bench_doc(experiment, value).to_string())?;
    Ok(path)
}

/// Writes `results/BENCH_<experiment>.json` (the standard location the
/// experiment binaries and CI agree on).
pub fn write_bench_json<T: Serialize>(experiment: &str, value: &T) -> io::Result<PathBuf> {
    write_bench_json_to(Path::new("results"), experiment, value)
}

/// Validates one emitted bench document: parses it with the zero-dep
/// parser and checks the stable schema. Returns a human-readable
/// problem description on failure.
pub fn check_bench_text(text: &str) -> Result<String, String> {
    let doc = jigsaw_obs::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    if doc.keys() != BENCH_KEYS {
        return Err(format!(
            "unstable top-level keys {:?}, expected {:?}",
            doc.keys(),
            BENCH_KEYS
        ));
    }
    match doc.get("schema").and_then(|s| s.as_str()) {
        Some(s) if s == BENCH_SCHEMA => {}
        other => return Err(format!("schema {other:?}, expected {BENCH_SCHEMA:?}")),
    }
    let experiment = doc
        .get("experiment")
        .and_then(|e| e.as_str())
        .ok_or_else(|| "missing experiment name".to_string())?
        .to_string();
    let obs = doc
        .get("observability")
        .ok_or_else(|| "missing observability section".to_string())?;
    if obs.keys() != ["counters", "gauges", "traces"] {
        return Err(format!(
            "observability keys {:?}, expected [counters, gauges, traces]",
            obs.keys()
        ));
    }
    Ok(experiment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    #[derive(Serialize)]
    struct Toy {
        speedup: f64,
        shapes: Vec<u32>,
        label: String,
    }

    fn toy() -> Toy {
        Toy {
            speedup: 1.5,
            shapes: vec![64, 128],
            label: "t\"est".to_string(),
        }
    }

    #[test]
    fn bench_doc_has_stable_keys_and_round_trips() {
        jigsaw_obs::global().counter("bench.unit").inc();
        let text = bench_doc("unit", &toy()).to_string();
        let doc = jigsaw_obs::parse(&text).expect("emitted JSON parses");
        assert_eq!(doc.keys(), BENCH_KEYS);
        assert_eq!(
            doc.get("schema").unwrap().as_str(),
            Some(BENCH_SCHEMA),
            "versioned schema tag"
        );
        let data = doc.get("data").unwrap();
        assert_eq!(data.get("speedup").unwrap().as_f64(), Some(1.5));
        assert_eq!(data.get("label").unwrap().as_str(), Some("t\"est"));
        let counters = doc.get("observability").unwrap().get("counters").unwrap();
        assert!(counters.get("bench.unit").unwrap().as_u64() >= Some(1));
    }

    #[test]
    fn check_bench_accepts_real_docs_and_rejects_garbage() {
        let good = bench_doc("unit", &toy()).to_string();
        assert_eq!(check_bench_text(&good), Ok("unit".to_string()));
        assert!(check_bench_text("{not json").is_err());
        assert!(
            check_bench_text("{\"schema\": \"jigsaw-bench/v1\"}").is_err(),
            "missing keys rejected"
        );
        let wrong_schema = good.replace("jigsaw-bench/v1", "jigsaw-bench/v0");
        assert!(check_bench_text(&wrong_schema).is_err());
    }

    #[test]
    fn write_bench_json_emits_parseable_file() {
        let dir = std::env::temp_dir().join("jigsaw-bench-obs-test");
        let path = write_bench_json_to(&dir, "unit_write", &toy()).expect("written");
        assert!(path.ends_with("BENCH_unit_write.json"));
        let text = std::fs::read_to_string(&path).expect("readable");
        assert_eq!(check_bench_text(&text), Ok("unit_write".to_string()));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
