//! Structured benchmark export: every experiment binary can emit a
//! `results/BENCH_<experiment>.json` document that bundles the
//! experiment's own result data with a snapshot of the observability
//! registry (counters, gauges, traces) taken through the
//! [`jigsaw_obs::JsonSink`].
//!
//! The document schema is versioned and its top-level keys are stable
//! (`schema`, `experiment`, `data`, `observability`, in that order),
//! so downstream tooling — and the `check_bench` CI binary — can parse
//! any emitted file with [`jigsaw_obs::parse`] alone.

use std::io;
use std::path::{Path, PathBuf};

use jigsaw_obs::{Json, JsonSink, Sink};
use serde::Serialize;

/// Schema tag written into every exported document.
pub const BENCH_SCHEMA: &str = "jigsaw-bench/v1";

/// The four stable top-level keys of a bench document, in order.
pub const BENCH_KEYS: [&str; 4] = ["schema", "experiment", "data", "observability"];

/// Converts any serializable experiment result into the zero-dep
/// [`Json`] model by rendering it with the workspace serializer and
/// re-parsing. Falls back to an empty object if the value does not
/// render (the shim serializer is infallible in practice).
pub fn to_obs_json<T: Serialize>(value: &T) -> Json {
    serde_json::to_string(value)
        .ok()
        .and_then(|text| jigsaw_obs::parse(&text).ok())
        .unwrap_or_else(Json::obj)
}

/// Builds the versioned bench document for `experiment`: the
/// experiment's result under `data`, plus the current global
/// observability snapshot under `observability`, exported through the
/// JSON sink.
pub fn bench_doc<T: Serialize>(experiment: &str, value: &T) -> Json {
    let observability = JsonSink
        .emit(&jigsaw_obs::global().snapshot())
        .and_then(|text| jigsaw_obs::parse(&text).ok())
        .unwrap_or_else(Json::obj);
    Json::obj()
        .with("schema", BENCH_SCHEMA)
        .with("experiment", experiment)
        .with("data", to_obs_json(value))
        .with("observability", observability)
}

/// Writes `BENCH_<experiment>.json` under `dir`, returning the path.
pub fn write_bench_json_to<T: Serialize>(
    dir: &Path,
    experiment: &str,
    value: &T,
) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("BENCH_{experiment}.json"));
    std::fs::write(&path, bench_doc(experiment, value).to_string())?;
    Ok(path)
}

/// Writes `results/BENCH_<experiment>.json` (the standard location the
/// experiment binaries and CI agree on).
pub fn write_bench_json<T: Serialize>(experiment: &str, value: &T) -> io::Result<PathBuf> {
    write_bench_json_to(Path::new("results"), experiment, value)
}

/// Validates one emitted bench document: parses it with the zero-dep
/// parser and checks the stable schema. Returns a human-readable
/// problem description on failure.
pub fn check_bench_text(text: &str) -> Result<String, String> {
    let doc = jigsaw_obs::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    if doc.keys() != BENCH_KEYS {
        return Err(format!(
            "unstable top-level keys {:?}, expected {:?}",
            doc.keys(),
            BENCH_KEYS
        ));
    }
    match doc.get("schema").and_then(|s| s.as_str()) {
        Some(s) if s == BENCH_SCHEMA => {}
        other => return Err(format!("schema {other:?}, expected {BENCH_SCHEMA:?}")),
    }
    let experiment = doc
        .get("experiment")
        .and_then(|e| e.as_str())
        .ok_or_else(|| "missing experiment name".to_string())?
        .to_string();
    let obs = doc
        .get("observability")
        .ok_or_else(|| "missing observability section".to_string())?;
    if obs.keys() != ["counters", "gauges", "traces"] {
        return Err(format!(
            "observability keys {:?}, expected [counters, gauges, traces]",
            obs.keys()
        ));
    }
    if experiment == "exec" {
        // Exec exports carry one row per (shape, N, microkernel
        // variant, selection). Every row needs the perf-gate keys; the
        // `variant` and `selection` columns are optional (legacy docs
        // predate the dispatch and tuning layers) but when present
        // must name a registry variant / a known selection mode, and a
        // per-variant doc must include the portable `narrow_n` variant
        // — it has no ISA gate, so its absence means the bench sweep
        // silently shrank.
        let rows = doc
            .get("data")
            .and_then(|d| d.get("shapes"))
            .map(|r| r.items().to_vec())
            .filter(|r| !r.is_empty())
            .ok_or_else(|| "exec: data.shapes missing or empty".to_string())?;
        let mut saw_variant = false;
        let mut saw_narrow = false;
        for row in &rows {
            for key in ["m", "k", "n", "speedup"] {
                if row.get(key).is_none() {
                    return Err(format!("exec shape row missing key {key:?}"));
                }
            }
            if let Some(variant) = row.get("variant") {
                let name = variant
                    .as_str()
                    .ok_or_else(|| "exec: variant must be a string".to_string())?;
                if jigsaw_core::KernelKind::parse(name).is_none() {
                    return Err(format!("exec: unknown microkernel variant {name:?}"));
                }
                saw_variant = true;
                saw_narrow |= name == "narrow_n";
            }
            if let Some(selection) = row.get("selection") {
                let mode = selection
                    .as_str()
                    .ok_or_else(|| "exec: selection must be a string".to_string())?;
                if mode != "static" && mode != "tuned" {
                    return Err(format!(
                        "exec: unknown selection mode {mode:?}, expected \"static\" or \"tuned\""
                    ));
                }
            }
            if let Some(fusion) = row.get("fusion") {
                let mode = fusion
                    .as_str()
                    .ok_or_else(|| "exec: fusion must be a string".to_string())?;
                if mode != "on" && mode != "off" {
                    return Err(format!(
                        "exec: unknown fusion mode {mode:?}, expected \"on\" or \"off\""
                    ));
                }
            }
        }
        if saw_variant && !saw_narrow {
            return Err(
                "exec: per-variant doc has no narrow_n rows — the register-blocked \
                 variant is portable and must be benched"
                    .to_string(),
            );
        }
    }
    if experiment == "serving" {
        // The serving export carries the resilience columns (DESIGN.md
        // §12) on every policy row; losing one is a schema regression.
        let rows = doc
            .get("data")
            .and_then(|d| d.get("rows"))
            .map(|r| r.items().to_vec())
            .filter(|r| !r.is_empty())
            .ok_or_else(|| "serving: data.rows missing or empty".to_string())?;
        for row in &rows {
            for key in ["failed", "shed_expired", "queue_depth", "breakers_open"] {
                if row.get(key).is_none() {
                    return Err(format!("serving row missing resilience key {key:?}"));
                }
            }
        }
        // Since the shard router landed (DESIGN.md §14), the export
        // also carries one row per shard count with the per-shard
        // columns; an empty or truncated sweep is a schema regression.
        let shard_rows = doc
            .get("data")
            .and_then(|d| d.get("shard_rows"))
            .map(|r| r.items().to_vec())
            .filter(|r| !r.is_empty())
            .ok_or_else(|| "serving: data.shard_rows missing or empty".to_string())?;
        for row in &shard_rows {
            for key in [
                "shards",
                "completed",
                "forwarded",
                "stolen",
                "breaker_rejects",
                "shed_expired",
                "failed",
                "p50_latency_cycles",
                "p95_latency_cycles",
                "p99_latency_cycles",
                "per_shard_submitted",
                "per_shard_completed",
            ] {
                if row.get(key).is_none() {
                    return Err(format!("serving shard row missing key {key:?}"));
                }
            }
        }
        // Since fused batch assembly landed (DESIGN.md §16), the
        // export also carries one fusion row per batch size; these are
        // the rows `check_bench --perf` gates fused-vs-two-touch on.
        let fusion_rows = doc
            .get("data")
            .and_then(|d| d.get("fusion_rows"))
            .map(|r| r.items().to_vec())
            .filter(|r| !r.is_empty())
            .ok_or_else(|| "serving: data.fusion_rows missing or empty".to_string())?;
        for row in &fusion_rows {
            for key in [
                "batch",
                "k",
                "total_n",
                "fused_assemble_ns",
                "unfused_assemble_ns",
                "speedup",
            ] {
                if row.get(key).is_none() {
                    return Err(format!("serving fusion row missing key {key:?}"));
                }
            }
        }
        // Since tail tolerance landed (DESIGN.md §17), the export also
        // carries the unhedged/hedged straggler pair; these are the
        // rows `check_bench --perf` gates hedging on.
        let hedge_rows = doc
            .get("data")
            .and_then(|d| d.get("hedge_rows"))
            .map(|r| r.items().to_vec())
            .filter(|r| !r.is_empty())
            .ok_or_else(|| "serving: data.hedge_rows missing or empty".to_string())?;
        for row in &hedge_rows {
            for key in [
                "policy",
                "shards",
                "straggler_factor",
                "completed",
                "hedges",
                "health_ejections",
                "p50_latency_cycles",
                "p95_latency_cycles",
                "p99_latency_cycles",
                "busy_cycles",
                "work_amplification",
                "budget_fraction",
            ] {
                if row.get(key).is_none() {
                    return Err(format!("serving hedge row missing key {key:?}"));
                }
            }
        }
        for policy in ["unhedged", "hedged"] {
            if !hedge_rows
                .iter()
                .any(|r| r.get("policy").and_then(|p| p.as_str()) == Some(policy))
            {
                return Err(format!("serving: hedge_rows missing {policy:?} row"));
            }
        }
    }
    if experiment == "cache_ablation" {
        // The cache ablation (DESIGN.md §18) carries one row per
        // (strategy, N, cache mode). Both cache modes must be present
        // — the off rows are the bit-replay fixture, the on rows are
        // the ablation — and the cache-on L2 hit rates must actually
        // spread: a flat column means the hierarchy model degenerated.
        let rows = doc
            .get("data")
            .and_then(|d| d.get("rows"))
            .map(|r| r.items().to_vec())
            .filter(|r| !r.is_empty())
            .ok_or_else(|| "cache_ablation: data.rows missing or empty".to_string())?;
        let mut on_hit_rates = Vec::new();
        let mut saw_off = false;
        for row in &rows {
            for key in [
                "strategy",
                "n",
                "cache",
                "duration_cycles",
                "l1_hit_rate",
                "l2_hit_rate",
                "l1_sector_reads",
                "l2_sector_reads",
                "mshr_merges",
            ] {
                if row.get(key).is_none() {
                    return Err(format!("cache_ablation row missing key {key:?}"));
                }
            }
            match row.get("cache").and_then(|c| c.as_str()) {
                Some("off") => saw_off = true,
                Some("on") => {
                    let hit = row
                        .get("l2_hit_rate")
                        .and_then(|h| h.as_f64())
                        .ok_or_else(|| "cache_ablation: l2_hit_rate not a number".to_string())?;
                    on_hit_rates.push(hit);
                }
                other => {
                    return Err(format!(
                        "cache_ablation: cache mode {other:?}, expected \"on\" or \"off\""
                    ))
                }
            }
        }
        if !saw_off || on_hit_rates.is_empty() {
            return Err("cache_ablation: rows must cover both cache modes".to_string());
        }
        let max = on_hit_rates.iter().copied().fold(0.0, f64::max);
        let min = on_hit_rates.iter().copied().fold(1.0, f64::min);
        if max - min < 0.05 {
            return Err(format!(
                "cache_ablation: L2 hit rates span only {min:.3}..{max:.3} — the \
                 cache-on sweep no longer differentiates plans"
            ));
        }
    }
    Ok(experiment)
}

/// Perf-regression gate over two bench documents of the same
/// experiment: the committed `baseline` and a freshly measured
/// `candidate`.
///
/// For **exec** documents, the gated quantity is the *speedup ratio*
/// (`data.shapes[].speedup`: compiled over `execute_fast`, both timed
/// in the same process), which is stable across host speeds — absolute
/// wall times are deliberately not compared. Every baseline row gates
/// against its matching candidate row:
///
/// * rows match on `(m, k, n, variant, selection, fusion)`, where a
///   missing `variant` column (legacy single-variant docs) reads as
///   `avx2_fma`, a missing `selection` reads as `static`, and a
///   missing `fusion` reads as `off`; `selection=tuned` rows match on
///   `(m, k, n)` alone, because the cost table is free to pick a
///   different winning variant on a different host,
/// * a baseline row whose variant's ISA the gating host lacks (e.g. an
///   `avx512f` row from an exotic baseline host) is skipped with a
///   note, never an error — baselines regenerated on wide hosts do
///   not move the bar for narrow ones,
/// * each matched candidate speedup must be at least `(1 - tolerance)`
///   × its baseline row's, and the unfused `avx2_fma` static rows must
///   additionally clear the baseline's committed
///   `data.required_speedup` absolute floor (the one ISA every gating
///   host has; the portable variants have no absolute floor because
///   their ratios legitimately sit below it).
///
/// For **serving** documents, the gate runs over `data.fusion_rows`:
/// each batch size's fused-over-two-touch assembly speedup must stay
/// within `(1 - tolerance)` of its baseline row, and at batch ≥ 4 it
/// must additionally clear an absolute 1.0× floor — fused assembly
/// slower than concat + panelize at real batch widths is a regression
/// in the one copy the fusion exists to remove.
pub fn check_perf_text(baseline: &str, candidate: &str, tolerance: f64) -> Result<String, String> {
    if !(0.0..1.0).contains(&tolerance) {
        return Err(format!("tolerance {tolerance} outside [0, 1)"));
    }
    let base_exp = check_bench_text(baseline)
        .map_err(|e| format!("baseline is not a valid bench doc: {e}"))?;
    let cand_exp = check_bench_text(candidate)
        .map_err(|e| format!("candidate is not a valid bench doc: {e}"))?;
    if base_exp != cand_exp {
        return Err(format!(
            "experiment mismatch: baseline is {base_exp:?}, candidate is {cand_exp:?}"
        ));
    }
    if base_exp == "serving" {
        return check_perf_serving(baseline, candidate, tolerance);
    }
    // `(m, k, n, variant-or-tuned, selection, fusion)` identity of one
    // row.
    type RowKey = (u64, u64, u64, String, String, String);
    let key = |row: &Json| -> Option<RowKey> {
        let selection = row
            .get("selection")
            .and_then(|s| s.as_str())
            .unwrap_or("static")
            .to_string();
        let variant = if selection == "tuned" {
            // Tuned rows are matched by selection mode, not by the
            // variant the table happened to pick.
            "tuned".to_string()
        } else {
            row.get("variant")
                .and_then(|v| v.as_str())
                .unwrap_or("avx2_fma")
                .to_string()
        };
        let fusion = row
            .get("fusion")
            .and_then(|f| f.as_str())
            .unwrap_or("off")
            .to_string();
        Some((
            row.get("m")?.as_u64()?,
            row.get("k")?.as_u64()?,
            row.get("n")?.as_u64()?,
            variant,
            selection,
            fusion,
        ))
    };
    let shapes = |text: &str, role: &str| -> Result<(Json, Vec<Json>), String> {
        let doc = jigsaw_obs::parse(text).map_err(|e| format!("{role}: {e}"))?;
        let data = doc
            .get("data")
            .cloned()
            .ok_or_else(|| format!("{role}: missing data"))?;
        let shapes: Vec<Json> = data
            .get("shapes")
            .map(|s| s.items().to_vec())
            .filter(|s| !s.is_empty())
            .ok_or_else(|| format!("{role}: data.shapes missing or empty"))?;
        Ok((data, shapes))
    };
    let (base_data, base_shapes) = shapes(baseline, "baseline")?;
    let (_, cand_shapes) = shapes(candidate, "candidate")?;
    let floor = base_data
        .get("required_speedup")
        .and_then(|f| f.as_f64())
        .ok_or_else(|| "baseline: missing data.required_speedup".to_string())?;

    let mut report = Vec::new();
    let mut gated_any = false;
    for base in &base_shapes {
        let (m, k, n, variant, selection, fusion) =
            key(base).ok_or("baseline: shape missing m/k/n")?;
        let base_speedup = base
            .get("speedup")
            .and_then(|s| s.as_f64())
            .ok_or("baseline: shape missing speedup")?;
        if variant != "tuned" {
            let kind = jigsaw_core::KernelKind::parse(&variant)
                .ok_or_else(|| format!("baseline: unknown variant {variant:?}"))?;
            if !kind.available() {
                report.push(format!("{variant} N={n}: SKIP (ISA not on this host)"));
                continue;
            }
        }
        let cand = cand_shapes
            .iter()
            .find(|c| {
                key(c).as_ref()
                    == Some(&(m, k, n, variant.clone(), selection.clone(), fusion.clone()))
            })
            .ok_or_else(|| {
                format!(
                    "candidate: {variant} ({selection}, fusion {fusion}) row at \
                     {m}x{k} N={n} missing"
                )
            })?;
        let cand_speedup = cand
            .get("speedup")
            .and_then(|s| s.as_f64())
            .ok_or("candidate: shape missing speedup")?;
        let floored = variant == "avx2_fma" && selection == "static" && fusion == "off";
        let mut min_ok = base_speedup * (1.0 - tolerance);
        if floored {
            min_ok = min_ok.max(floor);
        }
        gated_any = true;
        let label = if fusion == "on" {
            format!("{variant} ({selection}, fused)")
        } else {
            format!("{variant} ({selection})")
        };
        if cand_speedup < min_ok {
            return Err(format!(
                "regression in {label} at {m}x{k} N={n}: speedup \
                 {cand_speedup:.2}x < {min_ok:.2}x (baseline {base_speedup:.2}x, \
                 tolerance {:.0}%{})",
                tolerance * 100.0,
                if floored {
                    format!(", floor {floor:.1}x")
                } else {
                    String::new()
                }
            ));
        }
        report.push(format!(
            "{label} N={n}: {cand_speedup:.2}x (baseline {base_speedup:.2}x)"
        ));
    }
    if !gated_any {
        return Err(
            "baseline: every row was skipped as ISA-gated — regenerate the baseline \
             on a host this gate runs on"
                .to_string(),
        );
    }
    Ok(report.join("; "))
}

/// The serving arm of [`check_perf_text`]: gates the committed
/// fused-assembly speedups (`data.fusion_rows[].speedup`,
/// two-touch-over-fused wall time) row-for-row per batch size. At
/// batch ≥ 4 the candidate must also clear an absolute 1.0× floor:
/// fused assembly slower than concat + panelize at real batch widths
/// regresses the copy the fusion exists to remove. (Batch 1 and 2 rows
/// gate only relatively — at trivial widths the two paths are within
/// noise of each other.)
///
/// The candidate's `data.hedge_rows` are additionally floored on their
/// own virtual-clock invariants (host-speed independent, so no
/// relative band is needed): the hedged p99 must not exceed the
/// unhedged p99 under the same injected straggler, and the hedged
/// run's executed-work amplification must stay within
/// `1 + budget_fraction` — a hedging layer that amplifies the tail or
/// blows its retry budget is a regression in the property it exists
/// to enforce (DESIGN.md §17).
fn check_perf_serving(baseline: &str, candidate: &str, tolerance: f64) -> Result<String, String> {
    let rows = |text: &str, role: &str| -> Result<Vec<Json>, String> {
        let doc = jigsaw_obs::parse(text).map_err(|e| format!("{role}: {e}"))?;
        doc.get("data")
            .and_then(|d| d.get("fusion_rows"))
            .map(|r| r.items().to_vec())
            .filter(|r| !r.is_empty())
            .ok_or_else(|| format!("{role}: data.fusion_rows missing or empty"))
    };
    let base_rows = rows(baseline, "baseline")?;
    let cand_rows = rows(candidate, "candidate")?;
    let mut report = Vec::new();
    for base in &base_rows {
        let batch = base
            .get("batch")
            .and_then(|b| b.as_u64())
            .ok_or("baseline: fusion row missing batch")?;
        let base_speedup = base
            .get("speedup")
            .and_then(|s| s.as_f64())
            .ok_or("baseline: fusion row missing speedup")?;
        let cand = cand_rows
            .iter()
            .find(|c| c.get("batch").and_then(|b| b.as_u64()) == Some(batch))
            .ok_or_else(|| format!("candidate: fusion row at batch {batch} missing"))?;
        let cand_speedup = cand
            .get("speedup")
            .and_then(|s| s.as_f64())
            .ok_or("candidate: fusion row missing speedup")?;
        let floored = batch >= 4;
        let mut min_ok = base_speedup * (1.0 - tolerance);
        if floored {
            min_ok = min_ok.max(1.0);
        }
        if cand_speedup < min_ok {
            return Err(format!(
                "regression in fused assembly at batch {batch}: speedup \
                 {cand_speedup:.2}x < {min_ok:.2}x (baseline {base_speedup:.2}x, \
                 tolerance {:.0}%{})",
                tolerance * 100.0,
                if floored {
                    ", floor 1.0x".to_string()
                } else {
                    String::new()
                }
            ));
        }
        report.push(format!(
            "fused assembly batch={batch}: {cand_speedup:.2}x (baseline {base_speedup:.2}x)"
        ));
    }
    // Hedging floors run on the candidate alone: the virtual-clock sim
    // is bit-deterministic per seed, so these are absolute invariants,
    // not host-relative measurements.
    let hedge_rows = {
        let doc = jigsaw_obs::parse(candidate).map_err(|e| format!("candidate: {e}"))?;
        doc.get("data")
            .and_then(|d| d.get("hedge_rows"))
            .map(|r| r.items().to_vec())
            .filter(|r| !r.is_empty())
            .ok_or_else(|| "candidate: data.hedge_rows missing or empty".to_string())?
    };
    let hedge = |policy: &str| -> Result<Json, String> {
        hedge_rows
            .iter()
            .find(|r| r.get("policy").and_then(|p| p.as_str()) == Some(policy))
            .cloned()
            .ok_or_else(|| format!("candidate: hedge_rows missing {policy:?} row"))
    };
    let f64_of = |row: &Json, key: &str| -> Result<f64, String> {
        row.get(key)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("candidate: hedge row missing {key:?}"))
    };
    let unhedged = hedge("unhedged")?;
    let hedged = hedge("hedged")?;
    let (up99, hp99) = (
        f64_of(&unhedged, "p99_latency_cycles")?,
        f64_of(&hedged, "p99_latency_cycles")?,
    );
    if hp99 > up99 {
        return Err(format!(
            "regression in tail tolerance: hedged p99 {hp99:.0} cycles exceeds \
             unhedged p99 {up99:.0} under the injected straggler (floor 1.0x)"
        ));
    }
    let amp = f64_of(&hedged, "work_amplification")?;
    let budget = f64_of(&hedged, "budget_fraction")?;
    if amp > 1.0 + budget {
        return Err(format!(
            "regression in tail tolerance: work amplification {amp:.3}x exceeds \
             the retry budget's 1 + {budget:.2} bound"
        ));
    }
    report.push(format!(
        "hedging: p99 {hp99:.0} vs unhedged {up99:.0} cycles, work amplification \
         {amp:.3}x (budget {:.2}x)",
        1.0 + budget
    ));
    Ok(report.join("; "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    #[derive(Serialize)]
    struct Toy {
        speedup: f64,
        shapes: Vec<u32>,
        label: String,
    }

    fn toy() -> Toy {
        Toy {
            speedup: 1.5,
            shapes: vec![64, 128],
            label: "t\"est".to_string(),
        }
    }

    #[test]
    fn bench_doc_has_stable_keys_and_round_trips() {
        jigsaw_obs::global().counter("bench.unit").inc();
        let text = bench_doc("unit", &toy()).to_string();
        let doc = jigsaw_obs::parse(&text).expect("emitted JSON parses");
        assert_eq!(doc.keys(), BENCH_KEYS);
        assert_eq!(
            doc.get("schema").unwrap().as_str(),
            Some(BENCH_SCHEMA),
            "versioned schema tag"
        );
        let data = doc.get("data").unwrap();
        assert_eq!(data.get("speedup").unwrap().as_f64(), Some(1.5));
        assert_eq!(data.get("label").unwrap().as_str(), Some("t\"est"));
        let counters = doc.get("observability").unwrap().get("counters").unwrap();
        assert!(counters.get("bench.unit").unwrap().as_u64() >= Some(1));
    }

    #[test]
    fn check_bench_accepts_real_docs_and_rejects_garbage() {
        let good = bench_doc("unit", &toy()).to_string();
        assert_eq!(check_bench_text(&good), Ok("unit".to_string()));
        assert!(check_bench_text("{not json").is_err());
        assert!(
            check_bench_text("{\"schema\": \"jigsaw-bench/v1\"}").is_err(),
            "missing keys rejected"
        );
        let wrong_schema = good.replace("jigsaw-bench/v1", "jigsaw-bench/v0");
        assert!(check_bench_text(&wrong_schema).is_err());
    }

    #[derive(Serialize, Clone)]
    struct ToyServingRow {
        policy: String,
        failed: u64,
        shed_expired: u64,
        queue_depth: usize,
        breakers_open: u64,
    }

    #[derive(Serialize, Clone)]
    struct ToyShardRow {
        shards: usize,
        completed: u64,
        forwarded: u64,
        stolen: u64,
        breaker_rejects: u64,
        shed_expired: u64,
        failed: u64,
        p50_latency_cycles: f64,
        p95_latency_cycles: f64,
        p99_latency_cycles: f64,
        per_shard_submitted: Vec<u64>,
        per_shard_completed: Vec<u64>,
    }

    fn toy_shard_row(shards: usize) -> ToyShardRow {
        ToyShardRow {
            shards,
            completed: 100,
            forwarded: 3,
            stolen: 1,
            breaker_rejects: 0,
            shed_expired: 0,
            failed: 0,
            p50_latency_cycles: 1_000.0,
            p95_latency_cycles: 5_000.0,
            p99_latency_cycles: 9_000.0,
            per_shard_submitted: vec![100 / shards as u64; shards],
            per_shard_completed: vec![100 / shards as u64; shards],
        }
    }

    #[derive(Serialize, Clone)]
    struct ToyFusionRow {
        batch: usize,
        k: usize,
        total_n: usize,
        fused_assemble_ns: f64,
        unfused_assemble_ns: f64,
        speedup: f64,
    }

    fn toy_fusion_row(batch: usize, speedup: f64) -> ToyFusionRow {
        ToyFusionRow {
            batch,
            k: 2048,
            total_n: batch * 8,
            fused_assemble_ns: 10_000.0,
            unfused_assemble_ns: 10_000.0 * speedup,
            speedup,
        }
    }

    #[derive(Serialize, Clone)]
    struct ToyHedgeRow {
        policy: String,
        shards: usize,
        straggler_factor: f64,
        completed: u64,
        hedges: u64,
        health_ejections: u64,
        p50_latency_cycles: f64,
        p95_latency_cycles: f64,
        p99_latency_cycles: f64,
        busy_cycles: f64,
        work_amplification: f64,
        budget_fraction: f64,
    }

    fn toy_hedge_row(policy: &str, p99: f64, amplification: f64) -> ToyHedgeRow {
        ToyHedgeRow {
            policy: policy.to_string(),
            shards: 4,
            straggler_factor: 10.0,
            completed: 100,
            hedges: if policy == "hedged" { 12 } else { 0 },
            health_ejections: 0,
            p50_latency_cycles: 1_000.0,
            p95_latency_cycles: p99 * 0.6,
            p99_latency_cycles: p99,
            busy_cycles: 1e9 * amplification,
            work_amplification: amplification,
            budget_fraction: 0.1,
        }
    }

    #[derive(Serialize)]
    struct ToyServing {
        rows: Vec<ToyServingRow>,
        shard_rows: Vec<ToyShardRow>,
        fusion_rows: Vec<ToyFusionRow>,
        hedge_rows: Vec<ToyHedgeRow>,
    }

    fn toy_serving() -> ToyServing {
        ToyServing {
            rows: vec![ToyServingRow {
                policy: "batched+warm".to_string(),
                failed: 0,
                shed_expired: 2,
                queue_depth: 0,
                breakers_open: 0,
            }],
            shard_rows: vec![toy_shard_row(1), toy_shard_row(4)],
            fusion_rows: vec![toy_fusion_row(1, 1.1), toy_fusion_row(4, 1.6)],
            hedge_rows: vec![
                toy_hedge_row("unhedged", 90_000.0, 1.0),
                toy_hedge_row("hedged", 30_000.0, 1.05),
            ],
        }
    }

    #[test]
    fn serving_docs_must_carry_resilience_columns() {
        let full = bench_doc("serving", &toy_serving()).to_string();
        assert_eq!(check_bench_text(&full), Ok("serving".to_string()));
        // A row that lost a resilience column is rejected…
        #[derive(Serialize)]
        struct BareRow {
            policy: String,
            failed: u64,
        }
        #[derive(Serialize)]
        struct BareServing {
            rows: Vec<BareRow>,
        }
        let bare = BareServing {
            rows: vec![BareRow {
                policy: "batched+warm".to_string(),
                failed: 0,
            }],
        };
        let err = check_bench_text(&bench_doc("serving", &bare).to_string()).unwrap_err();
        assert!(err.contains("shed_expired"), "{err}");
        // …and so is a serving doc with no rows at all. The same shape
        // under another experiment name is not row-checked.
        assert!(check_bench_text(&bench_doc("serving", &toy()).to_string()).is_err());
        assert!(check_bench_text(&bench_doc("other", &bare).to_string()).is_ok());
    }

    #[test]
    fn serving_docs_must_carry_shard_sweep() {
        // Policy rows alone no longer pass: the sweep is part of the
        // serving schema.
        #[derive(Serialize)]
        struct NoSweep {
            rows: Vec<ToyServingRow>,
        }
        let no_sweep = NoSweep {
            rows: vec![ToyServingRow {
                policy: "batched+warm".to_string(),
                failed: 0,
                shed_expired: 0,
                queue_depth: 0,
                breakers_open: 0,
            }],
        };
        let err = check_bench_text(&bench_doc("serving", &no_sweep).to_string()).unwrap_err();
        assert!(err.contains("shard_rows"), "{err}");
        // A shard row that lost a per-shard column is rejected.
        #[derive(Serialize)]
        struct BareShardRow {
            shards: usize,
            completed: u64,
        }
        #[derive(Serialize)]
        struct BareSweep {
            rows: Vec<ToyServingRow>,
            shard_rows: Vec<BareShardRow>,
        }
        let bare = BareSweep {
            rows: no_sweep.rows,
            shard_rows: vec![BareShardRow {
                shards: 1,
                completed: 100,
            }],
        };
        let err = check_bench_text(&bench_doc("serving", &bare).to_string()).unwrap_err();
        assert!(err.contains("forwarded"), "{err}");
        // The full shape passes.
        let ok = bench_doc("serving", &toy_serving()).to_string();
        assert_eq!(check_bench_text(&ok), Ok("serving".to_string()));
    }

    #[test]
    fn serving_docs_must_carry_fusion_rows() {
        // Policy + shard rows alone no longer pass: the fused-assembly
        // sweep is part of the serving schema.
        #[derive(Serialize)]
        struct NoFusion {
            rows: Vec<ToyServingRow>,
            shard_rows: Vec<ToyShardRow>,
        }
        let full = toy_serving();
        let no_fusion = NoFusion {
            rows: full.rows.clone(),
            shard_rows: full.shard_rows.clone(),
        };
        let err = check_bench_text(&bench_doc("serving", &no_fusion).to_string()).unwrap_err();
        assert!(err.contains("fusion_rows"), "{err}");
        // A fusion row that lost a timing column is rejected.
        #[derive(Serialize)]
        struct BareFusionRow {
            batch: usize,
            speedup: f64,
        }
        #[derive(Serialize)]
        struct BareFusion {
            rows: Vec<ToyServingRow>,
            shard_rows: Vec<ToyShardRow>,
            fusion_rows: Vec<BareFusionRow>,
        }
        let bare = BareFusion {
            rows: full.rows,
            shard_rows: full.shard_rows,
            fusion_rows: vec![BareFusionRow {
                batch: 4,
                speedup: 1.5,
            }],
        };
        let err = check_bench_text(&bench_doc("serving", &bare).to_string()).unwrap_err();
        assert!(err.contains("fusion row missing key"), "{err}");
    }

    #[test]
    fn serving_docs_must_carry_hedge_rows() {
        // Policy + shard + fusion rows alone no longer pass: the
        // straggler pair is part of the serving schema.
        #[derive(Serialize)]
        struct NoHedge {
            rows: Vec<ToyServingRow>,
            shard_rows: Vec<ToyShardRow>,
            fusion_rows: Vec<ToyFusionRow>,
        }
        let full = toy_serving();
        let no_hedge = NoHedge {
            rows: full.rows.clone(),
            shard_rows: full.shard_rows.clone(),
            fusion_rows: full.fusion_rows.clone(),
        };
        let err = check_bench_text(&bench_doc("serving", &no_hedge).to_string()).unwrap_err();
        assert!(err.contains("hedge_rows"), "{err}");
        // A hedge row that lost a column is rejected…
        #[derive(Serialize)]
        struct BareHedgeRow {
            policy: String,
            p99_latency_cycles: f64,
        }
        #[derive(Serialize)]
        struct BareHedge {
            rows: Vec<ToyServingRow>,
            shard_rows: Vec<ToyShardRow>,
            fusion_rows: Vec<ToyFusionRow>,
            hedge_rows: Vec<BareHedgeRow>,
        }
        let bare = BareHedge {
            rows: full.rows.clone(),
            shard_rows: full.shard_rows.clone(),
            fusion_rows: full.fusion_rows.clone(),
            hedge_rows: vec![BareHedgeRow {
                policy: "hedged".to_string(),
                p99_latency_cycles: 1.0,
            }],
        };
        let err = check_bench_text(&bench_doc("serving", &bare).to_string()).unwrap_err();
        assert!(err.contains("hedge row missing key"), "{err}");
        // …and so is a pair missing one of the two policies.
        let mut lopsided = toy_serving();
        lopsided.hedge_rows.retain(|r| r.policy == "hedged");
        let err = check_bench_text(&bench_doc("serving", &lopsided).to_string()).unwrap_err();
        assert!(err.contains("unhedged"), "{err}");
    }

    fn serving_doc(speedups: &[(usize, f64)]) -> String {
        let mut doc = toy_serving();
        doc.fusion_rows = speedups
            .iter()
            .map(|&(batch, speedup)| toy_fusion_row(batch, speedup))
            .collect();
        bench_doc("serving", &doc).to_string()
    }

    /// The hedging floors are absolute invariants of the candidate:
    /// hedged p99 at most the unhedged p99, work amplification within
    /// the retry budget — independent of the baseline's numbers.
    #[test]
    fn serving_perf_gate_floors_hedging_invariants() {
        let base = serving_doc(&[(1, 1.1), (4, 1.6)]);
        let report = check_perf_text(&base, &base, 0.25).unwrap();
        assert!(report.contains("hedging:"), "{report}");
        // A hedged p99 above the unhedged p99 fails even though every
        // fusion row is untouched.
        let mut worse_tail = toy_serving();
        worse_tail.hedge_rows = vec![
            toy_hedge_row("unhedged", 90_000.0, 1.0),
            toy_hedge_row("hedged", 95_000.0, 1.05),
        ];
        let cand = bench_doc("serving", &worse_tail).to_string();
        let err = check_perf_text(&base, &cand, 0.25).unwrap_err();
        assert!(err.contains("hedged p99"), "{err}");
        // Work amplification past 1 + budget_fraction fails.
        let mut over_budget = toy_serving();
        over_budget.hedge_rows = vec![
            toy_hedge_row("unhedged", 90_000.0, 1.0),
            toy_hedge_row("hedged", 30_000.0, 1.2),
        ];
        let cand = bench_doc("serving", &over_budget).to_string();
        let err = check_perf_text(&base, &cand, 0.25).unwrap_err();
        assert!(err.contains("work amplification"), "{err}");
    }

    #[test]
    fn serving_perf_gate_floors_fused_assembly_at_batch_4() {
        let base = serving_doc(&[(1, 1.1), (4, 1.6), (16, 2.0)]);
        // Identical run passes; drift inside tolerance passes.
        let report = check_perf_text(&base, &base, 0.25).unwrap();
        assert!(report.contains("fused assembly batch=4"), "{report}");
        let drift = serving_doc(&[(1, 0.9), (4, 1.3), (16, 1.7)]);
        assert!(check_perf_text(&base, &drift, 0.25).is_ok());
        // A fused path slower than two-touch at batch ≥ 4 fails on the
        // absolute floor even when inside the relative band.
        let below_floor = serving_doc(&[(1, 1.1), (4, 0.95), (16, 2.0)]);
        let err = check_perf_text(&base, &below_floor, 0.25).unwrap_err();
        assert!(
            err.contains("batch 4") && err.contains("floor 1.0x"),
            "{err}"
        );
        // Batch 1 has no absolute floor: 0.9x passes inside the band…
        let slow_small = serving_doc(&[(1, 0.9), (4, 1.6), (16, 2.0)]);
        assert!(check_perf_text(&base, &slow_small, 0.25).is_ok());
        // …but a collapse beyond the band fails relatively.
        let collapsed = serving_doc(&[(1, 0.5), (4, 1.6), (16, 2.0)]);
        assert!(check_perf_text(&base, &collapsed, 0.25).is_err());
        // A candidate missing a baseline batch size is an error.
        let missing = serving_doc(&[(1, 1.1), (4, 1.6)]);
        assert!(check_perf_text(&base, &missing, 0.25).is_err());
        // Experiments must match: serving baseline vs exec candidate.
        let exec = exec_doc(&[(64, 3.0)]);
        let err = check_perf_text(&base, &exec, 0.25).unwrap_err();
        assert!(err.contains("mismatch"), "{err}");
    }

    #[derive(Serialize, Clone)]
    struct ToyCacheRow {
        strategy: String,
        n: usize,
        cache: String,
        duration_cycles: f64,
        l1_hit_rate: f64,
        l2_hit_rate: f64,
        l1_sector_reads: u64,
        l2_sector_reads: u64,
        mshr_merges: u64,
    }

    fn toy_cache_row(cache: &str, l2_hit_rate: f64) -> ToyCacheRow {
        ToyCacheRow {
            strategy: "v0".to_string(),
            n: 64,
            cache: cache.to_string(),
            duration_cycles: 10_000.0,
            l1_hit_rate: 0.0,
            l2_hit_rate,
            l1_sector_reads: if cache == "on" { 4_000 } else { 0 },
            l2_sector_reads: if cache == "on" { 3_000 } else { 0 },
            mshr_merges: 0,
        }
    }

    #[derive(Serialize)]
    struct ToyCacheAblation {
        rows: Vec<ToyCacheRow>,
    }

    #[test]
    fn cache_ablation_docs_validate_modes_and_hit_rate_spread() {
        // Both modes with a real spread pass.
        let good = ToyCacheAblation {
            rows: vec![
                toy_cache_row("off", 0.0),
                toy_cache_row("on", 0.25),
                toy_cache_row("on", 0.55),
            ],
        };
        assert_eq!(
            check_bench_text(&bench_doc("cache_ablation", &good).to_string()),
            Ok("cache_ablation".to_string())
        );
        // Cache-on rows alone are rejected: the off rows are the
        // bit-replay fixture.
        let only_on = ToyCacheAblation {
            rows: vec![toy_cache_row("on", 0.25), toy_cache_row("on", 0.55)],
        };
        let err = check_bench_text(&bench_doc("cache_ablation", &only_on).to_string()).unwrap_err();
        assert!(err.contains("both cache modes"), "{err}");
        // A flat cache-on hit-rate column is rejected.
        let flat = ToyCacheAblation {
            rows: vec![
                toy_cache_row("off", 0.0),
                toy_cache_row("on", 0.30),
                toy_cache_row("on", 0.31),
            ],
        };
        let err = check_bench_text(&bench_doc("cache_ablation", &flat).to_string()).unwrap_err();
        assert!(err.contains("hit rates span"), "{err}");
        // An unknown cache mode and a missing column are schema errors.
        let bad_mode = ToyCacheAblation {
            rows: vec![toy_cache_row("maybe", 0.3)],
        };
        let err =
            check_bench_text(&bench_doc("cache_ablation", &bad_mode).to_string()).unwrap_err();
        assert!(err.contains("maybe"), "{err}");
        #[derive(Serialize)]
        struct BareCacheRow {
            strategy: String,
            cache: String,
        }
        #[derive(Serialize)]
        struct BareAblation {
            rows: Vec<BareCacheRow>,
        }
        let bare = BareAblation {
            rows: vec![BareCacheRow {
                strategy: "v0".to_string(),
                cache: "off".to_string(),
            }],
        };
        let err = check_bench_text(&bench_doc("cache_ablation", &bare).to_string()).unwrap_err();
        assert!(err.contains("missing key"), "{err}");
    }

    #[derive(Serialize)]
    struct ToyShape {
        m: usize,
        k: usize,
        n: usize,
        speedup: f64,
    }

    #[derive(Serialize)]
    struct ToyExec {
        shapes: Vec<ToyShape>,
        required_speedup: f64,
    }

    fn exec_doc(speedups: &[(usize, f64)]) -> String {
        let shapes = speedups
            .iter()
            .map(|&(n, speedup)| ToyShape {
                m: 64,
                k: 64,
                n,
                speedup,
            })
            .collect();
        bench_doc(
            "exec",
            &ToyExec {
                shapes,
                required_speedup: 2.0,
            },
        )
        .to_string()
    }

    #[test]
    fn perf_gate_passes_within_tolerance_and_catches_regressions() {
        let base = exec_doc(&[(64, 3.0), (256, 4.0)]);
        // Identical run passes; a run 5% slower passes at 10% tolerance.
        assert!(check_perf_text(&base, &base, 0.10).is_ok());
        let slower = exec_doc(&[(64, 2.85), (256, 3.8)]);
        assert!(check_perf_text(&base, &slower, 0.10).is_ok());
        // A 20% regression fails.
        let regressed = exec_doc(&[(64, 2.4), (256, 4.0)]);
        let err = check_perf_text(&base, &regressed, 0.10).unwrap_err();
        assert!(err.contains("at 64x64 N=64"), "{err}");
        // The absolute floor binds even inside tolerance: baseline 2.1x
        // with 10% slack would allow 1.89x, but the committed 2.0x
        // floor does not.
        let base_low = exec_doc(&[(64, 2.1)]);
        let below_floor = exec_doc(&[(64, 1.95)]);
        assert!(check_perf_text(&base_low, &below_floor, 0.10).is_err());
        // Missing shapes and malformed docs are errors, not passes.
        let missing = exec_doc(&[(64, 3.0)]);
        assert!(check_perf_text(&base, &missing, 0.10).is_err());
        assert!(check_perf_text(&base, "{not json", 0.10).is_err());
        assert!(check_perf_text(&base, &base, 1.5).is_err());
    }

    #[derive(Serialize)]
    struct VariantShape {
        m: usize,
        k: usize,
        n: usize,
        variant: String,
        speedup: f64,
    }

    fn exec_doc_variants(rows: &[(usize, &str, f64)]) -> String {
        let shapes = rows
            .iter()
            .map(|&(n, variant, speedup)| VariantShape {
                m: 64,
                k: 64,
                n,
                variant: variant.to_string(),
                speedup,
            })
            .collect::<Vec<_>>();
        bench_doc(
            "exec",
            &ToyExec2 {
                shapes,
                required_speedup: 2.0,
            },
        )
        .to_string()
    }

    #[derive(Serialize)]
    struct ToyExec2 {
        shapes: Vec<VariantShape>,
        required_speedup: f64,
    }

    #[test]
    fn exec_docs_validate_per_variant_rows() {
        // Per-variant rows with registry names pass…
        let good = exec_doc_variants(&[
            (64, "scalar", 1.5),
            (64, "avx2_fma", 3.0),
            (64, "narrow_n", 2.5),
        ]);
        assert_eq!(check_bench_text(&good), Ok("exec".to_string()));
        // …legacy rows without a variant column still pass…
        assert_eq!(
            check_bench_text(&exec_doc(&[(64, 3.0)])),
            Ok("exec".to_string())
        );
        // …but an unknown variant name is a schema error…
        let unknown = exec_doc_variants(&[(64, "warp_specialized", 3.0), (64, "narrow_n", 2.5)]);
        let err = check_bench_text(&unknown).unwrap_err();
        assert!(err.contains("warp_specialized"), "{err}");
        // …a per-variant doc that lost its narrow_n rows is a schema
        // error (the variant is portable — absence means the sweep
        // shrank)…
        let no_narrow = exec_doc_variants(&[(64, "scalar", 1.5), (64, "avx2_fma", 3.0)]);
        let err = check_bench_text(&no_narrow).unwrap_err();
        assert!(err.contains("narrow_n"), "{err}");
        // …and so is a row missing a perf-gate key or an empty table.
        #[derive(Serialize)]
        struct NoSpeedup {
            m: usize,
            k: usize,
            n: usize,
        }
        #[derive(Serialize)]
        struct NoSpeedupExec {
            shapes: Vec<NoSpeedup>,
        }
        let bad = bench_doc(
            "exec",
            &NoSpeedupExec {
                shapes: vec![NoSpeedup { m: 64, k: 64, n: 8 }],
            },
        )
        .to_string();
        assert!(check_bench_text(&bad).unwrap_err().contains("speedup"));
        let empty = bench_doc("exec", &NoSpeedupExec { shapes: vec![] }).to_string();
        assert!(check_bench_text(&empty).is_err());
    }

    #[test]
    fn perf_gate_matches_rows_per_variant() {
        // A legacy variant-less baseline gates against the candidate's
        // avx2_fma rows; the candidate's extra variants ride along.
        let base = exec_doc(&[(64, 3.0)]);
        let cand = exec_doc_variants(&[
            (64, "scalar", 2.1),
            (64, "avx2_fma", 2.9),
            (64, "narrow_n", 2.5),
        ]);
        assert!(check_perf_text(&base, &cand, 0.10).is_ok());
        // A regressed avx2 row fails even when another variant is fast.
        let regressed = exec_doc_variants(&[(64, "avx2_fma", 2.0), (64, "narrow_n", 9.0)]);
        assert!(check_perf_text(&base, &regressed, 0.10).is_err());
        // Per-variant baselines gate row-for-row: a narrow_n collapse
        // is caught even with the floored avx2 row healthy.
        let vbase = exec_doc_variants(&[
            (64, "scalar", 2.1),
            (64, "avx2_fma", 3.0),
            (64, "narrow_n", 2.5),
        ]);
        assert!(check_perf_text(&vbase, &cand, 0.10).is_ok());
        let narrow_collapse = exec_doc_variants(&[
            (64, "scalar", 2.1),
            (64, "avx2_fma", 3.0),
            (64, "narrow_n", 1.0),
        ]);
        let err = check_perf_text(&vbase, &narrow_collapse, 0.10).unwrap_err();
        assert!(err.contains("narrow_n"), "{err}");
        // The absolute floor binds only the avx2 rows: scalar drifting
        // from 2.1x to 1.95x stays inside tolerance even though 1.95x
        // is under the 2.0x floor.
        let scalar_drift = exec_doc_variants(&[
            (64, "scalar", 1.95),
            (64, "avx2_fma", 3.0),
            (64, "narrow_n", 2.5),
        ]);
        assert!(check_perf_text(&vbase, &scalar_drift, 0.10).is_ok());
        // A candidate missing the gated row is an error, not a pass.
        let no_avx2 = exec_doc_variants(&[(64, "neon", 3.0), (64, "narrow_n", 2.5)]);
        let err = check_perf_text(&base, &no_avx2, 0.10).unwrap_err();
        assert!(err.contains("missing"), "{err}");
    }

    #[derive(Serialize)]
    struct FullShape {
        m: usize,
        k: usize,
        n: usize,
        variant: String,
        selection: String,
        speedup: f64,
    }

    #[derive(Serialize)]
    struct ToyExec3 {
        shapes: Vec<FullShape>,
        required_speedup: f64,
    }

    fn exec_doc_full(rows: &[(usize, &str, &str, f64)]) -> String {
        let shapes = rows
            .iter()
            .map(|&(n, variant, selection, speedup)| FullShape {
                m: 64,
                k: 64,
                n,
                variant: variant.to_string(),
                selection: selection.to_string(),
                speedup,
            })
            .collect();
        bench_doc(
            "exec",
            &ToyExec3 {
                shapes,
                required_speedup: 2.0,
            },
        )
        .to_string()
    }

    #[test]
    fn perf_gate_skips_absent_isas_and_matches_tuned_rows_by_mode() {
        use jigsaw_core::KernelKind;
        // An ISA no single host has alongside the others: x86-64 lacks
        // NEON, aarch64 lacks AVX-512F.
        let absent = if KernelKind::Neon.available() {
            "avx512f"
        } else {
            "neon"
        };
        let base = exec_doc_full(&[
            (64, "avx2_fma", "static", 3.0),
            (64, "narrow_n", "static", 2.5),
            (64, absent, "static", 9.0),
            (64, "avx2_fma", "tuned", 3.0),
        ]);
        let cand = exec_doc_full(&[
            (64, "avx2_fma", "static", 3.0),
            (64, "narrow_n", "static", 2.5),
            // The tuned run picked a different winner here — still
            // matched, because tuned rows match on mode, not variant.
            (64, "narrow_n", "tuned", 2.9),
        ]);
        let report = check_perf_text(&base, &cand, 0.10).unwrap();
        assert!(report.contains("SKIP"), "{report}");
        assert!(report.contains("tuned"), "{report}");
        // A tuned regression is caught like any other row.
        let slow_tuned = exec_doc_full(&[
            (64, "avx2_fma", "static", 3.0),
            (64, "narrow_n", "static", 2.5),
            (64, "scalar", "tuned", 1.5),
        ]);
        let err = check_perf_text(&base, &slow_tuned, 0.10).unwrap_err();
        assert!(err.contains("tuned"), "{err}");
        // An unknown selection mode is a schema error.
        let bad_mode = exec_doc_full(&[(64, "narrow_n", "oracle", 2.5)]);
        let err = check_bench_text(&bad_mode).unwrap_err();
        assert!(err.contains("oracle"), "{err}");
    }

    #[test]
    fn write_bench_json_emits_parseable_file() {
        let dir = std::env::temp_dir().join("jigsaw-bench-obs-test");
        let path = write_bench_json_to(&dir, "unit_write", &toy()).expect("written");
        assert!(path.ends_with("BENCH_unit_write.json"));
        let text = std::fs::read_to_string(&path).expect("readable");
        assert_eq!(check_bench_text(&text), Ok("unit_write".to_string()));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
