//! EXPERIMENTS.md generation: paper-vs-measured for every table and
//! figure, written by the `all_experiments` binary.

use std::fmt::Write as _;

use crate::experiments::{fig1, fig10, fig11, fig12, overhead, table2, table3};

/// Composes the full EXPERIMENTS.md text from all experiment results.
#[allow(clippy::too_many_arguments)]
pub fn experiments_markdown(
    fig1: &fig1::Fig1,
    table2: &table2::Table2,
    fig10: &fig10::Fig10,
    fig11: &fig11::Fig11,
    fig12: &fig12::Fig12,
    table3: &table3::Table3,
    overhead: &overhead::Overhead,
    suite_label: &str,
) -> String {
    let mut md = String::new();
    let _ = writeln!(
        md,
        "# EXPERIMENTS — paper vs. measured\n\n\
         Reproduction of every table and figure in the evaluation of\n\
         *\"Jigsaw: Accelerating SpMM with Vector Sparsity on Sparse Tensor\n\
         Core\"* (ICPP 2024) on the simulated A100 of `gpu-sim` (see\n\
         DESIGN.md §2 for the substitution rationale). Absolute cycle\n\
         counts are model outputs; the claims validated here are\n\
         *relative*: who wins, how speedups trend with sparsity, vector\n\
         width, N, and the ablation ordering.\n\n\
         Suite: `{suite_label}`. Regenerate with\n\
         `cargo run --release -p bench-harness --bin all_experiments`\n\
         (set `JIGSAW_SUITE=full` for the full shape table).\n"
    );

    // ---- Figure 1 ----
    let _ = writeln!(
        md,
        "## Figure 1 — native 2:4 support\n\n\
         Paper: even at 98% sparsity only ~15% of DLMC matrices satisfy\n\
         the 2:4 pattern without reordering; essentially none below that.\n\n\
         | sparsity | v=2 | v=4 | v=8 |\n|---|---|---|---|"
    );
    for &s in fig1::SPARSITIES {
        let _ = writeln!(
            md,
            "| {:.0}% | {:.1}% | {:.1}% | {:.1}% |",
            s * 100.0,
            100.0 * fig1.fraction(s, 2),
            100.0 * fig1.fraction(s, 4),
            100.0 * fig1.fraction(s, 8)
        );
    }
    let _ = writeln!(
        md,
        "\n**Shape check:** support is ~0% for sparsity ≤ 95% and only a\n\
         small fraction at 98% — matching the paper's motivation.\n"
    );

    // ---- Table 2 ----
    let _ = writeln!(
        md,
        "## Table 2 — Jigsaw speedup vs baselines (avg/max)\n\n\
         Each cell: measured avg/max followed by the paper's avg/max in\n\
         parentheses.\n\n\
         | Sparsity | v | cuBLAS | CLASP | Magicube | Sputnik | SparTA |\n\
         |---|---|---|---|---|---|---|"
    );
    for &s in dlmc::SPARSITY_LEVELS {
        for &v in dlmc::VECTOR_WIDTHS {
            let mut row = format!("| {:.0}% | {v} |", s * 100.0);
            for &method in table2::METHODS {
                let measured = table2.cell(s, v, method);
                let paper = table2::PAPER_TABLE2
                    .iter()
                    .find(|&&(ps, pv, pm, _, _)| (ps - s).abs() < 1e-9 && pv == v && pm == method);
                match (measured, paper) {
                    (Some(c), Some(&(_, _, _, pa, px))) => {
                        let _ = write!(row, " {:.2}/{:.2} ({pa:.2}/{px:.2}) |", c.avg, c.max);
                    }
                    (Some(c), None) => {
                        let _ = write!(row, " {:.2}/{:.2} |", c.avg, c.max);
                    }
                    _ => row.push_str(" - |"),
                }
            }
            let _ = writeln!(md, "{row}");
        }
    }
    let _ = writeln!(
        md,
        "\n**Shape check:** Jigsaw's advantage grows with sparsity and\n\
         with vector width, crosses cuBLAS around 80–90% sparsity, and\n\
         beats every sparse baseline on average — the paper's headline\n\
         trends. Known deviations of this model are listed at the end.\n"
    );

    // ---- Figure 10 ----
    let _ = writeln!(
        md,
        "## Figure 10 — speedup over cuBLAS vs N\n\n\
         Geomean across the shape suite (cuBLAS = 1.0). One block per\n\
         (sparsity, v); series over N = {:?}.\n",
        dlmc::N_SWEEP
    );
    for &s in dlmc::SPARSITY_LEVELS {
        for &v in dlmc::VECTOR_WIDTHS {
            let _ = writeln!(md, "**sparsity {:.0}%, v={v}**\n", s * 100.0);
            let _ = writeln!(md, "| N | Jigsaw | CLASP | Magicube | Sputnik | SparTA |");
            let _ = writeln!(md, "|---|---|---|---|---|---|");
            for &n in dlmc::N_SWEEP {
                let _ = writeln!(
                    md,
                    "| {n} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} |",
                    fig10.speedup(s, v, n, "Jigsaw"),
                    fig10.speedup(s, v, n, "CLASP"),
                    fig10.speedup(s, v, n, "Magicube"),
                    fig10.speedup(s, v, n, "Sputnik"),
                    fig10.speedup(s, v, n, "SparTA"),
                );
            }
            let _ = writeln!(md);
        }
    }

    // ---- Figure 11 ----
    let _ = writeln!(
        md,
        "## Figure 11 — reorder success rate\n\n\
         Success = reordered data satisfies 2:4 with K no bigger than the\n\
         original (paper §4.3). Cells: success rate (computed K\n\
         fraction).\n"
    );
    for &bt in &jigsaw_core::JigsawConfig::BLOCK_TILE_CANDIDATES {
        let _ = writeln!(md, "**BLOCK_TILE = {bt}**\n");
        let _ = writeln!(md, "| sparsity | v=2 | v=4 | v=8 |\n|---|---|---|---|");
        for &s in fig11::SPARSITIES {
            let cell = |v: usize| {
                fig11
                    .point(s, v, bt)
                    .map(|p| format!("{:.0}% (K×{:.2})", 100.0 * p.success_rate, p.avg_k_fraction))
                    .unwrap_or_else(|| "-".to_string())
            };
            let _ = writeln!(
                md,
                "| {:.0}% | {} | {} | {} |",
                s * 100.0,
                cell(2),
                cell(4),
                cell(8)
            );
        }
        let _ = writeln!(md);
    }
    let _ = writeln!(
        md,
        "**Shape check:** success rates rise with sparsity and vector\n\
         width and fall as BLOCK_TILE grows at low sparsity — the three\n\
         trends §4.3 reports.\n"
    );

    // ---- Figure 12 ----
    let _ = writeln!(
        md,
        "## Figure 12 — ablation (95% sparsity, v = 8)\n\n\
         | version | measured speedup | paper | bank conf/smem | long sb/instr | short sb/instr | smem instr/mma |\n\
         |---|---|---|---|---|---|---|"
    );
    for (i, v) in fig12.versions.iter().enumerate() {
        let _ = writeln!(
            md,
            "| {} | {:.2} | {:.2} | {:.3} | {:.2} | {:.2} | {:.2} |",
            v.version,
            v.speedup_vs_cublas,
            fig12::PAPER_FIG12[i],
            v.conflicts_per_smem_instr,
            v.long_scoreboard_per_instr,
            v.short_scoreboard_per_instr,
            v.smem_instr_per_mma,
        );
    }
    let _ = writeln!(
        md,
        "\n**Shape check:** each optimization improves on the previous\n\
         version through the mechanism the paper measures — v1 removes\n\
         nearly all bank conflicts, v2 cuts the long-scoreboard stalls\n\
         (paper: 1.82 → 0.87), v3 reduces shared-memory instructions\n\
         (paper: −7.78%), v4 adds the BLOCK_TILE tuning win.\n"
    );

    // ---- Table 3 ----
    let _ = writeln!(
        md,
        "## Table 3 — VENOM-pruned matrices (no reorder needed)\n\n\
         Measured (paper) average Jigsaw speedup.\n\n\
         | Sparsity | VENOM V=32 | V=64 | V=128 | cuSparseLt V=32 | V=64 | V=128 |\n\
         |---|---|---|---|---|---|---|"
    );
    for &(s, _) in table3::SPARSITY_MBLK {
        let mut row = format!("| {:.0}% |", s * 100.0);
        for m in ["VENOM", "cuSparseLt"] {
            for &v in table3::V_VALUES {
                let measured = table3.cell(s, v, m).map(|c| c.avg);
                let paper = table3::PAPER_TABLE3
                    .iter()
                    .find(|&&(ps, pv, pm, _)| (ps - s).abs() < 1e-9 && pv == v && pm == m)
                    .map(|&(_, _, _, a)| a);
                match (measured, paper) {
                    (Some(mv), Some(pv_)) => {
                        let _ = write!(row, " {mv:.2}x ({pv_:.2}x) |");
                    }
                    (Some(mv), None) => {
                        let _ = write!(row, " {mv:.2}x |");
                    }
                    _ => row.push_str(" - |"),
                }
            }
        }
        let _ = writeln!(md, "{row}");
    }

    // ---- Overhead ----
    let _ = writeln!(
        md,
        "\n## Section 4.6 — storage overhead\n\n\
         | BLOCK_TILE | paper formula | measured @80% | measured @95% |\n\
         |---|---|---|---|"
    );
    for r in &overhead.rows {
        let _ = writeln!(
            md,
            "| {} | {:.2}% | {:.2}% | {:.2}% |",
            r.block_tile,
            100.0 * r.paper_fraction,
            100.0 * r.measured_fraction_s80,
            100.0 * r.measured_fraction_s95,
        );
    }
    let _ = writeln!(
        md,
        "\nThe paper's formula (56.25% / 50% / 46.87% of dense for\n\
         BLOCK_TILE 16/32/64) is reproduced exactly by\n\
         `JigsawFormat::paper_analytic_fraction`; the measured layout is\n\
         smaller because it deletes skipped zero columns and stores\n\
         `block_col_idx` as u8.\n"
    );

    // ---- Deviations ----
    let _ = writeln!(
        md,
        "## Known model deviations\n\n\
         * Absolute durations are simulator cycles, not silicon; only\n\
           relative comparisons are meaningful.\n\
         * At 98% sparsity / v=8 on large shapes the model's Jigsaw runs\n\
           closer to its DRAM-roofline floor than the real kernel, so\n\
           peak speedups can exceed the paper's maxima by up to ~40%.\n\
         * CLASP at v = 8 and very high sparsity converges to the same\n\
           overhead floor as Jigsaw in the model (ratio ≈ 1.0) where the\n\
           paper still measures ~1.3×.\n\
         * The cuBLAS N=512 anomaly the paper reports (a library\n\
           tile-selection bug at M=K=2048) is intentionally not\n\
           reproduced; our dense baseline uses a well-behaved heuristic.\n"
    );
    md
}
