//! Shared execution machinery: run every kernel on a workload, collect
//! speedups, serialize results.

use dlmc::Matrix;
use gpu_sim::GpuSpec;
use jigsaw_core::JigsawSpmm;
use serde::{Deserialize, Serialize};

use baselines::{Clasp, CublasGemm, Magicube, Sparta, SpmmKernel, Sputnik};

use crate::suite::Workload;

/// One measured data point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Record {
    /// Shape label.
    pub shape: String,
    /// A dimensions.
    pub m: usize,
    /// Reduction dimension.
    pub k: usize,
    /// Output width.
    pub n: usize,
    /// Sparsity.
    pub sparsity: f64,
    /// Vector width.
    pub v: usize,
    /// Kernel name.
    pub method: String,
    /// Simulated duration in cycles.
    pub duration_cycles: f64,
    /// Speedup of Jigsaw relative to this method
    /// (`method_duration / jigsaw_duration`).
    pub jigsaw_speedup: f64,
}

/// All comparator durations for one workload at one N.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Comparison {
    /// The workload axes.
    pub shape: String,
    /// Rows of A.
    pub m: usize,
    /// Columns of A.
    pub k: usize,
    /// Output width.
    pub n: usize,
    /// Sparsity level.
    pub sparsity: f64,
    /// Vector width.
    pub v: usize,
    /// `(method, duration_cycles)` pairs; `"Jigsaw"` always present.
    pub durations: Vec<(String, f64)>,
}

impl Comparison {
    /// Duration of a method.
    pub fn duration(&self, method: &str) -> Option<f64> {
        self.durations
            .iter()
            .find(|(name, _)| name == method)
            .map(|&(_, d)| d)
    }

    /// Jigsaw's speedup over `method`.
    pub fn speedup_over(&self, method: &str) -> Option<f64> {
        let jig = self.duration("Jigsaw")?;
        Some(self.duration(method)? / jig)
    }
}

/// Runs Jigsaw (v4-tuned) plus all Table-2 baselines on one workload.
pub fn compare_all(w: &Workload, n: usize, spec: &GpuSpec) -> Comparison {
    let a = w.lhs();
    compare_all_on(&a, w, n, spec)
}

/// Same as [`compare_all`] for a pre-generated LHS.
pub fn compare_all_on(a: &Matrix, w: &Workload, n: usize, spec: &GpuSpec) -> Comparison {
    let mut durations = Vec::new();

    let (jig, _) = JigsawSpmm::plan_tuned(a, n, spec).expect("candidate set is non-empty");
    durations.push(("Jigsaw".to_string(), jig.simulate(n, spec).duration_cycles));

    let cublas = CublasGemm::plan(a);
    durations.push((
        cublas.name().to_string(),
        cublas.simulate(n, spec).duration_cycles,
    ));

    let clasp = Clasp::plan_best(a, n, spec);
    durations.push((
        clasp.name().to_string(),
        clasp.simulate(n, spec).duration_cycles,
    ));

    let magicube = Magicube::plan(a, w.v);
    durations.push((
        magicube.name().to_string(),
        magicube.simulate(n, spec).duration_cycles,
    ));

    let sputnik = Sputnik::plan(a);
    durations.push((
        sputnik.name().to_string(),
        sputnik.simulate(n, spec).duration_cycles,
    ));

    let sparta = Sparta::plan(a);
    durations.push((
        sparta.name().to_string(),
        sparta.simulate(n, spec).duration_cycles,
    ));

    Comparison {
        shape: w.shape.name.to_string(),
        m: w.shape.m,
        k: w.shape.k,
        n,
        sparsity: w.sparsity,
        v: w.v,
        durations,
    }
}

/// Renders a fixed-width table to stdout-ready text.
pub fn render_table(header: &[String], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = String::new();
    out.push_str(&fmt_row(header));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// The simulator spec the experiment binaries run on. Defaults to the
/// roofline-only model so committed baselines replay bit-identically;
/// `JIGSAW_SIM_CACHES=1` re-runs the same experiment with the sectored
/// L1/L2 hierarchy on (DESIGN.md §18), e.g. for the fig10/fig12
/// cache-on sweeps.
pub fn sim_spec() -> GpuSpec {
    if std::env::var("JIGSAW_SIM_CACHES").ok().as_deref() == Some("1") {
        GpuSpec::a100_with_caches()
    } else {
        GpuSpec::a100()
    }
}

/// Writes a named experiment's results as JSON under `results/`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{name}.json"));
        if let Ok(text) = serde_json::to_string_pretty(value) {
            let _ = std::fs::write(path, text);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::Workload;
    use dlmc::LayerShape;

    #[test]
    fn comparison_contains_all_methods() {
        let w = Workload {
            shape: LayerShape {
                m: 128,
                k: 128,
                name: "tiny",
            },
            sparsity: 0.9,
            v: 4,
            seed: 3,
        };
        let c = compare_all(&w, 64, &GpuSpec::a100());
        for method in ["Jigsaw", "cuBLAS", "CLASP", "Magicube", "Sputnik", "SparTA"] {
            assert!(c.duration(method).is_some(), "{method} missing");
            assert!(c.duration(method).unwrap() > 0.0);
        }
        assert!(c.speedup_over("cuBLAS").unwrap() > 0.0);
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["a".into(), "bb".into()],
            &[vec!["1".into(), "2".into()], vec!["33".into(), "4".into()]],
        );
        assert!(t.contains("a"));
        assert_eq!(t.lines().count(), 4);
    }
}
