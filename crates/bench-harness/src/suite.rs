//! Benchmark workload definitions shared by every experiment binary.
//!
//! The paper evaluates on DLMC matrices with sparsity ∈ {80, 90, 95,
//! 98}%, vector width v ∈ {2, 4, 8}, and output width N ∈ {256 ..
//! 2048}. The synthetic suite reproduces that grid (DESIGN.md §2). Two
//! sizes are provided: `quick` (a few shapes, used by default so every
//! experiment finishes in minutes) and `full` (the whole transformer
//! shape table; enable with `JIGSAW_SUITE=full`).

use dlmc::{LayerShape, Matrix, ValueDist, VectorSparseSpec};

/// One benchmark instance.
#[derive(Clone, Copy, Debug)]
pub struct Workload {
    /// Weight shape (A is `m × k`).
    pub shape: LayerShape,
    /// Target sparsity.
    pub sparsity: f64,
    /// Vector width.
    pub v: usize,
    /// Generator seed.
    pub seed: u64,
}

impl Workload {
    /// Generates the sparse LHS.
    pub fn lhs(&self) -> Matrix {
        VectorSparseSpec {
            rows: self.shape.m,
            cols: self.shape.k,
            sparsity: self.sparsity,
            v: self.v,
            dist: ValueDist::Ones,
            seed: self.seed,
        }
        .generate()
    }
}

/// Shapes used by the quick suite.
pub const QUICK_SHAPES: &[LayerShape] = &[
    LayerShape {
        m: 512,
        k: 512,
        name: "attention-qkv",
    },
    LayerShape {
        m: 2048,
        k: 512,
        name: "ffn-expand",
    },
    LayerShape {
        m: 2048,
        k: 2048,
        name: "decoder-large",
    },
];

/// True when the environment selects the full shape table.
pub fn full_suite() -> bool {
    std::env::var("JIGSAW_SUITE")
        .map(|v| v == "full")
        .unwrap_or(false)
}

/// The shape list for the current suite size.
pub fn shapes() -> &'static [LayerShape] {
    if full_suite() {
        dlmc::TRANSFORMER_SHAPES
    } else {
        QUICK_SHAPES
    }
}

/// The evaluation grid: shapes × sparsity × v.
pub fn workloads() -> Vec<Workload> {
    let mut out = Vec::new();
    for (si, &shape) in shapes().iter().enumerate() {
        for (pi, &sparsity) in dlmc::SPARSITY_LEVELS.iter().enumerate() {
            for (vi, &v) in dlmc::VECTOR_WIDTHS.iter().enumerate() {
                out.push(Workload {
                    shape,
                    sparsity,
                    v,
                    seed: 1000 + (si * 100 + pi * 10 + vi) as u64,
                });
            }
        }
    }
    out
}

/// Geometric mean helper used by every summary table.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_paper_axes() {
        let w = workloads();
        assert_eq!(w.len(), shapes().len() * 4 * 3);
        assert!(w.iter().any(|w| w.sparsity == 0.98 && w.v == 8));
    }

    #[test]
    fn workload_generation_matches_spec() {
        let w = workloads()[0];
        let a = w.lhs();
        assert_eq!(a.rows, w.shape.m);
        assert!((a.sparsity() - w.sparsity).abs() < 0.02);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!(geomean(&[]).is_nan());
    }
}
