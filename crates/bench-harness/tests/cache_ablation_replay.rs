//! Replays the committed `results/BENCH_cache_ablation.json` against a
//! fresh simulation: the simulator is deterministic and the JSON float
//! encoding is shortest-round-trip, so every row — cache off *and* on
//! — must reproduce bit-identically. A mismatch means the committed
//! baseline no longer describes this checkout; regenerate it with
//! `cargo run --release -p bench-harness --bin cache_ablation` and
//! review the diff as a model change.

use gpu_sim::GpuSpec;
use jigsaw_core::{JigsawConfig, JigsawSpmm};

fn committed_doc() -> jigsaw_obs::Json {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_cache_ablation.json"
    );
    let text = std::fs::read_to_string(path).expect("committed BENCH_cache_ablation.json");
    jigsaw_obs::parse(&text).expect("committed doc parses")
}

fn config_of(strategy: &str) -> JigsawConfig {
    match strategy {
        "v0" => JigsawConfig::v0(),
        "v2" => JigsawConfig::v2(),
        "v4_32" => JigsawConfig::v4(32),
        other => panic!("unknown strategy {other:?} in committed doc"),
    }
}

#[test]
fn committed_ablation_rows_replay_bit_identically() {
    let doc = committed_doc();
    let rows = doc
        .get("data")
        .and_then(|d| d.get("rows"))
        .map(|r| r.items().to_vec())
        .expect("data.rows");
    assert!(!rows.is_empty());

    let a = dlmc::VectorSparseSpec {
        rows: 256,
        cols: 512,
        sparsity: 0.95,
        v: 8,
        dist: dlmc::ValueDist::Uniform,
        seed: 33,
    }
    .generate();
    let off_spec = GpuSpec::a100();
    let on_spec = GpuSpec::a100_with_caches();

    let mut checked_off = 0;
    let mut checked_on = 0;
    for row in &rows {
        let strategy = row
            .get("strategy")
            .and_then(|s| s.as_str())
            .expect("strategy");
        let n = row.get("n").and_then(|n| n.as_u64()).expect("n") as usize;
        let cache = row.get("cache").and_then(|c| c.as_str()).expect("cache");
        let committed = row
            .get("duration_cycles")
            .and_then(|d| d.as_f64())
            .expect("duration_cycles");

        let kernel = JigsawSpmm::plan(&a, config_of(strategy)).expect("plan");
        let spec = if cache == "on" { &on_spec } else { &off_spec };
        let stats = kernel.simulate(n, spec);
        assert_eq!(
            stats.duration_cycles.to_bits(),
            committed.to_bits(),
            "{strategy} N={n} cache={cache}: simulated {} != committed {committed}",
            stats.duration_cycles
        );
        match cache {
            "off" => {
                assert!(
                    stats.cache.is_none(),
                    "cache-off replay must stay cache-free"
                );
                checked_off += 1;
            }
            _ => {
                let c = stats.cache.expect("cache-on replay carries counters");
                for (key, got) in [
                    ("l1_sector_reads", c.l1.sector_reads),
                    ("l2_sector_reads", c.l2.sector_reads),
                    ("mshr_merges", c.l1.mshr_merges + c.l2.mshr_merges),
                ] {
                    let want = row.get(key).and_then(|v| v.as_u64()).expect(key);
                    assert_eq!(got, want, "{strategy} N={n}: {key} drifted");
                }
                checked_on += 1;
            }
        }
    }
    assert!(checked_off >= 3, "committed doc lost its cache-off rows");
    assert!(checked_on >= 3, "committed doc lost its cache-on rows");
}
