//! Differential pinning for the cache-off simulator path.
//!
//! The sectored L1/L2 model (DESIGN.md §18) is opt-in via
//! `GpuSpec::caches`; with the knob off (`None` — the default, and the
//! setting every committed baseline was produced under) the simulator
//! must be **bit-identical** to the pre-cache engine. These tests pin
//! `simulate_kernel` outputs for a fixed plan/baseline set to committed
//! constants captured from the pre-cache code, so any accidental timing
//! or counter drift on the default path fails CI on any host.
//!
//! Durations are pinned as exact `f64` bit patterns (no tolerance).
//! To regenerate after an *intentional* semantic change to the
//! simulator, run:
//!
//! ```text
//! JIGSAW_GOLDEN_PRINT=1 cargo test -p bench-harness --test sim_differential -- --nocapture
//! ```
//!
//! and paste the printed rows over `EXPECTED`.

use baselines::{CublasGemm, SpmmKernel, Sputnik};
use dlmc::{ValueDist, VectorSparseSpec};
use gpu_sim::{simulate_kernel, GpuSpec, KernelStats};
use jigsaw_core::{build_launch, JigsawConfig, JigsawFormat, ReorderPlan};

/// One pinned simulation: kernel id, N, and the exact outputs.
struct Pinned {
    name: &'static str,
    n: usize,
    /// `duration_cycles.to_bits()` — exact, no tolerance.
    duration_bits: u64,
    instructions: u64,
    gmem_bytes: u64,
    smem_bank_conflicts: u64,
    long_scoreboard_cycles: u64,
    short_scoreboard_cycles: u64,
    barrier_cycles: u64,
    blocks: usize,
    waves: usize,
}

const SEED: u64 = 33;
const SPARSITY: f64 = 0.95;
const V: usize = 8;
const ROWS: usize = 256;
const COLS: usize = 512;

fn matrix() -> dlmc::Matrix {
    VectorSparseSpec {
        rows: ROWS,
        cols: COLS,
        sparsity: SPARSITY,
        v: V,
        dist: ValueDist::Uniform,
        seed: SEED,
    }
    .generate()
}

fn jigsaw_stats(config: &JigsawConfig, n: usize) -> KernelStats {
    let a = matrix();
    let plan = ReorderPlan::build(&a, config);
    let format = JigsawFormat::build(&a, &plan, config.metadata_interleave);
    simulate_kernel(&build_launch(&format, n, config), &GpuSpec::a100())
}

/// Every (kernel, N) pair the fixture pins, in a fixed order.
fn run_all() -> Vec<(&'static str, usize, KernelStats)> {
    let mut out = Vec::new();
    for &(name, ref config) in &[
        ("jigsaw_v0", JigsawConfig::v0()),
        ("jigsaw_v2", JigsawConfig::v2()),
        ("jigsaw_v4", JigsawConfig::v4(32)),
    ] {
        for &n in &[64usize, 256] {
            out.push((name, n, jigsaw_stats(config, n)));
        }
    }
    let a = matrix();
    let spec = GpuSpec::a100();
    let cublas = CublasGemm::plan(&a);
    out.push(("cublas", 256, cublas.simulate(256, &spec)));
    let sputnik = Sputnik::plan(&a);
    out.push(("sputnik", 256, sputnik.simulate(256, &spec)));
    out
}

const EXPECTED: &[Pinned] = &[
    Pinned {
        name: "jigsaw_v0",
        n: 64,
        duration_bits: 0x40c5738000000000,
        instructions: 3712,
        gmem_bytes: 189440,
        smem_bank_conflicts: 21504,
        long_scoreboard_cycles: 42760,
        short_scoreboard_cycles: 98772,
        barrier_cycles: 19188,
        blocks: 4,
        waves: 1,
    },
    Pinned {
        name: "jigsaw_v0",
        n: 256,
        duration_bits: 0x40c5738000000000,
        instructions: 14848,
        gmem_bytes: 757760,
        smem_bank_conflicts: 86016,
        long_scoreboard_cycles: 171040,
        short_scoreboard_cycles: 395088,
        barrier_cycles: 76752,
        blocks: 16,
        waves: 1,
    },
    Pinned {
        name: "jigsaw_v2",
        n: 64,
        duration_bits: 0x40b1400000000000,
        instructions: 4032,
        gmem_bytes: 201216,
        smem_bank_conflicts: 0,
        long_scoreboard_cycles: 18232,
        short_scoreboard_cycles: 18568,
        barrier_cycles: 8540,
        blocks: 4,
        waves: 1,
    },
    Pinned {
        name: "jigsaw_v2",
        n: 256,
        duration_bits: 0x40b1400000000000,
        instructions: 16128,
        gmem_bytes: 804864,
        smem_bank_conflicts: 0,
        long_scoreboard_cycles: 72928,
        short_scoreboard_cycles: 74272,
        barrier_cycles: 34160,
        blocks: 16,
        waves: 1,
    },
    Pinned {
        name: "jigsaw_v4",
        n: 64,
        duration_bits: 0x40a9700000000000,
        instructions: 2268,
        gmem_bytes: 202496,
        smem_bank_conflicts: 32,
        long_scoreboard_cycles: 26461,
        short_scoreboard_cycles: 17083,
        barrier_cycles: 4227,
        blocks: 8,
        waves: 1,
    },
    Pinned {
        name: "jigsaw_v4",
        n: 256,
        duration_bits: 0x40a9700000000000,
        instructions: 9072,
        gmem_bytes: 809984,
        smem_bank_conflicts: 128,
        long_scoreboard_cycles: 105844,
        short_scoreboard_cycles: 68332,
        barrier_cycles: 16908,
        blocks: 32,
        waves: 1,
    },
    Pinned {
        name: "cublas",
        n: 256,
        duration_bits: 0x40bc880000000000,
        instructions: 28736,
        gmem_bytes: 2359296,
        smem_bank_conflicts: 0,
        long_scoreboard_cycles: 198896,
        short_scoreboard_cycles: 1392,
        barrier_cycles: 58592,
        blocks: 16,
        waves: 1,
    },
    Pinned {
        name: "sputnik",
        n: 256,
        duration_bits: 0x40c4920000000000,
        instructions: 13312,
        gmem_bytes: 2392064,
        smem_bank_conflicts: 0,
        long_scoreboard_cycles: 1139904,
        short_scoreboard_cycles: 0,
        barrier_cycles: 0,
        blocks: 32,
        waves: 1,
    },
];

#[test]
fn cache_off_replays_pre_cache_baselines_bit_identically() {
    let got = run_all();
    if std::env::var_os("JIGSAW_GOLDEN_PRINT").is_some() {
        for (name, n, s) in &got {
            println!(
                "    Pinned {{ name: {:?}, n: {}, duration_bits: 0x{:016x}, instructions: {}, \
                 gmem_bytes: {}, smem_bank_conflicts: {}, long_scoreboard_cycles: {}, \
                 short_scoreboard_cycles: {}, barrier_cycles: {}, blocks: {}, waves: {} }},",
                name,
                n,
                s.duration_cycles.to_bits(),
                s.totals.instructions,
                s.totals.gmem_bytes,
                s.totals.smem_bank_conflicts,
                s.totals.long_scoreboard_cycles,
                s.totals.short_scoreboard_cycles,
                s.totals.barrier_cycles,
                s.blocks,
                s.waves,
            );
        }
        return;
    }
    assert_eq!(got.len(), EXPECTED.len(), "fixture row count drifted");
    for ((name, n, s), e) in got.iter().zip(EXPECTED) {
        let id = format!("{name}/N={n}");
        assert_eq!(*name, e.name, "{id}: row order");
        assert_eq!(*n, e.n, "{id}: row order");
        assert_eq!(
            s.duration_cycles.to_bits(),
            e.duration_bits,
            "{id}: duration drifted ({} vs pinned {})",
            s.duration_cycles,
            f64::from_bits(e.duration_bits)
        );
        assert_eq!(s.totals.instructions, e.instructions, "{id}: instructions");
        assert_eq!(s.totals.gmem_bytes, e.gmem_bytes, "{id}: gmem_bytes");
        assert_eq!(
            s.totals.smem_bank_conflicts, e.smem_bank_conflicts,
            "{id}: bank conflicts"
        );
        assert_eq!(
            s.totals.long_scoreboard_cycles, e.long_scoreboard_cycles,
            "{id}: long scoreboard"
        );
        assert_eq!(
            s.totals.short_scoreboard_cycles, e.short_scoreboard_cycles,
            "{id}: short scoreboard"
        );
        assert_eq!(s.totals.barrier_cycles, e.barrier_cycles, "{id}: barriers");
        assert_eq!(s.blocks, e.blocks, "{id}: blocks");
        assert_eq!(s.waves, e.waves, "{id}: waves");
        assert!(
            s.cache.is_none(),
            "{id}: cache stats must be absent when off"
        );
    }
}

/// The `sim.*` observability counters are derived from the same stats;
/// with caches off the per-kernel deltas must equal the stats fields
/// exactly, and no `sim.l1.*` / `sim.l2.*` counter may move.
#[test]
fn cache_off_sim_counters_match_stats_exactly() {
    let reg = jigsaw_obs::global();
    let config = JigsawConfig::v4(32);
    let a = matrix();
    let plan = ReorderPlan::build(&a, &config);
    let format = JigsawFormat::build(&a, &plan, config.metadata_interleave);
    let launch = build_launch(&format, 128, &config);

    jigsaw_obs::set_enabled(true);
    let kernels0 = reg.counter("sim.kernels").get();
    let waves0 = reg.counter("sim.waves").get();
    let conflicts0 = reg.counter("sim.smem_bank_conflicts").get();
    let long0 = reg.counter("sim.long_scoreboard_cycles").get();
    let short0 = reg.counter("sim.short_scoreboard_cycles").get();
    let l1_hits0 = reg.counter("sim.l1.hits").get();
    let l2_hits0 = reg.counter("sim.l2.hits").get();
    let merges0 = reg.counter("sim.mshr.merges").get();
    let stats = simulate_kernel(&launch, &GpuSpec::a100());
    jigsaw_obs::set_enabled(false);

    assert_eq!(reg.counter("sim.kernels").get() - kernels0, 1);
    assert_eq!(reg.counter("sim.waves").get() - waves0, stats.waves as u64);
    assert_eq!(
        reg.counter("sim.smem_bank_conflicts").get() - conflicts0,
        stats.totals.smem_bank_conflicts
    );
    assert_eq!(
        reg.counter("sim.long_scoreboard_cycles").get() - long0,
        stats.totals.long_scoreboard_cycles
    );
    assert_eq!(
        reg.counter("sim.short_scoreboard_cycles").get() - short0,
        stats.totals.short_scoreboard_cycles
    );
    assert_eq!(
        reg.counter("sim.l1.hits").get(),
        l1_hits0,
        "cache-off must not touch sim.l1.*"
    );
    assert_eq!(
        reg.counter("sim.l2.hits").get(),
        l2_hits0,
        "cache-off must not touch sim.l2.*"
    );
    assert_eq!(
        reg.counter("sim.mshr.merges").get(),
        merges0,
        "cache-off must not touch MSHR"
    );
}
