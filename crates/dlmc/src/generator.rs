//! Synthetic DLMC-style vector-sparse matrix generation.
//!
//! The paper constructs its benchmarks from the DLMC random-pruning
//! dataset by "replacing each nonzero element with a 1-D vector with
//! different width" (§4.1) — i.e. the sparse weight matrix is composed
//! of vertical nonzero vectors of length `v` (column-vector sparsity, as
//! in vectorSparse/CLASP). We reproduce that construction directly: the
//! row dimension is partitioned into `rows / v` vector lanes; within a
//! lane each column independently holds either a full length-`v` nonzero
//! vector or zeros, with the count of nonzero lane-cells chosen to hit
//! the target sparsity exactly (per lane, rounding to the nearest cell).
//!
//! Everything is seeded and deterministic.

use rand::prelude::*;
use rand::rngs::StdRng;
use sptc::F16;

use crate::matrix::Matrix;

/// Distribution of nonzero values.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ValueDist {
    /// Nonzero integers in `[-4, 4] \ {0}` — exact in f32 under any
    /// accumulation order, used by correctness tests.
    SmallInt,
    /// Uniform reals in `[-1, 1]` excluding exact zero.
    Uniform,
    /// Every nonzero is 1.0 — pattern-only workloads.
    Ones,
}

/// A vector-sparse generation request.
#[derive(Clone, Debug, PartialEq)]
pub struct VectorSparseSpec {
    /// Row count (must be a multiple of `v`).
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Target fraction of zero elements, `0.0 ..= 1.0`.
    pub sparsity: f64,
    /// Vector width: each nonzero occupies `v` vertically-consecutive
    /// cells. `v = 1` reduces to unstructured random pruning.
    pub v: usize,
    /// Value distribution for nonzeros.
    pub dist: ValueDist,
    /// RNG seed (generation is deterministic in the spec).
    pub seed: u64,
}

impl VectorSparseSpec {
    /// Convenience constructor with [`ValueDist::Uniform`] values.
    pub fn new(rows: usize, cols: usize, sparsity: f64, v: usize, seed: u64) -> Self {
        VectorSparseSpec {
            rows,
            cols,
            sparsity,
            v,
            dist: ValueDist::Uniform,
            seed,
        }
    }

    /// Generates the matrix.
    pub fn generate(&self) -> Matrix {
        assert!(self.v >= 1, "vector width must be positive");
        assert_eq!(
            self.rows % self.v,
            0,
            "rows ({}) must be a multiple of v ({})",
            self.rows,
            self.v
        );
        assert!(
            (0.0..=1.0).contains(&self.sparsity),
            "sparsity must be in [0, 1]"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let lanes = self.rows / self.v;
        let mut m = Matrix::zeros(self.rows, self.cols);

        // Exact per-lane nonzero budget so measured sparsity tracks the
        // target tightly even for small matrices.
        let nnz_per_lane = ((1.0 - self.sparsity) * self.cols as f64).round() as usize;
        let nnz_per_lane = nnz_per_lane.min(self.cols);

        let mut cols_pool: Vec<usize> = (0..self.cols).collect();
        for lane in 0..lanes {
            cols_pool.shuffle(&mut rng);
            for &c in cols_pool.iter().take(nnz_per_lane) {
                for dr in 0..self.v {
                    let r = lane * self.v + dr;
                    m.set(r, c, sample_value(self.dist, &mut rng));
                }
            }
        }
        m
    }
}

fn sample_value(dist: ValueDist, rng: &mut StdRng) -> F16 {
    match dist {
        ValueDist::SmallInt => {
            let mut x = 0i32;
            while x == 0 {
                x = rng.gen_range(-4..=4);
            }
            F16::from_f32(x as f32)
        }
        ValueDist::Uniform => {
            let mut x = 0.0f32;
            while x == 0.0 {
                x = rng.gen_range(-1.0f32..1.0);
            }
            // Round through f16 once so the value is representable.
            F16::from_f32(x)
        }
        ValueDist::Ones => F16::ONE,
    }
}

/// Generates a dense (0% sparsity) RHS operand `k × n` — the activation
/// matrix B of the SpMM.
pub fn dense_rhs(k: usize, n: usize, dist: ValueDist, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut m = Matrix::zeros(k, n);
    for r in 0..k {
        for c in 0..n {
            m.set(r, c, sample_value(dist, &mut rng));
        }
    }
    m
}

/// Magnitude-based vector pruning (the DLMC dataset's other subset):
/// start from a dense Gaussian-like weight matrix, score each vertical
/// `v`-cell by its L2 norm, and zero the smallest until the target
/// sparsity is reached — per lane, like practical 1-D block pruning.
/// Unlike random pruning, the surviving pattern correlates with value
/// magnitude, which the returned matrix preserves.
pub fn magnitude_pruned(rows: usize, cols: usize, sparsity: f64, v: usize, seed: u64) -> Matrix {
    assert!(v >= 1);
    assert_eq!(rows % v, 0);
    assert!((0.0..=1.0).contains(&sparsity));
    let mut rng = StdRng::seed_from_u64(seed);
    // Dense weights: sum of three uniforms ~ bell-shaped in [-1.5, 1.5].
    let mut dense = vec![0.0f32; rows * cols];
    for w in dense.iter_mut() {
        *w = (0..3).map(|_| rng.gen_range(-0.5f32..0.5)).sum();
    }
    let lanes = rows / v;
    let keep = ((1.0 - sparsity) * cols as f64).round() as usize;
    let mut m = Matrix::zeros(rows, cols);
    for lane in 0..lanes {
        // Score columns by the lane-cell norm, keep the largest.
        let mut scored: Vec<(f64, usize)> = (0..cols)
            .map(|c| {
                let norm: f64 = (0..v)
                    .map(|dr| {
                        let w = dense[(lane * v + dr) * cols + c];
                        f64::from(w * w)
                    })
                    .sum();
                (norm, c)
            })
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        for &(_, c) in scored.iter().take(keep) {
            for dr in 0..v {
                let r = lane * v + dr;
                m.set(r, c, F16::from_f32(dense[r * cols + c]));
            }
        }
    }
    m
}

/// Generates a matrix already pruned to the VENOM V:N:M vector pattern
/// (paper §4.5 / Table 3): rows are grouped into vertical vectors of
/// length `v`; within each group of `m_blk` consecutive columns, exactly
/// `n_blk` columns carry nonzero vectors. The kept columns of each group
/// are chosen inside a single *aligned* group of four, so the result
/// also satisfies the hardware 2:4 pattern directly — VENOM's mapping
/// onto the SpTC. Used to evaluate Jigsaw on matrices that need no
/// reordering (and to feed cuSparseLt, which demands strict 2:4).
pub fn venom_pruned(
    rows: usize,
    cols: usize,
    v: usize,
    n_blk: usize,
    m_blk: usize,
    dist: ValueDist,
    seed: u64,
) -> Matrix {
    assert_eq!(rows % v, 0);
    assert_eq!(cols % m_blk, 0);
    assert!(n_blk <= m_blk);
    assert!(n_blk <= 2, "SpTC mapping keeps at most 2 columns per group");
    assert!(m_blk >= 4, "column blocks must span an aligned 4-group");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Matrix::zeros(rows, cols);
    let lanes = rows / v;
    for lane in 0..lanes {
        for blk in 0..cols / m_blk {
            let start = blk * m_blk;
            let end = start + m_blk;
            // Aligned 4-groups fully inside [start, end).
            let g_lo = start.div_ceil(4);
            let g_hi = end / 4;
            debug_assert!(g_lo < g_hi);
            let g = rng.gen_range(g_lo..g_hi);
            let mut offs: Vec<usize> = (0..4).collect();
            offs.shuffle(&mut rng);
            for &off in offs.iter().take(n_blk) {
                let c = g * 4 + off;
                for dr in 0..v {
                    m.set(lane * v + dr, c, sample_value(dist, &mut rng));
                }
            }
        }
    }
    m
}

/// Generates a matrix in VENOM's full two-level V:N:M scheme (paper
/// §4.5, Table 3) and returns both layouts:
///
/// * the **full** `rows × cols` matrix: per group of `m_blk` columns,
///   `n_blk` kept *vector* columns (selection shared by all lanes, a
///   simplification documented in DESIGN.md), and inside the kept
///   columns a scalar 2:4 pattern at vector-lane granularity — overall
///   sparsity `1 - (n_blk/m_blk)/2`;
/// * the **compacted** `rows × (cols·n_blk/m_blk)` matrix of only the
///   kept columns, which satisfies the hardware 2:4 pattern directly —
///   what VENOM's Spatha kernel (and a cuSparseLt comparison) consume.
pub fn venom_two_level(
    rows: usize,
    cols: usize,
    v: usize,
    n_blk: usize,
    m_blk: usize,
    dist: ValueDist,
    seed: u64,
) -> (Matrix, Matrix) {
    assert_eq!(rows % v, 0);
    assert_eq!(cols % m_blk, 0);
    assert!(n_blk <= m_blk);
    let kept_cols = cols / m_blk * n_blk;
    assert_eq!(kept_cols % 4, 0, "compacted width must tile by 4");
    let mut rng = StdRng::seed_from_u64(seed);

    // Column selection, shared across lanes.
    let mut kept: Vec<usize> = Vec::with_capacity(kept_cols);
    for blk in 0..cols / m_blk {
        let mut offs: Vec<usize> = (0..m_blk).collect();
        offs.shuffle(&mut rng);
        let mut chosen: Vec<usize> = offs[..n_blk].to_vec();
        chosen.sort_unstable();
        kept.extend(chosen.into_iter().map(|o| blk * m_blk + o));
    }

    // Compacted matrix: per lane, 2-of-4 scalar 2:4 inside the kept
    // columns, vector-solid over the lane's `v` rows.
    let mut compact = Matrix::zeros(rows, kept_cols);
    for lane in 0..rows / v {
        for g in 0..kept_cols / 4 {
            let mut offs: Vec<usize> = (0..4).collect();
            offs.shuffle(&mut rng);
            for &o in offs.iter().take(2) {
                for dr in 0..v {
                    compact.set(lane * v + dr, g * 4 + o, sample_value(dist, &mut rng));
                }
            }
        }
    }

    // Scatter back to the full layout.
    let mut full = Matrix::zeros(rows, cols);
    for (kc, &c) in kept.iter().enumerate() {
        for r in 0..rows {
            full.set(r, c, compact.get(r, kc));
        }
    }
    (full, compact)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_target_sparsity() {
        for &s in &[0.5, 0.8, 0.9, 0.95, 0.98] {
            let m = VectorSparseSpec::new(512, 512, s, 4, 1).generate();
            assert!(
                (m.sparsity() - s).abs() < 0.01,
                "target {s}, got {}",
                m.sparsity()
            );
        }
    }

    #[test]
    fn vector_structure_holds() {
        let m = VectorSparseSpec::new(64, 64, 0.9, 8, 2).generate();
        // Every column within a lane is all-nonzero or all-zero.
        for lane in 0..8 {
            for c in 0..64 {
                let nz: Vec<bool> = (0..8)
                    .map(|dr| !m.get(lane * 8 + dr, c).is_zero())
                    .collect();
                assert!(
                    nz.iter().all(|&b| b) || nz.iter().all(|&b| !b),
                    "lane {lane} col {c} is torn: {nz:?}"
                );
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = VectorSparseSpec::new(128, 128, 0.9, 2, 7).generate();
        let b = VectorSparseSpec::new(128, 128, 0.9, 2, 7).generate();
        let c = VectorSparseSpec::new(128, 128, 0.9, 2, 8).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn v1_is_unstructured() {
        let m = VectorSparseSpec::new(64, 64, 0.75, 1, 3).generate();
        assert!((m.sparsity() - 0.75).abs() < 0.02);
    }

    #[test]
    fn larger_v_means_more_zero_columns_per_strip() {
        // The effect Fig 11's analysis hinges on: with the same sparsity,
        // wider vectors leave more all-zero columns inside a 16-row strip.
        let count_zero_cols = |v: usize| {
            let m = VectorSparseSpec::new(512, 512, 0.9, v, 11).generate();
            let mut zeros = 0usize;
            for strip in 0..m.rows / 16 {
                for c in 0..m.cols {
                    if m.column_zero_in_strip(c, strip * 16, strip * 16 + 16) {
                        zeros += 1;
                    }
                }
            }
            zeros
        };
        let z2 = count_zero_cols(2);
        let z8 = count_zero_cols(8);
        // With exact per-lane budgets, P(column zero within a 16-row
        // strip) ≈ s^(16/v): 0.9^8 ≈ 0.430 for v=2, 0.9^2 = 0.81 for v=8.
        let total = (512 / 16) * 512;
        let f2 = z2 as f64 / total as f64;
        let f8 = z8 as f64 / total as f64;
        assert!((f2 - 0.43).abs() < 0.03, "v=2 zero-col fraction {f2}");
        assert!((f8 - 0.81).abs() < 0.03, "v=8 zero-col fraction {f8}");
    }

    #[test]
    fn dense_rhs_is_dense() {
        let b = dense_rhs(64, 32, ValueDist::Uniform, 5);
        assert_eq!(b.nnz(), 64 * 32);
    }

    #[test]
    fn venom_pattern_structure() {
        let m = venom_pruned(64, 64, 8, 2, 8, ValueDist::Ones, 9);
        // Each lane x 8-column block has exactly 2 nonzero columns.
        for lane in 0..8 {
            for blk in 0..8 {
                let nz_cols = (0..8)
                    .filter(|&off| !m.get(lane * 8, blk * 8 + off).is_zero())
                    .count();
                assert_eq!(nz_cols, 2);
            }
        }
        // Overall sparsity 75%.
        assert!((m.sparsity() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn magnitude_pruning_hits_sparsity_and_keeps_heavy_vectors() {
        let m = magnitude_pruned(128, 256, 0.9, 4, 5);
        assert!((m.sparsity() - 0.9).abs() < 0.01);
        // Vector structure holds.
        for lane in 0..32 {
            for c in 0..256 {
                let nz: Vec<bool> = (0..4)
                    .map(|dr| !m.get(lane * 4 + dr, c).is_zero())
                    .collect();
                assert!(nz.iter().all(|&b| b) || nz.iter().all(|&b| !b));
            }
        }
        // Kept values should be larger in magnitude on average than a
        // random draw would produce: mean |kept| > 0.3.
        let kept: Vec<f32> = m
            .data
            .iter()
            .filter(|v| !v.is_zero())
            .map(|v| v.to_f32().abs())
            .collect();
        let mean = kept.iter().sum::<f32>() / kept.len() as f32;
        assert!(mean > 0.3, "mean kept magnitude {mean}");
    }

    #[test]
    fn magnitude_pruning_is_deterministic() {
        assert_eq!(
            magnitude_pruned(64, 64, 0.8, 2, 9),
            magnitude_pruned(64, 64, 0.8, 2, 9)
        );
    }

    #[test]
    fn small_int_values_are_integers() {
        let m = VectorSparseSpec {
            rows: 32,
            cols: 32,
            sparsity: 0.5,
            v: 2,
            dist: ValueDist::SmallInt,
            seed: 1,
        }
        .generate();
        for v in &m.data {
            let f = v.to_f32();
            assert_eq!(f, f.round());
            assert!(f.abs() <= 4.0);
        }
    }
}
