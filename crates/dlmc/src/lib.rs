//! # dlmc — dataset substrate
//!
//! Stand-in for Google's DLMC sparse-matrix dataset (Gale et al. 2019)
//! that the paper evaluates on: a seeded generator reproducing the
//! paper's benchmark construction (random pruning at a target sparsity,
//! each nonzero replaced by a vertical 1-D vector of width `v`), the
//! DLMC transformer shape distribution, and a `.smtx` reader/writer so
//! genuine DLMC extracts can be dropped in when available.

#![warn(missing_docs)]

pub mod generator;
pub mod matrix;
pub mod shapes;
pub mod smtx;

pub use generator::{
    dense_rhs, magnitude_pruned, venom_pruned, venom_two_level, ValueDist, VectorSparseSpec,
};
pub use matrix::Matrix;
pub use shapes::{
    LayerShape, N_SWEEP, REORDER_STUDY_SHAPES, SPARSITY_LEVELS, TRANSFORMER_SHAPES, VECTOR_WIDTHS,
};
pub use smtx::SmtxPattern;
