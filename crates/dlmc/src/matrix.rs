//! Dense row-major f16 matrix — the common currency between the dataset
//! generator, the Jigsaw kernel, and every baseline.

use sptc::F16;

/// A dense row-major matrix of f16 values.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major storage, `rows * cols` elements.
    pub data: Vec<F16>,
}

impl Matrix {
    /// An all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![F16::ZERO; rows * cols],
        }
    }

    /// Builds from f32 values (converted with round-to-nearest-even).
    pub fn from_f32(rows: usize, cols: usize, values: &[f32]) -> Matrix {
        assert_eq!(values.len(), rows * cols);
        Matrix {
            rows,
            cols,
            data: values.iter().map(|&v| F16::from_f32(v)).collect(),
        }
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> F16 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: F16) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[F16] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Number of nonzero elements.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|v| !v.is_zero()).count()
    }

    /// Fraction of elements that are zero.
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        1.0 - self.nnz() as f64 / self.data.len() as f64
    }

    /// True when column `c` is zero within rows `r0..r1`.
    pub fn column_zero_in_strip(&self, c: usize, r0: usize, r1: usize) -> bool {
        (r0..r1.min(self.rows)).all(|r| self.get(r, c).is_zero())
    }

    /// Matrix product `self × rhs` with f32 accumulation in ascending-k
    /// order — the bit-exact reference every kernel is validated against.
    pub fn matmul_reference(&self, rhs: &Matrix) -> Vec<f32> {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let (m, n) = (self.rows, rhs.cols);
        let mut out = vec![0.0f32; m * n];
        for r in 0..m {
            let a_row = self.row(r);
            for (kk, &a) in a_row.iter().enumerate() {
                if a.is_zero() {
                    continue;
                }
                let a = a.to_f32();
                let b_row = rhs.row(kk);
                for c in 0..n {
                    out[r * n + c] += a * b_row[c].to_f32();
                }
            }
        }
        out
    }

    /// Extracts the row-strip `r0..r0+h` × column set `cols` as a dense
    /// row-major tile (missing rows/cols are zero-padded).
    pub fn gather_tile(&self, r0: usize, h: usize, cols: &[usize]) -> Vec<F16> {
        let mut tile = vec![F16::ZERO; h * cols.len()];
        for (ti, r) in (r0..r0 + h).enumerate() {
            if r >= self.rows {
                break;
            }
            for (tj, &c) in cols.iter().enumerate() {
                if c < self.cols {
                    tile[ti * cols.len() + tj] = self.get(r, c);
                }
            }
        }
        tile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_accessors() {
        let mut m = Matrix::zeros(3, 4);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.sparsity(), 1.0);
        m.set(1, 2, F16::ONE);
        assert_eq!(m.get(1, 2), F16::ONE);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn reference_matmul_identity() {
        let mut eye = Matrix::zeros(4, 4);
        for i in 0..4 {
            eye.set(i, i, F16::ONE);
        }
        let b = Matrix::from_f32(4, 2, &[1., 2., 3., 4., 5., 6., 7., 8.]);
        let c = eye.matmul_reference(&b);
        assert_eq!(c, vec![1., 2., 3., 4., 5., 6., 7., 8.]);
    }

    #[test]
    fn reference_matmul_small() {
        let a = Matrix::from_f32(2, 3, &[1., 0., 2., 0., 3., 0.]);
        let b = Matrix::from_f32(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let c = a.matmul_reference(&b);
        // [1*1+2*5, 1*2+2*6; 3*3, 3*4]
        assert_eq!(c, vec![11., 14., 9., 12.]);
    }

    #[test]
    fn strip_zero_column_detection() {
        let mut m = Matrix::zeros(8, 2);
        m.set(5, 0, F16::ONE);
        assert!(m.column_zero_in_strip(0, 0, 4));
        assert!(!m.column_zero_in_strip(0, 4, 8));
        assert!(m.column_zero_in_strip(1, 0, 8));
    }

    #[test]
    fn gather_tile_pads() {
        let m = Matrix::from_f32(2, 2, &[1., 2., 3., 4.]);
        let tile = m.gather_tile(0, 4, &[1, 0]);
        assert_eq!(tile.len(), 8);
        assert_eq!(tile[0].to_f32(), 2.0);
        assert_eq!(tile[1].to_f32(), 1.0);
        assert!(tile[6].is_zero() && tile[7].is_zero());
    }
}
