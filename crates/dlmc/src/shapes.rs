//! Layer shapes mirroring the DLMC dataset's distribution.
//!
//! DLMC (Gale et al., "The State of Sparsity in Deep Neural Networks")
//! collects pruned weight matrices from Transformer NMT models; its K
//! dimension ranges from 64 to 4608 (paper §4.3). The suites below
//! reproduce that shape distribution for the synthetic generator.

/// A weight-matrix shape: the SpMM LHS is `m × k`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LayerShape {
    /// Rows of the weight matrix (output features).
    pub m: usize,
    /// Columns of the weight matrix (input features / reduction dim).
    pub k: usize,
    /// Which layer family the shape comes from.
    pub name: &'static str,
}

/// Transformer-body shapes found in DLMC.
pub const TRANSFORMER_SHAPES: &[LayerShape] = &[
    LayerShape {
        m: 512,
        k: 512,
        name: "attention-qkv",
    },
    LayerShape {
        m: 512,
        k: 2048,
        name: "ffn-contract",
    },
    LayerShape {
        m: 2048,
        k: 512,
        name: "ffn-expand",
    },
    LayerShape {
        m: 1024,
        k: 1024,
        name: "attention-large",
    },
    LayerShape {
        m: 2048,
        k: 2048,
        name: "decoder-large",
    },
    LayerShape {
        m: 1024,
        k: 4096,
        name: "ffn-contract-large",
    },
    LayerShape {
        m: 4096,
        k: 1024,
        name: "ffn-expand-large",
    },
    LayerShape {
        m: 256,
        k: 256,
        name: "attention-small",
    },
    LayerShape {
        m: 128,
        k: 512,
        name: "embedding-proj",
    },
    LayerShape {
        m: 512,
        k: 64,
        name: "head-proj",
    },
];

/// Shapes used for the reorder success-rate study (paper Fig 11): the
/// full K range of DLMC including the small-K failure cases (§4.3 notes
/// failures concentrate at K ≤ 128).
pub const REORDER_STUDY_SHAPES: &[LayerShape] = &[
    LayerShape {
        m: 256,
        k: 64,
        name: "k64",
    },
    LayerShape {
        m: 256,
        k: 128,
        name: "k128",
    },
    LayerShape {
        m: 512,
        k: 256,
        name: "k256",
    },
    LayerShape {
        m: 512,
        k: 512,
        name: "k512",
    },
    LayerShape {
        m: 512,
        k: 1024,
        name: "k1024",
    },
    LayerShape {
        m: 512,
        k: 2304,
        name: "k2304",
    },
    LayerShape {
        m: 512,
        k: 4608,
        name: "k4608",
    },
];

/// Output-width (N) sweep used in Figure 10.
pub const N_SWEEP: &[usize] = &[256, 512, 1024, 2048];

/// Sparsity levels of the evaluation (Tables 2-3, Figures 10-12).
pub const SPARSITY_LEVELS: &[f64] = &[0.80, 0.90, 0.95, 0.98];

/// Vector widths of the evaluation.
pub const VECTOR_WIDTHS: &[usize] = &[2, 4, 8];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_range_matches_dlmc() {
        let min_k = REORDER_STUDY_SHAPES.iter().map(|s| s.k).min().unwrap();
        let max_k = REORDER_STUDY_SHAPES.iter().map(|s| s.k).max().unwrap();
        assert_eq!(min_k, 64);
        assert_eq!(max_k, 4608);
    }

    #[test]
    fn shapes_are_mma_tileable() {
        // All evaluation shapes must tile by the 16x16 MMA_TILE after
        // vector expansion (v in {2,4,8} divides every m).
        for s in TRANSFORMER_SHAPES {
            assert_eq!(s.m % 16, 0, "{}", s.name);
            assert_eq!(s.k % 16, 0, "{}", s.name);
            for v in VECTOR_WIDTHS {
                assert_eq!(s.m % v, 0, "{} v={v}", s.name);
            }
        }
    }
}
