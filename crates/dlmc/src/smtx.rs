//! Reader/writer for the DLMC `.smtx` sparse-pattern format.
//!
//! DLMC files carry only the sparsity *pattern* (CSR without values):
//!
//! ```text
//! nrows, ncols, nnz
//! <nrows + 1 row offsets>
//! <nnz column indices>
//! ```
//!
//! If a real DLMC extract is available on disk, these loaders let the
//! benchmark harness run on genuine patterns; otherwise the synthetic
//! generator stands in (DESIGN.md §2).

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use sptc::F16;

use crate::matrix::Matrix;

/// A CSR sparsity pattern (no values).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmtxPattern {
    /// Matrix height.
    pub rows: usize,
    /// Matrix width.
    pub cols: usize,
    /// CSR row offsets, `rows + 1` entries.
    pub row_offsets: Vec<usize>,
    /// CSR column indices, `nnz` entries.
    pub col_indices: Vec<usize>,
}

impl SmtxPattern {
    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.col_indices.len()
    }

    /// Parses the textual `.smtx` encoding.
    pub fn parse(text: &str) -> Result<SmtxPattern, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or("empty smtx file")?;
        let dims: Vec<usize> = header
            .split(|c: char| c == ',' || c.is_whitespace())
            .filter(|s| !s.is_empty())
            .map(|s| s.parse::<usize>().map_err(|e| format!("header: {e}")))
            .collect::<Result<_, _>>()?;
        if dims.len() != 3 {
            return Err(format!("header must have 3 fields, got {}", dims.len()));
        }
        let (rows, cols, nnz) = (dims[0], dims[1], dims[2]);
        let parse_ints = |line: &str| -> Result<Vec<usize>, String> {
            line.split_whitespace()
                .map(|s| s.parse::<usize>().map_err(|e| e.to_string()))
                .collect()
        };
        let row_offsets = parse_ints(lines.next().ok_or("missing row offsets")?)?;
        let col_indices = parse_ints(lines.next().ok_or("missing column indices")?)?;
        if row_offsets.len() != rows + 1 {
            return Err(format!(
                "expected {} row offsets, got {}",
                rows + 1,
                row_offsets.len()
            ));
        }
        if col_indices.len() != nnz {
            return Err(format!(
                "expected {nnz} column indices, got {}",
                col_indices.len()
            ));
        }
        if row_offsets.first() != Some(&0) || row_offsets.last() != Some(&nnz) {
            return Err("row offsets must start at 0 and end at nnz".to_string());
        }
        if row_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("row offsets must be non-decreasing".to_string());
        }
        if col_indices.iter().any(|&c| c >= cols) {
            return Err("column index out of range".to_string());
        }
        Ok(SmtxPattern {
            rows,
            cols,
            row_offsets,
            col_indices,
        })
    }

    /// Reads and parses a `.smtx` file.
    pub fn read_file(path: &Path) -> io::Result<SmtxPattern> {
        let text = fs::read_to_string(path)?;
        SmtxPattern::parse(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Serializes to the textual encoding.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}, {}, {}", self.rows, self.cols, self.nnz());
        let join = |v: &[usize]| {
            v.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        };
        let _ = writeln!(out, "{}", join(&self.row_offsets));
        let _ = writeln!(out, "{}", join(&self.col_indices));
        out
    }

    /// Writes the textual encoding to a file.
    pub fn write_file(&self, path: &Path) -> io::Result<()> {
        fs::write(path, self.to_text())
    }

    /// Materializes the pattern as a matrix with all nonzeros = 1.0.
    pub fn to_matrix(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for i in self.row_offsets[r]..self.row_offsets[r + 1] {
                m.set(r, self.col_indices[i], F16::ONE);
            }
        }
        m
    }

    /// Extracts the pattern of an existing matrix.
    pub fn from_matrix(m: &Matrix) -> SmtxPattern {
        let mut row_offsets = Vec::with_capacity(m.rows + 1);
        let mut col_indices = Vec::new();
        row_offsets.push(0);
        for r in 0..m.rows {
            for c in 0..m.cols {
                if !m.get(r, c).is_zero() {
                    col_indices.push(c);
                }
            }
            row_offsets.push(col_indices.len());
        }
        SmtxPattern {
            rows: m.rows,
            cols: m.cols,
            row_offsets,
            col_indices,
        }
    }

    /// The paper's benchmark construction: replace each nonzero of the
    /// pattern with a vertical 1-D vector of width `v` (the result has
    /// `rows * v` rows).
    pub fn expand_vectors(&self, v: usize) -> Matrix {
        let mut m = Matrix::zeros(self.rows * v, self.cols);
        for r in 0..self.rows {
            for i in self.row_offsets[r]..self.row_offsets[r + 1] {
                let c = self.col_indices[i];
                for dr in 0..v {
                    m.set(r * v + dr, c, F16::ONE);
                }
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "3, 4, 5\n0 2 3 5\n0 2 1 0 3\n";

    #[test]
    fn parse_sample() {
        let p = SmtxPattern::parse(SAMPLE).unwrap();
        assert_eq!(p.rows, 3);
        assert_eq!(p.cols, 4);
        assert_eq!(p.nnz(), 5);
        assert_eq!(p.row_offsets, vec![0, 2, 3, 5]);
    }

    #[test]
    fn roundtrip_through_text() {
        let p = SmtxPattern::parse(SAMPLE).unwrap();
        let q = SmtxPattern::parse(&p.to_text()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn roundtrip_through_matrix() {
        let p = SmtxPattern::parse(SAMPLE).unwrap();
        let m = p.to_matrix();
        assert_eq!(m.nnz(), 5);
        assert_eq!(SmtxPattern::from_matrix(&m), p);
    }

    #[test]
    fn vector_expansion() {
        let p = SmtxPattern::parse(SAMPLE).unwrap();
        let m = p.expand_vectors(4);
        assert_eq!(m.rows, 12);
        assert_eq!(m.nnz(), 20);
        // First pattern row has nonzeros at cols 0 and 2 -> rows 0..4.
        for dr in 0..4 {
            assert!(!m.get(dr, 0).is_zero());
            assert!(!m.get(dr, 2).is_zero());
            assert!(m.get(dr, 1).is_zero());
        }
    }

    #[test]
    fn rejects_malformed() {
        assert!(SmtxPattern::parse("").is_err());
        assert!(SmtxPattern::parse("2, 2\n0 1 1\n0\n").is_err()); // short header
        assert!(SmtxPattern::parse("2, 2, 1\n0 1\n0\n").is_err()); // offsets len
        assert!(SmtxPattern::parse("2, 2, 1\n0 0 1\n5\n").is_err()); // col oob
        assert!(SmtxPattern::parse("2, 2, 1\n0 2 1\n0\n").is_err()); // decreasing
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("dlmc-smtx-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.smtx");
        let p = SmtxPattern::parse(SAMPLE).unwrap();
        p.write_file(&path).unwrap();
        assert_eq!(SmtxPattern::read_file(&path).unwrap(), p);
    }
}
