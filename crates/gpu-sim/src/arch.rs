//! Architecture parameters of the simulated GPU.
//!
//! The defaults model an NVIDIA A100-SXM4-40GB — the evaluation platform
//! of the paper — at the level of detail the experiments exercise:
//! per-sub-partition tensor pipes whose sparse `m16n8k32` issue interval
//! equals the dense `m16n8k16` one (Sun et al., TPDS'23), a shared-memory
//! pipe serialized by bank-conflict replays, and an async-copy path with
//! DRAM latency plus per-SM bandwidth.
//!
//! All times are in SM clock cycles; conversion to wall time uses
//! `clock_ghz`.

use serde::{Deserialize, Serialize};

/// Tunable machine description consumed by the timing engine.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Human-readable name, e.g. `"A100-SXM4-40GB"`.
    pub name: String,
    /// Number of streaming multiprocessors (A100: 108).
    pub num_sms: usize,
    /// Warp schedulers (sub-partitions) per SM (A100: 4).
    pub schedulers_per_sm: usize,
    /// Hard cap on resident thread blocks per SM (A100: 32).
    pub max_blocks_per_sm: usize,
    /// Hard cap on resident warps per SM (A100: 64).
    pub max_warps_per_sm: usize,
    /// Shared memory available to thread blocks, bytes (A100: 164 KiB).
    pub smem_per_sm_bytes: usize,
    /// SM clock in GHz (A100 locked clock, matching the paper's fixed
    /// frequency methodology): 1.41 GHz boost.
    pub clock_ghz: f64,

    /// Device DRAM bandwidth in bytes per SM-cycle, whole device
    /// (A100 40GB: 1555 GB/s / 1.41 GHz ≈ 1103 B/cycle).
    pub dram_bytes_per_cycle: f64,
    /// L2 data bandwidth in bytes per cycle, whole device (A100
    /// aggregate L2 read bandwidth ≈ 6 TB/s ≈ 4300 B/cycle at the
    /// locked clock; we use a sustained figure slightly above the
    /// dense-HGEMM break-even so well-tiled dense GEMM is
    /// tensor-bound, matching the hardware). The
    /// per-block staging traffic (`cp.async`, tile slabs) flows at this
    /// rate — re-reads of shared tiles hit L2, while *compulsory* DRAM
    /// traffic is bounded separately by `dram_bytes_per_cycle` via the
    /// kernel-level roofline.
    pub l2_bytes_per_cycle: f64,
    /// DRAM (global) load latency in cycles, L2-miss path.
    pub gmem_latency: u64,
    /// L2-hit latency in cycles.
    pub l2_latency: u64,
    /// L2 cache size in bytes (A100: 40 MiB).
    pub l2_bytes: usize,
    /// Shared-memory load result latency in cycles.
    pub smem_latency: u64,
    /// ALU dependent-issue latency in cycles.
    pub alu_latency: u64,
    /// Tensor-pipe result latency in cycles (fragment available after).
    pub tensor_latency: u64,

    /// Issue interval of a dense f16 `m16n8k16` HMMA on one tensor pipe,
    /// in cycles. One sub-partition sustains 512 dense FMA/cycle, so the
    /// 2048-FMA instruction occupies the pipe for 4... see note: we use
    /// FLOPs (2*FMA): 4096 FLOP / 1024 FLOP-per-cycle = 4 cycles? The
    /// A100 whitepaper rate (312 TFLOPS over 432 pipes at 1.41 GHz)
    /// works out to 512 FLOP/cycle/pipe *per FMA pair*; we encode the
    /// measured 8-cycle issue interval from Sun et al.
    pub mma_m16n8k16_interval: u64,
    /// Issue interval of sparse `m16n8k32` — equal to the dense k16 one
    /// (the property that makes SpTC a 2x win).
    pub mma_sp_m16n8k32_interval: u64,
    /// Issue interval of sparse `m16n8k16` (half the useful work at the
    /// same occupancy; the paper rejects this shape).
    pub mma_sp_m16n8k16_interval: u64,
    /// Issue interval of dense `m8n8k16` (CLASP's shape).
    pub mma_m8n8k16_interval: u64,

    /// Peak CUDA-core FP16 FMA lanes per scheduler (A100: 64 FP32 lanes
    /// per sub-partition; FP16x2 doubles). Used for CUDA-core kernels.
    pub cuda_fp16_fma_per_cycle_per_scheduler: u64,

    /// Fixed overhead added once per kernel, cycles (pipeline drain,
    /// tail effects). Kernel *launch* overhead is excluded, matching the
    /// paper's Nsight "Duration" metric.
    pub kernel_fixed_overhead: u64,

    /// Sectored L1/L2 data-cache model (DESIGN.md §18). `None` — the
    /// default everywhere, including `a100()` — disables the hierarchy
    /// entirely, keeping every committed baseline bit-identical to the
    /// pre-cache simulator. `Some` interposes a per-SM L1 and a shared
    /// sliced L2 on the global-memory path.
    pub caches: Option<CacheHierarchyConfig>,
}

/// Geometry of one sectored cache level.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Number of sets.
    pub sets: usize,
    /// Associativity (lines per set).
    pub ways: usize,
    /// Line size in bytes (A100: 128).
    pub line_bytes: usize,
    /// Fill/validity granularity in bytes (A100: 32).
    pub sector_bytes: usize,
    /// Result latency of a hit in this level, cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// Total data capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * self.line_bytes
    }
}

/// The two-level hierarchy the engine/device interpose when enabled.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CacheHierarchyConfig {
    /// Per-SM L1 (one private instance per thread block's SM).
    pub l1: CacheConfig,
    /// One slice of the shared L2; the device keeps `l2_slices` of
    /// them, address-interleaved by line.
    pub l2: CacheConfig,
    /// Number of independent L2 slices (A100: 40 partitions per side
    /// pair modelled as 40 interleaved slices).
    pub l2_slices: usize,
}

impl CacheHierarchyConfig {
    /// A100-like geometry: 32 KiB of L1 data cache per SM
    /// (64 sets × 4 ways × 128 B lines, 32 B sectors) and a 40 MiB L2
    /// as 40 slices of 512 sets × 16 ways × 128 B.
    pub fn a100() -> CacheHierarchyConfig {
        CacheHierarchyConfig {
            l1: CacheConfig {
                sets: 64,
                ways: 4,
                line_bytes: 128,
                sector_bytes: 32,
                hit_latency: 32,
            },
            l2: CacheConfig {
                sets: 512,
                ways: 16,
                line_bytes: 128,
                sector_bytes: 32,
                hit_latency: 200,
            },
            l2_slices: 40,
        }
    }
}

impl GpuSpec {
    /// The paper's evaluation platform.
    pub fn a100() -> GpuSpec {
        GpuSpec {
            name: "A100-SXM4-40GB".to_string(),
            num_sms: 108,
            schedulers_per_sm: 4,
            max_blocks_per_sm: 32,
            max_warps_per_sm: 64,
            smem_per_sm_bytes: 164 * 1024,
            clock_ghz: 1.41,
            dram_bytes_per_cycle: 1103.0,
            l2_bytes_per_cycle: 4500.0,
            gmem_latency: 430,
            l2_latency: 200,
            l2_bytes: 40 * 1024 * 1024,
            smem_latency: 23,
            alu_latency: 4,
            tensor_latency: 16,
            mma_m16n8k16_interval: 8,
            mma_sp_m16n8k32_interval: 8,
            mma_sp_m16n8k16_interval: 8,
            mma_m8n8k16_interval: 4,
            cuda_fp16_fma_per_cycle_per_scheduler: 128,
            kernel_fixed_overhead: 1500,
            caches: None,
        }
    }

    /// The same machine with the sectored L1/L2 model switched on.
    pub fn a100_with_caches() -> GpuSpec {
        GpuSpec {
            caches: Some(CacheHierarchyConfig::a100()),
            ..GpuSpec::a100()
        }
    }

    /// DRAM bandwidth available to a single SM when all SMs stream.
    pub fn dram_bytes_per_cycle_per_sm(&self) -> f64 {
        self.dram_bytes_per_cycle / self.num_sms as f64
    }

    /// L2 bandwidth available to a single SM when all SMs stream.
    pub fn l2_bytes_per_cycle_per_sm(&self) -> f64 {
        self.l2_bytes_per_cycle / self.num_sms as f64
    }

    /// Converts cycles to microseconds at the configured clock.
    pub fn cycles_to_us(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1000.0)
    }

    /// Peak dense f16 tensor FLOPs per cycle for the whole device
    /// (2 FLOP per FMA).
    pub fn peak_dense_tensor_flops_per_cycle(&self) -> f64 {
        // One m16n8k16 (4096 FLOP) per pipe per interval.
        let per_pipe = 4096.0 / self.mma_m16n8k16_interval as f64;
        per_pipe * (self.num_sms * self.schedulers_per_sm) as f64
    }

    /// Peak sparse f16 tensor FLOPs per cycle (counting skipped zeros as
    /// work, i.e. the "effective" 2x number).
    pub fn peak_sparse_tensor_flops_per_cycle(&self) -> f64 {
        let per_pipe = 8192.0 / self.mma_sp_m16n8k32_interval as f64;
        per_pipe * (self.num_sms * self.schedulers_per_sm) as f64
    }
}

impl Default for GpuSpec {
    fn default() -> Self {
        GpuSpec::a100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_peak_flops_sanity() {
        let spec = GpuSpec::a100();
        // 108 SMs * 4 pipes * 512 FLOP/cycle * 1.41 GHz ≈ 312 TFLOPS.
        let tflops = spec.peak_dense_tensor_flops_per_cycle() * spec.clock_ghz * 1e9 / 1e12;
        assert!((tflops - 312.0).abs() < 5.0, "got {tflops}");
        // Sparse doubles it.
        let sp = spec.peak_sparse_tensor_flops_per_cycle();
        assert_eq!(sp, 2.0 * spec.peak_dense_tensor_flops_per_cycle());
    }

    #[test]
    fn a100_bandwidth_sanity() {
        let spec = GpuSpec::a100();
        // 1103 B/cycle * 1.41 GHz ≈ 1555 GB/s.
        let gbs = spec.dram_bytes_per_cycle * spec.clock_ghz;
        assert!((gbs - 1555.0).abs() < 10.0, "got {gbs}");
    }

    #[test]
    fn cycles_to_us() {
        let spec = GpuSpec::a100();
        assert!((spec.cycles_to_us(1410.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sparse_equals_dense_interval() {
        // The microbenchmark fact the paper's shape choice rests on.
        let spec = GpuSpec::a100();
        assert_eq!(spec.mma_sp_m16n8k32_interval, spec.mma_m16n8k16_interval);
    }
}
