//! Sectored set-associative cache with LRU replacement and MSHR-style
//! miss coalescing (DESIGN.md §18).
//!
//! Lines are allocated whole but filled per 32-byte *sector*: a lookup
//! touches every sector its request covers, and each sector
//! independently hits, merges onto an in-flight fill, or starts a new
//! fill — the same structure gpucachesim/accelsim validate against
//! real sector caches. Fills become *visible* immediately (the line's
//! sector-valid bit is set at allocation) but stay *in flight* until
//! `now + fill_latency`: a re-access of an in-flight sector counts as
//! an MSHR merge — it waits for the data like a miss, yet adds no
//! next-level traffic — which is exactly the distinction that keeps
//! duplicate per-warp loads of one tile from double-counting DRAM
//! bytes.
//!
//! The model is a *counting* model: it decides hit/merge/fill and lets
//! the caller (the engine's global-memory path, the device's L2
//! replay) translate outcomes into latency and bandwidth charges.

use std::collections::HashMap;

use crate::arch::CacheConfig;
use crate::stats::CacheStats;

/// What happened to one sector of a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SectorOutcome {
    /// Resident and fill complete: served at `hit_latency`.
    Hit,
    /// An earlier fill of this sector is still in flight: the request
    /// waits on it but generates no next-level traffic.
    Merge,
    /// Not resident: a next-level read starts now.
    Fill,
}

/// Aggregate outcome of one multi-sector access.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessResult {
    /// Sectors the request covered.
    pub sectors: u32,
    /// Sectors served from the cache.
    pub hits: u32,
    /// Sectors coalesced onto in-flight fills.
    pub merges: u32,
    /// Sectors that started new next-level reads.
    pub fills: u32,
}

impl AccessResult {
    /// True when every sector was resident (no latency/bandwidth charge
    /// beyond the hit path).
    pub fn full_hit(&self) -> bool {
        self.sectors > 0 && self.hits == self.sectors
    }
}

#[derive(Clone, Copy, Debug)]
struct Line {
    /// Line address (`addr / line_bytes`); tag and set derive from it.
    line_id: u64,
    /// Bitmask of valid sectors within the line.
    valid_sectors: u64,
    /// LRU stamp (monotonic access counter, not cycles).
    last_use: u64,
    valid: bool,
}

const EMPTY_LINE: Line = Line {
    line_id: 0,
    valid_sectors: 0,
    last_use: 0,
    valid: false,
};

/// One sectored, set-associative, LRU cache instance.
#[derive(Clone, Debug)]
pub struct SectoredCache {
    cfg: CacheConfig,
    /// `sets × ways` lines, set-major.
    lines: Vec<Line>,
    /// In-flight fills: sector id → cycle the data lands.
    pending: HashMap<u64, u64>,
    /// Monotonic access counter driving LRU.
    tick: u64,
    stats: CacheStats,
}

impl SectoredCache {
    /// An empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> SectoredCache {
        assert!(cfg.sets > 0 && cfg.ways > 0, "degenerate cache geometry");
        assert!(
            cfg.line_bytes >= cfg.sector_bytes && cfg.line_bytes.is_multiple_of(cfg.sector_bytes),
            "line must be a whole number of sectors"
        );
        SectoredCache {
            lines: vec![EMPTY_LINE; cfg.sets * cfg.ways],
            pending: HashMap::new(),
            tick: 0,
            cfg,
            stats: CacheStats::default(),
        }
    }

    /// The geometry this instance was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Looks up every sector in `[addr, addr + bytes)` at time `now`.
    /// New fills are in flight until `now + fill_latency`; `now` must
    /// be non-decreasing across calls (the engine's issue times are).
    pub fn access(&mut self, addr: u64, bytes: u32, now: u64, fill_latency: u64) -> AccessResult {
        self.access_with(addr, bytes, now, fill_latency, &mut |_| {})
    }

    /// Like [`SectoredCache::access`], invoking `on_fill` with the byte
    /// address of every sector that starts a next-level read — the hook
    /// the engine uses to log L1 fills for the device's L2 replay.
    pub fn access_with(
        &mut self,
        addr: u64,
        bytes: u32,
        now: u64,
        fill_latency: u64,
        on_fill: &mut dyn FnMut(u64),
    ) -> AccessResult {
        let mut result = AccessResult::default();
        if bytes == 0 {
            return result;
        }
        let sb = self.cfg.sector_bytes as u64;
        let first = addr / sb;
        let last = (addr + u64::from(bytes) - 1) / sb;
        for sector in first..=last {
            result.sectors += 1;
            match self.access_sector(sector, now, fill_latency) {
                SectorOutcome::Hit => result.hits += 1,
                SectorOutcome::Merge => result.merges += 1,
                SectorOutcome::Fill => {
                    result.fills += 1;
                    on_fill(sector * sb);
                }
            }
        }
        self.stats.accesses += u64::from(result.sectors);
        self.stats.hits += u64::from(result.hits);
        self.stats.misses += u64::from(result.merges + result.fills);
        self.stats.mshr_merges += u64::from(result.merges);
        self.stats.sector_reads += u64::from(result.fills);
        result
    }

    /// One sector lookup; classifies and updates state.
    fn access_sector(&mut self, sector: u64, now: u64, fill_latency: u64) -> SectorOutcome {
        self.tick += 1;
        let sectors_per_line = (self.cfg.line_bytes / self.cfg.sector_bytes) as u64;
        let line_id = sector / sectors_per_line;
        let sector_bit = 1u64 << (sector % sectors_per_line);
        let set = (line_id % self.cfg.sets as u64) as usize;
        let base = set * self.cfg.ways;
        let ways = &mut self.lines[base..base + self.cfg.ways];

        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.line_id == line_id) {
            line.last_use = self.tick;
            if line.valid_sectors & sector_bit != 0 {
                return match self.pending.get(&sector) {
                    Some(&ready) if ready > now => SectorOutcome::Merge,
                    _ => SectorOutcome::Hit,
                };
            }
            // Line resident, sector not yet fetched: sector fill.
            line.valid_sectors |= sector_bit;
            self.pending.insert(sector, now + fill_latency);
            return SectorOutcome::Fill;
        }

        // Allocate: empty way first, else LRU victim.
        let victim = match ways.iter_mut().find(|l| !l.valid) {
            Some(empty) => empty,
            None => {
                self.stats.evictions += 1;
                ways.iter_mut()
                    .min_by_key(|l| l.last_use)
                    .expect("ways > 0")
            }
        };
        *victim = Line {
            line_id,
            valid_sectors: sector_bit,
            last_use: self.tick,
            valid: true,
        };
        self.pending.insert(sector, now + fill_latency);
        SectorOutcome::Fill
    }
}

/// A bank of address-interleaved cache slices (the shared L2): line
/// `addr / line_bytes` lands on slice `line % slices`. Each slice is an
/// independent [`SectoredCache`]; stats aggregate across slices.
#[derive(Clone, Debug)]
pub struct SlicedCache {
    slices: Vec<SectoredCache>,
    line_bytes: u64,
}

impl SlicedCache {
    /// `slices` independent instances of `cfg`.
    pub fn new(cfg: CacheConfig, slices: usize) -> SlicedCache {
        assert!(slices > 0, "need at least one slice");
        SlicedCache {
            slices: (0..slices).map(|_| SectoredCache::new(cfg)).collect(),
            line_bytes: cfg.line_bytes as u64,
        }
    }

    /// Routes the access to its slice (requests here are single-sector,
    /// so one slice owns the whole access). The slice sees a compacted
    /// local address — `line / slices` — so set indexing inside a slice
    /// uses the address bits *above* the slice-interleave bits, as real
    /// partitioned L2s do.
    pub fn access(&mut self, addr: u64, bytes: u32, now: u64, fill_latency: u64) -> AccessResult {
        let nslices = self.slices.len() as u64;
        let line = addr / self.line_bytes;
        let slice = (line % nslices) as usize;
        let local = (line / nslices) * self.line_bytes + addr % self.line_bytes;
        self.slices[slice].access(local, bytes, now, fill_latency)
    }

    /// Counters summed over all slices.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.slices {
            total.absorb(s.stats());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(sets: usize, ways: usize) -> SectoredCache {
        SectoredCache::new(CacheConfig {
            sets,
            ways,
            line_bytes: 128,
            sector_bytes: 32,
            hit_latency: 32,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny(4, 2);
        let first = c.access(0x1000, 32, 0, 100);
        assert_eq!(first.fills, 1);
        // After the fill lands the sector hits.
        let second = c.access(0x1000, 32, 200, 100);
        assert_eq!(second.hits, 1);
        assert!(second.full_hit());
        let s = c.stats();
        assert_eq!(s.accesses, 2);
        assert_eq!(s.hits + s.misses, s.accesses);
    }

    #[test]
    fn inflight_reaccess_merges_without_new_traffic() {
        let mut c = tiny(4, 2);
        c.access(0x1000, 32, 0, 100);
        let merged = c.access(0x1000, 32, 10, 100); // fill still in flight
        assert_eq!(merged.merges, 1);
        assert_eq!(merged.fills, 0);
        assert_eq!(c.stats().sector_reads, 1, "merge must not refetch");
        assert_eq!(c.stats().mshr_merges, 1);
    }

    #[test]
    fn sectors_fill_independently_within_a_line() {
        let mut c = tiny(4, 2);
        // One 128B line = 4 sectors; request the whole line.
        let r = c.access(0, 128, 0, 10);
        assert_eq!(r.sectors, 4);
        assert_eq!(r.fills, 4);
        // A different sector of the same line later: line hit, sector fill.
        let mut c2 = tiny(4, 2);
        c2.access(0, 32, 0, 10);
        let r2 = c2.access(64, 32, 100, 10);
        assert_eq!(r2.fills, 1);
        assert_eq!(c2.stats().evictions, 0, "same line, no eviction");
    }

    #[test]
    fn lru_evicts_the_least_recent_line() {
        let mut c = tiny(1, 2); // one set, two ways
        let line = |i: u64| i * 128;
        c.access(line(0), 32, 0, 1); // A
        c.access(line(1), 32, 10, 1); // B
        c.access(line(0), 32, 20, 1); // touch A -> B is LRU
        c.access(line(2), 32, 30, 1); // C evicts B
        assert_eq!(c.stats().evictions, 1);
        assert!(c.access(line(0), 32, 40, 1).full_hit(), "A survived");
        assert_eq!(c.access(line(1), 32, 50, 1).fills, 1, "B was evicted");
    }

    #[test]
    fn sliced_routing_is_by_line() {
        let cfg = CacheConfig {
            sets: 2,
            ways: 1,
            line_bytes: 128,
            sector_bytes: 32,
            hit_latency: 1,
        };
        let mut l2 = SlicedCache::new(cfg, 4);
        for i in 0..16u64 {
            l2.access(i * 128, 32, i, 1);
        }
        let s = l2.stats();
        assert_eq!(s.accesses, 16);
        assert_eq!(s.sector_reads, 16);
        // 16 lines over 4 slices × 2 sets × 1 way = 8 resident lines.
        assert_eq!(s.evictions, 8);
    }

    #[test]
    fn conservation_on_a_random_stream() {
        let mut c = tiny(8, 4);
        let mut x = 0x9e3779b97f4a7c15u64;
        for i in 0..10_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = (x >> 16) % (64 * 1024);
            let bytes = 32 * (1 + (x % 4) as u32);
            c.access(addr, bytes, i * 3, 40);
        }
        let s = c.stats();
        assert_eq!(s.accesses, s.hits + s.misses);
        assert_eq!(s.misses, s.sector_reads + s.mshr_merges);
    }
}
