//! Device-level model: occupancy, wave scheduling of thread blocks onto
//! SMs, and the DRAM roofline bound.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use rayon::prelude::*;

use crate::arch::GpuSpec;
use crate::cache::SlicedCache;
use crate::engine::{simulate_block_traced, BlockSim, EngineConfig};
use crate::instr::{BlockTrace, KernelLaunch, WarpInstr};
use crate::stats::{BlockStats, CacheHierarchyStats, CacheStats, KernelStats};

/// Resident blocks per SM for a block with the given footprint.
///
/// Limited by shared memory, the warp-slot budget, and the hard block
/// cap — the three limits §2.1 of the paper describes.
pub fn occupancy(spec: &GpuSpec, smem_bytes: usize, warps_per_block: usize) -> usize {
    let by_smem = spec
        .smem_per_sm_bytes
        .checked_div(smem_bytes)
        .unwrap_or(spec.max_blocks_per_sm);
    let by_warps = spec
        .max_warps_per_sm
        .checked_div(warps_per_block)
        .unwrap_or(spec.max_blocks_per_sm);
    by_smem.min(by_warps).min(spec.max_blocks_per_sm).max(1)
}

/// Structural signature of a block trace; identical blocks simulate once.
fn signature(block: &BlockTrace) -> u64 {
    let mut h = DefaultHasher::new();
    block.smem_bytes.hash(&mut h);
    block.warps.len().hash(&mut h);
    for w in &block.warps {
        w.len().hash(&mut h);
        for i in w {
            instr_hash(i, &mut h);
        }
    }
    // Address annotations change cache behavior, so they split dedup
    // groups; with the model off they are empty everywhere and hash to
    // the same value, leaving the grouping untouched.
    block.gmem.hash(&mut h);
    h.finish()
}

fn instr_hash(i: &WarpInstr, h: &mut DefaultHasher) {
    std::mem::discriminant(i).hash(h);
    match i {
        WarpInstr::CpAsync {
            bytes,
            group,
            consumes,
        } => {
            bytes.hash(h);
            group.hash(h);
            consumes.hash(h);
        }
        WarpInstr::CommitGroup { group } => group.hash(h),
        WarpInstr::WaitGroup { pending_allowed } => pending_allowed.hash(h),
        WarpInstr::LdGlobal {
            bytes,
            transactions,
            produces,
            l2_hit,
            consumes,
        } => {
            bytes.hash(h);
            transactions.hash(h);
            produces.hash(h);
            l2_hit.hash(h);
            consumes.hash(h);
        }
        WarpInstr::LdShared {
            conflict_ways,
            produces,
            consumes,
        } => {
            conflict_ways.hash(h);
            produces.hash(h);
            consumes.hash(h);
        }
        WarpInstr::StShared {
            conflict_ways,
            consumes,
        } => {
            conflict_ways.hash(h);
            consumes.hash(h);
        }
        WarpInstr::Ldmatrix {
            phases,
            total_ways,
            produces,
            consumes,
        } => {
            phases.hash(h);
            total_ways.hash(h);
            produces.hash(h);
            consumes.hash(h);
        }
        WarpInstr::Mma {
            op,
            consumes,
            produces,
        } => {
            std::mem::discriminant(op).hash(h);
            consumes.hash(h);
            produces.hash(h);
        }
        WarpInstr::CudaOp {
            cycles,
            consumes,
            produces,
        } => {
            cycles.hash(h);
            consumes.hash(h);
            produces.hash(h);
        }
        WarpInstr::Barrier => {}
        WarpInstr::StGlobal { bytes, consumes } => {
            bytes.hash(h);
            consumes.hash(h);
        }
    }
}

/// Simulates a whole kernel launch and reports its duration and
/// Nsight-style counters.
pub fn simulate_kernel(launch: &KernelLaunch, spec: &GpuSpec) -> KernelStats {
    if launch.blocks.is_empty() {
        return KernelStats::default().finish();
    }
    let warps_per_block = launch
        .blocks
        .iter()
        .map(|b| b.warps.len())
        .max()
        .unwrap_or(1);
    let smem = launch
        .blocks
        .iter()
        .map(|b| b.smem_bytes)
        .max()
        .unwrap_or(0);
    let occ = occupancy(spec, smem, warps_per_block);
    // Per-block latency is estimated at the full per-SM bandwidth
    // share; contention between co-resident blocks is captured by the
    // wave model's busy-sum and the device-wide L2/DRAM rooflines —
    // splitting the share here as well would double-count it.
    let resident = 1;

    // Deduplicate structurally identical blocks. Arc-shared replicas
    // (the common case: one trace per strip, repeated per N-tile) are
    // recognized by pointer before falling back to hashing the trace.
    let mut unique: Vec<&BlockTrace> = Vec::new();
    let mut index_of: HashMap<u64, usize> = HashMap::new();
    let mut by_ptr: HashMap<*const BlockTrace, usize> = HashMap::new();
    let mut counts: Vec<u64> = Vec::new();
    let mut block_kind: Vec<usize> = Vec::with_capacity(launch.blocks.len());
    for b in &launch.blocks {
        let ptr = std::sync::Arc::as_ptr(b);
        let idx = match by_ptr.get(&ptr) {
            Some(&i) => i,
            None => {
                let b: &BlockTrace = b;
                let sig = signature(b);
                let i = *index_of.entry(sig).or_insert_with(|| {
                    unique.push(b);
                    counts.push(0);
                    unique.len() - 1
                });
                by_ptr.insert(ptr, i);
                i
            }
        };
        counts[idx] += 1;
        block_kind.push(idx);
    }

    let cfg = EngineConfig {
        spec: spec.clone(),
        resident_blocks: resident,
    };
    let per_unique: Vec<BlockSim> = unique
        .par_iter()
        .map(|b| simulate_block_traced(b, &cfg))
        .collect();

    // Wave scheduling with throughput serialization: each SM hosts up
    // to `occ` blocks at once, but its pipes are shared — a wave of
    // co-resident blocks takes `max(longest latency-bound duration,
    // sum of throughput footprints)`. Blocks deal round-robin to SMs
    // in launch order (the hardware's rasterization), waves accumulate
    // per SM, makespan = slowest SM.
    let sms = spec.num_sms.min(launch.blocks.len()).max(1);
    let mut sm_blocks: Vec<Vec<(usize, usize)>> = vec![Vec::new(); sms];
    for (i, &kind) in block_kind.iter().enumerate() {
        sm_blocks[i % sms].push((i, kind));
    }
    let makespan = sm_blocks
        .iter()
        .map(|kinds| {
            kinds
                .chunks(occ.max(1))
                .map(|wave| {
                    let latency = wave
                        .iter()
                        .map(|&(_, k)| per_unique[k].stats.cycles)
                        .max()
                        .unwrap_or(0);
                    let busy: u64 = wave
                        .iter()
                        .map(|&(_, k)| per_unique[k].stats.busy_cycles)
                        .sum();
                    latency.max(busy).max(1)
                })
                .sum::<u64>()
        })
        .max()
        .unwrap_or(0);

    // Aggregate counters over all blocks.
    let mut totals = BlockStats::default();
    for (sim, &count) in per_unique.iter().zip(counts.iter()) {
        totals.add_scaled(&sim.stats, count);
    }

    // Shared-L2 replay (cache model on): feed every block's L1 fills
    // through the sliced L2 wave by wave in launch order — the order
    // the wave scheduler retires them. Block starts are staggered far
    // enough apart on real hardware that a later block re-reading a
    // sector another block already filled sees a resident line, so
    // `now` advances past the fill latency between blocks: cross-block
    // reuse is modeled as L2 hits, while simultaneous-miss coalescing
    // lives in the per-block L1 MSHR. `scaled` fills get the block's
    // bias; synthetic ones are rebased per launch index so replicated
    // unannotated blocks cannot fake reuse.
    let cache = spec.caches.as_ref().map(|h| {
        let mut l1_total = CacheStats::default();
        for (sim, &count) in per_unique.iter().zip(counts.iter()) {
            if let Some(l1) = &sim.l1 {
                l1_total.add_scaled(l1, count);
            }
        }
        let mut l2 = SlicedCache::new(h.l2, h.l2_slices);
        let sector_bytes = h.l2.sector_bytes as u32;
        let wave_count = sm_blocks
            .iter()
            .map(|k| k.len().div_ceil(occ.max(1)))
            .max()
            .unwrap_or(0);
        let mut seq = 0u64;
        for wave in 0..wave_count {
            for kinds in &sm_blocks {
                let Some(chunk) = kinds.chunks(occ.max(1)).nth(wave) else {
                    continue;
                };
                for &(launch_idx, kind) in chunk {
                    let now = seq * (spec.gmem_latency + 1);
                    seq += 1;
                    let bias = launch.bias_of(launch_idx);
                    for fill in &per_unique[kind].l1_fills {
                        let mut addr = fill.addr;
                        if fill.scaled {
                            addr += bias;
                        }
                        if fill.synthetic {
                            addr += (launch_idx as u64) << 32;
                        }
                        l2.access(addr, sector_bytes, now, spec.gmem_latency);
                    }
                }
            }
        }
        CacheHierarchyStats {
            l1: l1_total,
            l2: l2.stats(),
        }
    });

    // Device-wide memory rooflines. Without the cache model: every
    // staged byte crosses L2 once and the declared compulsory working
    // set crosses DRAM once. With it: the measured traffic replaces
    // both — L1 fills cross L2, L2 fills cross DRAM.
    let (l2_cycles, dram_cycles) = match &cache {
        None => (
            totals.gmem_bytes as f64 / spec.l2_bytes_per_cycle,
            launch.dram_bytes as f64 / spec.dram_bytes_per_cycle,
        ),
        Some(c) => {
            let sector = spec.caches.as_ref().map_or(32, |h| h.l2.sector_bytes) as f64;
            (
                c.l1.sector_reads as f64 * sector / spec.l2_bytes_per_cycle,
                c.l2.sector_reads as f64 * sector / spec.dram_bytes_per_cycle,
            )
        }
    };
    let compute_cycles = makespan as f64;
    let dram_bound = dram_cycles.max(l2_cycles) > compute_cycles;
    let duration_cycles =
        compute_cycles.max(dram_cycles).max(l2_cycles) + spec.kernel_fixed_overhead as f64;

    let waves = launch.blocks.len().div_ceil((spec.num_sms * occ).max(1));
    let stats = KernelStats {
        duration_cycles,
        duration_us: spec.cycles_to_us(duration_cycles),
        blocks: launch.blocks.len(),
        blocks_per_sm: occ,
        waves,
        dram_bound,
        totals,
        long_scoreboard_per_instr: 0.0,
        short_scoreboard_per_instr: 0.0,
        cache,
    }
    .finish();
    if jigsaw_obs::enabled() {
        sim_counters().record(&stats);
    }
    stats
}

/// Cached handles to the simulator's global observability counters, so
/// the per-kernel bump is a handful of relaxed atomic adds.
struct SimCounters {
    kernels: jigsaw_obs::Counter,
    waves: jigsaw_obs::Counter,
    bank_conflicts: jigsaw_obs::Counter,
    long_scoreboard: jigsaw_obs::Counter,
    short_scoreboard: jigsaw_obs::Counter,
    l1: LevelCounters,
    l2: LevelCounters,
    mshr_merges: jigsaw_obs::Counter,
}

/// The per-level cache counters (`sim.l1.*` / `sim.l2.*`).
struct LevelCounters {
    hits: jigsaw_obs::Counter,
    misses: jigsaw_obs::Counter,
    sector_reads: jigsaw_obs::Counter,
    evictions: jigsaw_obs::Counter,
}

impl LevelCounters {
    fn new(reg: &jigsaw_obs::ObsRegistry, level: &str) -> LevelCounters {
        LevelCounters {
            hits: reg.counter(&format!("sim.{level}.hits")),
            misses: reg.counter(&format!("sim.{level}.misses")),
            sector_reads: reg.counter(&format!("sim.{level}.sector_reads")),
            evictions: reg.counter(&format!("sim.{level}.evictions")),
        }
    }

    fn record(&self, s: &CacheStats) {
        self.hits.add(s.hits);
        self.misses.add(s.misses);
        self.sector_reads.add(s.sector_reads);
        self.evictions.add(s.evictions);
    }
}

impl SimCounters {
    fn record(&self, stats: &KernelStats) {
        self.kernels.inc();
        self.waves.add(stats.waves as u64);
        self.bank_conflicts.add(stats.totals.smem_bank_conflicts);
        self.long_scoreboard
            .add(stats.totals.long_scoreboard_cycles);
        self.short_scoreboard
            .add(stats.totals.short_scoreboard_cycles);
        // Cache counters move only when the model ran: the cache-off
        // path leaves the whole sim.l1/l2/mshr surface frozen.
        if let Some(cache) = &stats.cache {
            self.l1.record(&cache.l1);
            self.l2.record(&cache.l2);
            self.mshr_merges
                .add(cache.l1.mshr_merges + cache.l2.mshr_merges);
        }
    }
}

fn sim_counters() -> &'static SimCounters {
    static COUNTERS: std::sync::OnceLock<SimCounters> = std::sync::OnceLock::new();
    COUNTERS.get_or_init(|| {
        let reg = jigsaw_obs::global();
        SimCounters {
            kernels: reg.counter("sim.kernels"),
            waves: reg.counter("sim.waves"),
            bank_conflicts: reg.counter("sim.smem_bank_conflicts"),
            long_scoreboard: reg.counter("sim.long_scoreboard_cycles"),
            short_scoreboard: reg.counter("sim.short_scoreboard_cycles"),
            l1: LevelCounters::new(reg, "l1"),
            l2: LevelCounters::new(reg, "l2"),
            mshr_merges: reg.counter("sim.mshr.merges"),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::MmaOp;

    fn mma_block(n: usize) -> BlockTrace {
        BlockTrace {
            warps: vec![(0..n)
                .map(|_| WarpInstr::Mma {
                    op: MmaOp::SparseM16N8K32,
                    consumes: vec![],
                    produces: None,
                })
                .collect()],
            smem_bytes: 24 * 1024,
            gmem: Vec::new(),
        }
    }

    #[test]
    fn occupancy_limits() {
        let spec = GpuSpec::a100();
        // 164 KiB / 24 KiB -> 6 blocks by smem.
        assert_eq!(occupancy(&spec, 24 * 1024, 4), 6);
        // Warp-limited: 64 / 16 = 4.
        assert_eq!(occupancy(&spec, 1024, 16), 4);
        // Hard cap.
        assert_eq!(occupancy(&spec, 0, 1), 32);
        // Never zero.
        assert_eq!(occupancy(&spec, 200 * 1024, 1), 1);
    }

    #[test]
    fn identical_blocks_dedup_and_scale() {
        let spec = GpuSpec::a100();
        // Distinct allocations with identical content: exercises the
        // signature-based dedup (not the Arc pointer shortcut).
        let launch = KernelLaunch::from_blocks(vec![mma_block(64); 540], 0);
        let stats = simulate_kernel(&launch, &spec);
        assert_eq!(stats.blocks, 540);
        assert_eq!(stats.totals.mma_instructions, 540 * 64);
    }

    #[test]
    fn more_blocks_than_slots_means_waves() {
        let spec = GpuSpec::a100();
        let one_wave = simulate_kernel(&KernelLaunch::replicated(mma_block(2048), 108, 0), &spec);
        let six_waves_worth = simulate_kernel(
            &KernelLaunch::replicated(mma_block(2048), 108 * 6 * 6, 0),
            &spec,
        );
        // 6 blocks fit per SM (24KiB smem), so 6*6 waves of work takes
        // about 6x one full-SM wave.
        assert!(six_waves_worth.duration_cycles > one_wave.duration_cycles * 3.0);
        assert!(six_waves_worth.waves >= 6);
    }

    #[test]
    fn dram_roofline_binds_memory_heavy_kernels() {
        let spec = GpuSpec::a100();
        let launch = KernelLaunch::replicated(mma_block(1), 10, 10 * 1024 * 1024 * 1024); // 10 GiB
        let stats = simulate_kernel(&launch, &spec);
        assert!(stats.dram_bound);
        // 10 GiB / 1103 B/cycle ≈ 9.7 Mcycles.
        assert!(stats.duration_cycles > 9.0e6);
    }

    #[test]
    fn empty_launch() {
        let stats = simulate_kernel(&KernelLaunch::default(), &GpuSpec::a100());
        assert_eq!(stats.duration_cycles, 0.0);
        assert_eq!(stats.blocks, 0);
    }

    #[test]
    fn per_kernel_counters_feed_the_obs_registry() {
        let reg = jigsaw_obs::global();
        let launch = KernelLaunch::replicated(mma_block(8), 4, 1024);
        // Flag starts (and stays) false everywhere else in this test
        // binary: a disabled run must record nothing.
        let frozen = reg.counter("sim.kernels").get();
        let _ = simulate_kernel(&launch, &GpuSpec::a100());
        assert_eq!(reg.counter("sim.kernels").get(), frozen);

        jigsaw_obs::set_enabled(true);
        let kernels_before = reg.counter("sim.kernels").get();
        let waves_before = reg.counter("sim.waves").get();
        let stats = simulate_kernel(&launch, &GpuSpec::a100());
        assert!(reg.counter("sim.kernels").get() > kernels_before);
        assert!(reg.counter("sim.waves").get() >= waves_before + stats.waves as u64);
        jigsaw_obs::set_enabled(false);
    }
}
