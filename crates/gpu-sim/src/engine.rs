//! Per-thread-block timing engine.
//!
//! Event-driven simulation of one thread block on one SM: warps issue
//! in order, one instruction per scheduler per cycle, stalling on
//! operand tokens (scoreboards), pipe occupancy (tensor, ALU, the
//! SM-wide shared-memory pipe serialized by bank-conflict replays), the
//! global-memory path (latency + bandwidth share), `cp.async` group
//! semantics, and block-wide barriers.

use std::collections::HashMap;

use crate::arch::GpuSpec;
use crate::cache::SectoredCache;
use crate::instr::{BlockTrace, MmaOp, StallClass, Token, WarpInstr};
use crate::stats::{BlockStats, CacheStats};

/// Synthetic address region for unannotated global-memory instructions
/// when the cache model is on: a per-block bump pointer here yields a
/// pure streaming pattern (compulsory misses, no reuse), the honest
/// default for traces that carry no addresses.
const SYNTH_BASE: u64 = 1 << 45;

/// Execution context for a block: which machine, and how many blocks
/// share the SM (divides the SM's DRAM bandwidth share).
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Machine description.
    pub spec: GpuSpec,
    /// Blocks resident on the same SM (≥ 1).
    pub resident_blocks: usize,
}

impl EngineConfig {
    /// Memory bandwidth available to this block, bytes per cycle. The
    /// staging path runs at L2 rate (tile re-reads hit L2; compulsory
    /// DRAM traffic is bounded by the kernel-level roofline) and is
    /// split among the blocks co-resident on the SM.
    fn bw_share(&self) -> f64 {
        (self.spec.l2_bytes_per_cycle_per_sm() / self.resident_blocks as f64).max(0.25)
    }
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum WarpState {
    Ready,
    AtBarrier(u64), // arrival time
    Done,
}

struct Warp {
    pc: usize,
    /// Earliest cycle the warp may issue its next instruction.
    ready_at: u64,
    state: WarpState,
    /// Token -> (ready time, stall class).
    tokens: HashMap<Token, (u64, StallClass)>,
    /// Copies accumulated into the currently open async group.
    open_group_done: u64,
    /// Committed async groups: completion times in commit order.
    committed: Vec<u64>,
    finish: u64,
}

/// One issued instruction, as observed by [`simulate_block_observed`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IssueEvent {
    /// Warp that issued.
    pub warp: usize,
    /// Index of the instruction within the warp's trace.
    pub pc: usize,
    /// Cycle the instruction issued.
    pub issue: u64,
    /// Cycle its pipe work completed (occupancy, not result latency).
    pub complete: u64,
}

/// One L1 fill the block generated, recorded for the device-level L2
/// replay (addresses are trace-relative; the device applies the
/// per-block bias / synthetic rebase).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FillRecord {
    /// Byte address of the filled 32-byte sector.
    pub addr: u64,
    /// The segment was marked `scaled` (gets `KernelLaunch::block_bias`).
    pub scaled: bool,
    /// The address came from the synthetic streaming fallback (gets
    /// rebased per launch index so replicas don't fake reuse).
    pub synthetic: bool,
}

/// Result of [`simulate_block_traced`]: timing counters plus, when the
/// cache model is on, the block's private-L1 counters and fill log.
#[derive(Clone, Debug)]
pub struct BlockSim {
    /// The legacy per-block counters.
    pub stats: BlockStats,
    /// L1 counters (`None` when `GpuSpec::caches` is off).
    pub l1: Option<CacheStats>,
    /// Every L1 fill in issue order — the L2's access stream.
    pub l1_fills: Vec<FillRecord>,
}

/// Simulates one thread block and returns its counters.
pub fn simulate_block(trace: &BlockTrace, cfg: &EngineConfig) -> BlockStats {
    sim_block_core(trace, cfg, &mut |_| {}).stats
}

/// Like [`simulate_block`], invoking `observer` for every issued
/// instruction — the hook behind [`crate::timeline`].
pub fn simulate_block_observed(
    trace: &BlockTrace,
    cfg: &EngineConfig,
    observer: &mut dyn FnMut(IssueEvent),
) -> BlockStats {
    sim_block_core(trace, cfg, observer).stats
}

/// Like [`simulate_block`], also returning the L1 cache outcome when
/// `cfg.spec.caches` enables the hierarchy.
pub fn simulate_block_traced(trace: &BlockTrace, cfg: &EngineConfig) -> BlockSim {
    sim_block_core(trace, cfg, &mut |_| {})
}

/// Per-block L1 state while the cache model is on.
struct L1Probe {
    cache: SectoredCache,
    /// Per-warp cursor into `BlockTrace::gmem`.
    cursor: Vec<usize>,
    /// Bump pointer for unannotated instructions.
    synth_next: u64,
    fills: Vec<FillRecord>,
}

/// Outcome of probing the L1 for one global-memory instruction.
struct ProbeOutcome {
    /// Every requested sector was resident: serve at `l1.hit_latency`,
    /// no bandwidth charge.
    full_hit: bool,
    /// Bytes that must actually cross the L1↔L2 path (new fills only;
    /// hits and MSHR merges are free).
    fill_bytes: u32,
}

impl L1Probe {
    /// Classifies one global-memory instruction of warp `wi` and logs
    /// its fills. Must be called exactly once per `CpAsync` /
    /// `LdGlobal` / `StGlobal` in per-warp program order.
    fn probe(
        &mut self,
        trace: &BlockTrace,
        wi: usize,
        bytes: u32,
        is_store: bool,
        now: u64,
        fill_latency: u64,
    ) -> ProbeOutcome {
        let ix = self.cursor[wi];
        self.cursor[wi] += 1;
        let annotated = trace.gmem.get(wi).and_then(|refs| refs.get(ix));
        // Stores are write-through / no-allocate: they advance the
        // cursor (annotation alignment) but never probe or fill.
        if is_store {
            return ProbeOutcome {
                full_hit: false,
                fill_bytes: bytes,
            };
        }
        let mut sectors = 0u32;
        let mut hits = 0u32;
        let mut fills = 0u32;
        let sector_bytes = self.cache.config().sector_bytes as u32;
        let mut run = |addr: u64, len: u32, scaled: bool, synthetic: bool, probe: &mut L1Probe| {
            let fills_log = &mut probe.fills;
            let r = probe
                .cache
                .access_with(addr, len, now, fill_latency, &mut |sector| {
                    fills_log.push(FillRecord {
                        addr: sector,
                        scaled,
                        synthetic,
                    });
                });
            sectors += r.sectors;
            hits += r.hits;
            fills += r.fills;
        };
        match annotated {
            Some(segments) => {
                for seg in segments {
                    run(seg.addr, seg.bytes, seg.scaled, false, self);
                }
            }
            None => {
                // Streaming fallback: fresh sectors, aligned.
                let len = bytes.max(1).div_ceil(sector_bytes) * sector_bytes;
                let addr = self.synth_next;
                self.synth_next += u64::from(len);
                run(addr, len, false, true, self);
            }
        }
        ProbeOutcome {
            full_hit: sectors > 0 && hits == sectors,
            fill_bytes: fills * sector_bytes,
        }
    }
}

fn sim_block_core(
    trace: &BlockTrace,
    cfg: &EngineConfig,
    observer: &mut dyn FnMut(IssueEvent),
) -> BlockSim {
    let spec = &cfg.spec;
    let nsched = spec.schedulers_per_sm;
    let bw = cfg.bw_share();
    let mut l1: Option<L1Probe> = spec.caches.as_ref().map(|h| L1Probe {
        cache: SectoredCache::new(h.l1),
        cursor: vec![0; trace.warps.len()],
        synth_next: SYNTH_BASE,
        fills: Vec::new(),
    });
    let l1_hit_latency = spec.caches.as_ref().map_or(0, |h| h.l1.hit_latency);

    let mut warps: Vec<Warp> = trace
        .warps
        .iter()
        .map(|_| Warp {
            pc: 0,
            ready_at: 0,
            state: WarpState::Ready,
            tokens: HashMap::new(),
            open_group_done: 0,
            committed: Vec::new(),
            finish: 0,
        })
        .collect();

    let mut sched_free = vec![0u64; nsched];
    let mut tensor_free = vec![0u64; nsched];
    let mut alu_free = vec![0u64; nsched];
    let mut lsu_free: u64 = 0; // SM-wide shared-memory pipe
    let mut gmem_free: f64 = 0.0; // bandwidth pipe (fractional cycles)

    // Per-resource occupancy sums -> the block's throughput footprint.
    let mut tensor_busy: u64 = 0;
    let mut lsu_busy: u64 = 0;
    let mut alu_busy: u64 = 0;

    let mut stats = BlockStats::default();

    loop {
        // Barrier release: if every live warp is parked at a barrier,
        // release them all at the latest arrival.
        let all_blocked = warps.iter().all(|w| !matches!(w.state, WarpState::Ready));
        if all_blocked {
            let arrivals: Vec<u64> = warps
                .iter()
                .filter_map(|w| match w.state {
                    WarpState::AtBarrier(t) => Some(t),
                    _ => None,
                })
                .collect();
            if arrivals.is_empty() {
                break; // every warp done
            }
            let release = *arrivals.iter().max().unwrap();
            for (wi, w) in warps.iter_mut().enumerate() {
                if let WarpState::AtBarrier(arrived) = w.state {
                    stats.barrier_cycles += release - arrived;
                    w.ready_at = w.ready_at.max(release);
                    w.finish = w.finish.max(release);
                    w.pc += 1;
                    w.state = if w.pc >= trace.warps[wi].len() {
                        WarpState::Done
                    } else {
                        WarpState::Ready
                    };
                }
            }
            continue;
        }

        // Pick the warp able to issue earliest, *including* operand
        // readiness — a warp stalled on a scoreboard must not occupy its
        // scheduler while siblings have eligible instructions. Ties go
        // to the lowest id, approximating loose round-robin.
        let mut best: Option<(u64, u64, usize, Option<StallClass>)> = None;
        for (wi, w) in warps.iter().enumerate() {
            if w.state != WarpState::Ready {
                continue;
            }
            let base = w.ready_at.max(sched_free[wi % nsched]);
            let instr = &trace.warps[wi][w.pc];
            let mut issue = base;
            let mut stall_class: Option<StallClass> = None;
            for tok in instr.consumes() {
                if let Some(&(ready, class)) = w.tokens.get(tok) {
                    if ready > issue {
                        issue = ready;
                        stall_class = Some(class);
                    }
                }
            }
            // WaitGroup is an implicit dependency on async completions.
            if let WarpInstr::WaitGroup { pending_allowed } = instr {
                let n = w.committed.len();
                let must_complete = n.saturating_sub(*pending_allowed as usize);
                if must_complete > 0 {
                    let t = w.committed[..must_complete]
                        .iter()
                        .copied()
                        .max()
                        .unwrap_or(0);
                    if t > issue {
                        issue = t;
                        stall_class = Some(StallClass::Long);
                    }
                }
            }
            if best.is_none_or(|(bt, _, _, _)| issue < bt) {
                best = Some((issue, base, wi, stall_class));
            }
        }
        let (issue, base, wi, stall_class) = best.expect("a ready warp exists");
        let sched = wi % nsched;
        let instr = &trace.warps[wi][warps[wi].pc];

        // Barrier: park the warp; release happens above.
        if matches!(instr, WarpInstr::Barrier) {
            observer(IssueEvent {
                warp: wi,
                pc: warps[wi].pc,
                issue,
                complete: issue + 1,
            });
            warps[wi].state = WarpState::AtBarrier(issue);
            sched_free[sched] = issue + 1;
            stats.instructions += 1;
            continue;
        }

        match stall_class {
            Some(StallClass::Long) => stats.long_scoreboard_cycles += issue - base,
            Some(StallClass::Short) => stats.short_scoreboard_cycles += issue - base,
            Some(StallClass::Fixed) => stats.fixed_latency_cycles += issue - base,
            None => {}
        }

        // Pipe occupancy and result latency per instruction class.
        let mut produced: Option<(Token, u64, StallClass)> = None;
        // When the instruction's pipe work actually ends (occupancy, not
        // result latency) — a warp only retires once this has drained.
        let mut complete = issue + 1;
        match instr {
            WarpInstr::CpAsync { bytes, .. } => {
                // Issue occupies the scheduler only; data flows through
                // the bandwidth pipe in the background.
                let done = match &mut l1 {
                    None => {
                        let start = gmem_free.max(issue as f64);
                        gmem_free = start + f64::from(*bytes) / bw;
                        gmem_free.ceil() as u64 + spec.gmem_latency
                    }
                    Some(probe) => {
                        let o = probe.probe(trace, wi, *bytes, false, issue, spec.gmem_latency);
                        if o.full_hit {
                            // Served from L1: no bandwidth charge, hit latency.
                            issue + l1_hit_latency
                        } else if o.fill_bytes == 0 {
                            // All outstanding sectors merge onto fills
                            // already in flight: wait, but add no traffic.
                            issue + spec.gmem_latency
                        } else {
                            let start = gmem_free.max(issue as f64);
                            gmem_free = start + f64::from(o.fill_bytes) / bw;
                            gmem_free.ceil() as u64 + spec.gmem_latency
                        }
                    }
                };
                let w = &mut warps[wi];
                w.open_group_done = w.open_group_done.max(done);
                stats.gmem_bytes += u64::from(*bytes);
            }
            WarpInstr::CommitGroup { .. } => {
                let w = &mut warps[wi];
                let done = w.open_group_done;
                w.committed.push(done);
                w.open_group_done = 0;
            }
            WarpInstr::WaitGroup { pending_allowed } => {
                let w = &mut warps[wi];
                let n = w.committed.len();
                let keep = (*pending_allowed as usize).min(n);
                w.committed.drain(..n - keep);
            }
            WarpInstr::LdGlobal {
                bytes,
                transactions,
                produces,
                l2_hit,
                ..
            } => {
                // Poorly coalesced requests serialize into sectors.
                let serialization = u64::from((*transactions).max(1) - 1);
                let ready = match &mut l1 {
                    None => {
                        let start = gmem_free.max(issue as f64);
                        gmem_free = start + f64::from(*bytes) / bw;
                        let latency = if *l2_hit {
                            spec.l2_latency
                        } else {
                            spec.gmem_latency
                        };
                        gmem_free.ceil() as u64 + latency + serialization
                    }
                    Some(probe) => {
                        // The cache decides hit/miss; the static
                        // `l2_hit` hint only applies when it is off.
                        let o = probe.probe(trace, wi, *bytes, false, issue, spec.gmem_latency);
                        if o.full_hit {
                            issue + l1_hit_latency + serialization
                        } else if o.fill_bytes == 0 {
                            issue + spec.gmem_latency + serialization
                        } else {
                            let start = gmem_free.max(issue as f64);
                            gmem_free = start + f64::from(o.fill_bytes) / bw;
                            gmem_free.ceil() as u64 + spec.gmem_latency + serialization
                        }
                    }
                };
                if let Some(tok) = produces {
                    produced = Some((*tok, ready, StallClass::Long));
                }
                stats.gmem_bytes += u64::from(*bytes);
            }
            WarpInstr::LdShared {
                conflict_ways,
                produces,
                ..
            } => {
                let start = issue.max(lsu_free);
                lsu_free = start + u64::from(*conflict_ways);
                complete = complete.max(lsu_free);
                lsu_busy += u64::from(*conflict_ways);
                stats.smem_bank_conflicts += u64::from(conflict_ways.saturating_sub(1));
                stats.smem_instructions += 1;
                if let Some(tok) = produces {
                    produced = Some((
                        *tok,
                        start + u64::from(*conflict_ways) + spec.smem_latency,
                        StallClass::Short,
                    ));
                }
            }
            WarpInstr::StShared { conflict_ways, .. } => {
                let start = issue.max(lsu_free);
                lsu_free = start + u64::from(*conflict_ways);
                complete = complete.max(lsu_free);
                lsu_busy += u64::from(*conflict_ways);
                stats.smem_bank_conflicts += u64::from(conflict_ways.saturating_sub(1));
                stats.smem_instructions += 1;
            }
            WarpInstr::Ldmatrix {
                phases,
                total_ways,
                produces,
                ..
            } => {
                let ways = (*total_ways).max(*phases);
                let start = issue.max(lsu_free);
                lsu_free = start + u64::from(ways);
                complete = complete.max(lsu_free);
                lsu_busy += u64::from(ways);
                stats.smem_bank_conflicts += u64::from(ways - *phases);
                stats.smem_instructions += 1;
                if let Some(tok) = produces {
                    produced = Some((
                        *tok,
                        start + u64::from(ways) + spec.smem_latency,
                        StallClass::Short,
                    ));
                }
            }
            WarpInstr::Mma { op, produces, .. } => {
                let interval = match op {
                    MmaOp::DenseM16N8K16 => spec.mma_m16n8k16_interval,
                    MmaOp::DenseM8N8K16 => spec.mma_m8n8k16_interval,
                    MmaOp::SparseM16N8K32 => spec.mma_sp_m16n8k32_interval,
                    MmaOp::SparseM16N8K16 => spec.mma_sp_m16n8k16_interval,
                };
                let start = issue.max(tensor_free[sched]);
                tensor_free[sched] = start + interval;
                complete = complete.max(tensor_free[sched]);
                tensor_busy += interval;
                stats.mma_instructions += 1;
                if let Some(tok) = produces {
                    produced = Some((
                        *tok,
                        start + interval + spec.tensor_latency,
                        StallClass::Fixed,
                    ));
                }
            }
            WarpInstr::CudaOp {
                cycles, produces, ..
            } => {
                let start = issue.max(alu_free[sched]);
                alu_free[sched] = start + u64::from((*cycles).max(1));
                complete = complete.max(alu_free[sched]);
                alu_busy += u64::from((*cycles).max(1));
                if let Some(tok) = produces {
                    produced = Some((
                        *tok,
                        start + u64::from((*cycles).max(1)) + spec.alu_latency,
                        StallClass::Fixed,
                    ));
                }
            }
            WarpInstr::StGlobal { bytes, .. } => {
                // Stores are write-through / no-allocate under the cache
                // model: same bandwidth charge, but the annotation
                // cursor must advance to stay aligned with loads.
                if let Some(probe) = &mut l1 {
                    probe.probe(trace, wi, *bytes, true, issue, spec.gmem_latency);
                }
                let start = gmem_free.max(issue as f64);
                gmem_free = start + f64::from(*bytes) / bw;
                complete = complete.max(gmem_free.ceil() as u64);
                stats.gmem_bytes += u64::from(*bytes);
            }
            WarpInstr::Barrier => unreachable!("handled above"),
        }

        let w = &mut warps[wi];
        if let Some((tok, ready, class)) = produced {
            w.tokens.insert(tok, (ready, class));
        }
        observer(IssueEvent {
            warp: wi,
            pc: w.pc,
            issue,
            complete,
        });
        w.ready_at = issue + 1;
        sched_free[sched] = issue + 1;
        stats.instructions += 1;
        w.pc += 1;
        w.finish = w.finish.max(complete);
        if w.pc >= trace.warps[wi].len() {
            // Retire only after outstanding results land.
            let drain = w
                .tokens
                .values()
                .map(|&(t, _)| t)
                .max()
                .unwrap_or(0)
                .max(w.committed.iter().copied().max().unwrap_or(0));
            w.finish = w.finish.max(drain);
            w.state = WarpState::Done;
        }
    }

    stats.cycles = warps.iter().map(|w| w.finish).max().unwrap_or(0);
    // Throughput footprint: the SM-cycles of the block's most contended
    // *per-SM* resource assuming a full SM to itself. Co-resident blocks
    // cannot shrink this; the device model sums it across a wave.
    // Memory bandwidth is NOT included here — L2/DRAM are device-wide
    // resources enforced as kernel-level rooflines by the device model.
    stats.busy_cycles = (tensor_busy / nsched as u64)
        .max(lsu_busy)
        .max(alu_busy / nsched as u64)
        .max(stats.instructions / nsched as u64)
        .min(stats.cycles);
    match l1 {
        None => BlockSim {
            stats,
            l1: None,
            l1_fills: Vec::new(),
        },
        Some(probe) => BlockSim {
            stats,
            l1: Some(*probe.cache.stats()),
            l1_fills: probe.fills,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{BlockTrace, TokenAlloc};

    fn cfg() -> EngineConfig {
        EngineConfig {
            spec: GpuSpec::a100(),
            resident_blocks: 1,
        }
    }

    #[test]
    fn empty_block_is_free() {
        let stats = simulate_block(&BlockTrace::default(), &cfg());
        assert_eq!(stats.cycles, 0);
    }

    #[test]
    fn single_mma_occupies_its_interval() {
        let trace = BlockTrace {
            warps: vec![vec![WarpInstr::Mma {
                op: MmaOp::SparseM16N8K32,
                consumes: vec![],
                produces: None,
            }]],
            smem_bytes: 0,
            gmem: Vec::new(),
        };
        let stats = simulate_block(&trace, &cfg());
        assert_eq!(stats.instructions, 1);
        assert_eq!(stats.mma_instructions, 1);
        assert!(stats.cycles >= 1);
    }

    #[test]
    fn dependent_load_stalls_short_scoreboard() {
        let mut toks = TokenAlloc::new();
        let t = toks.fresh();
        let trace = BlockTrace {
            warps: vec![vec![
                WarpInstr::LdShared {
                    conflict_ways: 1,
                    produces: Some(t),
                    consumes: vec![],
                },
                WarpInstr::Mma {
                    op: MmaOp::SparseM16N8K32,
                    consumes: vec![t],
                    produces: None,
                },
            ]],
            smem_bytes: 0,
            gmem: Vec::new(),
        };
        let stats = simulate_block(&trace, &cfg());
        assert!(
            stats.short_scoreboard_cycles >= GpuSpec::a100().smem_latency - 2,
            "stall {} too small",
            stats.short_scoreboard_cycles
        );
    }

    #[test]
    fn independent_work_hides_latency() {
        // Two warps with the same dependent pattern: the second warp's
        // issue fills the first's stall, so total cycles grow far less
        // than 2x the single-warp time.
        let mk = |tok: Token| {
            vec![
                WarpInstr::LdGlobal {
                    bytes: 128,
                    transactions: 4,
                    produces: Some(tok),
                    l2_hit: false,
                    consumes: vec![],
                },
                WarpInstr::CudaOp {
                    cycles: 4,
                    consumes: vec![tok],
                    produces: None,
                },
            ]
        };
        let one = simulate_block(
            &BlockTrace {
                warps: vec![mk(0)],
                smem_bytes: 0,
                gmem: Vec::new(),
            },
            &cfg(),
        );
        let eight = simulate_block(
            &BlockTrace {
                warps: (0..8).map(|_| mk(0)).collect(),
                smem_bytes: 0,
                gmem: Vec::new(),
            },
            &cfg(),
        );
        assert!(
            eight.cycles < one.cycles * 2,
            "{} vs {}",
            eight.cycles,
            one.cycles
        );
    }

    #[test]
    fn bank_conflicts_serialize_the_lsu() {
        let mk = |ways: u32| BlockTrace {
            warps: vec![(0..64)
                .map(|_| WarpInstr::LdShared {
                    conflict_ways: ways,
                    produces: None,
                    consumes: vec![],
                })
                .collect()],
            smem_bytes: 0,
            gmem: Vec::new(),
        };
        let clean = simulate_block(&mk(1), &cfg());
        let conflicted = simulate_block(&mk(8), &cfg());
        assert_eq!(conflicted.smem_bank_conflicts, 64 * 7);
        assert!(
            conflicted.cycles > clean.cycles * 4,
            "{} vs {}",
            conflicted.cycles,
            clean.cycles
        );
    }

    #[test]
    fn barrier_synchronizes_warps() {
        // Warp 0 does long work then barriers; warp 1 barriers at once.
        // Warp 1's post-barrier op cannot start before warp 0 arrives.
        let w0: Vec<WarpInstr> = (0..32)
            .map(|_| WarpInstr::CudaOp {
                cycles: 8,
                consumes: vec![],
                produces: None,
            })
            .chain([WarpInstr::Barrier])
            .collect();
        let w1 = vec![
            WarpInstr::Barrier,
            WarpInstr::CudaOp {
                cycles: 1,
                consumes: vec![],
                produces: None,
            },
        ];
        let stats = simulate_block(
            &BlockTrace {
                warps: vec![w0, w1],
                smem_bytes: 0,
                gmem: Vec::new(),
            },
            &cfg(),
        );
        assert!(stats.barrier_cycles > 0);
        assert!(stats.cycles >= 32);
    }

    #[test]
    fn wait_group_enforces_async_completion() {
        let trace = BlockTrace {
            warps: vec![vec![
                WarpInstr::CpAsync {
                    bytes: 16384,
                    group: 0,
                    consumes: vec![],
                },
                WarpInstr::CommitGroup { group: 0 },
                WarpInstr::WaitGroup { pending_allowed: 0 },
                WarpInstr::CudaOp {
                    cycles: 1,
                    consumes: vec![],
                    produces: None,
                },
            ]],
            smem_bytes: 0,
            gmem: Vec::new(),
        };
        let stats = simulate_block(&trace, &cfg());
        // Must at least cover the DRAM latency.
        assert!(stats.cycles > GpuSpec::a100().gmem_latency);
        assert!(stats.long_scoreboard_cycles > 0);
    }

    #[test]
    fn deeper_pipeline_reduces_long_scoreboard() {
        // Two-stage: wait for the *current* group right after issuing it.
        // Three-stage analogue: allow one group in flight. With several
        // iterations the deeper pipeline must stall less.
        let iters = 8;
        let mk = |pending: u8| {
            let mut v = Vec::new();
            for i in 0..iters {
                v.push(WarpInstr::CpAsync {
                    bytes: 4096,
                    group: (i % 2) as u8,
                    consumes: vec![],
                });
                v.push(WarpInstr::CommitGroup {
                    group: (i % 2) as u8,
                });
                v.push(WarpInstr::WaitGroup {
                    pending_allowed: pending,
                });
                for _ in 0..16 {
                    v.push(WarpInstr::Mma {
                        op: MmaOp::SparseM16N8K32,
                        consumes: vec![],
                        produces: None,
                    });
                }
            }
            BlockTrace {
                warps: vec![v],
                smem_bytes: 0,
                gmem: Vec::new(),
            }
        };
        let shallow = simulate_block(&mk(0), &cfg());
        let deep = simulate_block(&mk(1), &cfg());
        assert!(
            deep.long_scoreboard_cycles < shallow.long_scoreboard_cycles,
            "deep {} !< shallow {}",
            deep.long_scoreboard_cycles,
            shallow.long_scoreboard_cycles
        );
        assert!(deep.cycles <= shallow.cycles);
    }
}
