//! The warp-level instruction vocabulary the timing engine executes.
//!
//! Kernel models lower their inner loops to sequences of these
//! instructions, one sequence per warp. Data dependencies are explicit:
//! an instruction may *produce* a token and *consume* tokens produced by
//! earlier instructions of the same warp; the engine stalls issue until
//! every consumed token is ready and attributes the stall to the right
//! scoreboard, exactly as Nsight's `long_scoreboard` / `short_scoreboard`
//! warp-state counters do.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// Identifier of a value produced by an instruction, scoped to one warp.
pub type Token = u32;

/// Which hardware pipe an instruction's result returns through —
/// determines the stall class charged when a consumer waits on it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StallClass {
    /// Global-memory results (LDG, L2/DRAM): `long_scoreboard`.
    Long,
    /// Shared-memory results (LDS, `ldmatrix`): `short_scoreboard`.
    Short,
    /// Fixed-latency math results: `wait` (short fixed stalls).
    Fixed,
}

/// Tensor-core instruction flavours with distinct pipe intervals.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MmaOp {
    /// Dense f16 `mma.m16n8k16`.
    DenseM16N8K16,
    /// Dense f16 `mma.m8n8k16` (CLASP).
    DenseM8N8K16,
    /// Sparse f16 `mma.sp.m16n8k32` (Jigsaw).
    SparseM16N8K32,
    /// Sparse f16 `mma.sp.m16n8k16` (rejected shape, modelled for
    /// completeness).
    SparseM16N8K16,
}

/// One warp-level instruction.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum WarpInstr {
    /// Asynchronous global→shared copy (`cp.async`). Does not occupy a
    /// register destination; completion is observed via [`WarpInstr::WaitGroup`].
    CpAsync {
        /// Bytes moved by this warp's copy instruction.
        bytes: u32,
        /// The commit group this copy belongs to.
        group: u8,
        /// Tokens the copy's *addresses* depend on (e.g. an index array
        /// loaded earlier — the dependency Jigsaw's deepened pipeline
        /// breaks).
        consumes: Vec<Token>,
    },
    /// Commits the currently open async group (`cp.async.commit_group`).
    CommitGroup {
        /// Group being committed.
        group: u8,
    },
    /// Blocks until at most `pending_allowed` committed groups are still
    /// in flight (`cp.async.wait_group N`).
    WaitGroup {
        /// Number of groups allowed to remain outstanding.
        pending_allowed: u8,
    },
    /// Synchronous global load into registers.
    LdGlobal {
        /// Bytes requested by the warp.
        bytes: u32,
        /// 32-byte sectors touched (coalescing quality).
        transactions: u32,
        /// Token the loaded value is published under.
        produces: Option<Token>,
        /// Whether the request hits in L2 (shorter latency).
        l2_hit: bool,
        /// Address dependencies.
        consumes: Vec<Token>,
    },
    /// Shared-memory load.
    LdShared {
        /// Bank-conflict ways (1 = conflict-free); the pipe is occupied
        /// `ways` cycles.
        conflict_ways: u32,
        /// Token for the loaded value.
        produces: Option<Token>,
        /// Tokens that must be ready before issue (e.g. an address
        /// computed from a prior load).
        consumes: Vec<Token>,
    },
    /// Shared-memory store.
    StShared {
        /// Bank-conflict ways.
        conflict_ways: u32,
        /// Tokens that must be ready (the stored value).
        consumes: Vec<Token>,
    },
    /// `ldmatrix.x{1,2,4}` — `phases` 8×8 tile reads, each replayed by
    /// its conflict ways.
    Ldmatrix {
        /// Number of 8×8 phases (the `x` suffix).
        phases: u32,
        /// Sum of conflict ways across phases (phases = conflict-free).
        total_ways: u32,
        /// Token for the loaded fragments.
        produces: Option<Token>,
        /// Address dependencies.
        consumes: Vec<Token>,
    },
    /// Tensor-core matrix-multiply-accumulate.
    Mma {
        /// Which instruction (pipe interval differs by shape/sparsity).
        op: MmaOp,
        /// Fragment dependencies (A, B, metadata).
        consumes: Vec<Token>,
        /// Token for the produced accumulator fragment.
        produces: Option<Token>,
    },
    /// Generic CUDA-core work (index arithmetic, predicates, epilogue
    /// math): occupies the ALU pipe for `cycles`.
    CudaOp {
        /// Pipe-occupancy cycles.
        cycles: u32,
        /// Dependencies.
        consumes: Vec<Token>,
        /// Produced token, if any.
        produces: Option<Token>,
    },
    /// Block-wide barrier (`__syncthreads`).
    Barrier,
    /// Global store of the output tile (write-back; fire-and-forget).
    StGlobal {
        /// Bytes written by the warp.
        bytes: u32,
        /// Dependencies (the accumulator being written).
        consumes: Vec<Token>,
    },
}

impl WarpInstr {
    /// Token this instruction produces, if any.
    pub fn produces(&self) -> Option<Token> {
        match self {
            WarpInstr::LdGlobal { produces, .. }
            | WarpInstr::LdShared { produces, .. }
            | WarpInstr::Ldmatrix { produces, .. }
            | WarpInstr::Mma { produces, .. }
            | WarpInstr::CudaOp { produces, .. } => *produces,
            _ => None,
        }
    }

    /// Tokens this instruction must wait for before issuing.
    pub fn consumes(&self) -> &[Token] {
        match self {
            WarpInstr::CpAsync { consumes, .. }
            | WarpInstr::LdGlobal { consumes, .. }
            | WarpInstr::LdShared { consumes, .. }
            | WarpInstr::StShared { consumes, .. }
            | WarpInstr::Ldmatrix { consumes, .. }
            | WarpInstr::Mma { consumes, .. }
            | WarpInstr::CudaOp { consumes, .. }
            | WarpInstr::StGlobal { consumes, .. } => consumes,
            _ => &[],
        }
    }
}

/// The instruction sequence one warp executes.
pub type WarpTrace = Vec<WarpInstr>;

/// One contiguous byte range a global-memory instruction touches.
///
/// Only consumed when the cache model is on (`GpuSpec::caches`); the
/// timing engine's legacy path never reads addresses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemSegment {
    /// Virtual byte address of the segment start.
    pub addr: u64,
    /// Segment length in bytes.
    pub bytes: u32,
    /// When true, [`KernelLaunch::block_bias`] is added per block — the
    /// mechanism that lets one `Arc`-shared trace serve every N-tile
    /// replica while each replica reads its own B/C columns.
    pub scaled: bool,
}

/// The byte ranges of one global-memory instruction (a gather touches
/// several disjoint rows).
pub type MemRef = Vec<MemSegment>;

/// A thread block: its warps' traces plus the resources that determine
/// occupancy.
#[derive(Clone, Debug, Default)]
pub struct BlockTrace {
    /// One trace per warp in the block.
    pub warps: Vec<WarpTrace>,
    /// Static shared-memory footprint of the block in bytes.
    pub smem_bytes: usize,
    /// Optional address annotations for the cache model: per warp, one
    /// [`MemRef`] per global-memory instruction (`CpAsync`, `LdGlobal`,
    /// `StGlobal`) in program order. Empty = unannotated; the cache
    /// model then falls back to a synthetic streaming address space
    /// (compulsory misses, no reuse).
    pub gmem: Vec<Vec<MemRef>>,
}

/// A full kernel launch: every thread block (heterogeneous traces are
/// allowed — sparse kernels do different work per block).
///
/// Blocks are `Arc`-shared: a grid where many blocks execute the same
/// trace (e.g. one block per N-tile over the same strip) stores the
/// trace once, not `n_blocks` deep copies.
#[derive(Clone, Debug, Default)]
pub struct KernelLaunch {
    /// All blocks of the grid, in launch order.
    pub blocks: Vec<Arc<BlockTrace>>,
    /// Unique bytes the kernel must move from DRAM (for the roofline
    /// bound): compulsory traffic, not per-block re-reads that hit L2.
    pub dram_bytes: u64,
    /// Per-block additive address bias applied to `scaled`
    /// [`MemSegment`]s during the device's L2 replay (empty = all
    /// zero). Lets `Arc`-replicated blocks address distinct B/C
    /// columns without deep-copying their traces.
    pub block_bias: Vec<u64>,
}

impl KernelLaunch {
    /// Wraps owned blocks (each distinct) into a launch.
    pub fn from_blocks(blocks: Vec<BlockTrace>, dram_bytes: u64) -> KernelLaunch {
        KernelLaunch {
            blocks: blocks.into_iter().map(Arc::new).collect(),
            dram_bytes,
            block_bias: Vec::new(),
        }
    }

    /// A grid of `copies` blocks all executing `block`'s trace —
    /// stored once, referenced `copies` times.
    pub fn replicated(block: BlockTrace, copies: usize, dram_bytes: u64) -> KernelLaunch {
        let block = Arc::new(block);
        KernelLaunch {
            blocks: std::iter::repeat_n(block, copies).collect(),
            dram_bytes,
            block_bias: Vec::new(),
        }
    }

    /// Address bias of block `i` (zero when unset).
    pub fn bias_of(&self, i: usize) -> u64 {
        self.block_bias.get(i).copied().unwrap_or(0)
    }
}

/// Small builder helping kernel models hand out unique tokens.
#[derive(Default, Clone, Debug)]
pub struct TokenAlloc(Token);

impl TokenAlloc {
    /// Fresh allocator.
    pub fn new() -> Self {
        TokenAlloc(0)
    }
    /// Next unique token.
    pub fn fresh(&mut self) -> Token {
        let t = self.0;
        self.0 += 1;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_alloc_is_unique() {
        let mut a = TokenAlloc::new();
        let t0 = a.fresh();
        let t1 = a.fresh();
        assert_ne!(t0, t1);
    }

    #[test]
    fn produces_consumes_accessors() {
        let i = WarpInstr::LdShared {
            conflict_ways: 2,
            produces: Some(7),
            consumes: vec![3],
        };
        assert_eq!(i.produces(), Some(7));
        assert_eq!(i.consumes(), &[3]);
        assert_eq!(WarpInstr::Barrier.produces(), None);
        assert!(WarpInstr::Barrier.consumes().is_empty());
    }
}
