//! # gpu-sim — warp-scheduler-level GPU timing simulator
//!
//! An A100-like performance model substituting for the paper's real
//! evaluation platform (see DESIGN.md §2). Kernel implementations lower
//! to warp instruction traces ([`instr::WarpInstr`]); the per-block
//! engine ([`engine::simulate_block`]) models warp scheduling,
//! scoreboards, shared-memory bank-conflict replays, `cp.async` group
//! semantics and barriers; the device layer ([`device::simulate_kernel`])
//! adds occupancy, wave scheduling across 108 SMs, and the DRAM
//! roofline. Reported counters mirror the Nsight Compute metrics the
//! paper quotes.
//!
//! The simulator is deterministic: the same launch always produces the
//! same cycle count.

#![warn(missing_docs)]

pub mod arch;
pub mod cache;
pub mod device;
pub mod engine;
pub mod instr;
pub mod report;
pub mod stats;
pub mod timeline;

pub use arch::{CacheConfig, CacheHierarchyConfig, GpuSpec};
pub use cache::{AccessResult, SectoredCache, SlicedCache};
pub use device::{occupancy, simulate_kernel};
pub use engine::{
    simulate_block, simulate_block_observed, simulate_block_traced, BlockSim, EngineConfig,
    FillRecord, IssueEvent,
};
pub use instr::{
    BlockTrace, KernelLaunch, MemRef, MemSegment, MmaOp, StallClass, Token, TokenAlloc, WarpInstr,
    WarpTrace,
};
pub use report::ncu_style_report;
pub use stats::{BlockStats, CacheHierarchyStats, CacheStats, KernelStats};
pub use timeline::{record as record_timeline, Timeline};
