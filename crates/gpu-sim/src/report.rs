//! Nsight-Compute-style text report for a simulated kernel — the
//! "sections" a CUDA engineer expects (`Duration`, occupancy, warp
//! state breakdown, memory counters), generated from [`KernelStats`].

use crate::arch::GpuSpec;
use crate::stats::KernelStats;

/// Renders the report.
pub fn ncu_style_report(name: &str, stats: &KernelStats, spec: &GpuSpec) -> String {
    let t = &stats.totals;
    let instr = t.instructions.max(1) as f64;
    let mut out = String::new();
    out.push_str(&format!("== {name} ==\n"));
    out.push_str("  Section: GPU Speed Of Light\n");
    out.push_str(&format!(
        "    Duration                    {:>12.2} us ({:.0} cycles @ {:.2} GHz)\n",
        stats.duration_us, stats.duration_cycles, spec.clock_ghz
    ));
    let sparse_peak = spec.peak_sparse_tensor_flops_per_cycle();
    let tensor_flops = t.mma_instructions as f64 * 8192.0;
    out.push_str(&format!(
        "    Tensor Pipe Utilization     {:>12.1} %\n",
        100.0 * tensor_flops / (sparse_peak * stats.duration_cycles).max(1.0)
    ));
    out.push_str(&format!(
        "    Memory Throughput           {:>12.1} % of L2\n",
        100.0 * t.gmem_bytes as f64 / (spec.l2_bytes_per_cycle * stats.duration_cycles).max(1.0)
    ));
    out.push_str("  Section: Launch Statistics\n");
    out.push_str(&format!(
        "    Grid Size                   {:>12}\n    Waves Per SM                {:>12}\n    Block Limit (occupancy)     {:>12}\n",
        stats.blocks, stats.waves, stats.blocks_per_sm
    ));
    out.push_str("  Section: Warp State Statistics (cycles per issued instruction)\n");
    out.push_str(&format!(
        "    Stall Long Scoreboard       {:>12.2}\n    Stall Short Scoreboard      {:>12.2}\n    Stall Wait (fixed latency)  {:>12.2}\n    Stall Barrier               {:>12.2}\n",
        stats.long_scoreboard_per_instr,
        stats.short_scoreboard_per_instr,
        t.fixed_latency_cycles as f64 / instr,
        t.barrier_cycles as f64 / instr,
    ));
    out.push_str("  Section: Memory Workload Analysis\n");
    out.push_str(&format!(
        "    Bytes (L2-visible)          {:>12}\n    Shared Memory Instructions  {:>12}\n    Shared Memory Bank Conflicts{:>12}\n",
        t.gmem_bytes, t.smem_instructions, t.smem_bank_conflicts
    ));
    out.push_str(&format!(
        "    Bound By                    {:>12}\n",
        if stats.dram_bound {
            "memory"
        } else {
            "compute"
        }
    ));
    if let Some(cache) = &stats.cache {
        out.push_str("  Section: Cache Hierarchy\n");
        for (level, s) in [("L1/TEX", &cache.l1), ("L2", &cache.l2)] {
            out.push_str(&format!(
                "    {:<28}{:>12.1} %\n",
                format!("{level} Hit Rate"),
                100.0 * s.hit_rate()
            ));
            out.push_str(&format!(
                "    {:<28}{:>12}\n",
                format!("{level} Sector Reads"),
                s.sector_reads
            ));
            out.push_str(&format!(
                "    {:<28}{:>12}\n",
                format!("{level} Evictions"),
                s.evictions
            ));
        }
        out.push_str(&format!(
            "    MSHR Merges                 {:>12}\n",
            cache.l1.mshr_merges + cache.l2.mshr_merges
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::simulate_kernel;
    use crate::instr::{BlockTrace, KernelLaunch, MmaOp, WarpInstr};

    #[test]
    fn report_contains_all_sections() {
        let spec = GpuSpec::a100();
        let launch = KernelLaunch::replicated(
            BlockTrace {
                warps: vec![(0..32)
                    .map(|_| WarpInstr::Mma {
                        op: MmaOp::SparseM16N8K32,
                        consumes: vec![],
                        produces: None,
                    })
                    .collect()],
                smem_bytes: 1024,
                gmem: Vec::new(),
            },
            4,
            1 << 20,
        );
        let stats = simulate_kernel(&launch, &spec);
        let report = ncu_style_report("test_kernel", &stats, &spec);
        for section in [
            "GPU Speed Of Light",
            "Launch Statistics",
            "Warp State Statistics",
            "Memory Workload Analysis",
            "Duration",
            "Bank Conflicts",
        ] {
            assert!(report.contains(section), "missing {section}:\n{report}");
        }
    }

    #[test]
    fn utilization_is_bounded() {
        let spec = GpuSpec::a100();
        let stats = KernelStats::default().finish();
        let report = ncu_style_report("empty", &stats, &spec);
        assert!(report.contains("0.0"));
    }
}
