//! Execution statistics mirroring the Nsight Compute counters the paper
//! quotes (`Duration`, bank conflicts, `warp long/short scoreboard`,
//! instruction counts).

use serde::{Deserialize, Serialize};

/// Counters produced by simulating one thread block.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct BlockStats {
    /// Cycles from block start until its last warp retires.
    pub cycles: u64,
    /// Throughput footprint: SM-cycles of the block's most contended
    /// resource (tensor pipes, shared-memory pipe, issue slots, memory
    /// bandwidth). Concurrent blocks on one SM serialize on this.
    pub busy_cycles: u64,
    /// Instructions issued by all warps.
    pub instructions: u64,
    /// Shared-memory replays beyond conflict-free (LDS/STS/ldmatrix).
    pub smem_bank_conflicts: u64,
    /// Cycles warps spent stalled on global-memory results.
    pub long_scoreboard_cycles: u64,
    /// Cycles warps spent stalled on shared-memory results.
    pub short_scoreboard_cycles: u64,
    /// Cycles warps spent stalled on fixed-latency math results.
    pub fixed_latency_cycles: u64,
    /// Cycles warps spent waiting at barriers.
    pub barrier_cycles: u64,
    /// Bytes this block moved over the global-memory path.
    pub gmem_bytes: u64,
    /// Shared-memory instructions issued (LDS + STS + ldmatrix).
    pub smem_instructions: u64,
    /// Tensor-pipe instructions issued.
    pub mma_instructions: u64,
}

impl BlockStats {
    /// Accumulates another block's counters (cycles take the max — used
    /// when merging warps, not blocks; block merging sums separately).
    pub fn absorb(&mut self, other: &BlockStats) {
        self.cycles = self.cycles.max(other.cycles);
        self.busy_cycles += other.busy_cycles;
        self.instructions += other.instructions;
        self.smem_bank_conflicts += other.smem_bank_conflicts;
        self.long_scoreboard_cycles += other.long_scoreboard_cycles;
        self.short_scoreboard_cycles += other.short_scoreboard_cycles;
        self.fixed_latency_cycles += other.fixed_latency_cycles;
        self.barrier_cycles += other.barrier_cycles;
        self.gmem_bytes += other.gmem_bytes;
        self.smem_instructions += other.smem_instructions;
        self.mma_instructions += other.mma_instructions;
    }

    /// Adds `other` scaled by `count` identical blocks (cycles unchanged).
    pub fn add_scaled(&mut self, other: &BlockStats, count: u64) {
        self.instructions += other.instructions * count;
        self.smem_bank_conflicts += other.smem_bank_conflicts * count;
        self.long_scoreboard_cycles += other.long_scoreboard_cycles * count;
        self.short_scoreboard_cycles += other.short_scoreboard_cycles * count;
        self.fixed_latency_cycles += other.fixed_latency_cycles * count;
        self.barrier_cycles += other.barrier_cycles * count;
        self.gmem_bytes += other.gmem_bytes * count;
        self.smem_instructions += other.smem_instructions * count;
        self.mma_instructions += other.mma_instructions * count;
    }
}

/// Counters of one cache level, in 32-byte-sector units.
///
/// Invariants (enforced by `tests/cache_properties.rs`):
/// `accesses == hits + misses` and
/// `misses == sector_reads + mshr_merges` — a miss either starts a new
/// fill from the next level (`sector_reads`) or coalesces onto an
/// in-flight one (`mshr_merges`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Sector-granular lookups.
    pub accesses: u64,
    /// Sectors served from the cache.
    pub hits: u64,
    /// Sectors not resident at lookup time.
    pub misses: u64,
    /// Sectors fetched from the next level (fills).
    pub sector_reads: u64,
    /// Valid lines displaced by fills.
    pub evictions: u64,
    /// Misses absorbed by an in-flight fill of the same sector.
    pub mshr_merges: u64,
}

impl CacheStats {
    /// Hit fraction over all lookups (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Accumulates another counter set.
    pub fn absorb(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
        self.sector_reads += other.sector_reads;
        self.evictions += other.evictions;
        self.mshr_merges += other.mshr_merges;
    }

    /// Adds `other` scaled by `count` identical blocks.
    pub fn add_scaled(&mut self, other: &CacheStats, count: u64) {
        self.accesses += other.accesses * count;
        self.hits += other.hits * count;
        self.misses += other.misses * count;
        self.sector_reads += other.sector_reads * count;
        self.evictions += other.evictions * count;
        self.mshr_merges += other.mshr_merges * count;
    }
}

/// Per-kernel L1 + L2 counters, present only when `GpuSpec::caches`
/// enables the hierarchy (DESIGN.md §18).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheHierarchyStats {
    /// All per-SM L1s summed over the grid's blocks.
    pub l1: CacheStats,
    /// The device-wide sliced L2 (fed by L1 fills).
    pub l2: CacheStats,
}

/// Whole-kernel report — the simulator's analogue of an Nsight section.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct KernelStats {
    /// Simulated kernel duration in cycles (the paper's `Duration`
    /// metric, converted with the locked clock).
    pub duration_cycles: f64,
    /// Duration in microseconds.
    pub duration_us: f64,
    /// Thread blocks launched.
    pub blocks: usize,
    /// Resident blocks per SM the occupancy calculation allowed.
    pub blocks_per_sm: usize,
    /// Number of scheduling waves (`ceil(blocks / (sms * occupancy))`).
    pub waves: usize,
    /// True when the DRAM roofline, not SM compute, bounded the kernel.
    pub dram_bound: bool,
    /// Aggregated per-block counters.
    pub totals: BlockStats,
    /// Average long-scoreboard stall cycles per issued instruction —
    /// comparable to Nsight's "Warp Cycles Per Issued Instruction /
    /// Long Scoreboard" that the paper quotes (1.82 → 0.87 for v1 → v2).
    pub long_scoreboard_per_instr: f64,
    /// Same for short scoreboard.
    pub short_scoreboard_per_instr: f64,
    /// L1/L2 hit-miss counters; `None` whenever the cache model is off
    /// (the default), keeping the legacy report shape bit-identical.
    pub cache: Option<CacheHierarchyStats>,
}

impl KernelStats {
    /// Finalizes derived ratios from the totals.
    pub fn finish(mut self) -> Self {
        let instr = self.totals.instructions.max(1) as f64;
        self.long_scoreboard_per_instr = self.totals.long_scoreboard_cycles as f64 / instr;
        self.short_scoreboard_per_instr = self.totals.short_scoreboard_cycles as f64 / instr;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_maxes_cycles_and_sums_counts() {
        let mut a = BlockStats {
            cycles: 10,
            instructions: 5,
            ..Default::default()
        };
        let b = BlockStats {
            cycles: 7,
            instructions: 3,
            smem_bank_conflicts: 2,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.cycles, 10);
        assert_eq!(a.instructions, 8);
        assert_eq!(a.smem_bank_conflicts, 2);
    }

    #[test]
    fn finish_computes_ratios() {
        let stats = KernelStats {
            totals: BlockStats {
                instructions: 100,
                long_scoreboard_cycles: 182,
                short_scoreboard_cycles: 50,
                ..Default::default()
            },
            ..Default::default()
        }
        .finish();
        assert!((stats.long_scoreboard_per_instr - 1.82).abs() < 1e-12);
        assert!((stats.short_scoreboard_per_instr - 0.5).abs() < 1e-12);
    }
}
