//! Text-Gantt rendering of a block's execution — the simulator's
//! analogue of Nsight's per-warp timeline, for eyeballing stalls and
//! pipeline overlap.

use crate::engine::{simulate_block_observed, EngineConfig, IssueEvent};
use crate::instr::{BlockTrace, WarpInstr};
use crate::stats::BlockStats;

/// A recorded block execution.
#[derive(Clone, Debug)]
pub struct Timeline {
    /// Every issued instruction in issue order.
    pub events: Vec<IssueEvent>,
    /// The block's counters.
    pub stats: BlockStats,
    /// Warps in the block.
    pub warps: usize,
}

/// Simulates `trace` and records its timeline.
pub fn record(trace: &BlockTrace, cfg: &EngineConfig) -> Timeline {
    let mut events = Vec::new();
    let stats = simulate_block_observed(trace, cfg, &mut |e| events.push(e));
    Timeline {
        events,
        stats,
        warps: trace.warps.len(),
    }
}

/// Single-letter glyph per instruction class.
pub fn glyph(i: &WarpInstr) -> char {
    match i {
        WarpInstr::CpAsync { .. } => 'a',
        WarpInstr::CommitGroup { .. } => 'c',
        WarpInstr::WaitGroup { .. } => 'W',
        WarpInstr::LdGlobal { .. } => 'G',
        WarpInstr::LdShared { .. } => 's',
        WarpInstr::StShared { .. } => 'S',
        WarpInstr::Ldmatrix { .. } => 'L',
        WarpInstr::Mma { .. } => 'M',
        WarpInstr::CudaOp { .. } => '+',
        WarpInstr::Barrier => '|',
        WarpInstr::StGlobal { .. } => 'O',
    }
}

impl Timeline {
    /// Renders one row per warp, `width` columns spanning the block's
    /// execution; each cell shows the glyph of the instruction that
    /// issued in that cycle bucket (last writer wins), `.` for idle.
    pub fn render(&self, trace: &BlockTrace, width: usize) -> String {
        let total = self.stats.cycles.max(1);
        let width = width.max(8);
        let mut rows = vec![vec!['.'; width]; self.warps];
        for e in &self.events {
            let col = ((e.issue as f64 / total as f64) * (width - 1) as f64) as usize;
            let g = glyph(&trace.warps[e.warp][e.pc]);
            rows[e.warp][col.min(width - 1)] = g;
        }
        let mut out = String::new();
        out.push_str(&format!(
            "block timeline: {} cycles, {} instructions ({} warps)\n",
            self.stats.cycles,
            self.events.len(),
            self.warps
        ));
        out.push_str(
            "legend: a=cp.async c=commit W=wait G=ldglobal s=lds S=sts L=ldmatrix M=mma +=alu |=bar O=stg\n",
        );
        for (wi, row) in rows.iter().enumerate() {
            out.push_str(&format!("w{wi:02} "));
            out.extend(row.iter());
            out.push('\n');
        }
        out
    }

    /// Issue-slot utilization: fraction of cycles with at least one
    /// instruction issued.
    pub fn issue_utilization(&self) -> f64 {
        if self.stats.cycles == 0 {
            return 0.0;
        }
        let mut cycles: Vec<u64> = self.events.iter().map(|e| e.issue).collect();
        cycles.sort_unstable();
        cycles.dedup();
        cycles.len() as f64 / self.stats.cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::GpuSpec;
    use crate::instr::MmaOp;

    fn block() -> BlockTrace {
        BlockTrace {
            warps: vec![
                vec![
                    WarpInstr::LdShared {
                        conflict_ways: 1,
                        produces: Some(0),
                        consumes: vec![],
                    },
                    WarpInstr::Mma {
                        op: MmaOp::SparseM16N8K32,
                        consumes: vec![0],
                        produces: None,
                    },
                    WarpInstr::Barrier,
                ],
                vec![
                    WarpInstr::CudaOp {
                        cycles: 4,
                        consumes: vec![],
                        produces: None,
                    },
                    WarpInstr::Barrier,
                ],
            ],
            smem_bytes: 0,
            gmem: Vec::new(),
        }
    }

    fn cfg() -> EngineConfig {
        EngineConfig {
            spec: GpuSpec::a100(),
            resident_blocks: 1,
        }
    }

    #[test]
    fn records_every_instruction_once() {
        let b = block();
        let t = record(&b, &cfg());
        assert_eq!(t.events.len(), 5);
        // Events cover each (warp, pc) pair exactly once.
        let mut seen: Vec<(usize, usize)> = t.events.iter().map(|e| (e.warp, e.pc)).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1)]);
    }

    #[test]
    fn observed_stats_match_plain_simulation() {
        let b = block();
        let plain = crate::engine::simulate_block(&b, &cfg());
        let t = record(&b, &cfg());
        assert_eq!(t.stats, plain);
    }

    #[test]
    fn render_produces_one_row_per_warp() {
        let b = block();
        let t = record(&b, &cfg());
        let text = t.render(&b, 40);
        assert_eq!(text.lines().count(), 2 + t.warps);
        assert!(text.contains("legend"));
        assert!(text.contains('M'));
    }

    #[test]
    fn issue_utilization_is_a_fraction() {
        let b = block();
        let t = record(&b, &cfg());
        let u = t.issue_utilization();
        assert!(u > 0.0 && u <= 1.0);
    }

    #[test]
    fn events_are_causally_ordered_per_warp() {
        let b = block();
        let t = record(&b, &cfg());
        for w in 0..t.warps {
            let issues: Vec<u64> = t
                .events
                .iter()
                .filter(|e| e.warp == w)
                .map(|e| e.issue)
                .collect();
            assert!(
                issues.windows(2).all(|p| p[0] < p[1]),
                "warp {w}: {issues:?}"
            );
        }
    }
}
