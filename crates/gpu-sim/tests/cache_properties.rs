//! Property-based tests of the sectored cache hierarchy (DESIGN.md
//! §18): conservation of sector counts, monotonicity in capacity, LRU
//! sanity, and the kernel-level L1→L2 traffic invariant.

use proptest::prelude::*;

use gpu_sim::{
    simulate_kernel, BlockTrace, CacheConfig, CacheStats, GpuSpec, KernelLaunch, MemSegment,
    SectoredCache, WarpInstr,
};

fn cache(sets: usize, ways: usize) -> SectoredCache {
    SectoredCache::new(CacheConfig {
        sets,
        ways,
        line_bytes: 128,
        sector_bytes: 32,
        hit_latency: 32,
    })
}

fn assert_conserved(s: &CacheStats) {
    assert_eq!(s.accesses, s.hits + s.misses, "accesses = hits + misses");
    assert_eq!(
        s.misses,
        s.sector_reads + s.mshr_merges,
        "every miss either fetched a sector or merged onto a fill"
    );
}

/// A deterministic pseudo-random access stream: `(addr, bytes)` pairs
/// over a bounded address range, with strictly increasing `now` so the
/// MSHR window closes between far-apart accesses.
fn lcg_stream(seed: u64, len: usize, addr_range: u64) -> Vec<(u64, u32)> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 16) % addr_range, 32 * (1 + (x % 4) as u32))
        })
        .collect()
}

/// Replays a stream and returns the final counters. `fill_latency = 0`
/// keeps the MSHR out of the picture so hit/miss classification depends
/// on geometry alone.
fn replay(c: &mut SectoredCache, stream: &[(u64, u32)], fill_latency: u64) -> CacheStats {
    for (i, &(addr, bytes)) in stream.iter().enumerate() {
        c.access(addr, bytes, i as u64, fill_latency);
    }
    *c.stats()
}

#[test]
fn full_working_set_hits_after_the_cold_pass() {
    // 64 sets × 4 ways × 128B = 32 KiB; a 16 KiB working set fits.
    let mut c = cache(64, 4);
    let lines: Vec<u64> = (0..128).map(|i| i * 128).collect();
    for (i, &a) in lines.iter().enumerate() {
        let r = c.access(a, 128, i as u64 * 1000, 100);
        assert_eq!(r.fills, 4, "cold pass fills every sector");
    }
    let warm_base = lines.len() as u64 * 1000;
    for (i, &a) in lines.iter().enumerate() {
        let r = c.access(a, 128, warm_base + i as u64, 100);
        assert!(r.full_hit(), "working set <= capacity must fully hit");
    }
    let s = c.stats();
    assert_eq!(s.evictions, 0);
    assert_eq!(s.hits, s.accesses / 2, "exactly the warm pass hit");
    assert_conserved(s);
}

#[test]
fn working_set_past_capacity_evicts() {
    // 1 set × 2 ways: three distinct lines cycled round-robin thrash.
    let mut c = cache(1, 2);
    for i in 0..30u64 {
        c.access((i % 3) * 128, 32, i * 1000, 1);
    }
    let s = c.stats();
    assert_eq!(s.hits, 0, "LRU round-robin over ways+1 lines never hits");
    assert!(s.evictions > 0);
    assert_conserved(s);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn conservation_over_seeded_streams(seed in 1u64..1 << 48, len in 1usize..600) {
        let stream = lcg_stream(seed, len, 256 * 1024);
        let mut c = cache(16, 4);
        let s = replay(&mut c, &stream, 40);
        assert_conserved(&s);
        prop_assert_eq!(
            s.accesses,
            stream
                .iter()
                .map(|&(a, b)| (a + u64::from(b) - 1) / 32 - a / 32 + 1)
                .sum::<u64>(),
            "every covered sector is counted exactly once"
        );
    }

    #[test]
    fn replay_is_deterministic(seed in 1u64..1 << 48) {
        let stream = lcg_stream(seed, 400, 64 * 1024);
        let a = replay(&mut cache(16, 4), &stream, 40);
        let b = replay(&mut cache(16, 4), &stream, 40);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn more_ways_never_lose_hits(seed in 1u64..1 << 48, ways in 1usize..6) {
        // LRU inclusion: at fixed set count, a cache with more ways
        // holds a superset of the lines, so the hit count cannot drop.
        let stream = lcg_stream(seed, 500, 48 * 1024);
        let small = replay(&mut cache(16, ways), &stream, 0);
        let large = replay(&mut cache(16, ways + 2), &stream, 0);
        prop_assert!(
            large.hits >= small.hits,
            "{} ways hit {} < {} ways hit {}",
            ways + 2, large.hits, ways, small.hits
        );
        assert_conserved(&small);
        assert_conserved(&large);
    }

    #[test]
    fn merges_only_shift_traffic_never_create_it(seed in 1u64..1 << 48) {
        // The same stream with and without an MSHR window: merges may
        // reclassify misses, but hits-by-geometry and total sectors
        // are unchanged, and traffic (sector_reads) never grows.
        let stream = lcg_stream(seed, 400, 32 * 1024);
        let instant = replay(&mut cache(16, 4), &stream, 0);
        let windowed = replay(&mut cache(16, 4), &stream, 10_000);
        prop_assert_eq!(instant.accesses, windowed.accesses);
        prop_assert_eq!(instant.sector_reads, windowed.sector_reads,
            "the MSHR window reclassifies hits as merges but fills are geometry-determined");
        prop_assert_eq!(instant.hits, windowed.hits + windowed.mshr_merges);
    }
}

/// A block whose warp streams annotated loads over `lines` distinct
/// 128-byte lines, touching each `passes` times.
fn annotated_block(lines: u64, passes: usize) -> BlockTrace {
    let mut warp = Vec::new();
    let mut refs = Vec::new();
    for _ in 0..passes {
        for l in 0..lines {
            warp.push(WarpInstr::LdGlobal {
                bytes: 128,
                transactions: 4,
                produces: None,
                l2_hit: false,
                consumes: vec![],
            });
            refs.push(vec![MemSegment {
                addr: l * 128,
                bytes: 128,
                scaled: false,
            }]);
        }
    }
    BlockTrace {
        warps: vec![warp],
        smem_bytes: 0,
        gmem: vec![refs],
    }
}

#[test]
fn kernel_level_traffic_funnels_l1_fills_into_l2() {
    let spec = GpuSpec::a100_with_caches();
    let launch = KernelLaunch::from_blocks(vec![annotated_block(64, 2)], 0);
    let stats = simulate_kernel(&launch, &spec);
    let c = stats.cache.expect("cache model on");
    assert_conserved(&c.l1);
    assert_conserved(&c.l2);
    assert_eq!(
        c.l2.accesses, c.l1.sector_reads,
        "every L2 access is an L1 fill and nothing else"
    );
    assert!(c.l1.sector_reads > 0);
}

#[test]
fn replicated_blocks_reuse_unscaled_lines_in_l2() {
    let spec = GpuSpec::a100_with_caches();
    let one = simulate_kernel(
        &KernelLaunch::from_blocks(vec![annotated_block(64, 1)], 0),
        &spec,
    );
    let many = simulate_kernel(
        &KernelLaunch::replicated(annotated_block(64, 1), 8, 0),
        &spec,
    );
    let (c1, c8) = (one.cache.unwrap(), many.cache.unwrap());
    // All replicas read the same unscaled addresses: DRAM-bound sector
    // reads must not scale with the replica count.
    assert_eq!(c8.l2.sector_reads, c1.l2.sector_reads);
    assert_eq!(c8.l1.sector_reads, 8 * c1.l1.sector_reads);
    assert!(c8.l2.hits > 0, "later replicas hit the shared L2");
}

#[test]
fn cache_model_is_off_by_default() {
    let launch = KernelLaunch::from_blocks(vec![annotated_block(8, 1)], 0);
    let stats = simulate_kernel(&launch, &GpuSpec::a100());
    assert!(stats.cache.is_none(), "a100() must not enable the caches");
}
