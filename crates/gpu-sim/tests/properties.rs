//! Property-based tests of the timing engine: determinism, monotonicity
//! in the architectural parameters, and conservation invariants.

use proptest::prelude::*;

use gpu_sim::{
    occupancy, simulate_block, simulate_kernel, BlockTrace, EngineConfig, GpuSpec, KernelLaunch,
    MmaOp, WarpInstr,
};

/// Strategy: a random but well-formed warp trace (barrier-free so any
/// warp mix is legal; tokens reference earlier instructions only).
fn arb_trace(max_len: usize) -> impl Strategy<Value = Vec<WarpInstr>> {
    proptest::collection::vec(0u8..6, 1..max_len).prop_map(|kinds| {
        let mut trace = Vec::new();
        let mut last_token: Option<u32> = None;
        let mut next = 0u32;
        for k in kinds {
            let instr = match k {
                0 => {
                    let tok = next;
                    next += 1;
                    last_token = Some(tok);
                    WarpInstr::LdGlobal {
                        bytes: 256,
                        transactions: 2,
                        produces: Some(tok),
                        l2_hit: true,
                        consumes: vec![],
                    }
                }
                1 => {
                    let tok = next;
                    next += 1;
                    let out = WarpInstr::LdShared {
                        conflict_ways: 1 + (next % 4),
                        produces: Some(tok),
                        consumes: last_token.into_iter().collect(),
                    };
                    last_token = Some(tok);
                    out
                }
                2 => WarpInstr::Mma {
                    op: MmaOp::SparseM16N8K32,
                    consumes: last_token.into_iter().collect(),
                    produces: None,
                },
                3 => WarpInstr::CudaOp {
                    cycles: 1 + next % 8,
                    consumes: vec![],
                    produces: None,
                },
                4 => WarpInstr::Ldmatrix {
                    phases: 4,
                    total_ways: 4 + (next % 8),
                    produces: None,
                    consumes: vec![],
                },
                _ => WarpInstr::StGlobal {
                    bytes: 128,
                    consumes: last_token.into_iter().collect(),
                },
            };
            trace.push(instr);
        }
        trace
    })
}

fn arb_block() -> impl Strategy<Value = BlockTrace> {
    (
        proptest::collection::vec(arb_trace(40), 1..6),
        0usize..64 * 1024,
    )
        .prop_map(|(warps, smem)| BlockTrace {
            warps,
            smem_bytes: smem,
            gmem: Vec::new(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simulation_is_deterministic(block in arb_block()) {
        let cfg = EngineConfig { spec: GpuSpec::a100(), resident_blocks: 1 };
        let a = simulate_block(&block, &cfg);
        let b = simulate_block(&block, &cfg);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn busy_never_exceeds_cycles(block in arb_block()) {
        let cfg = EngineConfig { spec: GpuSpec::a100(), resident_blocks: 1 };
        let stats = simulate_block(&block, &cfg);
        prop_assert!(stats.busy_cycles <= stats.cycles);
        let instrs: u64 = block.warps.iter().map(|w| w.len() as u64).sum();
        prop_assert_eq!(stats.instructions, instrs);
    }

    #[test]
    fn slower_memory_never_speeds_a_block_up(block in arb_block()) {
        let fast = GpuSpec::a100();
        let mut slow = GpuSpec::a100();
        slow.gmem_latency *= 4;
        slow.l2_latency *= 4;
        slow.smem_latency *= 2;
        let t_fast = simulate_block(
            &block,
            &EngineConfig { spec: fast, resident_blocks: 1 },
        )
        .cycles;
        let t_slow = simulate_block(
            &block,
            &EngineConfig { spec: slow, resident_blocks: 1 },
        )
        .cycles;
        prop_assert!(t_slow >= t_fast, "slow {t_slow} < fast {t_fast}");
    }

    #[test]
    fn more_blocks_never_run_faster(block in arb_block(), extra in 1usize..40) {
        let spec = GpuSpec::a100();
        let small = KernelLaunch::replicated(block.clone(), extra, 0);
        let large = KernelLaunch::replicated(block, extra * 2, 0);
        let t_small = simulate_kernel(&small, &spec).duration_cycles;
        let t_large = simulate_kernel(&large, &spec).duration_cycles;
        prop_assert!(t_large + 1e-9 >= t_small);
    }

    #[test]
    fn occupancy_bounds(smem in 0usize..300_000, warps in 0usize..80) {
        let spec = GpuSpec::a100();
        let occ = occupancy(&spec, smem, warps);
        prop_assert!(occ >= 1);
        prop_assert!(occ <= spec.max_blocks_per_sm);
        if smem > 0 && warps > 0 {
            // Resources of the resident blocks must fit (or occ is the
            // floor of 1).
            prop_assert!(occ == 1 || occ * smem <= spec.smem_per_sm_bytes);
            prop_assert!(occ == 1 || occ * warps <= spec.max_warps_per_sm);
        }
    }

    #[test]
    fn dram_roofline_is_a_lower_bound(bytes in 0u64..1 << 32) {
        let spec = GpuSpec::a100();
        let launch = KernelLaunch::from_blocks(
            vec![BlockTrace {
                warps: vec![vec![WarpInstr::CudaOp { cycles: 1, consumes: vec![], produces: None }]],
                smem_bytes: 0,
                gmem: Vec::new(),
            }],
            bytes,
        );
        let stats = simulate_kernel(&launch, &spec);
        let floor = bytes as f64 / spec.dram_bytes_per_cycle;
        prop_assert!(stats.duration_cycles >= floor);
    }
}
