//! Analytical reorderability model — the closed-form counterpart of the
//! paper's §4.3 discussion, used to *predict* (without running the
//! reorder) how much a matrix will benefit from Jigsaw.
//!
//! Under the benchmark construction (§4.1: independent vertical vectors
//! of width `v` at element sparsity `s`), a column of a `BLOCK_TILE`-row
//! strip is all-zero with probability `s^(BLOCK_TILE / v)`, so the
//! expected computed-K fraction and the two trends of Figure 11 —
//! larger `v` helps, larger `BLOCK_TILE` hurts — fall out analytically.
//! The empirical functions cross-check the model against a real matrix.

use dlmc::Matrix;
use serde::{Deserialize, Serialize};

use crate::config::MMA_TILE;

/// Predicted reorder behaviour for one parameter point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReorderForecast {
    /// Element sparsity assumed.
    pub sparsity: f64,
    /// Vector width assumed.
    pub v: usize,
    /// `BLOCK_TILE_M` assumed.
    pub block_tile: usize,
    /// Probability a column is all-zero within one strip.
    pub p_zero_column: f64,
    /// Expected fraction of the dense K each strip computes
    /// (live columns, before 2:4 packing effects).
    pub expected_k_fraction: f64,
    /// Expected nonzeros per live column per 16-row tile — the signal
    /// for how hard Algorithm 1 has to work (≤ 2 per aligned quad row
    /// is the feasibility territory).
    pub live_column_density: f64,
}

/// Closed-form forecast under the independent-vector model.
pub fn forecast(sparsity: f64, v: usize, block_tile: usize) -> ReorderForecast {
    assert!((0.0..=1.0).contains(&sparsity));
    assert!(v >= 1 && block_tile >= MMA_TILE);
    let lanes_per_strip = (block_tile as f64 / v as f64).max(1.0);
    let p_zero_column = sparsity.powf(lanes_per_strip);
    let expected_k_fraction = 1.0 - p_zero_column;
    // Among live columns: lane cells are nonzero with conditional
    // density (1-s) / (1 - s^lanes) per lane; scale to per-16-row-tile
    // occupied rows.
    let lanes_per_tile = (MMA_TILE as f64 / v as f64).max(1.0);
    let cell_density = (1.0 - sparsity) / (1.0 - p_zero_column).max(f64::EPSILON);
    let live_column_density = (cell_density * lanes_per_tile).min(lanes_per_tile);
    ReorderForecast {
        sparsity,
        v,
        block_tile,
        p_zero_column,
        expected_k_fraction,
        live_column_density,
    }
}

/// Empirical strip statistics of a real matrix.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StripCensus {
    /// `BLOCK_TILE_M` used for the census.
    pub block_tile: usize,
    /// Fraction of (strip, column) pairs that are all-zero.
    pub zero_column_fraction: f64,
    /// Mean live columns per strip.
    pub mean_live_columns: f64,
    /// Largest live-column count over strips (the K the worst strip
    /// must cover).
    pub max_live_columns: usize,
    /// Coefficient of variation of live columns across strips — load
    /// imbalance the kernel's heterogeneous blocks inherit.
    pub live_column_cv: f64,
}

/// Measures the strip-level census of `a`.
pub fn strip_census(a: &Matrix, block_tile: usize) -> StripCensus {
    assert!(block_tile >= 1);
    let mut live_counts = Vec::new();
    for row0 in (0..a.rows).step_by(block_tile) {
        let h = block_tile.min(a.rows - row0);
        let live = (0..a.cols)
            .filter(|&c| !a.column_zero_in_strip(c, row0, row0 + h))
            .count();
        live_counts.push(live);
    }
    let strips = live_counts.len().max(1) as f64;
    let mean = live_counts.iter().sum::<usize>() as f64 / strips;
    let var = live_counts
        .iter()
        .map(|&l| (l as f64 - mean).powi(2))
        .sum::<f64>()
        / strips;
    let max = live_counts.iter().copied().max().unwrap_or(0);
    StripCensus {
        block_tile,
        zero_column_fraction: 1.0 - mean / a.cols.max(1) as f64,
        mean_live_columns: mean,
        max_live_columns: max,
        live_column_cv: if mean > 0.0 { var.sqrt() / mean } else { 0.0 },
    }
}

/// Quick decision aid: forecast whether Jigsaw is expected to beat a
/// dense kernel on this matrix (the ×2 SpTC throughput must outweigh
/// the computed-K fraction; below the break-even, §4.7's hybrid or a
/// dense kernel is the better choice).
pub fn jigsaw_expected_win(a: &Matrix, v_hint: usize, block_tile: usize) -> bool {
    let census = strip_census(a, block_tile);
    // Effective work fraction ~ live columns / K, halved by the SpTC.
    let work = census.mean_live_columns / a.cols.max(1) as f64;
    let _ = v_hint;
    work / 2.0 < 0.5
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reorder::ReorderPlan;
    use crate::JigsawConfig;
    use dlmc::{ValueDist, VectorSparseSpec};

    #[test]
    fn forecast_matches_theory_points() {
        // s = 0.9, v = 8, BT = 16: p_zero = 0.9^2 = 0.81.
        let f = forecast(0.9, 8, 16);
        assert!((f.p_zero_column - 0.81).abs() < 1e-12);
        assert!((f.expected_k_fraction - 0.19).abs() < 1e-12);
        // v = 2: p_zero = 0.9^8 ≈ 0.430.
        let f2 = forecast(0.9, 2, 16);
        assert!((f2.p_zero_column - 0.9f64.powi(8)).abs() < 1e-12);
        // Larger BLOCK_TILE -> fewer zero columns.
        assert!(forecast(0.9, 8, 64).p_zero_column < f.p_zero_column);
    }

    #[test]
    fn forecast_agrees_with_generated_matrices() {
        for &(s, v, bt) in &[(0.9, 4usize, 32usize), (0.95, 8, 16), (0.8, 2, 64)] {
            let a = VectorSparseSpec {
                rows: 512,
                cols: 512,
                sparsity: s,
                v,
                dist: ValueDist::Ones,
                seed: 64,
            }
            .generate();
            let predicted = forecast(s, v, bt).p_zero_column;
            let measured = strip_census(&a, bt).zero_column_fraction;
            assert!(
                (predicted - measured).abs() < 0.05,
                "s={s} v={v} bt={bt}: predicted {predicted}, measured {measured}"
            );
        }
    }

    #[test]
    fn forecast_tracks_actual_reorder_k_fraction() {
        let (s, v, bt) = (0.95, 8usize, 32usize);
        let a = VectorSparseSpec {
            rows: 512,
            cols: 512,
            sparsity: s,
            v,
            dist: ValueDist::Ones,
            seed: 65,
        }
        .generate();
        let predicted = forecast(s, v, bt).expected_k_fraction;
        let actual = ReorderPlan::build(&a, &JigsawConfig::v4(bt))
            .stats()
            .avg_k_fraction;
        // Window quantization adds a bit; the forecast is a lower bound
        // within ~25%.
        assert!(
            actual >= predicted * 0.9 && actual <= predicted * 1.4,
            "predicted {predicted}, actual {actual}"
        );
    }

    #[test]
    fn census_detects_imbalance() {
        // One heavy strip among empties.
        let mut a = dlmc::Matrix::zeros(128, 64);
        for c in 0..64 {
            a.set(5, c, sptc::F16::ONE);
        }
        let census = strip_census(&a, 32);
        assert!(census.live_column_cv > 1.0);
        assert_eq!(census.max_live_columns, 64);
    }

    #[test]
    fn win_predictor_flips_with_sparsity() {
        let dense = VectorSparseSpec::new(128, 128, 0.3, 4, 1).generate();
        let sparse = VectorSparseSpec::new(128, 128, 0.95, 4, 1).generate();
        assert!(!jigsaw_expected_win(&dense, 4, 32));
        assert!(jigsaw_expected_win(&sparse, 4, 32));
    }
}
