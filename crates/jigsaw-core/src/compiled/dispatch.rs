//! The microkernel dispatch layer: a registry of named axpy variants
//! with runtime ISA detection, a typed selection policy, and
//! per-variant poisoning for the resilience ladder.
//!
//! [`CompiledKernel::execute_into_opts`](super::CompiledKernel::execute_into_opts)
//! resolves one [`Selection`] per execution through [`select_shaped`].
//! Selection is governed by a single typed [`KernelPolicy`] on
//! [`ExecOptions`] (built via the validating [`ExecOptions::builder`]),
//! with exactly one documented override layer between it and the
//! hardware:
//!
//! 1. [`KernelPolicy::Forced`] — an explicit per-call/per-model pin.
//!    Beats everything, including the environment.
//! 2. the `JIGSAW_KERNEL` environment variable
//!    (`scalar|avx2|avx512|neon|narrow|sorted`) — the operator
//!    override for `Auto`/`Tuned` policies, re-read per execution so
//!    test harnesses can flip it,
//! 3. [`KernelPolicy::Tuned`] — the cheapest measured, available,
//!    un-poisoned variant for the execution's shape/sparsity bucket
//!    from the [`tune`](super::tune) cost table (never the
//!    accumulation-order-changing sorted variant, never a poisoned
//!    one); an unmeasured bucket falls through to the auto ladder,
//! 4. [`ExecOptions::sorted_stream`] opting into the sorted variant
//!    (valid with `Auto` only — the builder rejects the rest),
//! 5. auto: the widest available, un-poisoned ISA
//!    (avx512f → avx2_fma → neon → scalar).
//!
//! A forced variant whose ISA is absent (or which has been poisoned)
//! **falls back cleanly** to the auto ladder — never a panic, always a
//! correct product — and bumps `kernel.forced_fallbacks`. Poisoning a
//! variant ([`poison`], used by the serve degradation ladder after a
//! caught panic) removes it from auto *and* tuned selection
//! process-wide and bumps `degrade.kernel.<name>`; the scalar floor
//! can never be poisoned.

use std::sync::atomic::{AtomicBool, Ordering};

use super::kernels_scalar::{axpy_panel_narrow_portable, axpy_panel_scalar};
use super::tune::{self, Workload};
use crate::errors::OptionsError;

/// Per-row microkernel signature: one row's nonzero stream against one
/// converted B panel (`slab`, panel-major `k × w` f32), accumulating
/// into the row's C segment of width `w`.
pub type AxpyFn = fn(&mut [f32], &[f32], &[u32], &[f32], usize);

/// The named microkernel variants of the dispatch registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Sequential f32 adds, bit-identical to `execute_fast` — the
    /// semantic reference and the un-poisonable floor.
    Scalar,
    /// 8-lane AVX2 with fused multiply-adds (x86-64).
    Avx2Fma,
    /// 16-lane AVX-512F with fused multiply-adds (x86-64).
    Avx512f,
    /// 4×f32x4 NEON with fused multiply-adds (aarch64).
    Neon,
    /// FlashSparse-style narrow-N kernel: holds the whole C row in
    /// registers across the row's entire nonzero stream (≤64-column
    /// blocks), so narrow outputs stop round-tripping C through memory
    /// once per nonzero and tails stop wasting vector lanes. Runs an
    /// AVX2+FMA register-block where available and a portable fused
    /// block everywhere else — always runnable, like the scalar floor.
    NarrowN,
    /// Per-row column-sorted stream for sequential DRAM-resident
    /// B-panel access, executed by the widest available fused axpy.
    /// Changes accumulation order — opt-in only, excluded from the
    /// bit-exact contract.
    SortedStream,
}

/// Every variant the registry knows, in auto-selection preference
/// order for the ISA kernels ([`KernelKind::SortedStream`] is never
/// auto-selected; [`KernelKind::NarrowN`] is picked by measurement or
/// force, not by the static ladder; [`KernelKind::Scalar`] is the
/// floor).
pub const ALL_KERNELS: [KernelKind; 6] = [
    KernelKind::Avx512f,
    KernelKind::Avx2Fma,
    KernelKind::Neon,
    KernelKind::NarrowN,
    KernelKind::SortedStream,
    KernelKind::Scalar,
];

impl KernelKind {
    /// Stable registry name (used in counters and bench rows).
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Avx2Fma => "avx2_fma",
            KernelKind::Avx512f => "avx512f",
            KernelKind::Neon => "neon",
            KernelKind::NarrowN => "narrow_n",
            KernelKind::SortedStream => "sorted_stream",
        }
    }

    /// Parses a registry or `JIGSAW_KERNEL` short name.
    pub fn parse(s: &str) -> Option<KernelKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(KernelKind::Scalar),
            "avx2" | "avx2_fma" => Some(KernelKind::Avx2Fma),
            "avx512" | "avx512f" => Some(KernelKind::Avx512f),
            "neon" => Some(KernelKind::Neon),
            "narrow" | "narrow_n" => Some(KernelKind::NarrowN),
            "sorted" | "sorted_stream" => Some(KernelKind::SortedStream),
            _ => None,
        }
    }

    /// True when this variant's result is bit-identical to
    /// `execute_fast` on every input. Fused and reordered variants are
    /// only ULP-bounded relative to the scalar oracle (DESIGN.md §13).
    pub fn bit_exact(self) -> bool {
        matches!(self, KernelKind::Scalar)
    }

    /// True when the running host can execute this variant right now.
    /// [`KernelKind::SortedStream`] is a stream-order transform on top
    /// of whatever axpy is available, and [`KernelKind::NarrowN`]
    /// carries its own portable fallback, so both are always runnable.
    pub fn available(self) -> bool {
        match self {
            KernelKind::Scalar | KernelKind::SortedStream | KernelKind::NarrowN => true,
            KernelKind::Avx2Fma => {
                #[cfg(target_arch = "x86_64")]
                {
                    is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            KernelKind::Avx512f => {
                #[cfg(target_arch = "x86_64")]
                {
                    is_x86_feature_detected!("avx512f")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            KernelKind::Neon => {
                #[cfg(target_arch = "aarch64")]
                {
                    std::arch::is_aarch64_feature_detected!("neon")
                }
                #[cfg(not(target_arch = "aarch64"))]
                {
                    false
                }
            }
        }
    }

    fn poison_slot(self) -> usize {
        match self {
            KernelKind::Scalar => 0,
            KernelKind::Avx2Fma => 1,
            KernelKind::Avx512f => 2,
            KernelKind::Neon => 3,
            KernelKind::SortedStream => 4,
            KernelKind::NarrowN => 5,
        }
    }

    /// The variant's axpy function (callers must have verified
    /// [`KernelKind::available`]; the scalar floor backs the rest).
    fn axpy(self) -> AxpyFn {
        match self {
            KernelKind::Scalar => axpy_panel_scalar,
            KernelKind::NarrowN => axpy_panel_narrow,
            #[cfg(target_arch = "x86_64")]
            KernelKind::Avx2Fma => super::kernels_x86::axpy_panel_avx2,
            #[cfg(target_arch = "x86_64")]
            KernelKind::Avx512f => super::kernels_x86::axpy_panel_avx512,
            #[cfg(target_arch = "aarch64")]
            KernelKind::Neon => super::kernels_aarch64::axpy_panel_neon,
            // Cross-compiled-out ISAs and the sorted transform resolve
            // through the auto ladder, never through this arm.
            #[allow(unreachable_patterns)]
            _ => axpy_panel_scalar,
        }
    }
}

/// The narrow-N axpy with its own runtime dispatch: AVX2+FMA
/// register-block when the host has it, portable fused block
/// otherwise. Detection is cached — the per-call cost is one relaxed
/// load.
fn axpy_panel_narrow(c_row: &mut [f32], vals: &[f32], cols: &[u32], slab: &[f32], w: usize) {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static HAS_AVX2: OnceLock<bool> = OnceLock::new();
        let has = *HAS_AVX2
            .get_or_init(|| is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"));
        if has {
            return super::kernels_x86::axpy_panel_narrow_avx2(c_row, vals, cols, slab, w);
        }
    }
    axpy_panel_narrow_portable(c_row, vals, cols, slab, w)
}

/// The raw axpy behind a variant, for the calibration micro-bench
/// (which times kernels directly, outside the selection ladder).
pub(crate) fn calibration_axpy(kind: KernelKind) -> AxpyFn {
    kind.axpy()
}

/// How [`select_shaped`] picks the variant that executes — the single
/// typed replacement for the old trio of ad-hoc mechanisms (ISA
/// ladder, `ExecOptions` field force, env string). See the module docs
/// for the full precedence including the `JIGSAW_KERNEL` override
/// layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum KernelPolicy {
    /// Static widest-ISA ladder (the pre-tuning default).
    #[default]
    Auto,
    /// Pin one named variant. An unavailable or poisoned pin falls
    /// back to the auto ladder (correct results, counted on
    /// `kernel.forced_fallbacks`) — except [`KernelKind::Scalar`],
    /// which is always honored.
    Forced(KernelKind),
    /// Measured-feedback selection from the [`tune`](super::tune) cost
    /// table: cheapest available un-poisoned variant for the
    /// execution's (shape, sparsity) bucket. Never picks the
    /// accumulation-order-changing sorted variant; an unmeasured
    /// bucket degrades to `Auto`.
    Tuned,
}

/// Execution options threaded from the public API ([`crate::JigsawSpmm`],
/// the serve registry's per-model configuration) down to
/// [`select_shaped`]. Construct through [`ExecOptions::builder`] (or
/// the [`ExecOptions::auto`] / [`ExecOptions::tuned`] /
/// [`ExecOptions::scalar`] shorthands); the fields are private so
/// every combination in circulation has passed validation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecOptions {
    policy: KernelPolicy,
    sorted_stream: bool,
    fused_assembly: bool,
}

impl ExecOptions {
    /// A validating builder — the one way to combine a policy with the
    /// sorted-stream and fused-assembly opt-ins.
    pub fn builder() -> ExecOptionsBuilder {
        ExecOptionsBuilder {
            policy: KernelPolicy::Auto,
            sorted_stream: false,
            fused_assembly: false,
        }
    }

    /// The default static-ladder options ([`KernelPolicy::Auto`]).
    pub fn auto() -> ExecOptions {
        ExecOptions::default()
    }

    /// Measured-feedback selection ([`KernelPolicy::Tuned`]).
    pub fn tuned() -> ExecOptions {
        ExecOptions {
            policy: KernelPolicy::Tuned,
            sorted_stream: false,
            fused_assembly: false,
        }
    }

    /// The forced-scalar options of the degradation ladder's middle
    /// rung: bit-identical to `execute_fast`, never falls back.
    pub fn scalar() -> ExecOptions {
        ExecOptions {
            policy: KernelPolicy::Forced(KernelKind::Scalar),
            sorted_stream: false,
            fused_assembly: false,
        }
    }

    /// The selection policy these options carry.
    pub fn policy(&self) -> KernelPolicy {
        self.policy
    }

    /// The variant pinned by a [`KernelPolicy::Forced`] policy, if any.
    pub fn forced_kernel(&self) -> Option<KernelKind> {
        match self.policy {
            KernelPolicy::Forced(kind) => Some(kind),
            _ => None,
        }
    }

    /// True when these options opt into the accumulation-order-changing
    /// sorted-stream variant.
    pub fn sorted_stream(&self) -> bool {
        self.sorted_stream
    }

    /// True when these options opt into fused batched-B assembly: the
    /// serve batch path converts each request's F16 columns directly
    /// into panel-major f32 scratch and executes through
    /// `CompiledKernel::execute_prepaneled_into_opts`, skipping both
    /// the concatenated `Matrix` copy and execute phase 1. Bit-exact
    /// with the two-touch path; a fused-assembly failure degrades to it
    /// at runtime.
    pub fn fused_assembly(&self) -> bool {
        self.fused_assembly
    }
}

/// Any policy is valid on its own; the builder only rejects
/// combinations.
impl From<KernelPolicy> for ExecOptions {
    fn from(policy: KernelPolicy) -> ExecOptions {
        ExecOptions {
            policy,
            sorted_stream: policy == KernelPolicy::Forced(KernelKind::SortedStream),
            fused_assembly: false,
        }
    }
}

/// Builder for [`ExecOptions`]; [`ExecOptionsBuilder::build`] rejects
/// contradictory combinations with a typed [`OptionsError`].
#[derive(Clone, Copy, Debug)]
pub struct ExecOptionsBuilder {
    policy: KernelPolicy,
    sorted_stream: bool,
    fused_assembly: bool,
}

impl ExecOptionsBuilder {
    /// Sets the selection policy (default [`KernelPolicy::Auto`]).
    pub fn policy(mut self, policy: KernelPolicy) -> ExecOptionsBuilder {
        self.policy = policy;
        self
    }

    /// Shorthand for `policy(KernelPolicy::Forced(kind))`.
    pub fn force(self, kind: KernelKind) -> ExecOptionsBuilder {
        self.policy(KernelPolicy::Forced(kind))
    }

    /// Opts into the sorted-stream variant. Only meaningful with
    /// [`KernelPolicy::Auto`] (or a redundant
    /// `Forced(SortedStream)`) — [`ExecOptionsBuilder::build`] rejects
    /// it on `Tuned` and on any other force, where it could never take
    /// effect.
    pub fn sorted_stream(mut self, on: bool) -> ExecOptionsBuilder {
        self.sorted_stream = on;
        self
    }

    /// Opts into fused batched-B assembly on the serve hot path (see
    /// [`ExecOptions::fused_assembly`]). Orthogonal to the policy and
    /// sorted-stream axes — kernel selection is unchanged, only how the
    /// dense operand reaches panel-major scratch — so any combination
    /// is valid.
    pub fn fused_assembly(mut self, on: bool) -> ExecOptionsBuilder {
        self.fused_assembly = on;
        self
    }

    /// Validates and produces the options.
    pub fn build(self) -> Result<ExecOptions, OptionsError> {
        if self.sorted_stream {
            match self.policy {
                KernelPolicy::Auto | KernelPolicy::Forced(KernelKind::SortedStream) => {}
                policy => return Err(OptionsError::SortedStreamConflict { policy }),
            }
        }
        let sorted_stream =
            self.sorted_stream || self.policy == KernelPolicy::Forced(KernelKind::SortedStream);
        Ok(ExecOptions {
            policy: self.policy,
            sorted_stream,
            fused_assembly: self.fused_assembly,
        })
    }
}

/// Process-wide per-variant poison flags (index = `poison_slot`).
static POISONED: [AtomicBool; 6] = [
    AtomicBool::new(false),
    AtomicBool::new(false),
    AtomicBool::new(false),
    AtomicBool::new(false),
    AtomicBool::new(false),
    AtomicBool::new(false),
];

/// Marks one variant unusable process-wide (sticky until
/// [`unpoison_all`]); the serve ladder calls this after catching a
/// panic out of the variant. Poisoning the scalar floor is ignored —
/// selection must always terminate at a usable kernel.
pub fn poison(kind: KernelKind) {
    if kind == KernelKind::Scalar {
        return;
    }
    if !POISONED[kind.poison_slot()].swap(true, Ordering::Relaxed) {
        let reg = jigsaw_obs::global();
        reg.counter("degrade.fallbacks").inc();
        reg.counter(match kind {
            KernelKind::Avx2Fma => "degrade.kernel.avx2_fma",
            KernelKind::Avx512f => "degrade.kernel.avx512f",
            KernelKind::Neon => "degrade.kernel.neon",
            KernelKind::NarrowN => "degrade.kernel.narrow_n",
            KernelKind::SortedStream => "degrade.kernel.sorted_stream",
            KernelKind::Scalar => unreachable!("scalar is never poisoned"),
        })
        .inc();
    }
}

/// True when [`poison`] has marked the variant unusable.
pub fn is_poisoned(kind: KernelKind) -> bool {
    POISONED[kind.poison_slot()].load(Ordering::Relaxed)
}

/// Clears every poison flag (tests and operator resets).
pub fn unpoison_all() {
    for flag in &POISONED {
        flag.store(false, Ordering::Relaxed);
    }
}

/// Variants the running host can execute right now (detection only;
/// poisoning is a separate, resettable axis).
pub fn available_kernels() -> Vec<KernelKind> {
    ALL_KERNELS.into_iter().filter(|k| k.available()).collect()
}

/// One resolved selection: which variant runs, whether the stream is
/// the column-sorted copy, and the axpy that executes it.
#[derive(Clone, Copy, Debug)]
pub struct Selection {
    /// The variant that will run (after any fallback).
    pub kind: KernelKind,
    /// True when the per-row column-sorted stream feeds the axpy.
    pub sorted: bool,
    pub(crate) axpy: AxpyFn,
}

/// Widest available un-poisoned ISA kernel (the auto ladder's floor is
/// the scalar kernel, which is always available and never poisoned).
fn auto_kind() -> KernelKind {
    for kind in [KernelKind::Avx512f, KernelKind::Avx2Fma, KernelKind::Neon] {
        if kind.available() && !is_poisoned(kind) {
            return kind;
        }
    }
    KernelKind::Scalar
}

fn usable(kind: KernelKind) -> bool {
    kind.available() && !is_poisoned(kind)
}

/// Shape-blind selection: [`select_shaped`] with no workload. A
/// `Tuned` policy degrades to the auto ladder here — callers that know
/// their shape (the compiled execute path, the serve ladder) pass it.
pub fn select(opts: &ExecOptions) -> Selection {
    select_shaped(opts, None)
}

/// Resolves `opts` (plus the `JIGSAW_KERNEL` environment override) to
/// the microkernel that will execute, falling back cleanly when a
/// forced variant is absent or poisoned. `workload` feeds
/// [`KernelPolicy::Tuned`]; the first tuned selection runs the
/// one-shot calibration pass unless a persisted table was already
/// loaded.
pub fn select_shaped(opts: &ExecOptions, workload: Option<Workload>) -> Selection {
    let env_force = || {
        std::env::var("JIGSAW_KERNEL")
            .ok()
            .as_deref()
            .and_then(KernelKind::parse)
    };
    let forced = match opts.policy {
        KernelPolicy::Forced(kind) => Some(kind),
        KernelPolicy::Auto | KernelPolicy::Tuned => env_force(),
    };
    let kind = match forced {
        Some(KernelKind::Scalar) => KernelKind::Scalar,
        Some(k) if usable(k) => k,
        Some(_) => {
            // Absent ISA or poisoned variant: fall back, never fail.
            if jigsaw_obs::enabled() {
                jigsaw_obs::global()
                    .counter("kernel.forced_fallbacks")
                    .inc();
            }
            auto_kind()
        }
        None => match opts.policy {
            KernelPolicy::Tuned => {
                let tuned = workload.and_then(|wl| {
                    let table = tune::table();
                    table.ensure_seeded();
                    table.best(wl)
                });
                // best() only returns available, un-poisoned variants;
                // an unmeasured bucket degrades to the static ladder.
                tuned.unwrap_or_else(auto_kind)
            }
            _ if opts.sorted_stream && usable(KernelKind::SortedStream) => KernelKind::SortedStream,
            _ => auto_kind(),
        },
    };
    let sorted = kind == KernelKind::SortedStream;
    // The sorted transform reorders the stream; the arithmetic runs on
    // the widest un-poisoned ISA kernel available.
    let axpy = if sorted {
        auto_kind().axpy()
    } else {
        kind.axpy()
    };
    Selection { kind, sorted, axpy }
}

/// The variant [`select`] would run for `opts` — what the serve ladder
/// poisons after catching a panic out of a shape-blind execution.
pub fn selected_kind(opts: &ExecOptions) -> KernelKind {
    select(opts).kind
}

/// Shape-aware [`selected_kind`]: what a tuned execution of `workload`
/// would run right now. The serve ladder uses this so a panic out of a
/// tuned pick poisons the variant that actually executed.
pub fn selected_kind_shaped(opts: &ExecOptions, workload: Option<Workload>) -> KernelKind {
    select_shaped(opts, workload).kind
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the process-global poison flags.
    static POISON_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn names_round_trip_and_short_forms_parse() {
        for kind in ALL_KERNELS {
            assert_eq!(KernelKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(KernelKind::parse("avx2"), Some(KernelKind::Avx2Fma));
        assert_eq!(KernelKind::parse("avx512"), Some(KernelKind::Avx512f));
        assert_eq!(KernelKind::parse("narrow"), Some(KernelKind::NarrowN));
        assert_eq!(KernelKind::parse("sorted"), Some(KernelKind::SortedStream));
        assert_eq!(KernelKind::parse("AVX2 "), Some(KernelKind::Avx2Fma));
        assert_eq!(KernelKind::parse("mma.sp"), None);
    }

    #[test]
    fn scalar_is_the_only_bit_exact_variant_and_always_available() {
        assert!(KernelKind::Scalar.bit_exact());
        assert!(KernelKind::Scalar.available());
        for kind in [
            KernelKind::Avx2Fma,
            KernelKind::Avx512f,
            KernelKind::Neon,
            KernelKind::NarrowN,
            KernelKind::SortedStream,
        ] {
            assert!(!kind.bit_exact(), "{kind:?} must not claim bit-exactness");
        }
        assert!(available_kernels().contains(&KernelKind::Scalar));
        assert!(
            available_kernels().contains(&KernelKind::NarrowN),
            "narrow_n carries a portable fallback, so it is never absent"
        );
    }

    #[test]
    fn builder_validates_and_shorthands_agree() {
        assert_eq!(ExecOptions::auto().policy(), KernelPolicy::Auto);
        assert_eq!(ExecOptions::tuned().policy(), KernelPolicy::Tuned);
        assert_eq!(
            ExecOptions::scalar().forced_kernel(),
            Some(KernelKind::Scalar)
        );
        let forced = ExecOptions::builder()
            .force(KernelKind::NarrowN)
            .build()
            .unwrap();
        assert_eq!(forced.forced_kernel(), Some(KernelKind::NarrowN));
        assert_eq!(
            forced,
            ExecOptions::from(KernelPolicy::Forced(KernelKind::NarrowN))
        );

        // sorted_stream composes with Auto and Forced(SortedStream)…
        let sorted = ExecOptions::builder().sorted_stream(true).build().unwrap();
        assert!(sorted.sorted_stream());
        let forced_sorted = ExecOptions::builder()
            .force(KernelKind::SortedStream)
            .sorted_stream(true)
            .build()
            .unwrap();
        assert!(forced_sorted.sorted_stream());
        // …and Forced(SortedStream) implies the sorted stream on its own.
        assert!(ExecOptions::from(KernelPolicy::Forced(KernelKind::SortedStream)).sorted_stream());

        // …but is rejected where it could never take effect.
        for policy in [
            KernelPolicy::Tuned,
            KernelPolicy::Forced(KernelKind::Avx2Fma),
            KernelPolicy::Forced(KernelKind::Scalar),
        ] {
            let err = ExecOptions::builder()
                .policy(policy)
                .sorted_stream(true)
                .build()
                .unwrap_err();
            assert!(matches!(err, OptionsError::SortedStreamConflict { .. }));
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn fused_assembly_is_orthogonal_to_policy_and_sorting() {
        // Off by default on every shorthand.
        for opts in [
            ExecOptions::default(),
            ExecOptions::auto(),
            ExecOptions::tuned(),
            ExecOptions::scalar(),
            ExecOptions::from(KernelPolicy::Forced(KernelKind::Avx2Fma)),
        ] {
            assert!(!opts.fused_assembly());
        }
        // Composes with every policy (and with the sorted opt-in where
        // that opt-in is itself valid) — never a validation conflict.
        for policy in [
            KernelPolicy::Auto,
            KernelPolicy::Tuned,
            KernelPolicy::Forced(KernelKind::Scalar),
        ] {
            let opts = ExecOptions::builder()
                .policy(policy)
                .fused_assembly(true)
                .build()
                .unwrap();
            assert!(opts.fused_assembly());
            assert_eq!(opts.policy(), policy);
        }
        let both = ExecOptions::builder()
            .sorted_stream(true)
            .fused_assembly(true)
            .build()
            .unwrap();
        assert!(both.sorted_stream() && both.fused_assembly());
    }

    #[test]
    fn forced_absent_isa_falls_back_cleanly() {
        // At most one of NEON / AVX-512 is available on any host, so
        // one of these forces must fall back — and both must resolve
        // to *some* usable kernel without panicking.
        for kind in [KernelKind::Neon, KernelKind::Avx512f] {
            let sel = select(&ExecOptions::from(KernelPolicy::Forced(kind)));
            assert!(sel.kind.available(), "fell back to a runnable kernel");
        }
    }

    #[test]
    fn poisoning_removes_a_variant_from_auto_and_forced_selection() {
        let _g = POISON_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        unpoison_all();
        let auto = select(&ExecOptions::default()).kind;
        if auto == KernelKind::Scalar {
            // Scalar host: poisoning is a no-op by contract.
            poison(KernelKind::Scalar);
            assert!(!is_poisoned(KernelKind::Scalar));
            return;
        }
        poison(auto);
        assert!(is_poisoned(auto));
        let after = select(&ExecOptions::default()).kind;
        assert_ne!(after, auto, "poisoned variant is skipped");
        let forced = select(&ExecOptions::from(KernelPolicy::Forced(auto))).kind;
        assert_ne!(forced, auto, "forcing a poisoned variant falls back");
        unpoison_all();
        assert_eq!(select(&ExecOptions::default()).kind, auto);
    }

    #[test]
    fn sorted_stream_is_opt_in_only() {
        let _g = POISON_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        unpoison_all();
        assert_ne!(
            select(&ExecOptions::default()).kind,
            KernelKind::SortedStream,
            "auto never picks the accumulation-order-changing variant"
        );
        let sel = select(&ExecOptions::builder().sorted_stream(true).build().unwrap());
        assert_eq!(sel.kind, KernelKind::SortedStream);
        assert!(sel.sorted);
        let forced = select(&ExecOptions::from(KernelPolicy::Forced(
            KernelKind::SortedStream,
        )));
        assert!(forced.sorted);
    }

    #[test]
    fn forced_scalar_is_always_honored() {
        let sel = select(&ExecOptions::scalar());
        assert_eq!(sel.kind, KernelKind::Scalar);
        assert!(!sel.sorted);
    }

    #[test]
    fn tuned_policy_follows_the_table_and_skips_poisoned_winners() {
        let _g = POISON_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        unpoison_all();
        let table = tune::table();
        // An out-of-the-way bucket (huge N, near-dense) that no other
        // concurrent test's executions will land in.
        let wl = Workload {
            n: 100_000,
            density: 0.99,
        };
        let opts = ExecOptions::tuned();
        // Seed so ensure_seeded() inside selection never recalibrates,
        // then pin this bucket's ranking: narrow_n cheap, scalar next.
        // Both costs sit far below any real measurement (~1e-3 ns/unit
        // and up), so a stray online record from a concurrently running
        // test can never outrank them.
        table.seed_cell(KernelKind::Scalar, wl, 2e-9);
        table.seed_cell(KernelKind::NarrowN, wl, 1e-9);
        assert_eq!(select_shaped(&opts, Some(wl)).kind, KernelKind::NarrowN);
        assert_eq!(selected_kind_shaped(&opts, Some(wl)), KernelKind::NarrowN);

        // Poisoning the measured winner falls back to the
        // next-cheapest un-poisoned cell, not to the poisoned pick.
        poison(KernelKind::NarrowN);
        assert_eq!(select_shaped(&opts, Some(wl)).kind, KernelKind::Scalar);
        unpoison_all();

        // No workload → shape-blind → static ladder, never a panic.
        let blind = select(&opts).kind;
        assert_ne!(blind, KernelKind::SortedStream);
        assert!(blind.available());
    }
}
