//! The microkernel dispatch layer: a registry of named axpy variants
//! with runtime ISA detection, forced selection for testing, and
//! per-variant poisoning for the resilience ladder.
//!
//! [`CompiledKernel::execute_into_opts`](super::CompiledKernel::execute_into_opts)
//! calls [`select`] once per execution. Selection precedence:
//!
//! 1. an explicit [`ExecOptions::kernel`] force,
//! 2. the `JIGSAW_KERNEL` environment variable
//!    (`scalar|avx2|avx512|neon|sorted`, re-read per execution so test
//!    harnesses can flip it),
//! 3. [`ExecOptions::sorted_stream`] opting into the
//!    accumulation-order-changing sorted variant,
//! 4. auto: the widest available, un-poisoned ISA
//!    (avx512f → avx2_fma → neon → scalar).
//!
//! A forced variant whose ISA is absent (or which has been poisoned)
//! **falls back cleanly** to the auto ladder — never a panic, always a
//! correct product — and bumps `kernel.forced_fallbacks`. Poisoning a
//! variant ([`poison`], used by the serve degradation ladder after a
//! caught panic) removes it from auto selection process-wide and bumps
//! `degrade.kernel.<name>`; the scalar floor can never be poisoned.

use std::sync::atomic::{AtomicBool, Ordering};

use super::kernels_scalar::axpy_panel_scalar;

/// Per-row microkernel signature: one row's nonzero stream against one
/// converted B panel (`slab`, panel-major `k × w` f32), accumulating
/// into the row's C segment of width `w`.
pub type AxpyFn = fn(&mut [f32], &[f32], &[u32], &[f32], usize);

/// The named microkernel variants of the dispatch registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Sequential f32 adds, bit-identical to `execute_fast` — the
    /// semantic reference and the un-poisonable floor.
    Scalar,
    /// 8-lane AVX2 with fused multiply-adds (x86-64).
    Avx2Fma,
    /// 16-lane AVX-512F with fused multiply-adds (x86-64).
    Avx512f,
    /// 4×f32x4 NEON with fused multiply-adds (aarch64).
    Neon,
    /// Per-row column-sorted stream for sequential DRAM-resident
    /// B-panel access, executed by the widest available fused axpy.
    /// Changes accumulation order — opt-in only, excluded from the
    /// bit-exact contract.
    SortedStream,
}

/// Every variant the registry knows, in auto-selection preference
/// order for the ISA kernels ([`KernelKind::SortedStream`] is never
/// auto-selected; [`KernelKind::Scalar`] is the floor).
pub const ALL_KERNELS: [KernelKind; 5] = [
    KernelKind::Avx512f,
    KernelKind::Avx2Fma,
    KernelKind::Neon,
    KernelKind::SortedStream,
    KernelKind::Scalar,
];

impl KernelKind {
    /// Stable registry name (used in counters and bench rows).
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Avx2Fma => "avx2_fma",
            KernelKind::Avx512f => "avx512f",
            KernelKind::Neon => "neon",
            KernelKind::SortedStream => "sorted_stream",
        }
    }

    /// Parses a registry or `JIGSAW_KERNEL` short name.
    pub fn parse(s: &str) -> Option<KernelKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(KernelKind::Scalar),
            "avx2" | "avx2_fma" => Some(KernelKind::Avx2Fma),
            "avx512" | "avx512f" => Some(KernelKind::Avx512f),
            "neon" => Some(KernelKind::Neon),
            "sorted" | "sorted_stream" => Some(KernelKind::SortedStream),
            _ => None,
        }
    }

    /// True when this variant's result is bit-identical to
    /// `execute_fast` on every input. Fused and reordered variants are
    /// only ULP-bounded relative to the scalar oracle (DESIGN.md §13).
    pub fn bit_exact(self) -> bool {
        matches!(self, KernelKind::Scalar)
    }

    /// True when the running host can execute this variant right now.
    /// [`KernelKind::SortedStream`] is a stream-order transform on top
    /// of whatever axpy is available, so it is always runnable.
    pub fn available(self) -> bool {
        match self {
            KernelKind::Scalar | KernelKind::SortedStream => true,
            KernelKind::Avx2Fma => {
                #[cfg(target_arch = "x86_64")]
                {
                    is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            KernelKind::Avx512f => {
                #[cfg(target_arch = "x86_64")]
                {
                    is_x86_feature_detected!("avx512f")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            KernelKind::Neon => {
                #[cfg(target_arch = "aarch64")]
                {
                    std::arch::is_aarch64_feature_detected!("neon")
                }
                #[cfg(not(target_arch = "aarch64"))]
                {
                    false
                }
            }
        }
    }

    fn poison_slot(self) -> usize {
        match self {
            KernelKind::Scalar => 0,
            KernelKind::Avx2Fma => 1,
            KernelKind::Avx512f => 2,
            KernelKind::Neon => 3,
            KernelKind::SortedStream => 4,
        }
    }

    /// The variant's axpy function (callers must have verified
    /// [`KernelKind::available`]; the scalar floor backs the rest).
    fn axpy(self) -> AxpyFn {
        match self {
            KernelKind::Scalar => axpy_panel_scalar,
            #[cfg(target_arch = "x86_64")]
            KernelKind::Avx2Fma => super::kernels_x86::axpy_panel_avx2,
            #[cfg(target_arch = "x86_64")]
            KernelKind::Avx512f => super::kernels_x86::axpy_panel_avx512,
            #[cfg(target_arch = "aarch64")]
            KernelKind::Neon => super::kernels_aarch64::axpy_panel_neon,
            // Cross-compiled-out ISAs and the sorted transform resolve
            // through the auto ladder, never through this arm.
            _ => axpy_panel_scalar,
        }
    }
}

/// Execution options threaded from the public API ([`crate::JigsawSpmm`],
/// the serve registry's per-model configuration) down to [`select`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecOptions {
    /// Force one variant by name. An unavailable or poisoned force
    /// falls back to auto selection (correct results, counted on
    /// `kernel.forced_fallbacks`) — except [`KernelKind::Scalar`],
    /// which is always honored.
    pub kernel: Option<KernelKind>,
    /// Opt into the accumulation-order-changing sorted-stream variant
    /// when no explicit force is set. Off by default: results are then
    /// excluded from the bit-exact guarantee (ULP-bounded only).
    pub sorted_stream: bool,
}

impl ExecOptions {
    /// The forced-scalar options of the degradation ladder's middle
    /// rung: bit-identical to `execute_fast`, never falls back.
    pub fn scalar() -> ExecOptions {
        ExecOptions {
            kernel: Some(KernelKind::Scalar),
            sorted_stream: false,
        }
    }

    /// Options forcing one named variant.
    pub fn forced(kind: KernelKind) -> ExecOptions {
        ExecOptions {
            kernel: Some(kind),
            sorted_stream: false,
        }
    }
}

/// Process-wide per-variant poison flags (index = `poison_slot`).
static POISONED: [AtomicBool; 5] = [
    AtomicBool::new(false),
    AtomicBool::new(false),
    AtomicBool::new(false),
    AtomicBool::new(false),
    AtomicBool::new(false),
];

/// Marks one variant unusable process-wide (sticky until
/// [`unpoison_all`]); the serve ladder calls this after catching a
/// panic out of the variant. Poisoning the scalar floor is ignored —
/// selection must always terminate at a usable kernel.
pub fn poison(kind: KernelKind) {
    if kind == KernelKind::Scalar {
        return;
    }
    if !POISONED[kind.poison_slot()].swap(true, Ordering::Relaxed) {
        let reg = jigsaw_obs::global();
        reg.counter("degrade.fallbacks").inc();
        reg.counter(match kind {
            KernelKind::Avx2Fma => "degrade.kernel.avx2_fma",
            KernelKind::Avx512f => "degrade.kernel.avx512f",
            KernelKind::Neon => "degrade.kernel.neon",
            KernelKind::SortedStream => "degrade.kernel.sorted_stream",
            KernelKind::Scalar => unreachable!("scalar is never poisoned"),
        })
        .inc();
    }
}

/// True when [`poison`] has marked the variant unusable.
pub fn is_poisoned(kind: KernelKind) -> bool {
    POISONED[kind.poison_slot()].load(Ordering::Relaxed)
}

/// Clears every poison flag (tests and operator resets).
pub fn unpoison_all() {
    for flag in &POISONED {
        flag.store(false, Ordering::Relaxed);
    }
}

/// Variants the running host can execute right now (detection only;
/// poisoning is a separate, resettable axis).
pub fn available_kernels() -> Vec<KernelKind> {
    ALL_KERNELS.into_iter().filter(|k| k.available()).collect()
}

/// One resolved selection: which variant runs, whether the stream is
/// the column-sorted copy, and the axpy that executes it.
#[derive(Clone, Copy, Debug)]
pub struct Selection {
    /// The variant that will run (after any fallback).
    pub kind: KernelKind,
    /// True when the per-row column-sorted stream feeds the axpy.
    pub sorted: bool,
    pub(crate) axpy: AxpyFn,
}

/// Widest available un-poisoned ISA kernel (the auto ladder's floor is
/// the scalar kernel, which is always available and never poisoned).
fn auto_kind() -> KernelKind {
    for kind in [KernelKind::Avx512f, KernelKind::Avx2Fma, KernelKind::Neon] {
        if kind.available() && !is_poisoned(kind) {
            return kind;
        }
    }
    KernelKind::Scalar
}

fn usable(kind: KernelKind) -> bool {
    kind.available() && !is_poisoned(kind)
}

/// Resolves `opts` (plus the `JIGSAW_KERNEL` environment override) to
/// the microkernel that will execute, falling back cleanly when a
/// forced variant is absent or poisoned.
pub fn select(opts: &ExecOptions) -> Selection {
    let env_force = opts.kernel.is_none().then(|| {
        std::env::var("JIGSAW_KERNEL")
            .ok()
            .as_deref()
            .and_then(KernelKind::parse)
    });
    let forced = opts.kernel.or(env_force.flatten());
    let kind = match forced {
        Some(KernelKind::Scalar) => KernelKind::Scalar,
        Some(k) if usable(k) => k,
        Some(_) => {
            // Absent ISA or poisoned variant: fall back, never fail.
            if jigsaw_obs::enabled() {
                jigsaw_obs::global()
                    .counter("kernel.forced_fallbacks")
                    .inc();
            }
            auto_kind()
        }
        None if opts.sorted_stream && usable(KernelKind::SortedStream) => KernelKind::SortedStream,
        None => auto_kind(),
    };
    let sorted = kind == KernelKind::SortedStream;
    // The sorted transform reorders the stream; the arithmetic runs on
    // the widest un-poisoned ISA kernel available.
    let axpy = if sorted {
        auto_kind().axpy()
    } else {
        kind.axpy()
    };
    Selection { kind, sorted, axpy }
}

/// The variant [`select`] would run for `opts` — what the serve ladder
/// poisons after catching a panic out of an execution.
pub fn selected_kind(opts: &ExecOptions) -> KernelKind {
    select(opts).kind
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the process-global poison flags.
    static POISON_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn names_round_trip_and_short_forms_parse() {
        for kind in ALL_KERNELS {
            assert_eq!(KernelKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(KernelKind::parse("avx2"), Some(KernelKind::Avx2Fma));
        assert_eq!(KernelKind::parse("avx512"), Some(KernelKind::Avx512f));
        assert_eq!(KernelKind::parse("sorted"), Some(KernelKind::SortedStream));
        assert_eq!(KernelKind::parse("AVX2 "), Some(KernelKind::Avx2Fma));
        assert_eq!(KernelKind::parse("mma.sp"), None);
    }

    #[test]
    fn scalar_is_the_only_bit_exact_variant_and_always_available() {
        assert!(KernelKind::Scalar.bit_exact());
        assert!(KernelKind::Scalar.available());
        for kind in [
            KernelKind::Avx2Fma,
            KernelKind::Avx512f,
            KernelKind::Neon,
            KernelKind::SortedStream,
        ] {
            assert!(!kind.bit_exact(), "{kind:?} must not claim bit-exactness");
        }
        assert!(available_kernels().contains(&KernelKind::Scalar));
    }

    #[test]
    fn forced_absent_isa_falls_back_cleanly() {
        // At most one of NEON / AVX-512 is available on any host, so
        // one of these forces must fall back — and both must resolve
        // to *some* usable kernel without panicking.
        for kind in [KernelKind::Neon, KernelKind::Avx512f] {
            let sel = select(&ExecOptions::forced(kind));
            assert!(sel.kind.available(), "fell back to a runnable kernel");
        }
    }

    #[test]
    fn poisoning_removes_a_variant_from_auto_and_forced_selection() {
        let _g = POISON_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        unpoison_all();
        let auto = select(&ExecOptions::default()).kind;
        if auto == KernelKind::Scalar {
            // Scalar host: poisoning is a no-op by contract.
            poison(KernelKind::Scalar);
            assert!(!is_poisoned(KernelKind::Scalar));
            return;
        }
        poison(auto);
        assert!(is_poisoned(auto));
        let after = select(&ExecOptions::default()).kind;
        assert_ne!(after, auto, "poisoned variant is skipped");
        let forced = select(&ExecOptions::forced(auto)).kind;
        assert_ne!(forced, auto, "forcing a poisoned variant falls back");
        unpoison_all();
        assert_eq!(select(&ExecOptions::default()).kind, auto);
    }

    #[test]
    fn sorted_stream_is_opt_in_only() {
        let _g = POISON_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        unpoison_all();
        assert_ne!(
            select(&ExecOptions::default()).kind,
            KernelKind::SortedStream,
            "auto never picks the accumulation-order-changing variant"
        );
        let sel = select(&ExecOptions {
            kernel: None,
            sorted_stream: true,
        });
        assert_eq!(sel.kind, KernelKind::SortedStream);
        assert!(sel.sorted);
        let forced = select(&ExecOptions::forced(KernelKind::SortedStream));
        assert!(forced.sorted);
    }

    #[test]
    fn forced_scalar_is_always_honored() {
        let sel = select(&ExecOptions::scalar());
        assert_eq!(sel.kind, KernelKind::Scalar);
        assert!(!sel.sorted);
    }
}
