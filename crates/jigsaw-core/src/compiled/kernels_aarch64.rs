//! aarch64 NEON microkernel of the dispatch registry: 4×f32x4 (16
//! floats per pass over the C segment), fused multiply-adds via
//! `vfmaq_n_f32`. Keeps the per-row `(window, slot)` accumulation
//! order of the scalar reference; only per-step rounding changes
//! (exact on integer-valued data, ≤ 1 ulp per step otherwise).
#![cfg(target_arch = "aarch64")]

/// NEON microkernel: safe wrapper around the `target_feature` inner
/// function — the dispatch layer only returns it after runtime
/// feature detection ([`super::dispatch::KernelKind::available`]).
pub fn axpy_panel_neon(c_row: &mut [f32], vals: &[f32], cols: &[u32], slab: &[f32], w: usize) {
    // SAFETY: neon was verified by the dispatch layer; the slice
    // invariants the inner kernel relies on are asserted there.
    unsafe { axpy_panel_neon_inner(c_row, vals, cols, slab, w) }
}

/// Four f32x4 vectors per pass (16 lanes), one nonzero broadcast per
/// `vfmaq_n_f32`, scalar `mul_add` cleanup under 4 lanes.
///
/// # Safety
///
/// Requires neon. Slice invariants (`c_row.len() == w`, every
/// `cols[i] as usize * w + w <= slab.len()`, `vals.len() ==
/// cols.len()`) are asserted on entry, so callers only owe the ISA
/// guarantee.
#[target_feature(enable = "neon")]
unsafe fn axpy_panel_neon_inner(
    c_row: &mut [f32],
    vals: &[f32],
    cols: &[u32],
    slab: &[f32],
    w: usize,
) {
    use std::arch::aarch64::*;
    assert_eq!(c_row.len(), w);
    assert_eq!(vals.len(), cols.len());
    let rows = slab.len() / w.max(1);
    assert!(cols.iter().all(|&c| (c as usize) < rows), "B row in slab");

    let nnz = vals.len();
    let c_ptr = c_row.as_mut_ptr();
    let slab_ptr = slab.as_ptr();
    for i in 0..nnz {
        let bi = slab_ptr.add(cols[i] as usize * w);
        let v = vals[i];
        let mut j = 0;
        // 4×f32x4: four independent accumulator vectors per pass keep
        // the FMA pipeline full without reassociating across lanes.
        while j + 16 <= w {
            let mut a0 = vld1q_f32(c_ptr.add(j));
            let mut a1 = vld1q_f32(c_ptr.add(j + 4));
            let mut a2 = vld1q_f32(c_ptr.add(j + 8));
            let mut a3 = vld1q_f32(c_ptr.add(j + 12));
            a0 = vfmaq_n_f32(a0, vld1q_f32(bi.add(j)), v);
            a1 = vfmaq_n_f32(a1, vld1q_f32(bi.add(j + 4)), v);
            a2 = vfmaq_n_f32(a2, vld1q_f32(bi.add(j + 8)), v);
            a3 = vfmaq_n_f32(a3, vld1q_f32(bi.add(j + 12)), v);
            vst1q_f32(c_ptr.add(j), a0);
            vst1q_f32(c_ptr.add(j + 4), a1);
            vst1q_f32(c_ptr.add(j + 8), a2);
            vst1q_f32(c_ptr.add(j + 12), a3);
            j += 16;
        }
        while j + 4 <= w {
            let acc = vfmaq_n_f32(vld1q_f32(c_ptr.add(j)), vld1q_f32(bi.add(j)), v);
            vst1q_f32(c_ptr.add(j), acc);
            j += 4;
        }
        while j < w {
            *c_ptr.add(j) = v.mul_add(*bi.add(j), *c_ptr.add(j));
            j += 1;
        }
    }
}
