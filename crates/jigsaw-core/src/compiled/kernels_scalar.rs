//! The scalar microkernel — the semantic reference every other variant
//! in the dispatch registry is measured against — and the portable
//! half of the narrow-N register-blocked kernel.

/// Scalar microkernel: four nonzeros per pass over the C segment
/// (quartering C traffic), products applied as sequential f32 adds so
/// the result is bit-identical to the one-at-a-time order — and
/// therefore to `execute_fast`, the differential oracle.
pub fn axpy_panel_scalar(c_row: &mut [f32], vals: &[f32], cols: &[u32], slab: &[f32], w: usize) {
    let nnz = vals.len();
    let mut i = 0;
    while i + 4 <= nnz {
        let b0 = &slab[cols[i] as usize * w..][..w];
        let b1 = &slab[cols[i + 1] as usize * w..][..w];
        let b2 = &slab[cols[i + 2] as usize * w..][..w];
        let b3 = &slab[cols[i + 3] as usize * w..][..w];
        let (v0, v1, v2, v3) = (vals[i], vals[i + 1], vals[i + 2], vals[i + 3]);
        for (j, cj) in c_row.iter_mut().enumerate() {
            let mut acc = *cj;
            acc += v0 * b0[j];
            acc += v1 * b1[j];
            acc += v2 * b2[j];
            acc += v3 * b3[j];
            *cj = acc;
        }
        i += 4;
    }
    while i < nnz {
        let bi = &slab[cols[i] as usize * w..][..w];
        let v = vals[i];
        for (cj, &bj) in c_row.iter_mut().zip(bi) {
            *cj += v * bj;
        }
        i += 1;
    }
}

/// How many C columns the narrow-N kernels hold in accumulators at
/// once (the AVX2 half maps this to 8 YMM registers).
pub const NARROW_BLOCK: usize = 64;

/// Portable half of the FlashSparse-style narrow-N microkernel: the C
/// row is staged into a ≤[`NARROW_BLOCK`]-wide accumulator block that
/// lives across the row's **entire** nonzero stream, so C is loaded
/// and stored once per block instead of once per nonzero — the traffic
/// that dominates when `w` is small. Per element the products are
/// applied in stream order with `mul_add`, the exact sequence the AVX2
/// half fuses in hardware: the two halves are bit-identical to each
/// other, exact on integer-valued data, and ≤ 1 ulp per step from the
/// scalar reference otherwise.
pub fn axpy_panel_narrow_portable(
    c_row: &mut [f32],
    vals: &[f32],
    cols: &[u32],
    slab: &[f32],
    w: usize,
) {
    assert_eq!(c_row.len(), w);
    assert_eq!(vals.len(), cols.len());
    let rows = slab.len() / w.max(1);
    assert!(cols.iter().all(|&c| (c as usize) < rows), "B row in slab");

    let mut start = 0;
    while start < w {
        let bw = (w - start).min(NARROW_BLOCK);
        let mut acc = [0.0f32; NARROW_BLOCK];
        acc[..bw].copy_from_slice(&c_row[start..start + bw]);
        for (&v, &col) in vals.iter().zip(cols) {
            let b = &slab[col as usize * w + start..][..bw];
            for (a, &bj) in acc[..bw].iter_mut().zip(b) {
                *a = v.mul_add(bj, *a);
            }
        }
        c_row[start..start + bw].copy_from_slice(&acc[..bw]);
        start += bw;
    }
}
