//! The scalar microkernel: the semantic reference every other variant
//! in the dispatch registry is measured against.

/// Scalar microkernel: four nonzeros per pass over the C segment
/// (quartering C traffic), products applied as sequential f32 adds so
/// the result is bit-identical to the one-at-a-time order — and
/// therefore to `execute_fast`, the differential oracle.
pub fn axpy_panel_scalar(c_row: &mut [f32], vals: &[f32], cols: &[u32], slab: &[f32], w: usize) {
    let nnz = vals.len();
    let mut i = 0;
    while i + 4 <= nnz {
        let b0 = &slab[cols[i] as usize * w..][..w];
        let b1 = &slab[cols[i + 1] as usize * w..][..w];
        let b2 = &slab[cols[i + 2] as usize * w..][..w];
        let b3 = &slab[cols[i + 3] as usize * w..][..w];
        let (v0, v1, v2, v3) = (vals[i], vals[i + 1], vals[i + 2], vals[i + 3]);
        for (j, cj) in c_row.iter_mut().enumerate() {
            let mut acc = *cj;
            acc += v0 * b0[j];
            acc += v1 * b1[j];
            acc += v2 * b2[j];
            acc += v3 * b3[j];
            *cj = acc;
        }
        i += 4;
    }
    while i < nnz {
        let bi = &slab[cols[i] as usize * w..][..w];
        let v = vals[i];
        for (cj, &bj) in c_row.iter_mut().zip(bi) {
            *cj += v * bj;
        }
        i += 1;
    }
}
