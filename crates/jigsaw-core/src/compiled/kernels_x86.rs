//! x86-64 microkernels of the dispatch registry: 8-lane AVX2+FMA,
//! 16-lane AVX-512F, and the AVX2 half of the narrow-N register-blocked
//! kernel. All keep the per-row `(window, slot)` accumulation order of
//! the scalar reference; only the rounding of each step changes (fused
//! multiply-adds — exact on integer-valued data, ≤ 1 ulp per step
//! otherwise).
#![cfg(target_arch = "x86_64")]

use super::kernels_scalar::NARROW_BLOCK;

/// AVX2+FMA microkernel: safe wrapper around the `target_feature`
/// inner function — the dispatch layer only returns it after runtime
/// feature detection ([`super::dispatch::KernelKind::available`]).
pub fn axpy_panel_avx2(c_row: &mut [f32], vals: &[f32], cols: &[u32], slab: &[f32], w: usize) {
    // SAFETY: avx2+fma were verified by the dispatch layer; the slice
    // invariants the inner kernel relies on are asserted there.
    unsafe { axpy_panel_avx2_inner(c_row, vals, cols, slab, w) }
}

/// Eight lanes per vector, four nonzeros per pass, fused
/// multiply-adds.
///
/// # Safety
///
/// Requires avx2 and fma. Slice invariants (`c_row.len() == w`, every
/// `cols[i] as usize * w + w <= slab.len()`, `vals.len() ==
/// cols.len()`) are asserted on entry, so callers only owe the ISA
/// guarantee.
#[target_feature(enable = "avx2,fma")]
unsafe fn axpy_panel_avx2_inner(
    c_row: &mut [f32],
    vals: &[f32],
    cols: &[u32],
    slab: &[f32],
    w: usize,
) {
    use std::arch::x86_64::*;
    assert_eq!(c_row.len(), w);
    assert_eq!(vals.len(), cols.len());
    let rows = slab.len() / w.max(1);
    assert!(cols.iter().all(|&c| (c as usize) < rows), "B row in slab");

    let nnz = vals.len();
    let c_ptr = c_row.as_mut_ptr();
    let slab_ptr = slab.as_ptr();
    let mut i = 0;
    while i + 4 <= nnz {
        let b0 = slab_ptr.add(cols[i] as usize * w);
        let b1 = slab_ptr.add(cols[i + 1] as usize * w);
        let b2 = slab_ptr.add(cols[i + 2] as usize * w);
        let b3 = slab_ptr.add(cols[i + 3] as usize * w);
        let (v0, v1, v2, v3) = (vals[i], vals[i + 1], vals[i + 2], vals[i + 3]);
        let (s0, s1) = (_mm256_set1_ps(v0), _mm256_set1_ps(v1));
        let (s2, s3) = (_mm256_set1_ps(v2), _mm256_set1_ps(v3));
        let mut j = 0;
        while j + 8 <= w {
            let mut acc = _mm256_loadu_ps(c_ptr.add(j));
            acc = _mm256_fmadd_ps(s0, _mm256_loadu_ps(b0.add(j)), acc);
            acc = _mm256_fmadd_ps(s1, _mm256_loadu_ps(b1.add(j)), acc);
            acc = _mm256_fmadd_ps(s2, _mm256_loadu_ps(b2.add(j)), acc);
            acc = _mm256_fmadd_ps(s3, _mm256_loadu_ps(b3.add(j)), acc);
            _mm256_storeu_ps(c_ptr.add(j), acc);
            j += 8;
        }
        while j < w {
            let mut acc = *c_ptr.add(j);
            acc = v0.mul_add(*b0.add(j), acc);
            acc = v1.mul_add(*b1.add(j), acc);
            acc = v2.mul_add(*b2.add(j), acc);
            acc = v3.mul_add(*b3.add(j), acc);
            *c_ptr.add(j) = acc;
            j += 1;
        }
        i += 4;
    }
    while i < nnz {
        let bi = slab_ptr.add(cols[i] as usize * w);
        let v = vals[i];
        let s = _mm256_set1_ps(v);
        let mut j = 0;
        while j + 8 <= w {
            let acc = _mm256_fmadd_ps(s, _mm256_loadu_ps(bi.add(j)), _mm256_loadu_ps(c_ptr.add(j)));
            _mm256_storeu_ps(c_ptr.add(j), acc);
            j += 8;
        }
        while j < w {
            *c_ptr.add(j) = v.mul_add(*bi.add(j), *c_ptr.add(j));
            j += 1;
        }
        i += 1;
    }
}

/// AVX-512F microkernel: safe wrapper around the `target_feature`
/// inner function — dispatched only after runtime detection.
pub fn axpy_panel_avx512(c_row: &mut [f32], vals: &[f32], cols: &[u32], slab: &[f32], w: usize) {
    // SAFETY: avx512f was verified by the dispatch layer; the slice
    // invariants the inner kernel relies on are asserted there.
    unsafe { axpy_panel_avx512_inner(c_row, vals, cols, slab, w) }
}

/// Sixteen lanes per vector, four nonzeros per pass, fused
/// multiply-adds; the sub-16 tail falls through the masked AVX-512
/// load/store so no scalar cleanup loop is needed.
///
/// # Safety
///
/// Requires avx512f. Slice invariants (`c_row.len() == w`, every
/// `cols[i] as usize * w + w <= slab.len()`, `vals.len() ==
/// cols.len()`) are asserted on entry, so callers only owe the ISA
/// guarantee.
#[target_feature(enable = "avx512f")]
unsafe fn axpy_panel_avx512_inner(
    c_row: &mut [f32],
    vals: &[f32],
    cols: &[u32],
    slab: &[f32],
    w: usize,
) {
    use std::arch::x86_64::*;
    assert_eq!(c_row.len(), w);
    assert_eq!(vals.len(), cols.len());
    let rows = slab.len() / w.max(1);
    assert!(cols.iter().all(|&c| (c as usize) < rows), "B row in slab");

    let nnz = vals.len();
    let c_ptr = c_row.as_mut_ptr();
    let slab_ptr = slab.as_ptr();
    let full = w & !15;
    let tail_mask: __mmask16 = (1u16 << (w - full)).wrapping_sub(1);
    let mut i = 0;
    while i + 4 <= nnz {
        let b0 = slab_ptr.add(cols[i] as usize * w);
        let b1 = slab_ptr.add(cols[i + 1] as usize * w);
        let b2 = slab_ptr.add(cols[i + 2] as usize * w);
        let b3 = slab_ptr.add(cols[i + 3] as usize * w);
        let s0 = _mm512_set1_ps(vals[i]);
        let s1 = _mm512_set1_ps(vals[i + 1]);
        let s2 = _mm512_set1_ps(vals[i + 2]);
        let s3 = _mm512_set1_ps(vals[i + 3]);
        let mut j = 0;
        while j + 16 <= w {
            let mut acc = _mm512_loadu_ps(c_ptr.add(j));
            acc = _mm512_fmadd_ps(s0, _mm512_loadu_ps(b0.add(j)), acc);
            acc = _mm512_fmadd_ps(s1, _mm512_loadu_ps(b1.add(j)), acc);
            acc = _mm512_fmadd_ps(s2, _mm512_loadu_ps(b2.add(j)), acc);
            acc = _mm512_fmadd_ps(s3, _mm512_loadu_ps(b3.add(j)), acc);
            _mm512_storeu_ps(c_ptr.add(j), acc);
            j += 16;
        }
        if tail_mask != 0 {
            let mut acc = _mm512_maskz_loadu_ps(tail_mask, c_ptr.add(j));
            acc = _mm512_fmadd_ps(s0, _mm512_maskz_loadu_ps(tail_mask, b0.add(j)), acc);
            acc = _mm512_fmadd_ps(s1, _mm512_maskz_loadu_ps(tail_mask, b1.add(j)), acc);
            acc = _mm512_fmadd_ps(s2, _mm512_maskz_loadu_ps(tail_mask, b2.add(j)), acc);
            acc = _mm512_fmadd_ps(s3, _mm512_maskz_loadu_ps(tail_mask, b3.add(j)), acc);
            _mm512_mask_storeu_ps(c_ptr.add(j), tail_mask, acc);
        }
        i += 4;
    }
    while i < nnz {
        let bi = slab_ptr.add(cols[i] as usize * w);
        let s = _mm512_set1_ps(vals[i]);
        let mut j = 0;
        while j + 16 <= w {
            let acc = _mm512_fmadd_ps(s, _mm512_loadu_ps(bi.add(j)), _mm512_loadu_ps(c_ptr.add(j)));
            _mm512_storeu_ps(c_ptr.add(j), acc);
            j += 16;
        }
        if tail_mask != 0 {
            let acc = _mm512_fmadd_ps(
                s,
                _mm512_maskz_loadu_ps(tail_mask, bi.add(j)),
                _mm512_maskz_loadu_ps(tail_mask, c_ptr.add(j)),
            );
            _mm512_mask_storeu_ps(c_ptr.add(j), tail_mask, acc);
        }
        i += 1;
    }
}

/// Per-lane-count AVX2 mask rows for `_mm256_maskload_ps` /
/// `_mm256_maskstore_ps`: row `l` activates the first `l` lanes.
static NARROW_TAIL_MASKS: [[i32; 8]; 9] = [
    [0, 0, 0, 0, 0, 0, 0, 0],
    [-1, 0, 0, 0, 0, 0, 0, 0],
    [-1, -1, 0, 0, 0, 0, 0, 0],
    [-1, -1, -1, 0, 0, 0, 0, 0],
    [-1, -1, -1, -1, 0, 0, 0, 0],
    [-1, -1, -1, -1, -1, 0, 0, 0],
    [-1, -1, -1, -1, -1, -1, 0, 0],
    [-1, -1, -1, -1, -1, -1, -1, 0],
    [-1, -1, -1, -1, -1, -1, -1, -1],
];

/// AVX2 half of the FlashSparse-style narrow-N microkernel: safe
/// wrapper around the `target_feature` inner function — the dispatch
/// layer only calls it after runtime feature detection.
pub fn axpy_panel_narrow_avx2(
    c_row: &mut [f32],
    vals: &[f32],
    cols: &[u32],
    slab: &[f32],
    w: usize,
) {
    // SAFETY: avx2+fma were verified by the dispatch layer; the slice
    // invariants the inner kernels rely on are asserted there.
    unsafe { axpy_panel_narrow_avx2_inner(c_row, vals, cols, slab, w) }
}

/// Register-resident C row: each ≤[`NARROW_BLOCK`]-column block of C is
/// held in up to 8 YMM accumulators across the row's **entire** nonzero
/// stream (one load and one store per block, versus one round trip per
/// nonzero in [`axpy_panel_avx2`]), and the sub-8 tail runs through
/// AVX2 masked load/store so short widths never waste lanes on a
/// scalar cleanup loop. Per element this fuses the exact stream-order
/// sequence of the portable half
/// ([`super::kernels_scalar::axpy_panel_narrow_portable`]), so the two
/// halves are bit-identical to each other.
///
/// # Safety
///
/// Requires avx2 and fma. Slice invariants (`c_row.len() == w`, every
/// `cols[i] as usize * w + w <= slab.len()`, `vals.len() ==
/// cols.len()`) are asserted on entry, so callers only owe the ISA
/// guarantee.
#[target_feature(enable = "avx2,fma")]
unsafe fn axpy_panel_narrow_avx2_inner(
    c_row: &mut [f32],
    vals: &[f32],
    cols: &[u32],
    slab: &[f32],
    w: usize,
) {
    assert_eq!(c_row.len(), w);
    assert_eq!(vals.len(), cols.len());
    let rows = slab.len() / w.max(1);
    assert!(cols.iter().all(|&c| (c as usize) < rows), "B row in slab");

    let mut start = 0;
    while start < w {
        let bw = (w - start).min(NARROW_BLOCK);
        let vecs = bw.div_ceil(8);
        let lanes = bw - 8 * (vecs - 1);
        // Monomorphize on the accumulator count so the block array
        // stays in registers instead of spilling behind a runtime
        // index.
        match vecs {
            1 => narrow_block_avx2::<1>(c_row, vals, cols, slab, w, start, lanes),
            2 => narrow_block_avx2::<2>(c_row, vals, cols, slab, w, start, lanes),
            3 => narrow_block_avx2::<3>(c_row, vals, cols, slab, w, start, lanes),
            4 => narrow_block_avx2::<4>(c_row, vals, cols, slab, w, start, lanes),
            5 => narrow_block_avx2::<5>(c_row, vals, cols, slab, w, start, lanes),
            6 => narrow_block_avx2::<6>(c_row, vals, cols, slab, w, start, lanes),
            7 => narrow_block_avx2::<7>(c_row, vals, cols, slab, w, start, lanes),
            8 => narrow_block_avx2::<8>(c_row, vals, cols, slab, w, start, lanes),
            _ => unreachable!("NARROW_BLOCK is 8 vectors wide"),
        }
        start += bw;
    }
}

/// One register-resident block: `V` YMM accumulators over columns
/// `start .. start + 8·(V−1) + lanes`; the last vector is always
/// masked (`lanes == 8` selects the all-set mask, which loads and
/// stores the full vector).
///
/// # Safety
///
/// Requires avx2+fma; the caller has asserted the slice invariants and
/// guarantees the block geometry (`start + 8·(V−1) + lanes <= w`,
/// `1 <= lanes <= 8`).
#[target_feature(enable = "avx2,fma")]
unsafe fn narrow_block_avx2<const V: usize>(
    c_row: &mut [f32],
    vals: &[f32],
    cols: &[u32],
    slab: &[f32],
    w: usize,
    start: usize,
    lanes: usize,
) {
    use std::arch::x86_64::*;
    let mask = _mm256_loadu_si256(NARROW_TAIL_MASKS[lanes].as_ptr() as *const __m256i);
    let c_ptr = c_row.as_mut_ptr().add(start);
    let slab_ptr = slab.as_ptr();
    let last = V - 1;

    let mut acc = [_mm256_setzero_ps(); V];
    for (t, a) in acc.iter_mut().enumerate().take(last) {
        *a = _mm256_loadu_ps(c_ptr.add(8 * t));
    }
    acc[last] = _mm256_maskload_ps(c_ptr.add(8 * last), mask);

    for (&v, &col) in vals.iter().zip(cols) {
        let b = slab_ptr.add(col as usize * w + start);
        let s = _mm256_set1_ps(v);
        for (t, a) in acc.iter_mut().enumerate().take(last) {
            *a = _mm256_fmadd_ps(s, _mm256_loadu_ps(b.add(8 * t)), *a);
        }
        acc[last] = _mm256_fmadd_ps(s, _mm256_maskload_ps(b.add(8 * last), mask), acc[last]);
    }

    for (t, a) in acc.iter().enumerate().take(last) {
        _mm256_storeu_ps(c_ptr.add(8 * t), *a);
    }
    _mm256_maskstore_ps(c_ptr.add(8 * last), mask, acc[last]);
}
