//! x86-64 microkernels of the dispatch registry: 8-lane AVX2+FMA and
//! 16-lane AVX-512F. Both keep the per-row `(window, slot)`
//! accumulation order of the scalar reference; only the rounding of
//! each step changes (fused multiply-adds — exact on integer-valued
//! data, ≤ 1 ulp per step otherwise).
#![cfg(target_arch = "x86_64")]

/// AVX2+FMA microkernel: safe wrapper around the `target_feature`
/// inner function — the dispatch layer only returns it after runtime
/// feature detection ([`super::dispatch::KernelKind::available`]).
pub fn axpy_panel_avx2(c_row: &mut [f32], vals: &[f32], cols: &[u32], slab: &[f32], w: usize) {
    // SAFETY: avx2+fma were verified by the dispatch layer; the slice
    // invariants the inner kernel relies on are asserted there.
    unsafe { axpy_panel_avx2_inner(c_row, vals, cols, slab, w) }
}

/// Eight lanes per vector, four nonzeros per pass, fused
/// multiply-adds.
///
/// # Safety
///
/// Requires avx2 and fma. Slice invariants (`c_row.len() == w`, every
/// `cols[i] as usize * w + w <= slab.len()`, `vals.len() ==
/// cols.len()`) are asserted on entry, so callers only owe the ISA
/// guarantee.
#[target_feature(enable = "avx2,fma")]
unsafe fn axpy_panel_avx2_inner(
    c_row: &mut [f32],
    vals: &[f32],
    cols: &[u32],
    slab: &[f32],
    w: usize,
) {
    use std::arch::x86_64::*;
    assert_eq!(c_row.len(), w);
    assert_eq!(vals.len(), cols.len());
    let rows = slab.len() / w.max(1);
    assert!(cols.iter().all(|&c| (c as usize) < rows), "B row in slab");

    let nnz = vals.len();
    let c_ptr = c_row.as_mut_ptr();
    let slab_ptr = slab.as_ptr();
    let mut i = 0;
    while i + 4 <= nnz {
        let b0 = slab_ptr.add(cols[i] as usize * w);
        let b1 = slab_ptr.add(cols[i + 1] as usize * w);
        let b2 = slab_ptr.add(cols[i + 2] as usize * w);
        let b3 = slab_ptr.add(cols[i + 3] as usize * w);
        let (v0, v1, v2, v3) = (vals[i], vals[i + 1], vals[i + 2], vals[i + 3]);
        let (s0, s1) = (_mm256_set1_ps(v0), _mm256_set1_ps(v1));
        let (s2, s3) = (_mm256_set1_ps(v2), _mm256_set1_ps(v3));
        let mut j = 0;
        while j + 8 <= w {
            let mut acc = _mm256_loadu_ps(c_ptr.add(j));
            acc = _mm256_fmadd_ps(s0, _mm256_loadu_ps(b0.add(j)), acc);
            acc = _mm256_fmadd_ps(s1, _mm256_loadu_ps(b1.add(j)), acc);
            acc = _mm256_fmadd_ps(s2, _mm256_loadu_ps(b2.add(j)), acc);
            acc = _mm256_fmadd_ps(s3, _mm256_loadu_ps(b3.add(j)), acc);
            _mm256_storeu_ps(c_ptr.add(j), acc);
            j += 8;
        }
        while j < w {
            let mut acc = *c_ptr.add(j);
            acc = v0.mul_add(*b0.add(j), acc);
            acc = v1.mul_add(*b1.add(j), acc);
            acc = v2.mul_add(*b2.add(j), acc);
            acc = v3.mul_add(*b3.add(j), acc);
            *c_ptr.add(j) = acc;
            j += 1;
        }
        i += 4;
    }
    while i < nnz {
        let bi = slab_ptr.add(cols[i] as usize * w);
        let v = vals[i];
        let s = _mm256_set1_ps(v);
        let mut j = 0;
        while j + 8 <= w {
            let acc = _mm256_fmadd_ps(s, _mm256_loadu_ps(bi.add(j)), _mm256_loadu_ps(c_ptr.add(j)));
            _mm256_storeu_ps(c_ptr.add(j), acc);
            j += 8;
        }
        while j < w {
            *c_ptr.add(j) = v.mul_add(*bi.add(j), *c_ptr.add(j));
            j += 1;
        }
        i += 1;
    }
}

/// AVX-512F microkernel: safe wrapper around the `target_feature`
/// inner function — dispatched only after runtime detection.
pub fn axpy_panel_avx512(c_row: &mut [f32], vals: &[f32], cols: &[u32], slab: &[f32], w: usize) {
    // SAFETY: avx512f was verified by the dispatch layer; the slice
    // invariants the inner kernel relies on are asserted there.
    unsafe { axpy_panel_avx512_inner(c_row, vals, cols, slab, w) }
}

/// Sixteen lanes per vector, four nonzeros per pass, fused
/// multiply-adds; the sub-16 tail falls through the masked AVX-512
/// load/store so no scalar cleanup loop is needed.
///
/// # Safety
///
/// Requires avx512f. Slice invariants (`c_row.len() == w`, every
/// `cols[i] as usize * w + w <= slab.len()`, `vals.len() ==
/// cols.len()`) are asserted on entry, so callers only owe the ISA
/// guarantee.
#[target_feature(enable = "avx512f")]
unsafe fn axpy_panel_avx512_inner(
    c_row: &mut [f32],
    vals: &[f32],
    cols: &[u32],
    slab: &[f32],
    w: usize,
) {
    use std::arch::x86_64::*;
    assert_eq!(c_row.len(), w);
    assert_eq!(vals.len(), cols.len());
    let rows = slab.len() / w.max(1);
    assert!(cols.iter().all(|&c| (c as usize) < rows), "B row in slab");

    let nnz = vals.len();
    let c_ptr = c_row.as_mut_ptr();
    let slab_ptr = slab.as_ptr();
    let full = w & !15;
    let tail_mask: __mmask16 = (1u16 << (w - full)).wrapping_sub(1);
    let mut i = 0;
    while i + 4 <= nnz {
        let b0 = slab_ptr.add(cols[i] as usize * w);
        let b1 = slab_ptr.add(cols[i + 1] as usize * w);
        let b2 = slab_ptr.add(cols[i + 2] as usize * w);
        let b3 = slab_ptr.add(cols[i + 3] as usize * w);
        let s0 = _mm512_set1_ps(vals[i]);
        let s1 = _mm512_set1_ps(vals[i + 1]);
        let s2 = _mm512_set1_ps(vals[i + 2]);
        let s3 = _mm512_set1_ps(vals[i + 3]);
        let mut j = 0;
        while j + 16 <= w {
            let mut acc = _mm512_loadu_ps(c_ptr.add(j));
            acc = _mm512_fmadd_ps(s0, _mm512_loadu_ps(b0.add(j)), acc);
            acc = _mm512_fmadd_ps(s1, _mm512_loadu_ps(b1.add(j)), acc);
            acc = _mm512_fmadd_ps(s2, _mm512_loadu_ps(b2.add(j)), acc);
            acc = _mm512_fmadd_ps(s3, _mm512_loadu_ps(b3.add(j)), acc);
            _mm512_storeu_ps(c_ptr.add(j), acc);
            j += 16;
        }
        if tail_mask != 0 {
            let mut acc = _mm512_maskz_loadu_ps(tail_mask, c_ptr.add(j));
            acc = _mm512_fmadd_ps(s0, _mm512_maskz_loadu_ps(tail_mask, b0.add(j)), acc);
            acc = _mm512_fmadd_ps(s1, _mm512_maskz_loadu_ps(tail_mask, b1.add(j)), acc);
            acc = _mm512_fmadd_ps(s2, _mm512_maskz_loadu_ps(tail_mask, b2.add(j)), acc);
            acc = _mm512_fmadd_ps(s3, _mm512_maskz_loadu_ps(tail_mask, b3.add(j)), acc);
            _mm512_mask_storeu_ps(c_ptr.add(j), tail_mask, acc);
        }
        i += 4;
    }
    while i < nnz {
        let bi = slab_ptr.add(cols[i] as usize * w);
        let s = _mm512_set1_ps(vals[i]);
        let mut j = 0;
        while j + 16 <= w {
            let acc = _mm512_fmadd_ps(s, _mm512_loadu_ps(bi.add(j)), _mm512_loadu_ps(c_ptr.add(j)));
            _mm512_storeu_ps(c_ptr.add(j), acc);
            j += 16;
        }
        if tail_mask != 0 {
            let acc = _mm512_fmadd_ps(
                s,
                _mm512_maskz_loadu_ps(tail_mask, bi.add(j)),
                _mm512_maskz_loadu_ps(tail_mask, c_ptr.add(j)),
            );
            _mm512_mask_storeu_ps(c_ptr.add(j), tail_mask, acc);
        }
        i += 1;
    }
}
