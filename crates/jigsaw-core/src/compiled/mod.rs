//! Compiled execution plans: the functional hot path of the Jigsaw
//! SpMM, restructured for the memory hierarchy.
//!
//! [`crate::execute_fast`] re-derives everything per call: it unpacks
//! SpTC metadata words, walks `block_col_idx`/`col_idx` through
//! [`crate::format_source_column`] per nonzero, and touches B in
//! whatever column order the reorder produced. All of that is a pure
//! function of the stationary [`JigsawFormat`] — so a
//! [`CompiledKernel`] resolves it **once**, ahead of time, into a flat
//! CSR-style nonzero stream per output row (`(value, source column)`
//! with metadata already applied). Execution is then:
//!
//! 1. **N-panel blocking** — B is converted F16→f32 once per
//!    cache-sized column panel into pooled scratch (the legacy path
//!    converted per call at best, per nonzero at worst),
//! 2. a **2-D `(row block × N panel)` rayon grid** — finer-grained
//!    than the strip-only parallelism of `execute_fast`, so one tall
//!    or dense strip no longer serializes the whole multiply,
//! 3. a **k-unrolled axpy microkernel**, resolved per execution by the
//!    [`dispatch`] layer: a registry of named variants (`scalar`,
//!    `avx2_fma`, `avx512f`, `neon`, `narrow_n`, `sorted_stream`) with
//!    runtime ISA detection, a typed [`dispatch::KernelPolicy`]
//!    (`Auto` | `Forced` | `Tuned`), the `JIGSAW_KERNEL` override
//!    layer, and per-variant poisoning for the resilience ladder.
//!    Every execution's axpy phase is timed and folded into the
//!    [`tune`] cost table, which `Tuned` selection reads back —
//!    measured feedback closing the select→execute→measure loop.
//!
//! The stream preserves `execute_fast`'s per-row accumulation order
//! and its zero/padding skip rules. The scalar microkernel applies
//! products with sequential f32 adds and is **bit-identical** to
//! `execute_fast` (which stays around as the differential-testing
//! oracle). The fused SIMD variants keep the stream order and differ
//! only by per-step rounding (exact on integer-valued data, ≤ 1 ulp
//! per step otherwise). The opt-in [`stream::SortedStream`] variant
//! additionally re-sorts each row's nonzeros by source column —
//! accumulation-order-changing, so it is excluded from the bit-exact
//! contract and gated behind [`ExecOptions`] (DESIGN.md §13).

pub mod dispatch;
mod kernels_aarch64;
mod kernels_scalar;
mod kernels_x86;
pub mod stream;
pub mod tune;

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use dlmc::Matrix;
use rayon::prelude::*;
use sptc::metadata::{unpack_row_metadata, ROWS};

use crate::config::MMA_TILE;
use crate::errors::{CompileError, ExecError};
use crate::fault::{self, points};
use crate::format::{format_source_column, JigsawFormat};
use crate::pool::{PoolBuf, WorkspacePool};

pub use dispatch::{ExecOptions, ExecOptionsBuilder, KernelKind, KernelPolicy, Selection};
pub use stream::SortedStream;
pub use tune::Workload;

/// Rows of C per task of the 2-D execution grid.
const ROW_BLOCK: usize = 128;

/// Target footprint of one converted B panel (`k × panel_width` f32):
/// sized to sit in the last-level cache while a row block streams
/// against it. Every extra panel re-walks the whole nonzero stream
/// once, so panels are cut as wide as the cache budget allows.
///
/// Public as the **single source of truth** for panel-major layout:
/// serve-side fused assembly ([`panelize_parts_into`]) and kernel-side
/// blocking both derive their cuts from this constant through
/// [`panel_width`], so the two can never drift apart.
pub const PANEL_TARGET_BYTES: usize = 2 << 20;

/// The ahead-of-time-resolved execution plan of one [`JigsawFormat`].
///
/// Build once per format with [`CompiledKernel::compile`] (cached by
/// [`crate::JigsawSpmm::compiled`], the serve registry, and
/// [`crate::Session`]); execute many times with
/// [`CompiledKernel::execute`] / [`CompiledKernel::execute_pooled`].
#[derive(Clone, Debug)]
pub struct CompiledKernel {
    /// Output rows (C height).
    pub m: usize,
    /// Reduction dimension (required B height).
    pub k: usize,
    /// CSR row offsets into `vals`/`cols` (`m + 1` entries).
    row_ptr: Vec<u32>,
    /// Nonzero values, decompressed to f32, in `execute_fast`'s
    /// per-row accumulation order.
    vals: Vec<f32>,
    /// Source column of each nonzero (the B row it multiplies).
    cols: Vec<u32>,
    /// Lazily built column-sorted copy of the stream, shared by every
    /// sorted execution of this kernel (built at most once).
    sorted: OnceLock<SortedStream>,
}

impl CompiledKernel {
    /// Resolves every `(strip, window, tile_row, row, slot)` of the
    /// format into the flat per-row nonzero stream.
    ///
    /// Infallible convenience over [`CompiledKernel::try_compile`] —
    /// panics on the (pathological) error cases. Resilient callers
    /// (the serve registry's degradation ladder) use the `try_`
    /// variants and fall back to [`crate::execute_fast`].
    pub fn compile(format: &JigsawFormat) -> CompiledKernel {
        Self::try_compile(format).expect("kernel compiles")
    }

    /// [`CompiledKernel::compile`] with an `exec.compile` span attached
    /// to `parent` (carrying row/nonzero counts and wall time).
    pub fn compile_traced(format: &JigsawFormat, parent: &jigsaw_obs::Span) -> CompiledKernel {
        Self::try_compile_traced(format, parent).expect("kernel compiles")
    }

    /// Fallible compilation: surfaces [`CompileError`] instead of
    /// panicking, including injected `exec.compile` faults.
    pub fn try_compile(format: &JigsawFormat) -> Result<CompiledKernel, CompileError> {
        Self::try_compile_traced(format, &jigsaw_obs::Span::disabled())
    }

    /// [`CompiledKernel::try_compile`] with an `exec.compile` span.
    pub fn try_compile_traced(
        format: &JigsawFormat,
        parent: &jigsaw_obs::Span,
    ) -> Result<CompiledKernel, CompileError> {
        fault::hit(points::COMPILE)?;
        let started = Instant::now();
        let span = parent.child("exec.compile");
        let mut row_ptr: Vec<u32> = Vec::with_capacity(format.m + 1);
        row_ptr.push(0);
        let mut vals: Vec<f32> = Vec::new();
        let mut cols: Vec<u32> = Vec::new();
        for (si, strip) in format.strips.iter().enumerate() {
            let tile_rows = strip.height / MMA_TILE;
            let pairs = strip.windows.div_ceil(2);
            for tr in 0..tile_rows {
                // Metadata words per k-step, decoded once per tile row.
                let words: Vec<[u32; ROWS]> = (0..pairs)
                    .map(|p| format.metadata_words(si, tr, p))
                    .collect();
                // `r` also picks the lane out of each pair's metadata
                // word array, so indexing (not iteration) is the shape.
                #[allow(clippy::needless_range_loop)]
                for r in 0..MMA_TILE {
                    for w in 0..strip.windows {
                        let idx = unpack_row_metadata(words[w / 2][r]);
                        let off = (w % 2) * 8;
                        for slot in 0..8 {
                            let v = format.value(si, w, tr, r, slot);
                            if v.is_zero() {
                                continue;
                            }
                            let pos = (slot / 2) * 4 + idx[off + slot] as usize;
                            let Some(col) = format_source_column(format, si, w, tr, pos) else {
                                continue;
                            };
                            vals.push(v.to_f32());
                            cols.push(col as u32);
                        }
                    }
                    if vals.len() >= u32::MAX as usize {
                        return Err(CompileError::StreamOverflow { nnz: vals.len() });
                    }
                    row_ptr.push(vals.len() as u32);
                }
            }
        }
        debug_assert_eq!(row_ptr.len(), format.m + 1, "strips cover every row");
        let kernel = CompiledKernel {
            m: format.m,
            k: format.k,
            row_ptr,
            vals,
            cols,
            sorted: OnceLock::new(),
        };
        let elapsed = started.elapsed().as_nanos() as u64;
        if jigsaw_obs::enabled() {
            let reg = jigsaw_obs::global();
            reg.counter("exec.compiles").inc();
            reg.counter("exec.compile_ns").add(elapsed);
        }
        if span.is_recording() {
            span.attr("rows", kernel.m);
            span.attr("nnz", kernel.nnz());
        }
        span.finish();
        Ok(kernel)
    }

    /// Nonzeros in the compiled stream.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Bytes held by the compiled stream (values + columns + offsets;
    /// doubled once the sorted copy has been materialized).
    pub fn stream_bytes(&self) -> usize {
        let base = self.vals.len() * 4 + self.cols.len() * 4 + self.row_ptr.len() * 4;
        match self.sorted.get() {
            Some(s) => base + s.vals.len() * 4 + s.cols.len() * 4,
            None => base,
        }
    }

    /// The compiled nonzero stream of output row `row`:
    /// `(value, source column)` pairs in accumulation order.
    pub fn row_stream(&self, row: usize) -> impl Iterator<Item = (f32, usize)> + '_ {
        let lo = self.row_ptr[row] as usize;
        let hi = self.row_ptr[row + 1] as usize;
        self.vals[lo..hi]
            .iter()
            .zip(&self.cols[lo..hi])
            .map(|(&v, &c)| (v, c as usize))
    }

    /// The column-sorted copy of the stream, built on first use.
    fn sorted_stream(&self) -> &SortedStream {
        self.sorted
            .get_or_init(|| stream::build_sorted(&self.row_ptr, &self.vals, &self.cols))
    }

    /// Computes `C = A × B`, allocating the output and scratch.
    pub fn execute(&self, b: &Matrix) -> Vec<f32> {
        self.execute_opts(b, &ExecOptions::default())
    }

    /// [`CompiledKernel::execute`] with explicit microkernel options.
    pub fn execute_opts(&self, b: &Matrix, opts: &ExecOptions) -> Vec<f32> {
        let mut c = vec![0.0f32; self.m * b.cols];
        let mut scratch = vec![0.0f32; self.k * b.cols];
        self.execute_into_opts(b, &mut c, &mut scratch, opts);
        c
    }

    /// Computes `C = A × B` with the output and conversion scratch
    /// drawn from `pool` — the zero-allocation steady-state path.
    pub fn execute_pooled<'p>(&self, b: &Matrix, pool: &'p WorkspacePool) -> PoolBuf<'p> {
        self.execute_pooled_opts(b, pool, &ExecOptions::default())
    }

    /// [`CompiledKernel::execute_pooled`] with explicit microkernel
    /// options (the serve registry's per-model selection path).
    pub fn execute_pooled_opts<'p>(
        &self,
        b: &Matrix,
        pool: &'p WorkspacePool,
        opts: &ExecOptions,
    ) -> PoolBuf<'p> {
        let mut c = pool.acquire(self.m * b.cols);
        let mut scratch = pool.acquire(self.k * b.cols);
        self.execute_into_opts(b, &mut c, &mut scratch, opts);
        c
    }

    /// The core with auto microkernel selection: panels B into
    /// `scratch` (f32, panel-major), then runs the 2-D `(row block ×
    /// panel)` grid writing `c` (row-major `m × n`, fully overwritten).
    pub fn execute_into(&self, b: &Matrix, c: &mut [f32], scratch: &mut [f32]) {
        self.execute_into_opts(b, c, scratch, &ExecOptions::default());
    }

    /// [`CompiledKernel::execute_into`] with the microkernel pinned to
    /// scalar: the degraded path of the resilience ladder, bit-identical
    /// to [`crate::execute_fast`] on every input (DESIGN.md §12).
    pub fn execute_into_scalar(&self, b: &Matrix, c: &mut [f32], scratch: &mut [f32]) {
        self.execute_into_opts(b, c, scratch, &ExecOptions::scalar());
    }

    /// Allocating convenience over
    /// [`CompiledKernel::execute_into_scalar`].
    pub fn execute_scalar(&self, b: &Matrix) -> Vec<f32> {
        self.execute_opts(b, &ExecOptions::scalar())
    }

    /// The tuning-relevant shape of executing this kernel at output
    /// width `n` — what [`dispatch::select_shaped`] buckets a
    /// [`KernelPolicy::Tuned`] selection by.
    pub fn workload(&self, n: usize) -> tune::Workload {
        tune::Workload::new(n, self.m, self.k, self.nnz())
    }

    /// The core: resolves `opts` through the [`dispatch`] registry
    /// shape-aware (tuned selection reads the cost table for this
    /// workload's bucket; forced selection falls back cleanly when the
    /// ISA is absent or poisoned), then panels B and runs the 2-D grid
    /// with the chosen axpy over the chosen stream order. The axpy
    /// phase is timed and folded back into the [`tune`] cost table —
    /// every execution refines future tuned selections.
    ///
    /// Infallible convenience over
    /// [`CompiledKernel::try_execute_into_opts`] — panics on the
    /// (caller-bug) shape mismatches that the fallible form surfaces
    /// as a typed [`ExecError`].
    pub fn execute_into_opts(
        &self,
        b: &Matrix,
        c: &mut [f32],
        scratch: &mut [f32],
        opts: &ExecOptions,
    ) {
        self.try_execute_into_opts(b, c, scratch, opts)
            .expect("execution buffer shapes are valid");
    }

    /// Fallible form of [`CompiledKernel::execute_into_opts`]: the
    /// buffer-shape preconditions (B height, C size, scratch capacity)
    /// come back as a typed [`ExecError`] instead of a panic, so
    /// resilient callers (the serve registry) degrade on a value.
    pub fn try_execute_into_opts(
        &self,
        b: &Matrix,
        c: &mut [f32],
        scratch: &mut [f32],
        opts: &ExecOptions,
    ) -> Result<(), ExecError> {
        if b.rows != self.k {
            return Err(ExecError::BRowsMismatch {
                expected_k: self.k,
                got: b.rows,
            });
        }
        let n = b.cols;
        if c.len() != self.m * n {
            return Err(ExecError::OutputSizeMismatch {
                expected: self.m * n,
                got: c.len(),
            });
        }
        if scratch.len() < self.k * n {
            return Err(ExecError::ScratchTooSmall {
                needed: self.k * n,
                got: scratch.len(),
            });
        }
        let workload = self.workload(n);
        let sel = dispatch::select_shaped(opts, Some(workload));
        if sel.kind != KernelKind::Scalar {
            // Only the full-speed paths carry the injection point: the
            // degraded scalar path must stay fault-free so the ladder
            // (SIMD → scalar → execute_fast) terminates.
            fault::trip(points::EXECUTE);
        }
        if n == 0 || self.m == 0 {
            return Ok(());
        }
        // Phase 1: convert B F16→f32 once per panel, panel-major.
        panelize_into(b, scratch)?;
        // Phase 2: the shared grid over the freshly panelized scratch.
        self.run_grid(&scratch[..self.k * n], n, c, sel, workload);
        Ok(())
    }

    /// Executes over a B that is **already** panel-major f32 — the
    /// fused batched-B entry point. Phase 1 is skipped entirely: the
    /// serve assembler ([`panelize_parts_into`]) wrote each request's
    /// F16 columns straight into `b`'s panel slabs, so the dense
    /// operand was touched exactly once, in the layout the grid
    /// consumes. Layout disagreements (a buffer cut for a different K,
    /// a wrong-sized C) are typed [`ExecError`]s, never panics. Like
    /// every `*_into` execute, the axpy grid **accumulates** into `c`
    /// — pass a zeroed buffer (the [`crate::WorkspacePool`] re-zeroes
    /// on acquire).
    ///
    /// The two-phase [`CompiledKernel::execute_into_opts`] stays as the
    /// differential oracle: for any `b` built by [`panelize_into`] from
    /// a `Matrix`, both paths run the identical grid over identical
    /// bits and agree bit-for-bit per variant.
    pub fn execute_prepaneled_into_opts(
        &self,
        b: &PanelizedB<'_>,
        c: &mut [f32],
        opts: &ExecOptions,
    ) -> Result<(), ExecError> {
        if b.k() != self.k {
            return Err(ExecError::PanelLayoutMismatch {
                expected_k: self.k,
                got_k: b.k(),
            });
        }
        let n = b.n();
        if c.len() != self.m * n {
            return Err(ExecError::OutputSizeMismatch {
                expected: self.m * n,
                got: c.len(),
            });
        }
        let workload = self.workload(n);
        let sel = dispatch::select_shaped(opts, Some(workload));
        if sel.kind != KernelKind::Scalar {
            fault::trip(points::EXECUTE);
        }
        if jigsaw_obs::enabled() {
            jigsaw_obs::global().counter("exec.prepaneled_runs").inc();
        }
        if n == 0 || self.m == 0 {
            return Ok(());
        }
        self.run_grid(b.data(), n, c, sel, workload);
        Ok(())
    }

    /// Phase 2, shared by the two-phase and prepaneled entry points:
    /// the 2-D `(row block × panel)` grid over a panel-major `k × n`
    /// f32 image of B, plus the axpy timing, tune-table feedback, and
    /// observability counters. `scratch` must hold at least `k * n`
    /// elements laid out by [`panelize_into`]'s contract.
    fn run_grid(
        &self,
        scratch: &[f32],
        n: usize,
        c: &mut [f32],
        sel: Selection,
        workload: tune::Workload,
    ) {
        // Accumulation-order-changing stream copy only when the opt-in
        // sorted variant was selected.
        let (vals, cols): (&[f32], &[u32]) = if sel.sorted {
            let s = self.sorted_stream();
            (&s.vals, &s.cols)
        } else {
            (&self.vals, &self.cols)
        };
        let panels = panel_cuts(self.k, n);

        // Tasks own disjoint `(row block, panel)` rectangles of C, so
        // the raw-pointer writes below never alias; panel-major task
        // order keeps concurrently running tasks on the same hot B
        // panel.
        let row_blocks = self.m.div_ceil(ROW_BLOCK);
        let tasks: Vec<(usize, usize)> = (0..panels.len())
            .flat_map(|pb| (0..row_blocks).map(move |rb| (pb, rb)))
            .collect();
        let axpy = sel.axpy;
        let c_ptr = SendPtr(c.as_mut_ptr());
        let c_ptr = &c_ptr;
        let axpy_started = Instant::now();
        tasks.into_par_iter().for_each(|(pb, rb)| {
            let (col0, w) = panels[pb];
            // Panel offsets are uniform (`pw` wide) except the last.
            let slab = &scratch[self.k * col0..self.k * col0 + self.k * w];
            let r0 = rb * ROW_BLOCK;
            let r1 = (r0 + ROW_BLOCK).min(self.m);
            for row in r0..r1 {
                let lo = self.row_ptr[row] as usize;
                let hi = self.row_ptr[row + 1] as usize;
                if lo == hi {
                    continue;
                }
                // SAFETY: tasks partition C into disjoint rectangles
                // (`rb` ranges over disjoint rows, `pb` over disjoint
                // column panels); this row segment belongs to exactly
                // one task.
                let c_row =
                    unsafe { std::slice::from_raw_parts_mut(c_ptr.0.add(row * n + col0), w) };
                axpy(c_row, &vals[lo..hi], &cols[lo..hi], slab, w);
            }
        });

        // Measured feedback: the axpy phase's wall time, normalized by
        // the work it did (`nnz × n`), refines this (shape, sparsity,
        // variant) cell of the cost table for future tuned selections.
        let axpy_ns = axpy_started.elapsed().as_nanos() as u64;
        tune::table().record(sel.kind, workload, (self.nnz() * n) as u64, axpy_ns);

        if jigsaw_obs::enabled() {
            let reg = jigsaw_obs::global();
            reg.counter("exec.compiled_runs").inc();
            reg.counter("exec.panels").add(panels.len() as u64);
            reg.counter("exec.axpy_ns").add(axpy_ns);
            reg.counter(match sel.kind {
                KernelKind::Scalar => "kernel.runs.scalar",
                KernelKind::Avx2Fma => "kernel.runs.avx2_fma",
                KernelKind::Avx512f => "kernel.runs.avx512f",
                KernelKind::Neon => "kernel.runs.neon",
                KernelKind::NarrowN => "kernel.runs.narrow_n",
                KernelKind::SortedStream => "kernel.runs.sorted_stream",
            })
            .inc();
        }
    }
}

/// Width of one B panel: aim for [`PANEL_TARGET_BYTES`] of converted
/// f32, clamped to a useful axpy width and the actual N.
///
/// Public as the single source of truth for panel-major layout —
/// serve-side fused assembly and kernel-side blocking both call this,
/// so a buffer assembled by [`panelize_parts_into`] always matches the
/// cuts [`CompiledKernel::execute_prepaneled_into_opts`] walks.
pub fn panel_width(k: usize, n: usize) -> usize {
    let ideal = PANEL_TARGET_BYTES / (4 * k.max(1));
    let pw = ideal.clamp(32, 512) & !15;
    pw.min(n).max(1)
}

/// The panel cut list for a `k × n` B: `(first column, width)` pairs
/// derived from [`panel_width`], in ascending column order. Panel
/// `(col0, w)`'s slab occupies `scratch[k*col0 .. k*(col0 + w)]`,
/// row-major within the slab (row `r` of the panel at
/// `slab[r*w .. (r+1)*w]`).
pub fn panel_cuts(k: usize, n: usize) -> Vec<(usize, usize)> {
    let pw = panel_width(k, n);
    (0..n)
        .step_by(pw)
        .map(|col0| (col0, pw.min(n - col0)))
        .collect()
}

/// A `k × n` B operand already converted to f32 in the panel-major
/// layout the execution grid consumes — the typed handle the fused
/// serve path hands to
/// [`CompiledKernel::execute_prepaneled_into_opts`]. Construction
/// validates capacity with a typed [`ExecError`]; the panel cuts are
/// always re-derived from the shared [`panel_width`] source of truth,
/// so an assembled buffer can never drift from kernel-side blocking.
#[derive(Clone, Copy, Debug)]
pub struct PanelizedB<'a> {
    k: usize,
    n: usize,
    data: &'a [f32],
}

impl<'a> PanelizedB<'a> {
    /// Wraps a panel-major `k × n` f32 image (as laid out by
    /// [`panelize_into`] / [`panelize_parts_into`]). Returns
    /// [`ExecError::ScratchTooSmall`] when `data` cannot hold `k * n`
    /// elements; extra trailing capacity (a pooled buffer rounded up)
    /// is fine and ignored.
    pub fn new(k: usize, n: usize, data: &'a [f32]) -> Result<PanelizedB<'a>, ExecError> {
        if data.len() < k * n {
            return Err(ExecError::ScratchTooSmall {
                needed: k * n,
                got: data.len(),
            });
        }
        Ok(PanelizedB { k, n, data })
    }

    /// The reduction dimension the panels were cut for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total columns across all panels.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The panel-major backing storage (exactly `k * n` elements).
    pub fn data(&self) -> &'a [f32] {
        &self.data[..self.k * self.n]
    }

    /// This buffer's panel cuts (`(first column, width)` pairs).
    pub fn panels(&self) -> Vec<(usize, usize)> {
        panel_cuts(self.k, self.n)
    }
}

/// Converts one F16 `Matrix` into the panel-major f32 layout — phase 1
/// of the two-phase execute path, exported so tests and benches can
/// produce the exact image [`CompiledKernel::execute_prepaneled_into_opts`]
/// consumes (and diff it against [`panelize_parts_into`]'s fused
/// assembly). Returns [`ExecError::ScratchTooSmall`] when `scratch`
/// cannot hold `b.rows * b.cols` f32.
pub fn panelize_into(b: &Matrix, scratch: &mut [f32]) -> Result<(), ExecError> {
    let (k, n) = (b.rows, b.cols);
    if scratch.len() < k * n {
        return Err(ExecError::ScratchTooSmall {
            needed: k * n,
            got: scratch.len(),
        });
    }
    if k == 0 || n == 0 {
        return Ok(());
    }
    let panels = panel_cuts(k, n);
    let mut slabs: Vec<&mut [f32]> = Vec::with_capacity(panels.len());
    let mut rest = &mut scratch[..k * n];
    for &(_, w) in &panels {
        let (head, tail) = rest.split_at_mut(k * w);
        slabs.push(head);
        rest = tail;
    }
    slabs
        .into_par_iter()
        .zip(panels.par_iter())
        .for_each(|(slab, &(col0, w))| {
            for (r, out_row) in slab.chunks_mut(w).enumerate() {
                let b_row = &b.row(r)[col0..col0 + w];
                for (o, &v) in out_row.iter_mut().zip(b_row) {
                    *o = v.to_f32();
                }
            }
        });
    Ok(())
}

/// Fused batched-B assembly: converts several same-height F16 parts
/// (a micro-batch's B operands, concatenated along N) **directly**
/// into the panel-major f32 layout, skipping the intermediate
/// concatenated `Matrix` entirely — the dense operand is touched once,
/// in the layout the grid consumes. Bit-exact with
/// `concat_columns(parts)` followed by [`panelize_into`]: both write
/// the same `F16::to_f32` conversion of the same element to the same
/// slot.
///
/// Parallelism: rayon over `panel × part` intersection rectangles.
/// Each task owns the columns of one part that fall inside one panel,
/// across all `k` rows — panels partition the global column space and
/// parts partition it too, so the rectangles are pairwise disjoint and
/// the raw-pointer writes never alias (the same argument as the
/// execute grid's `(row block × panel)` rectangles of C).
///
/// Typed edges: parts of disagreeing heights are
/// [`ExecError::BRowsMismatch`] (index-free — the serve assembler
/// re-validates with its richer `BatchError` first), an undersized
/// scratch is [`ExecError::ScratchTooSmall`]. Zero-width parts are
/// skipped (they contribute no columns). Returns `(k, total_n)`.
pub fn panelize_parts_into(
    parts: &[&Matrix],
    scratch: &mut [f32],
) -> Result<(usize, usize), ExecError> {
    let Some(first) = parts.first() else {
        return Ok((0, 0));
    };
    let k = first.rows;
    for p in parts {
        if p.rows != k {
            return Err(ExecError::BRowsMismatch {
                expected_k: k,
                got: p.rows,
            });
        }
    }
    let total: usize = parts.iter().map(|p| p.cols).sum();
    if scratch.len() < k * total {
        return Err(ExecError::ScratchTooSmall {
            needed: k * total,
            got: scratch.len(),
        });
    }
    if k == 0 || total == 0 {
        return Ok((k, total));
    }
    // Global first-column offset of each part.
    let offsets: Vec<usize> = parts
        .iter()
        .scan(0usize, |off, p| {
            let this = *off;
            *off += p.cols;
            Some(this)
        })
        .collect();
    let panels = panel_cuts(k, total);
    // One task per non-empty panel × part intersection rectangle,
    // panel-major so concurrent tasks share a hot destination slab.
    let mut tasks: Vec<(usize, usize)> = Vec::new();
    for (pi, &(col0, w)) in panels.iter().enumerate() {
        for (qi, p) in parts.iter().enumerate() {
            if offsets[qi] < col0 + w && offsets[qi] + p.cols > col0 {
                tasks.push((pi, qi));
            }
        }
    }
    let base = SendPtr(scratch.as_mut_ptr());
    let base = &base;
    tasks.into_par_iter().for_each(|(pi, qi)| {
        let (col0, w) = panels[pi];
        let part = parts[qi];
        let poff = offsets[qi];
        // This rectangle's global column range.
        let lo = col0.max(poff);
        let hi = (col0 + w).min(poff + part.cols);
        for r in 0..k {
            let src = &part.row(r)[lo - poff..hi - poff];
            // SAFETY: rectangles are pairwise disjoint — panels
            // partition [0, total) and parts partition [0, total), so
            // (panel, part, row) addresses a unique slab range; the
            // capacity check above bounds every write inside
            // scratch[..k*total].
            let dst = unsafe {
                std::slice::from_raw_parts_mut(
                    base.0.add(k * col0 + r * w + (lo - col0)),
                    src.len(),
                )
            };
            for (o, &v) in dst.iter_mut().zip(src) {
                *o = v.to_f32();
            }
        }
    });
    Ok((k, total))
}

/// Shared raw base pointer for the disjoint-rectangle writes of the
/// 2-D grid (see the SAFETY note at the use site).
struct SendPtr(*mut f32);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// Compiles (or returns the cached) kernel behind an `Arc`, for
/// callers that share one compiled plan across threads.
pub fn compile_shared(format: &JigsawFormat) -> Arc<CompiledKernel> {
    Arc::new(CompiledKernel::compile(format))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::JigsawConfig;
    use crate::exec::execute_fast;
    use crate::reorder::ReorderPlan;
    use dlmc::{dense_rhs, ValueDist, VectorSparseSpec};

    fn setup(
        rows: usize,
        cols: usize,
        sparsity: f64,
        v: usize,
        bt: usize,
        interleaved: bool,
        seed: u64,
    ) -> (Matrix, JigsawFormat) {
        let a = VectorSparseSpec {
            rows,
            cols,
            sparsity,
            v,
            dist: ValueDist::SmallInt,
            seed,
        }
        .generate();
        let plan = ReorderPlan::build(&a, &JigsawConfig::v4(bt));
        let format = JigsawFormat::build(&a, &plan, interleaved);
        (a, format)
    }

    #[test]
    fn compiled_matches_fast_and_reference_exactly_on_integers() {
        for (bt, v, s) in [(16, 2, 0.8), (32, 4, 0.9), (64, 8, 0.95)] {
            for interleaved in [false, true] {
                let (a, f) = setup(64, 96, s, v, bt, interleaved, 5);
                let b = dense_rhs(96, 24, ValueDist::SmallInt, 6);
                let kernel = CompiledKernel::compile(&f);
                let got = kernel.execute(&b);
                assert_eq!(
                    got,
                    execute_fast(&f, &b),
                    "vs fast bt={bt} il={interleaved}"
                );
                assert_eq!(
                    got,
                    a.matmul_reference(&b),
                    "vs ref bt={bt} il={interleaved}"
                );
            }
        }
    }

    #[test]
    fn scalar_kernel_is_bit_identical_to_fast_even_on_floats() {
        let a = VectorSparseSpec {
            rows: 128,
            cols: 128,
            sparsity: 0.85,
            v: 4,
            dist: ValueDist::Uniform,
            seed: 17,
        }
        .generate();
        let b = dense_rhs(128, 40, ValueDist::Uniform, 18);
        let plan = ReorderPlan::build(&a, &JigsawConfig::v4(32));
        let f = JigsawFormat::build(&a, &plan, true);
        let kernel = CompiledKernel::compile(&f);
        let oracle = execute_fast(&f, &b);

        // Scalar microkernel: same per-row accumulation order and
        // sequential f32 adds — equality holds bit-for-bit, not
        // within a tolerance.
        assert_eq!(kernel.execute_scalar(&b), oracle);

        // Dispatched path (fused SIMD where available): fusion
        // perturbs each step by at most its own rounding, so the
        // result stays within a tight relative band of the oracle.
        for (got, want) in kernel.execute(&b).iter().zip(&oracle) {
            let tol = 1e-4 * want.abs().max(1.0);
            assert!((got - want).abs() <= tol, "{got} vs {want}");
        }
    }

    #[test]
    fn every_available_variant_computes_the_product() {
        let (a, f) = setup(64, 96, 0.9, 4, 32, true, 5);
        let b = dense_rhs(96, 24, ValueDist::SmallInt, 6);
        let kernel = CompiledKernel::compile(&f);
        let expect = a.matmul_reference(&b);
        for kind in dispatch::available_kernels() {
            let got = kernel.execute_opts(&b, &ExecOptions::from(KernelPolicy::Forced(kind)));
            // Integer-valued data: fusion and reordering are both
            // exact, so every variant agrees bit-for-bit.
            assert_eq!(got, expect, "variant {}", kind.name());
        }
    }

    #[test]
    fn tuned_execution_is_correct_and_feeds_the_cost_table() {
        let (a, f) = setup(64, 96, 0.9, 4, 32, true, 5);
        let b = dense_rhs(96, 24, ValueDist::SmallInt, 6);
        let kernel = CompiledKernel::compile(&f);
        let wl = kernel.workload(b.cols);
        // Pre-seed this bucket (at a cost no real measurement can
        // undercut) so tuned selection resolves deterministically to
        // narrow_n and ensure_seeded never runs a live calibration
        // inside the test process.
        tune::table().seed_cell(KernelKind::NarrowN, wl, 1e-9);
        let got = kernel.execute_opts(&b, &ExecOptions::tuned());
        assert_eq!(
            got,
            a.matmul_reference(&b),
            "tuned pick computes the product"
        );
        // The execution's measured axpy phase refined the cell it ran.
        assert!(tune::table().cost(KernelKind::NarrowN, wl).is_some());
    }

    #[test]
    fn sorted_stream_orders_columns_and_stays_within_tolerance() {
        let a = VectorSparseSpec {
            rows: 64,
            cols: 128,
            sparsity: 0.85,
            v: 4,
            dist: ValueDist::Uniform,
            seed: 29,
        }
        .generate();
        let b = dense_rhs(128, 24, ValueDist::Uniform, 30);
        let plan = ReorderPlan::build(&a, &JigsawConfig::v4(32));
        let f = JigsawFormat::build(&a, &plan, true);
        let kernel = CompiledKernel::compile(&f);
        let oracle = kernel.execute_scalar(&b);
        let sorted = kernel.execute_opts(
            &b,
            &ExecOptions::from(KernelPolicy::Forced(KernelKind::SortedStream)),
        );
        let err = crate::exec::max_relative_error(&sorted, &oracle);
        assert!(err < 1e-4, "sorted stream within tolerance, err {err}");
        // The sorted copy is column-monotone within every row.
        let s = kernel.sorted_stream();
        for row in 0..kernel.m {
            let lo = kernel.row_ptr[row] as usize;
            let hi = kernel.row_ptr[row + 1] as usize;
            assert!(
                s.cols[lo..hi].windows(2).all(|w| w[0] <= w[1]),
                "row {row} sorted"
            );
        }
        // Built once, reported in the stream footprint.
        assert!(kernel.stream_bytes() > kernel.nnz() * 8);
    }

    #[test]
    fn odd_n_and_narrow_panels() {
        let (a, f) = setup(32, 64, 0.9, 2, 16, true, 3);
        for n in [1usize, 13, 33] {
            let b = dense_rhs(64, n, ValueDist::SmallInt, 9);
            let kernel = CompiledKernel::compile(&f);
            for kind in dispatch::available_kernels() {
                assert_eq!(
                    kernel.execute_opts(&b, &ExecOptions::from(KernelPolicy::Forced(kind))),
                    a.matmul_reference(&b),
                    "n={n} variant={}",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn dense_fallback_strips_compile_correctly() {
        // Reorder "fails" on dense input (K grows); the compiled
        // stream must still cover every nonzero.
        let a = Matrix::from_f32(
            32,
            32,
            &(0..1024)
                .map(|i| ((i % 7) as f32) - 3.0)
                .collect::<Vec<_>>(),
        );
        let plan = ReorderPlan::build(&a, &JigsawConfig::v4(16));
        let f = JigsawFormat::build(&a, &plan, true);
        let kernel = CompiledKernel::compile(&f);
        let b = dense_rhs(32, 8, ValueDist::SmallInt, 7);
        assert_eq!(kernel.execute(&b), a.matmul_reference(&b));
        assert_eq!(kernel.nnz(), a.nnz());
    }

    #[test]
    fn empty_strips_produce_empty_streams() {
        let a = Matrix::zeros(64, 64);
        let plan = ReorderPlan::build(&a, &JigsawConfig::v4(32));
        let f = JigsawFormat::build(&a, &plan, true);
        let kernel = CompiledKernel::compile(&f);
        assert_eq!(kernel.nnz(), 0);
        let b = dense_rhs(64, 8, ValueDist::SmallInt, 1);
        assert_eq!(kernel.execute(&b), vec![0.0; 64 * 8]);
    }

    #[test]
    fn pooled_execution_reuses_buffers() {
        let (a, f) = setup(64, 96, 0.9, 4, 32, true, 11);
        let b = dense_rhs(96, 16, ValueDist::SmallInt, 12);
        let kernel = CompiledKernel::compile(&f);
        let pool = WorkspacePool::new();
        let first = kernel.execute_pooled(&b, &pool).into_vec();
        assert_eq!(first, a.matmul_reference(&b));
        let before = pool.stats();
        assert_eq!(before.hits, 0, "cold pool: both buffers were misses");
        // `into_vec` kept C, so one buffer (scratch) returned; the
        // second run reuses it and re-misses only once.
        let second = kernel.execute_pooled(&b, &pool);
        assert_eq!(&*second, first.as_slice());
        drop(second);
        let warm = pool.stats();
        assert!(warm.hits >= 1, "scratch buffer was reused: {warm:?}");
        // Fully warm: every subsequent run is allocation-free.
        for _ in 0..3 {
            drop(kernel.execute_pooled(&b, &pool));
        }
        let steady = pool.stats();
        assert_eq!(steady.misses, warm.misses, "steady state acquires only hit");
    }

    #[test]
    fn row_streams_match_format_walk() {
        let (_, f) = setup(48, 80, 0.85, 2, 16, false, 21);
        let kernel = CompiledKernel::compile(&f);
        // Spot-check: every stream column is a real source column and
        // values are the decompressed nonzeros.
        let mut total = 0;
        for row in 0..kernel.m {
            for (v, col) in kernel.row_stream(row) {
                assert!(col < kernel.k);
                assert!(v != 0.0);
                total += 1;
            }
        }
        assert_eq!(total, kernel.nnz());
    }

    #[test]
    fn panel_width_is_sane() {
        assert_eq!(panel_width(4096, 256), 128);
        assert_eq!(panel_width(64, 256), 256);
        assert_eq!(panel_width(4096, 8), 8);
        assert!(panel_width(1, 1) >= 1);
    }
}
