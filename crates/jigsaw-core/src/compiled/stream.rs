//! The opt-in column-sorted nonzero stream: each row's `(value,
//! source column)` pairs re-sorted by ascending source column, so the
//! axpy touches a DRAM-resident B panel strictly front-to-back instead
//! of in the reorder's `(window, slot)` order.
//!
//! Sorting **changes the accumulation order**, so this variant is
//! excluded from the bit-exact contract (ULP-bounded against the
//! scalar oracle only) and is gated behind
//! [`ExecOptions::sorted_stream`](super::ExecOptions) or an explicit
//! force — auto selection never picks it (DESIGN.md §13).

/// The per-row column-sorted copy of a compiled kernel's nonzero
/// stream. Shares the kernel's `row_ptr`; only `vals`/`cols` are
/// permuted, row-locally, by ascending source column.
#[derive(Clone, Debug)]
pub struct SortedStream {
    /// Nonzero values in per-row ascending-column order.
    pub(crate) vals: Vec<f32>,
    /// Source columns, ascending within each row.
    pub(crate) cols: Vec<u32>,
}

/// Builds the sorted copy from a compiled stream (stable sort, so
/// duplicate source columns — impossible today, but harmless — keep
/// their original relative order).
pub(crate) fn build_sorted(row_ptr: &[u32], vals: &[f32], cols: &[u32]) -> SortedStream {
    let mut s_vals = vals.to_vec();
    let mut s_cols = cols.to_vec();
    let mut perm: Vec<u32> = Vec::new();
    for win in row_ptr.windows(2) {
        let (lo, hi) = (win[0] as usize, win[1] as usize);
        perm.clear();
        perm.extend(lo as u32..hi as u32);
        perm.sort_by_key(|&i| cols[i as usize]);
        for (out, &src) in (lo..hi).zip(&perm) {
            s_vals[out] = vals[src as usize];
            s_cols[out] = cols[src as usize];
        }
    }
    if jigsaw_obs::enabled() {
        jigsaw_obs::global().counter("kernel.sorted_builds").inc();
    }
    SortedStream {
        vals: s_vals,
        cols: s_cols,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_each_row_independently_and_preserves_pairs() {
        let row_ptr = [0u32, 3, 3, 6];
        let vals = [1.0f32, 2.0, 3.0, 6.0, 5.0, 4.0];
        let cols = [9u32, 4, 7, 2, 1, 0];
        let s = build_sorted(&row_ptr, &vals, &cols);
        assert_eq!(s.cols, vec![4, 7, 9, 0, 1, 2]);
        assert_eq!(s.vals, vec![2.0, 3.0, 1.0, 4.0, 5.0, 6.0]);
        // Pairs travel together: multiset of (val, col) is unchanged.
        let mut orig: Vec<(u32, u32)> = vals
            .iter()
            .zip(&cols)
            .map(|(v, &c)| (v.to_bits(), c))
            .collect();
        let mut got: Vec<(u32, u32)> = s
            .vals
            .iter()
            .zip(&s.cols)
            .map(|(v, &c)| (v.to_bits(), c))
            .collect();
        orig.sort_unstable();
        got.sort_unstable();
        assert_eq!(orig, got);
    }

    #[test]
    fn empty_rows_are_untouched() {
        let s = build_sorted(&[0, 0, 0], &[], &[]);
        assert!(s.vals.is_empty());
        assert!(s.cols.is_empty());
    }
}
