//! Measured-feedback kernel autotuning: the cost table behind
//! [`KernelPolicy::Tuned`](super::dispatch::KernelPolicy).
//!
//! The static ISA ladder picks the *widest* kernel, but the fastest
//! kernel is shape-dependent: `BENCH_exec.json` shows the ranking flip
//! between N=64 and N=256, and the narrow-N regime (N < 64) has its own
//! winner entirely ([`KernelKind::NarrowN`]). This module closes the
//! measure→select loop:
//!
//! * executions are bucketed by **output width** (log2-ish N buckets)
//!   and **density** (`nnz / (m·k)`, coarse sparsity buckets) — one
//!   [`Workload`] per execution,
//! * each `(n bucket, sparsity bucket, variant)` **cell** holds an EWMA
//!   of measured nanoseconds per work unit (`nnz × n`), seeded by a
//!   one-shot deterministic [`CostTable::calibrate`] pass over the
//!   variants' raw axpy kernels and refined online from every
//!   execution's measured axpy-phase span,
//! * [`CostTable::best`] ranks the cells of a workload's bucket and
//!   returns the cheapest **available, un-poisoned** variant — a
//!   poisoned winner falls back to the next-cheapest cell
//!   (`tune.poisoned_fallbacks`), so the degrade ladder's guarantees
//!   survive tuning unchanged,
//! * the table serializes **bit-exactly** ([`CostTable::to_bytes`] /
//!   [`CostTable::load_bytes`], f64 bits preserved) so the serve
//!   registry can persist it next to its model artifacts and a warm
//!   restart skips recalibration.
//!
//! Everything funnels through the process-global [`table`], mirroring
//! the dispatch registry's process-wide poison flags: a kernel that is
//! fast in one model is fast in every model of the same bucket.
//! Observability rides the `tune.*` counters (cell hits/misses,
//! refinements, stale evictions, poisoned fallbacks, calibrations,
//! table loads) — always-on cheap atomics, snapshotted into every
//! bench export.

use std::collections::HashMap;
use std::io;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use jigsaw_obs::Counter;

use super::dispatch::{is_poisoned, KernelKind};

/// Serialized-table magic + version ("JGTN" v1).
const TABLE_MAGIC: [u8; 8] = *b"JGTN\x01\x00\x00\x00";

/// EWMA smoothing factor: one fresh observation moves a cell a quarter
/// of the way to the new measurement.
const EWMA_ALPHA: f64 = 0.25;

/// A cell untouched for this many record ticks is stale: evicted
/// lazily (every [`EVICT_EVERY`] records) so a workload mix that moved
/// on does not pin dead measurements forever.
const STALE_AFTER_TICKS: u64 = 1 << 20;

/// How often the lazy stale sweep runs, in record ticks.
const EVICT_EVERY: u64 = 4096;

/// Variants eligible for tuned selection, in tie-break order. The
/// accumulation-order-changing [`KernelKind::SortedStream`] is
/// deliberately absent: tuning never widens the numeric contract —
/// every tuned pick keeps the oracle's per-element accumulation order.
pub const TUNED_CANDIDATES: [KernelKind; 5] = [
    KernelKind::Avx512f,
    KernelKind::Avx2Fma,
    KernelKind::Neon,
    KernelKind::NarrowN,
    KernelKind::Scalar,
];

/// One execution's tuning-relevant shape: output width and the
/// stationary matrix's density. Built by
/// [`CompiledKernel::workload`](super::CompiledKernel::workload).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Workload {
    /// Output columns (B width).
    pub n: usize,
    /// Nonzero density of the compiled stream: `nnz / (m·k)`.
    pub density: f64,
}

impl Workload {
    /// The workload of an `m × k` stream with `nnz` nonzeros at output
    /// width `n`.
    pub fn new(n: usize, m: usize, k: usize, nnz: usize) -> Workload {
        let cells = (m * k).max(1) as f64;
        Workload {
            n,
            density: nnz as f64 / cells,
        }
    }

    /// The cost-table bucket this workload lands in.
    pub fn bucket(&self) -> (u8, u8) {
        (n_bucket(self.n), s_bucket(self.density))
    }
}

/// Output-width bucket: log2-ish, finest where the kernel ranking
/// actually flips (the narrow-N regime).
pub fn n_bucket(n: usize) -> u8 {
    match n {
        0..=16 => 0,
        17..=32 => 1,
        33..=64 => 2,
        65..=128 => 3,
        129..=256 => 4,
        _ => 5,
    }
}

/// Density bucket over `nnz / (m·k)` — coarse, because per-nonzero
/// cost varies slowly with density compared to how it varies with N.
pub fn s_bucket(density: f64) -> u8 {
    if density >= 0.30 {
        0
    } else if density >= 0.15 {
        1
    } else if density >= 0.07 {
        2
    } else if density >= 0.02 {
        3
    } else {
        4
    }
}

/// A cost-table key: one (shape bucket, sparsity bucket, variant).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct CellKey {
    nb: u8,
    sb: u8,
    kind: KernelKind,
}

/// One measured cell: EWMA nanoseconds per work unit (`nnz × n`).
#[derive(Clone, Copy, Debug)]
struct Cell {
    ewma_ns_per_unit: f64,
    samples: u64,
    last_tick: u64,
}

#[derive(Default)]
struct Inner {
    cells: HashMap<CellKey, Cell>,
    tick: u64,
    seeded: bool,
}

/// The `tune.*` counter handles, fetched once from the global obs
/// registry so per-execution bumps are a single atomic RMW (the
/// registry's in-place reset keeps them valid).
struct TuneCounters {
    cell_hits: Counter,
    cell_misses: Counter,
    refinements: Counter,
    stale_evictions: Counter,
    poisoned_fallbacks: Counter,
    calibrations: Counter,
    calibration_skips: Counter,
    table_loads: Counter,
}

impl TuneCounters {
    fn new() -> TuneCounters {
        let reg = jigsaw_obs::global();
        TuneCounters {
            cell_hits: reg.counter("tune.cell_hits"),
            cell_misses: reg.counter("tune.cell_misses"),
            refinements: reg.counter("tune.refinements"),
            stale_evictions: reg.counter("tune.stale_evictions"),
            poisoned_fallbacks: reg.counter("tune.poisoned_fallbacks"),
            calibrations: reg.counter("tune.calibrations"),
            calibration_skips: reg.counter("tune.calibration_skips"),
            table_loads: reg.counter("tune.table_loads"),
        }
    }
}

/// The measured-feedback cost table (see the module docs). All methods
/// take `&self`; the table is shared process-wide via [`table`].
pub struct CostTable {
    inner: Mutex<Inner>,
    counters: TuneCounters,
}

impl Default for CostTable {
    fn default() -> Self {
        CostTable::new()
    }
}

impl CostTable {
    /// An empty, unseeded table.
    pub fn new() -> CostTable {
        CostTable {
            inner: Mutex::new(Inner::default()),
            counters: TuneCounters::new(),
        }
    }

    /// Folds one measured execution into its cell's EWMA
    /// (`tune.refinements`). `work` is the execution's `nnz × n`;
    /// zero-work or zero-time measurements are ignored.
    pub fn record(&self, kind: KernelKind, wl: Workload, work: u64, elapsed_ns: u64) {
        if work == 0 || elapsed_ns == 0 {
            return;
        }
        let ns_per_unit = elapsed_ns as f64 / work as f64;
        let (nb, sb) = wl.bucket();
        let key = CellKey { nb, sb, kind };
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        let cell = inner.cells.entry(key).or_insert(Cell {
            ewma_ns_per_unit: ns_per_unit,
            samples: 0,
            last_tick: tick,
        });
        if cell.samples > 0 {
            cell.ewma_ns_per_unit += EWMA_ALPHA * (ns_per_unit - cell.ewma_ns_per_unit);
        }
        cell.samples += 1;
        cell.last_tick = tick;
        self.counters.refinements.inc();
        if tick.is_multiple_of(EVICT_EVERY) {
            self.evict_stale_locked(&mut inner, STALE_AFTER_TICKS);
        }
    }

    /// The cheapest measured, available, un-poisoned variant for the
    /// workload's bucket — or `None` when the bucket has no measured
    /// cells at all (`tune.cell_misses`), which sends selection to the
    /// static auto ladder. A poisoned raw winner is skipped for the
    /// next-cheapest survivor and counted on `tune.poisoned_fallbacks`;
    /// the degrade ladder itself is untouched.
    pub fn best(&self, wl: Workload) -> Option<KernelKind> {
        let (nb, sb) = wl.bucket();
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut ranked: Vec<(f64, KernelKind)> = TUNED_CANDIDATES
            .into_iter()
            .filter(|k| k.available())
            .filter_map(|kind| {
                let cell = inner.cells.get(&CellKey { nb, sb, kind })?;
                (cell.samples > 0).then_some((cell.ewma_ns_per_unit, kind))
            })
            .collect();
        drop(inner);
        ranked.sort_by(|a, b| a.0.total_cmp(&b.0));
        let Some(&(_, raw_winner)) = ranked.first() else {
            self.counters.cell_misses.inc();
            return None;
        };
        if is_poisoned(raw_winner) {
            self.counters.poisoned_fallbacks.inc();
        }
        let pick = ranked
            .iter()
            .map(|&(_, kind)| kind)
            .find(|&kind| !is_poisoned(kind))?;
        self.counters.cell_hits.inc();
        Some(pick)
    }

    /// The cell's current EWMA cost (ns per work unit), for tests and
    /// reports.
    pub fn cost(&self, kind: KernelKind, wl: Workload) -> Option<f64> {
        let (nb, sb) = wl.bucket();
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner
            .cells
            .get(&CellKey { nb, sb, kind })
            .map(|c| c.ewma_ns_per_unit)
    }

    /// Measured cells currently in the table.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .cells
            .len()
    }

    /// True when the table holds no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once the table has been calibrated or loaded from a
    /// persisted artifact — the signal that lets a warm restart skip
    /// recalibration.
    pub fn is_seeded(&self) -> bool {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).seeded
    }

    /// Drops every cell and clears the seeded flag (tests and operator
    /// resets).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.cells.clear();
        inner.tick = 0;
        inner.seeded = false;
    }

    /// Evicts cells not refreshed within `max_age` ticks, returning
    /// how many went (`tune.stale_evictions`).
    pub fn evict_stale(&self, max_age: u64) -> usize {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        self.evict_stale_locked(&mut inner, max_age)
    }

    fn evict_stale_locked(&self, inner: &mut Inner, max_age: u64) -> usize {
        let tick = inner.tick;
        let before = inner.cells.len();
        inner
            .cells
            .retain(|_, cell| tick.saturating_sub(cell.last_tick) <= max_age);
        let evicted = before - inner.cells.len();
        if evicted > 0 {
            self.counters.stale_evictions.add(evicted as u64);
        }
        evicted
    }

    /// Runs the one-shot deterministic calibration pass unless the
    /// table is already seeded (calibrated earlier, or reloaded from a
    /// persisted artifact — counted on `tune.calibration_skips`).
    pub fn ensure_seeded(&self) {
        {
            let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            if inner.seeded {
                self.counters.calibration_skips.inc();
                return;
            }
        }
        self.calibrate(calibration_reps());
    }

    /// The one-shot calibration pass: for every (N bucket, sparsity
    /// bucket) representative workload and every available tuned
    /// candidate, runs the variant's raw axpy on a deterministic
    /// synthetic stream (`reps` timed repetitions, best kept) and
    /// seeds the cell. Deterministic in workload — fixed seeds, fixed
    /// bounded iteration counts — so CI can smoke it under
    /// `JIGSAW_TUNE=calibrate`; the measured nanoseconds are whatever
    /// the host delivers. Counted on `tune.calibrations`.
    pub fn calibrate(&self, reps: usize) {
        // Representative N / density per bucket (same buckets the
        // online path lands in — asserted in the unit tests).
        const CAL_N: [usize; 6] = [12, 24, 48, 96, 192, 384];
        const CAL_DENSITY: [f64; 5] = [0.40, 0.20, 0.10, 0.04, 0.008];
        const CAL_K: usize = 512;
        let reps = reps.max(1);
        for (nb, &n) in CAL_N.iter().enumerate() {
            for (sb, &density) in CAL_DENSITY.iter().enumerate() {
                let nnz = ((CAL_K as f64 * density) as usize).max(4);
                let (vals, cols, slab) = calibration_stream(CAL_K, n, nnz, (nb * 8 + sb) as u64);
                let work = (nnz * n) as u64;
                // Size the inner loop so one measurement is long enough
                // to rank kernels, bounded so `JIGSAW_TUNE=calibrate`
                // smoke runs stay fast.
                let iters = (2_000_000 / work.max(1)).clamp(4, 256) as usize;
                for kind in TUNED_CANDIDATES {
                    if !kind.available() {
                        continue;
                    }
                    let axpy = super::dispatch::calibration_axpy(kind);
                    let mut c = vec![0.0f32; n];
                    let mut best_ns = u64::MAX;
                    for _ in 0..reps {
                        let started = Instant::now();
                        for _ in 0..iters {
                            axpy(&mut c, &vals, &cols, &slab, n);
                        }
                        best_ns = best_ns.min(started.elapsed().as_nanos() as u64);
                    }
                    std::hint::black_box(&c);
                    let per_call = (best_ns / iters as u64).max(1);
                    let wl = Workload { n, density };
                    debug_assert_eq!(wl.bucket(), (nb as u8, sb as u8));
                    self.record(kind, wl, work, per_call);
                }
            }
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.seeded = true;
        self.counters.calibrations.inc();
    }

    /// Serializes the table. The encoding stores every f64 as its raw
    /// bit pattern, so [`CostTable::load_bytes`] reproduces the cells
    /// **bit-exactly** (pinned by proptest) — a reloaded table ranks
    /// identically to the one that was saved.
    pub fn to_bytes(&self) -> Vec<u8> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut cells: Vec<(&CellKey, &Cell)> = inner.cells.iter().collect();
        // Canonical order: the encoding is a pure function of the
        // table's contents, not of HashMap iteration order.
        cells.sort_by_key(|(k, _)| (k.nb, k.sb, variant_tag(k.kind)));
        let mut out = Vec::with_capacity(16 + cells.len() * 27);
        out.extend_from_slice(&TABLE_MAGIC);
        out.extend_from_slice(&(cells.len() as u32).to_le_bytes());
        out.extend_from_slice(&inner.tick.to_le_bytes());
        for (key, cell) in cells {
            out.push(key.nb);
            out.push(key.sb);
            out.push(variant_tag(key.kind));
            out.extend_from_slice(&cell.ewma_ns_per_unit.to_bits().to_le_bytes());
            out.extend_from_slice(&cell.samples.to_le_bytes());
            out.extend_from_slice(&cell.last_tick.to_le_bytes());
        }
        out
    }

    /// Replaces the table with a previously serialized one and marks it
    /// seeded (`tune.table_loads`), returning the number of cells
    /// loaded. Every length and tag is validated — corrupt bytes are a
    /// typed `io::Error`, never a panic, and leave the table untouched.
    pub fn load_bytes(&self, bytes: &[u8]) -> io::Result<usize> {
        let bad =
            |what: &str| io::Error::new(io::ErrorKind::InvalidData, format!("tune table: {what}"));
        if bytes.len() < 20 {
            return Err(bad("truncated header"));
        }
        if bytes[..8] != TABLE_MAGIC {
            return Err(bad("bad magic"));
        }
        let count = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
        let tick = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
        let mut cells = HashMap::with_capacity(count);
        let mut at = 20;
        for _ in 0..count {
            let Some(rec) = bytes.get(at..at + 27) else {
                return Err(bad("truncated cell"));
            };
            let kind = variant_from_tag(rec[2]).ok_or_else(|| bad("unknown variant tag"))?;
            let key = CellKey {
                nb: rec[0],
                sb: rec[1],
                kind,
            };
            let cell = Cell {
                ewma_ns_per_unit: f64::from_bits(u64::from_le_bytes(
                    rec[3..11].try_into().expect("8 bytes"),
                )),
                samples: u64::from_le_bytes(rec[11..19].try_into().expect("8 bytes")),
                last_tick: u64::from_le_bytes(rec[19..27].try_into().expect("8 bytes")),
            };
            if cells.insert(key, cell).is_some() {
                return Err(bad("duplicate cell"));
            }
            at += 27;
        }
        if at != bytes.len() {
            return Err(bad("trailing bytes"));
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.cells = cells;
        inner.tick = tick;
        inner.seeded = true;
        self.counters.table_loads.inc();
        Ok(count)
    }

    /// Test/report hook: seeds one cell directly with an exact cost.
    /// Marks the table seeded — a hand-seeded table must not be
    /// overwritten by a later implicit calibration pass.
    pub fn seed_cell(&self, kind: KernelKind, wl: Workload, ns_per_unit: f64) {
        let (nb, sb) = wl.bucket();
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.tick += 1;
        inner.seeded = true;
        let tick = inner.tick;
        inner.cells.insert(
            CellKey { nb, sb, kind },
            Cell {
                ewma_ns_per_unit: ns_per_unit,
                samples: 1,
                last_tick: tick,
            },
        );
    }
}

/// Stable on-disk tag per variant (independent of enum layout).
fn variant_tag(kind: KernelKind) -> u8 {
    match kind {
        KernelKind::Scalar => 0,
        KernelKind::Avx2Fma => 1,
        KernelKind::Avx512f => 2,
        KernelKind::Neon => 3,
        KernelKind::SortedStream => 4,
        KernelKind::NarrowN => 5,
    }
}

fn variant_from_tag(tag: u8) -> Option<KernelKind> {
    Some(match tag {
        0 => KernelKind::Scalar,
        1 => KernelKind::Avx2Fma,
        2 => KernelKind::Avx512f,
        3 => KernelKind::Neon,
        4 => KernelKind::SortedStream,
        5 => KernelKind::NarrowN,
        _ => return None,
    })
}

/// Calibration repetitions: 5 by default, 2 in the bounded-iteration
/// CI smoke mode (`JIGSAW_TUNE=calibrate`).
fn calibration_reps() -> usize {
    match std::env::var("JIGSAW_TUNE").as_deref() {
        Ok("calibrate") => 2,
        _ => 5,
    }
}

/// Deterministic synthetic axpy inputs for one calibration cell:
/// `nnz` nonzeros over a `k × n` slab, columns spread by a seeded
/// splitmix64 walk.
fn calibration_stream(k: usize, n: usize, nnz: usize, seed: u64) -> (Vec<f32>, Vec<u32>, Vec<f32>) {
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let vals: Vec<f32> = (0..nnz).map(|_| ((next() % 7) as f32) - 3.0).collect();
    let cols: Vec<u32> = (0..nnz).map(|_| (next() % k as u64) as u32).collect();
    let slab: Vec<f32> = (0..k * n).map(|_| ((next() % 5) as f32) - 2.0).collect();
    (vals, cols, slab)
}

/// The process-global cost table every tuned selection and every
/// execution measurement goes through.
pub fn table() -> &'static CostTable {
    static TABLE: OnceLock<CostTable> = OnceLock::new();
    TABLE.get_or_init(CostTable::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl(n: usize, density: f64) -> Workload {
        Workload { n, density }
    }

    #[test]
    fn buckets_partition_the_shape_space() {
        assert_eq!(n_bucket(1), 0);
        assert_eq!(n_bucket(16), 0);
        assert_eq!(n_bucket(17), 1);
        assert_eq!(n_bucket(64), 2);
        assert_eq!(n_bucket(65), 3);
        assert_eq!(n_bucket(256), 4);
        assert_eq!(n_bucket(4096), 5);
        assert_eq!(s_bucket(0.5), 0);
        assert_eq!(s_bucket(0.2), 1);
        assert_eq!(s_bucket(0.1), 2);
        assert_eq!(s_bucket(0.05), 3);
        assert_eq!(s_bucket(0.001), 4);
        // Workload::new derives density from the stream shape.
        let w = Workload::new(64, 100, 100, 1000);
        assert!((w.density - 0.1).abs() < 1e-12);
        assert_eq!(w.bucket(), (2, 2));
    }

    #[test]
    fn ewma_converges_and_best_ranks_cells() {
        let t = CostTable::new();
        let w = wl(48, 0.1);
        assert_eq!(t.best(w), None, "empty bucket is a miss");
        // Scalar measured slow, narrow_n fast, in the same bucket.
        for _ in 0..8 {
            t.record(KernelKind::Scalar, w, 1000, 8000); // 8 ns/unit
            t.record(KernelKind::NarrowN, w, 1000, 2000); // 2 ns/unit
        }
        assert_eq!(t.best(w), Some(KernelKind::NarrowN));
        let slow = t.cost(KernelKind::Scalar, w).unwrap();
        let fast = t.cost(KernelKind::NarrowN, w).unwrap();
        assert!(slow > fast);
        // A shift in measurements moves the EWMA toward the new cost.
        for _ in 0..32 {
            t.record(KernelKind::NarrowN, w, 1000, 20_000); // now 20 ns/unit
        }
        assert_eq!(t.best(w), Some(KernelKind::Scalar), "ranking follows drift");
        // Another bucket is independent.
        assert_eq!(t.best(wl(4000, 0.1)), None);
    }

    #[test]
    fn zero_work_and_zero_time_records_are_ignored() {
        let t = CostTable::new();
        t.record(KernelKind::Scalar, wl(8, 0.1), 0, 100);
        t.record(KernelKind::Scalar, wl(8, 0.1), 100, 0);
        assert!(t.is_empty());
    }

    #[test]
    fn stale_cells_are_evicted() {
        let t = CostTable::new();
        let old = wl(8, 0.5);
        let hot = wl(100, 0.5);
        t.record(KernelKind::Scalar, old, 100, 100);
        for _ in 0..64 {
            t.record(KernelKind::Scalar, hot, 100, 100);
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.evict_stale(32), 1, "only the old cell goes");
        assert_eq!(t.best(old), None);
        assert!(t.best(hot).is_some());
    }

    #[test]
    fn round_trip_is_bit_exact_and_corrupt_bytes_are_errors() {
        let t = CostTable::new();
        t.seed_cell(KernelKind::Scalar, wl(8, 0.5), 1.0 / 3.0);
        t.seed_cell(KernelKind::NarrowN, wl(8, 0.5), f64::MIN_POSITIVE);
        t.seed_cell(KernelKind::Avx512f, wl(300, 0.001), 12345.6789);
        let bytes = t.to_bytes();

        let u = CostTable::new();
        assert_eq!(u.load_bytes(&bytes).unwrap(), 3);
        assert!(u.is_seeded());
        for (kind, w) in [
            (KernelKind::Scalar, wl(8, 0.5)),
            (KernelKind::NarrowN, wl(8, 0.5)),
            (KernelKind::Avx512f, wl(300, 0.001)),
        ] {
            assert_eq!(
                t.cost(kind, w).unwrap().to_bits(),
                u.cost(kind, w).unwrap().to_bits(),
                "bit-exact {kind:?}"
            );
        }
        assert_eq!(u.to_bytes(), bytes, "canonical re-encoding");

        for corrupt in [
            &bytes[..10],
            &bytes[..bytes.len() - 1],
            &[bytes.as_slice(), &[0u8]].concat()[..],
        ] {
            assert!(CostTable::new().load_bytes(corrupt).is_err());
        }
        let mut bad_tag = bytes.clone();
        bad_tag[22] = 200; // variant tag of the first cell
        assert!(CostTable::new().load_bytes(&bad_tag).is_err());
        assert!(CostTable::new().load_bytes(b"nope").is_err());
    }

    #[test]
    fn calibration_seeds_every_bucket_for_every_available_candidate() {
        let t = CostTable::new();
        t.calibrate(1);
        assert!(t.is_seeded());
        let available = TUNED_CANDIDATES
            .into_iter()
            .filter(|k| k.available())
            .count();
        assert_eq!(
            t.len(),
            6 * 5 * available,
            "6 N buckets × 5 density buckets"
        );
        // ensure_seeded on a seeded table is a no-op skip.
        let before = t.len();
        t.ensure_seeded();
        assert_eq!(t.len(), before);
        // Every bucket resolves to some pick now.
        for n in [8, 24, 48, 96, 192, 1024] {
            for d in [0.4, 0.2, 0.1, 0.04, 0.005] {
                assert!(t.best(wl(n, d)).is_some(), "n={n} d={d}");
            }
        }
    }
}
