//! Jigsaw kernel configuration — tile sizes and the optimization toggles
//! the ablation study (paper §4.4) switches on one by one.

use serde::{Deserialize, Serialize};

use crate::errors::ConfigError;

/// Rows/columns of the `MMA_TILE` (fixed at 16×16 in the paper's
/// implementation: one tile compresses to 16×8, and one
/// `mma.sp.m16n8k32` consumes two of them).
pub const MMA_TILE: usize = 16;

/// Columns of B processed per `mma.sp` (the N extent of `m16n8k32`).
pub const MMA_N: usize = 8;

/// Uncompressed K extent of one `mma.sp.m16n8k32`: two `MMA_TILE`
/// windows.
pub const MMA_K: usize = 32;

/// Kernel-version toggles (paper §4.4's v0..v4).
///
/// Construct through [`JigsawConfig::builder`] or the `v0()..v4()`
/// presets. Direct struct-literal construction is deprecated in spirit
/// (the fields stay public for serde and pattern matching): it skips
/// validation, so an off-grid tiling only surfaces later as a
/// [`crate::PlanError::Config`] at plan time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct JigsawConfig {
    /// `BLOCK_TILE_M`: rows of A (and C) per thread block; also the row
    /// granularity of the zero-column reorder. Paper tunes 16/32/64.
    pub block_tile_m: usize,
    /// `BLOCK_TILE_N`: columns of C per thread block.
    pub block_tile_n: usize,
    /// `WARP_TILE_M` × `WARP_TILE_N`: the C tile each warp owns.
    pub warp_tile_m: usize,
    /// See `warp_tile_m`.
    pub warp_tile_n: usize,
    /// §3.4.1: pad the shared-memory B tile by 4 banks per row and
    /// prefer bank-conflict-free reorder schemes.
    pub bank_conflict_elimination: bool,
    /// §3.4.2: deepen the pipeline so `col_idx_array` for step n+2 loads
    /// while step n computes, breaking the index→B-load dependency.
    pub deep_pipeline: bool,
    /// §3.4.3: store metadata interleaved so one `ldmatrix` feeds two
    /// `mma.sp` operations.
    pub metadata_interleave: bool,
}

impl JigsawConfig {
    /// A fluent, validating builder starting from the v0 baseline
    /// tiling (64×64 block, 16×32 warp, all optimizations off).
    pub fn builder() -> ConfigBuilder {
        ConfigBuilder::default()
    }

    /// Baseline kernel: async copy double-buffering but no padding, no
    /// deep pipeline, naive metadata loads, `BLOCK_TILE = 64` only.
    pub fn v0() -> Self {
        Self::builder()
            .build()
            .expect("v0 preset is a valid tiling")
    }

    /// v0 + shared-memory bank-conflict elimination.
    pub fn v1() -> Self {
        Self::builder()
            .bank_conflict_elimination(true)
            .build()
            .expect("v1 preset is a valid tiling")
    }

    /// v1 + deepened pipeline.
    pub fn v2() -> Self {
        Self::builder()
            .bank_conflict_elimination(true)
            .deep_pipeline(true)
            .build()
            .expect("v2 preset is a valid tiling")
    }

    /// v2 + interleaved metadata loading.
    pub fn v3() -> Self {
        Self::builder()
            .bank_conflict_elimination(true)
            .deep_pipeline(true)
            .metadata_interleave(true)
            .build()
            .expect("v3 preset is a valid tiling")
    }

    /// The fully optimized kernel at a specific `BLOCK_TILE_M`
    /// (v4 = best of `BLOCK_TILE ∈ {16, 32, 64}`, chosen by the
    /// caller). The paper only evaluates those three sizes, but any
    /// `MMA_TILE`-aligned multiple of the warp tile is accepted;
    /// off-grid values surface as a typed error from
    /// [`JigsawConfig::validate`] (and therefore from plan) rather
    /// than a panic here.
    pub fn v4(block_tile_m: usize) -> Self {
        JigsawConfig {
            block_tile_m,
            ..Self::v3()
        }
    }

    /// The `BLOCK_TILE_M` values v4 tunes over.
    pub const BLOCK_TILE_CANDIDATES: [usize; 3] = [16, 32, 64];

    /// Warps per thread block.
    pub fn warps_per_block(&self) -> usize {
        (self.block_tile_m / self.warp_tile_m) * (self.block_tile_n / self.warp_tile_n)
    }

    /// `mma.sp` operations each warp performs per 32-column k-step.
    pub fn mmas_per_warp_per_step(&self) -> usize {
        (self.warp_tile_m / MMA_TILE) * (self.warp_tile_n / MMA_N)
    }

    /// Static shared-memory footprint per thread block. The paper
    /// reports 21.25 KiB / 24.83 KiB / 27.65 KiB for `BLOCK_TILE`
    /// 16/32/64 (§4.1); we reproduce those numbers as the occupancy
    /// input since they reflect the authors' full buffering scheme.
    pub fn smem_bytes(&self) -> usize {
        match self.block_tile_m {
            16 => (21.25 * 1024.0) as usize,
            32 => (24.83 * 1024.0) as usize,
            64 => (27.65 * 1024.0) as usize,
            other => {
                // Extrapolate for non-paper sizes: double-buffered B tile
                // + A slab + index arrays.
                let b_tile = 2 * MMA_K * (self.block_tile_n + 8) * 2;
                let a_slab = 2 * other * MMA_TILE * 2;
                let indices = 4 * MMA_K * 4;
                b_tile + a_slab + indices + 16 * 1024
            }
        }
    }

    /// Sanity-checks the tiling.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.block_tile_m == 0
            || self.block_tile_n == 0
            || self.warp_tile_m == 0
            || self.warp_tile_n == 0
        {
            return Err(ConfigError::ZeroTile);
        }
        if !self.warp_tile_m.is_multiple_of(MMA_TILE) || !self.warp_tile_n.is_multiple_of(MMA_N) {
            return Err(ConfigError::WarpNotMmaAligned {
                warp_tile: (self.warp_tile_m, self.warp_tile_n),
            });
        }
        if !self.block_tile_m.is_multiple_of(MMA_TILE) {
            return Err(ConfigError::BlockTileNotMmaAligned {
                block_tile_m: self.block_tile_m,
            });
        }
        if !self.block_tile_m.is_multiple_of(self.warp_tile_m)
            || !self.block_tile_n.is_multiple_of(self.warp_tile_n)
        {
            return Err(ConfigError::BlockNotWarpAligned {
                block_tile: (self.block_tile_m, self.block_tile_n),
                warp_tile: (self.warp_tile_m, self.warp_tile_n),
            });
        }
        Ok(())
    }
}

/// Fluent builder for [`JigsawConfig`], validating on
/// [`build`](ConfigBuilder::build). Starts from the v0 baseline
/// tiling.
///
/// ```
/// use jigsaw_core::JigsawConfig;
///
/// let cfg = JigsawConfig::builder()
///     .block_tile(32, 64)
///     .bank_conflict_elimination(true)
///     .build()
///     .unwrap();
/// assert_eq!(cfg.block_tile_m, 32);
///
/// // An off-grid tiling comes back as a typed error, not a panic.
/// assert!(JigsawConfig::builder().block_tile(40, 64).build().is_err());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ConfigBuilder {
    config: JigsawConfig,
}

impl Default for ConfigBuilder {
    fn default() -> Self {
        ConfigBuilder {
            config: JigsawConfig {
                block_tile_m: 64,
                block_tile_n: 64,
                warp_tile_m: 16,
                warp_tile_n: 32,
                bank_conflict_elimination: false,
                deep_pipeline: false,
                metadata_interleave: false,
            },
        }
    }
}

impl ConfigBuilder {
    /// Sets `BLOCK_TILE_M` × `BLOCK_TILE_N`.
    pub fn block_tile(mut self, m: usize, n: usize) -> Self {
        self.config.block_tile_m = m;
        self.config.block_tile_n = n;
        self
    }

    /// Sets `WARP_TILE_M` × `WARP_TILE_N`.
    pub fn warp_tile(mut self, m: usize, n: usize) -> Self {
        self.config.warp_tile_m = m;
        self.config.warp_tile_n = n;
        self
    }

    /// Toggles §3.4.1 shared-memory bank-conflict elimination.
    pub fn bank_conflict_elimination(mut self, on: bool) -> Self {
        self.config.bank_conflict_elimination = on;
        self
    }

    /// Toggles the §3.4.2 deepened pipeline.
    pub fn deep_pipeline(mut self, on: bool) -> Self {
        self.config.deep_pipeline = on;
        self
    }

    /// Toggles §3.4.3 interleaved metadata loading.
    pub fn metadata_interleave(mut self, on: bool) -> Self {
        self.config.metadata_interleave = on;
        self
    }

    /// Validates the tiling and returns the config.
    pub fn build(self) -> Result<JigsawConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

impl Default for JigsawConfig {
    fn default() -> Self {
        Self::v4(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_are_cumulative() {
        assert!(!JigsawConfig::v0().bank_conflict_elimination);
        assert!(JigsawConfig::v1().bank_conflict_elimination);
        assert!(!JigsawConfig::v1().deep_pipeline);
        assert!(JigsawConfig::v2().deep_pipeline);
        assert!(!JigsawConfig::v2().metadata_interleave);
        assert!(JigsawConfig::v3().metadata_interleave);
    }

    #[test]
    fn paper_smem_figures() {
        assert_eq!(JigsawConfig::v4(16).smem_bytes(), 21760);
        assert_eq!(JigsawConfig::v4(32).smem_bytes(), 25425);
        assert_eq!(JigsawConfig::v4(64).smem_bytes(), 28313);
    }

    #[test]
    fn default_tiling_is_valid() {
        for bt in JigsawConfig::BLOCK_TILE_CANDIDATES {
            let c = JigsawConfig::v4(bt);
            c.validate().unwrap();
            assert_eq!(c.mmas_per_warp_per_step(), 4);
        }
        assert_eq!(JigsawConfig::v4(64).warps_per_block(), 8);
        assert_eq!(JigsawConfig::v4(16).warps_per_block(), 2);
    }

    #[test]
    fn off_grid_tilings_fail_validation_with_typed_errors() {
        use crate::errors::ConfigError;
        // 40 is not a multiple of MMA_TILE.
        assert_eq!(
            JigsawConfig::v4(40).validate(),
            Err(ConfigError::BlockTileNotMmaAligned { block_tile_m: 40 })
        );
        assert_eq!(
            JigsawConfig::builder().warp_tile(8, 32).build(),
            Err(ConfigError::WarpNotMmaAligned { warp_tile: (8, 32) })
        );
        assert_eq!(
            JigsawConfig::builder().block_tile(32, 48).build(),
            Err(ConfigError::BlockNotWarpAligned {
                block_tile: (32, 48),
                warp_tile: (16, 32),
            })
        );
        assert_eq!(
            JigsawConfig::builder().block_tile(0, 64).build(),
            Err(ConfigError::ZeroTile)
        );
    }

    #[test]
    fn builder_matches_presets() {
        assert_eq!(JigsawConfig::builder().build().unwrap(), JigsawConfig::v0());
        assert_eq!(
            JigsawConfig::builder()
                .block_tile(32, 64)
                .bank_conflict_elimination(true)
                .deep_pipeline(true)
                .metadata_interleave(true)
                .build()
                .unwrap(),
            JigsawConfig::v4(32)
        );
    }
}
