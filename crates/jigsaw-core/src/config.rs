//! Jigsaw kernel configuration — tile sizes and the optimization toggles
//! the ablation study (paper §4.4) switches on one by one.

use serde::{Deserialize, Serialize};

/// Rows/columns of the `MMA_TILE` (fixed at 16×16 in the paper's
/// implementation: one tile compresses to 16×8, and one
/// `mma.sp.m16n8k32` consumes two of them).
pub const MMA_TILE: usize = 16;

/// Columns of B processed per `mma.sp` (the N extent of `m16n8k32`).
pub const MMA_N: usize = 8;

/// Uncompressed K extent of one `mma.sp.m16n8k32`: two `MMA_TILE`
/// windows.
pub const MMA_K: usize = 32;

/// Kernel-version toggles (paper §4.4's v0..v4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct JigsawConfig {
    /// `BLOCK_TILE_M`: rows of A (and C) per thread block; also the row
    /// granularity of the zero-column reorder. Paper tunes 16/32/64.
    pub block_tile_m: usize,
    /// `BLOCK_TILE_N`: columns of C per thread block.
    pub block_tile_n: usize,
    /// `WARP_TILE_M` × `WARP_TILE_N`: the C tile each warp owns.
    pub warp_tile_m: usize,
    /// See `warp_tile_m`.
    pub warp_tile_n: usize,
    /// §3.4.1: pad the shared-memory B tile by 4 banks per row and
    /// prefer bank-conflict-free reorder schemes.
    pub bank_conflict_elimination: bool,
    /// §3.4.2: deepen the pipeline so `col_idx_array` for step n+2 loads
    /// while step n computes, breaking the index→B-load dependency.
    pub deep_pipeline: bool,
    /// §3.4.3: store metadata interleaved so one `ldmatrix` feeds two
    /// `mma.sp` operations.
    pub metadata_interleave: bool,
}

impl JigsawConfig {
    /// Baseline kernel: async copy double-buffering but no padding, no
    /// deep pipeline, naive metadata loads, `BLOCK_TILE = 64` only.
    pub fn v0() -> Self {
        JigsawConfig {
            block_tile_m: 64,
            block_tile_n: 64,
            warp_tile_m: 16,
            warp_tile_n: 32,
            bank_conflict_elimination: false,
            deep_pipeline: false,
            metadata_interleave: false,
        }
    }

    /// v0 + shared-memory bank-conflict elimination.
    pub fn v1() -> Self {
        JigsawConfig {
            bank_conflict_elimination: true,
            ..Self::v0()
        }
    }

    /// v1 + deepened pipeline.
    pub fn v2() -> Self {
        JigsawConfig {
            deep_pipeline: true,
            ..Self::v1()
        }
    }

    /// v2 + interleaved metadata loading.
    pub fn v3() -> Self {
        JigsawConfig {
            metadata_interleave: true,
            ..Self::v2()
        }
    }

    /// The fully optimized kernel at a specific `BLOCK_TILE_M`
    /// (v4 = best of `BLOCK_TILE ∈ {16, 32, 64}`, chosen by the caller).
    pub fn v4(block_tile_m: usize) -> Self {
        assert!(
            matches!(block_tile_m, 16 | 32 | 64),
            "paper evaluates BLOCK_TILE in {{16, 32, 64}}"
        );
        JigsawConfig {
            block_tile_m,
            ..Self::v3()
        }
    }

    /// The `BLOCK_TILE_M` values v4 tunes over.
    pub const BLOCK_TILE_CANDIDATES: [usize; 3] = [16, 32, 64];

    /// Warps per thread block.
    pub fn warps_per_block(&self) -> usize {
        (self.block_tile_m / self.warp_tile_m) * (self.block_tile_n / self.warp_tile_n)
    }

    /// `mma.sp` operations each warp performs per 32-column k-step.
    pub fn mmas_per_warp_per_step(&self) -> usize {
        (self.warp_tile_m / MMA_TILE) * (self.warp_tile_n / MMA_N)
    }

    /// Static shared-memory footprint per thread block. The paper
    /// reports 21.25 KiB / 24.83 KiB / 27.65 KiB for `BLOCK_TILE`
    /// 16/32/64 (§4.1); we reproduce those numbers as the occupancy
    /// input since they reflect the authors' full buffering scheme.
    pub fn smem_bytes(&self) -> usize {
        match self.block_tile_m {
            16 => (21.25 * 1024.0) as usize,
            32 => (24.83 * 1024.0) as usize,
            64 => (27.65 * 1024.0) as usize,
            other => {
                // Extrapolate for non-paper sizes: double-buffered B tile
                // + A slab + index arrays.
                let b_tile = 2 * MMA_K * (self.block_tile_n + 8) * 2;
                let a_slab = 2 * other * MMA_TILE * 2;
                let indices = 4 * MMA_K * 4;
                b_tile + a_slab + indices + 16 * 1024
            }
        }
    }

    /// Sanity-checks the tiling.
    pub fn validate(&self) -> Result<(), String> {
        if !self.block_tile_m.is_multiple_of(self.warp_tile_m)
            || !self.block_tile_n.is_multiple_of(self.warp_tile_n)
        {
            return Err("block tile must be a multiple of the warp tile".into());
        }
        if !self.warp_tile_m.is_multiple_of(MMA_TILE) || !self.warp_tile_n.is_multiple_of(MMA_N) {
            return Err("warp tile must be a multiple of the mma tile".into());
        }
        if !self.block_tile_m.is_multiple_of(MMA_TILE) {
            return Err("BLOCK_TILE_M must be a multiple of MMA_TILE".into());
        }
        Ok(())
    }
}

impl Default for JigsawConfig {
    fn default() -> Self {
        Self::v4(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_are_cumulative() {
        assert!(!JigsawConfig::v0().bank_conflict_elimination);
        assert!(JigsawConfig::v1().bank_conflict_elimination);
        assert!(!JigsawConfig::v1().deep_pipeline);
        assert!(JigsawConfig::v2().deep_pipeline);
        assert!(!JigsawConfig::v2().metadata_interleave);
        assert!(JigsawConfig::v3().metadata_interleave);
    }

    #[test]
    fn paper_smem_figures() {
        assert_eq!(JigsawConfig::v4(16).smem_bytes(), 21760);
        assert_eq!(JigsawConfig::v4(32).smem_bytes(), 25425);
        assert_eq!(JigsawConfig::v4(64).smem_bytes(), 28313);
    }

    #[test]
    fn default_tiling_is_valid() {
        for bt in JigsawConfig::BLOCK_TILE_CANDIDATES {
            let c = JigsawConfig::v4(bt);
            c.validate().unwrap();
            assert_eq!(c.mmas_per_warp_per_step(), 4);
        }
        assert_eq!(JigsawConfig::v4(64).warps_per_block(), 8);
        assert_eq!(JigsawConfig::v4(16).warps_per_block(), 2);
    }

    #[test]
    #[should_panic(expected = "BLOCK_TILE")]
    fn v4_rejects_odd_block_tile() {
        let _ = JigsawConfig::v4(48);
    }
}
