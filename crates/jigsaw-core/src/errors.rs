//! Typed errors for the public planning API.
//!
//! The error-type map (DESIGN.md §10): [`ConfigError`] describes an
//! invalid tiling, [`PlanError`] wraps it plus everything else that can
//! stop [`crate::JigsawSpmm::plan`], and the layers above add their own
//! wrappers — `SessionError::Plan` in [`crate::session`] and
//! `RegistryError::Plan` in `jigsaw-serve`. Nothing on these paths
//! panics; malformed configs and inputs always come back as values.

use std::fmt;

use crate::config::{MMA_N, MMA_TILE};
use crate::fault::FaultError;

/// Why a [`crate::JigsawConfig`] tiling is invalid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// Some tile dimension is zero.
    ZeroTile,
    /// The block tile is not a whole number of warp tiles.
    BlockNotWarpAligned {
        /// `(block_tile_m, block_tile_n)`.
        block_tile: (usize, usize),
        /// `(warp_tile_m, warp_tile_n)`.
        warp_tile: (usize, usize),
    },
    /// The warp tile is not a whole number of `mma.sp` tiles.
    WarpNotMmaAligned {
        /// `(warp_tile_m, warp_tile_n)`.
        warp_tile: (usize, usize),
    },
    /// `BLOCK_TILE_M` is not a multiple of `MMA_TILE`, so row strips
    /// cannot be cut into 16-row reorder tiles.
    BlockTileNotMmaAligned {
        /// The offending `block_tile_m`.
        block_tile_m: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroTile => write!(f, "tile dimensions must be nonzero"),
            ConfigError::BlockNotWarpAligned {
                block_tile,
                warp_tile,
            } => write!(
                f,
                "block tile {}x{} must be a multiple of the warp tile {}x{}",
                block_tile.0, block_tile.1, warp_tile.0, warp_tile.1
            ),
            ConfigError::WarpNotMmaAligned { warp_tile } => write!(
                f,
                "warp tile {}x{} must be a multiple of the mma tile {MMA_TILE}x{MMA_N}",
                warp_tile.0, warp_tile.1
            ),
            ConfigError::BlockTileNotMmaAligned { block_tile_m } => write!(
                f,
                "BLOCK_TILE_M {block_tile_m} must be a multiple of MMA_TILE ({MMA_TILE})"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Why [`crate::JigsawSpmm::plan`] / `plan_tuned` could not produce a
/// plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// The kernel configuration is invalid.
    Config(ConfigError),
    /// The matrix height is not a multiple of the 16-row reorder tile,
    /// so it cannot be cut into `MMA_TILE` strips. (Pad A to a multiple
    /// of 16 rows before planning.)
    RowsNotTileAligned {
        /// Matrix rows.
        rows: usize,
        /// Required row granularity (`MMA_TILE`).
        tile: usize,
    },
    /// Autotuning was asked to choose among zero candidates.
    NoCandidates,
    /// An armed [`crate::fault`] injection point fired during planning.
    Fault(FaultError),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Config(e) => write!(f, "invalid configuration: {e}"),
            PlanError::RowsNotTileAligned { rows, tile } => {
                write!(f, "matrix rows {rows} must be a multiple of {tile}")
            }
            PlanError::NoCandidates => write!(f, "autotune candidate list is empty"),
            PlanError::Fault(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PlanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlanError::Config(e) => Some(e),
            PlanError::Fault(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for PlanError {
    fn from(e: ConfigError) -> PlanError {
        PlanError::Config(e)
    }
}

impl From<FaultError> for PlanError {
    fn from(e: FaultError) -> PlanError {
        PlanError::Fault(e)
    }
}

/// Why an [`crate::ExecOptions`] combination is invalid — returned by
/// the validating `ExecOptions::builder()` so no contradictory option
/// set ever reaches kernel selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OptionsError {
    /// The sorted-stream opt-in was combined with a policy that can
    /// never run the sorted variant (`Tuned`, or a force pinning a
    /// different kernel) — the flag would be silently dead.
    SortedStreamConflict {
        /// The conflicting selection policy.
        policy: crate::compiled::KernelPolicy,
    },
}

impl fmt::Display for OptionsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptionsError::SortedStreamConflict { policy } => write!(
                f,
                "sorted_stream opt-in conflicts with kernel policy {policy:?}: \
                 only Auto (or Forced(SortedStream)) can run the sorted variant"
            ),
        }
    }
}

impl std::error::Error for OptionsError {}

/// Why a compiled-kernel execution could not run over the buffers it
/// was handed — the typed edges of
/// `CompiledKernel::try_execute_into_opts`,
/// `CompiledKernel::execute_prepaneled_into_opts`, and the panel-major
/// assembly helpers (`panelize_into` / `panelize_parts_into`). The
/// infallible `execute_into*` conveniences panic on these (documented)
/// misuse cases; resilient callers — the serve registry's fused batch
/// path — use the fallible entry points and degrade on an `Err`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// B's height (or a batch part's height) does not match the
    /// kernel's reduction dimension.
    BRowsMismatch {
        /// The expected reduction dimension (the kernel's K, or the
        /// height of part 0 when assembling a batch).
        expected_k: usize,
        /// The offending height.
        got: usize,
    },
    /// The output buffer does not hold exactly `m × n` elements.
    OutputSizeMismatch {
        /// Required `m × n` element count.
        expected: usize,
        /// Elements in the buffer handed in.
        got: usize,
    },
    /// The scratch buffer cannot hold the `k × n` panel-major f32
    /// image of B.
    ScratchTooSmall {
        /// Required `k × n` element count.
        needed: usize,
        /// Elements in the buffer handed in.
        got: usize,
    },
    /// A [`crate::PanelizedB`]'s layout disagrees with the kernel it
    /// was handed to (its K is not the kernel's K), so its panel cuts
    /// cannot line up with the execution grid.
    PanelLayoutMismatch {
        /// The kernel's reduction dimension.
        expected_k: usize,
        /// The prepaneled buffer's K.
        got_k: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::BRowsMismatch { expected_k, got } => {
                write!(f, "B has {got} rows, the kernel reduces over {expected_k}")
            }
            ExecError::OutputSizeMismatch { expected, got } => {
                write!(f, "output buffer holds {got} elements, m*n is {expected}")
            }
            ExecError::ScratchTooSmall { needed, got } => {
                write!(
                    f,
                    "scratch holds {got} f32, the k*n panel image needs {needed}"
                )
            }
            ExecError::PanelLayoutMismatch { expected_k, got_k } => write!(
                f,
                "prepaneled B was cut for k={got_k}, the kernel reduces over k={expected_k}"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

/// Why [`crate::CompiledKernel::try_compile`] could not lower a plan to
/// an executable kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// The plan's nonzero stream does not fit the kernel's `u32` column
    /// indices.
    StreamOverflow {
        /// Number of nonzeros in the plan.
        nnz: usize,
    },
    /// An armed [`crate::fault`] injection point fired during
    /// compilation.
    Fault(FaultError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::StreamOverflow { nnz } => {
                write!(f, "nonzero stream of {nnz} elements overflows u32 indices")
            }
            CompileError::Fault(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Fault(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FaultError> for CompileError {
    fn from(e: FaultError) -> CompileError {
        CompileError::Fault(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        let e = PlanError::from(ConfigError::BlockTileNotMmaAligned { block_tile_m: 40 });
        assert!(e.to_string().contains("40"));
        assert!(e.to_string().contains("invalid configuration"));
        let e = PlanError::RowsNotTileAligned {
            rows: 100,
            tile: 16,
        };
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn config_error_is_the_source() {
        use std::error::Error;
        let e = PlanError::from(ConfigError::ZeroTile);
        assert!(e.source().is_some());
        assert!(PlanError::NoCandidates.source().is_none());
    }
}
