//! Functional execution of the Jigsaw SpMM from the compressed format.
//!
//! Two paths compute `C = A × B` out of a [`JigsawFormat`]:
//!
//! * [`execute_fast`] — scalar walk over the compressed values and
//!   metadata; validates the format's indices end-to-end at a speed
//!   usable on large matrices,
//! * [`execute_via_fragments`] — the full warp data path: Z-swizzled
//!   values into A fragments, metadata words through the F-selector,
//!   B gathered per `block_col_idx`, executed by
//!   [`sptc::mma_sp_m16n8k32`] exactly as the hardware would.
//!
//! Both must agree with the dense reference (and do, bit-exactly, for
//! integer-valued inputs).
//!
//! [`execute_fast`] is also the **differential oracle** of the
//! compiled microkernel family ([`crate::compiled::dispatch`]): the
//! `scalar` variant must match it bit-for-bit on every input, and the
//! fused/reordered variants are held within a stated ULP bound of it
//! by the `kernel_parity` cross-ISA test suite.

use dlmc::Matrix;
use rayon::prelude::*;
use sptc::fragment::{AccFragment, F16Fragment, FragKind};
use sptc::metadata::distribute_metadata;
use sptc::F16;

use crate::config::{MMA_N, MMA_TILE};
use crate::format::{format_source_column, JigsawFormat};

/// Scalar execution from the compressed format.
pub fn execute_fast(f: &JigsawFormat, b: &Matrix) -> Vec<f32> {
    assert_eq!(f.k, b.rows, "A columns must match B rows");
    let n = b.cols;
    let mut c = vec![0.0f32; f.m * n];

    // Convert B once up front: F16→f32 widening is exact, so hoisting
    // it out of the per-nonzero loop cannot change any result bit.
    let bf: Vec<f32> = b.data.iter().map(|v| v.to_f32()).collect();

    // Strips own disjoint row ranges of C: parallelize over strips.
    let strip_views: Vec<(usize, &mut [f32])> = {
        let mut views = Vec::new();
        let mut rest = c.as_mut_slice();
        let mut offset = 0usize;
        for (si, s) in f.strips.iter().enumerate() {
            let len = s.height * n;
            debug_assert_eq!(s.row0 * n, offset);
            let (head, tail) = rest.split_at_mut(len);
            views.push((si, head));
            rest = tail;
            offset += len;
        }
        views
    };

    strip_views.into_par_iter().for_each(|(si, c_strip)| {
        let strip = &f.strips[si];
        let tile_rows = strip.height / MMA_TILE;
        for tr in 0..tile_rows {
            for w in 0..strip.windows {
                let words = f.metadata_words(si, tr, w / 2);
                let off = (w % 2) * 8;
                for r in 0..MMA_TILE {
                    let idx = sptc::metadata::unpack_row_metadata(words[r]);
                    let c_row = &mut c_strip[(tr * MMA_TILE + r) * n..][..n];
                    for slot in 0..8 {
                        let v = f.value(si, w, tr, r, slot);
                        if v.is_zero() {
                            continue;
                        }
                        let pos = (slot / 2) * 4 + idx[off + slot] as usize;
                        let Some(col) = format_source_column(f, si, w, tr, pos) else {
                            continue;
                        };
                        let vf = v.to_f32();
                        let b_row = &bf[col * n..][..n];
                        for (acc, &bv) in c_row.iter_mut().zip(b_row) {
                            *acc += vf * bv;
                        }
                    }
                }
            }
        }
    });
    c
}

/// Full-fidelity execution through the SpTC fragment emulation.
///
/// Considerably slower than [`execute_fast`]; intended for small and
/// medium shapes in tests and examples.
pub fn execute_via_fragments(f: &JigsawFormat, b: &Matrix) -> Vec<f32> {
    assert_eq!(f.k, b.rows);
    let n = b.cols;
    let n_tiles = n.div_ceil(MMA_N);
    let mut c = vec![0.0f32; f.m * n];

    for (si, strip) in f.strips.iter().enumerate() {
        let tile_rows = strip.height / MMA_TILE;
        let pairs = strip.windows.div_ceil(2);
        for tr in 0..tile_rows {
            for nt in 0..n_tiles {
                let mut acc = AccFragment::zero();
                for p in 0..pairs {
                    // A fragment: compressed 16x16 = the two windows'
                    // 16x8 blocks side by side.
                    let mut a_tile = vec![F16::ZERO; MMA_TILE * 16];
                    for r in 0..MMA_TILE {
                        for slot in 0..8 {
                            a_tile[r * 16 + slot] = f.value(si, 2 * p, tr, r, slot);
                            if 2 * p + 1 < strip.windows {
                                a_tile[r * 16 + 8 + slot] = f.value(si, 2 * p + 1, tr, r, slot);
                            }
                        }
                    }
                    // B tile 32x8 gathered through the index arrays.
                    let mut b_tile = vec![F16::ZERO; 32 * MMA_N];
                    for i in 0..32 {
                        let w = 2 * p + i / MMA_TILE;
                        if w >= strip.windows {
                            break;
                        }
                        let pos = i % MMA_TILE;
                        let Some(col) = format_source_column(f, si, w, tr, pos) else {
                            continue;
                        };
                        for j in 0..MMA_N {
                            let cc = nt * MMA_N + j;
                            if cc < n {
                                b_tile[i * MMA_N + j] = b.get(col, cc);
                            }
                        }
                    }
                    let words = f.metadata_words(si, tr, p);
                    let selector = (p % 2) as u8;
                    let meta = distribute_metadata(&words, selector);
                    let a_frag = F16Fragment::load(FragKind::A16x16, &a_tile);
                    let b_frag = F16Fragment::load(FragKind::B32x8, &b_tile);
                    acc = sptc::mma_sp_m16n8k32(&a_frag, &b_frag, &acc, &meta, selector);
                }
                // Write the 16x8 tile back.
                let tile = acc.store();
                for r in 0..MMA_TILE {
                    for j in 0..MMA_N {
                        let cc = nt * MMA_N + j;
                        if cc < n {
                            c[(strip.row0 + tr * MMA_TILE + r) * n + cc] = tile[r * MMA_N + j];
                        }
                    }
                }
            }
        }
    }
    c
}

/// Relative-tolerance comparison for float outputs from different
/// accumulation orders.
pub fn max_relative_error(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let denom = x.abs().max(y.abs()).max(1.0);
            f64::from((x - y).abs()) / f64::from(denom)
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::JigsawConfig;
    use crate::reorder::ReorderPlan;
    use dlmc::{dense_rhs, ValueDist, VectorSparseSpec};

    fn setup(
        rows: usize,
        cols: usize,
        n: usize,
        sparsity: f64,
        v: usize,
        bt: usize,
        seed: u64,
    ) -> (Matrix, Matrix, JigsawFormat) {
        let a = VectorSparseSpec {
            rows,
            cols,
            sparsity,
            v,
            dist: ValueDist::SmallInt,
            seed,
        }
        .generate();
        let b = dense_rhs(cols, n, ValueDist::SmallInt, seed + 1);
        let plan = ReorderPlan::build(&a, &JigsawConfig::v4(bt));
        let format = JigsawFormat::build(&a, &plan, true);
        (a, b, format)
    }

    #[test]
    fn fast_matches_reference_exactly_on_integers() {
        for (bt, v, s) in [(16, 2, 0.8), (32, 4, 0.9), (64, 8, 0.95)] {
            let (a, b, f) = setup(64, 96, 24, s, v, bt, 5);
            let expect = a.matmul_reference(&b);
            let got = execute_fast(&f, &b);
            assert_eq!(got, expect, "bt={bt} v={v} s={s}");
        }
    }

    #[test]
    fn fragments_match_reference_exactly_on_integers() {
        let (a, b, f) = setup(32, 64, 16, 0.9, 4, 32, 9);
        let expect = a.matmul_reference(&b);
        let got = execute_via_fragments(&f, &b);
        assert_eq!(got, expect);
    }

    #[test]
    fn fragments_match_fast_on_both_metadata_layouts() {
        let a = VectorSparseSpec {
            rows: 48,
            cols: 80,
            sparsity: 0.85,
            v: 2,
            dist: ValueDist::SmallInt,
            seed: 4,
        }
        .generate();
        let b = dense_rhs(80, 8, ValueDist::SmallInt, 44);
        let plan = ReorderPlan::build(&a, &JigsawConfig::v4(16));
        for interleaved in [false, true] {
            let f = JigsawFormat::build(&a, &plan, interleaved);
            assert_eq!(
                execute_via_fragments(&f, &b),
                execute_fast(&f, &b),
                "interleaved={interleaved}"
            );
        }
    }

    #[test]
    fn dense_input_still_computes_correctly() {
        // Even when reorder "fails" (K grows), the result must be right.
        let a = Matrix::from_f32(
            16,
            32,
            &(0..512).map(|i| ((i % 5) as f32) - 2.0).collect::<Vec<_>>(),
        );
        let b = dense_rhs(32, 8, ValueDist::SmallInt, 7);
        let plan = ReorderPlan::build(&a, &JigsawConfig::v4(16));
        let f = JigsawFormat::build(&a, &plan, true);
        assert_eq!(execute_fast(&f, &b), a.matmul_reference(&b));
    }

    #[test]
    fn uniform_values_within_tolerance() {
        let a = VectorSparseSpec {
            rows: 64,
            cols: 64,
            sparsity: 0.9,
            v: 4,
            dist: ValueDist::Uniform,
            seed: 12,
        }
        .generate();
        let b = dense_rhs(64, 16, ValueDist::Uniform, 13);
        let plan = ReorderPlan::build(&a, &JigsawConfig::v4(64));
        let f = JigsawFormat::build(&a, &plan, true);
        let err = max_relative_error(&execute_fast(&f, &b), &a.matmul_reference(&b));
        assert!(err < 1e-5, "relative error {err}");
    }

    #[test]
    fn odd_n_padding() {
        let (a, b, f) = setup(32, 32, 13, 0.9, 2, 32, 3);
        assert_eq!(execute_via_fragments(&f, &b), a.matmul_reference(&b));
    }
}
