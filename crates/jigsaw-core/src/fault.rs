//! Deterministic fault injection for the whole stack.
//!
//! A process-global registry of **named injection points** threaded
//! through planning, kernel compilation, execution, pool allocation,
//! artifact loading, and the serve worker pool (the [`points`] module
//! names them all). Tests and chaos harnesses arm faults with
//! [`inject`]; production code crosses a point with [`hit`] (fallible
//! call sites), [`trip`] (infallible call sites, where an injected
//! error becomes a panic for the isolation layer above to catch), or
//! [`fire`] (callers that interpret the fault themselves, e.g. to
//! corrupt bytes or charge virtual latency).
//!
//! Disarmed cost is **one relaxed atomic load** per point — the same
//! contract as `jigsaw_obs::enabled` — so the points stay compiled into
//! release builds. Armed behavior is deterministic: each point keeps a
//! hit counter and a spec fires on an exact hit range
//! (`first_hit .. first_hit + count`), and byte corruption derives its
//! RNG stream from `(seed, point, hit)` alone, so a seeded fault
//! schedule replays identically across runs.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// The named injection points of the workspace, one constant per
/// instrumented seam. Points are plain strings so layers above
/// `jigsaw-core` (the serve worker pool) share the same registry.
pub mod points {
    /// Start of `JigsawSpmm::plan_traced` (reorder + compress).
    pub const PLAN: &str = "core.plan";
    /// Start of `CompiledKernel::try_compile`.
    pub const COMPILE: &str = "exec.compile";
    /// Start of `CompiledKernel::execute_into` (the SIMD hot path).
    pub const EXECUTE: &str = "exec.execute";
    /// `WorkspacePool::acquire`.
    pub const POOL_ACQUIRE: &str = "pool.acquire";
    /// One disk-artifact load attempt in the serve model registry.
    pub const ARTIFACT_LOAD: &str = "registry.artifact_load";
    /// Start of one serve worker batch execution.
    pub const WORKER_BATCH: &str = "serve.worker_batch";
    /// One fused batched-B panel-major assembly in the serve batch
    /// path (before the prepaneled execute). A fault here degrades the
    /// batch to the unfused concat + two-phase path, never to a failed
    /// request.
    pub const SERVE_ASSEMBLE: &str = "serve.assemble";
    /// One shard-router routing decision (before the request reaches
    /// its home shard's admission).
    pub const SHARD_ROUTE: &str = "shard.route";
    /// One shard-router forward/steal redirect to a replica shard.
    pub const SHARD_FORWARD: &str = "shard.forward";
    /// One shard dispatch that a chaos harness may turn into a
    /// straggler. Callers interpret the fault themselves via
    /// [`fire`](super::fire): the threaded router charges a
    /// `Latency` fault as host sleep; the virtual-clock shard sim
    /// reads the same spec and stretches the dispatch's device
    /// cycles instead, so straggler schedules stay
    /// bit-deterministic.
    pub const SHARD_SLOW: &str = "shard.slow";
}

/// What an armed fault does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The point reports a typed error ([`FaultError`]). At infallible
    /// points ([`trip`]) this becomes a panic.
    Error,
    /// The point panics (message prefixed `injected fault:`).
    Panic,
    /// The point sleeps for the given nanoseconds, then proceeds.
    Latency {
        /// Injected delay, nanoseconds of host time.
        ns: u64,
    },
    /// The point proceeds, but callers that load bytes through it
    /// ([`fire`] + [`scramble`]) deterministically corrupt them.
    CorruptBytes,
}

/// One armed fault: fire `count` times starting at the `first_hit`-th
/// crossing (1-based) of `point`.
#[derive(Clone, Debug)]
pub struct FaultSpec {
    /// Injection point this spec watches.
    pub point: String,
    /// Behavior when it fires.
    pub kind: FaultKind,
    /// First hit (1-based) at which the fault fires.
    pub first_hit: u64,
    /// Consecutive hits that fire (`u64::MAX` = forever).
    pub count: u64,
}

impl FaultSpec {
    /// Fires on exactly the first crossing of `point`.
    pub fn once(point: &str, kind: FaultKind) -> FaultSpec {
        FaultSpec {
            point: point.to_string(),
            kind,
            first_hit: 1,
            count: 1,
        }
    }

    /// Fires on every crossing of `point`.
    pub fn always(point: &str, kind: FaultKind) -> FaultSpec {
        FaultSpec {
            count: u64::MAX,
            ..FaultSpec::once(point, kind)
        }
    }

    /// Fires once, on the `first_hit`-th crossing (1-based).
    pub fn at(point: &str, kind: FaultKind, first_hit: u64) -> FaultSpec {
        FaultSpec {
            first_hit,
            ..FaultSpec::once(point, kind)
        }
    }

    /// Widens the spec to fire on `count` consecutive hits.
    pub fn times(mut self, count: u64) -> FaultSpec {
        self.count = count;
        self
    }
}

/// The typed error an injected [`FaultKind::Error`] surfaces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultError {
    /// The injection point that fired.
    pub point: &'static str,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected fault at {}", self.point)
    }
}

impl std::error::Error for FaultError {}

/// A fired fault: its kind plus a deterministic token derived from
/// `(seed, point, hit)` — the RNG key for [`scramble`].
#[derive(Clone, Copy, Debug)]
pub struct Fired {
    /// What to do.
    pub kind: FaultKind,
    /// Deterministic corruption/latency token for this firing.
    pub token: u64,
}

#[derive(Default)]
struct Inner {
    seed: u64,
    specs: Vec<FaultSpec>,
    hits: HashMap<String, u64>,
}

static ARMED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<Inner> {
    static REG: OnceLock<Mutex<Inner>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(Inner::default()))
}

/// Whether any fault is armed. One relaxed atomic load — the entire
/// overhead of a disarmed injection point.
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Seeds the deterministic corruption stream (default 0).
pub fn set_seed(seed: u64) {
    crate::sync::lock_recover(registry()).seed = seed;
}

/// Arms a fault. Points are armed cumulatively until [`reset`].
pub fn inject(spec: FaultSpec) {
    crate::sync::lock_recover(registry()).specs.push(spec);
    ARMED.store(true, Ordering::SeqCst);
}

/// Disarms everything and zeroes all hit counters and the seed.
pub fn reset() {
    ARMED.store(false, Ordering::SeqCst);
    let mut inner = crate::sync::lock_recover(registry());
    inner.specs.clear();
    inner.hits.clear();
    inner.seed = 0;
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Crosses `point`: advances its hit counter and returns the fault
/// that fires on this hit, if any. The low-level primitive — most call
/// sites want [`hit`] or [`trip`], which also *apply* the fault.
pub fn fire(point: &str) -> Option<Fired> {
    if !armed() {
        return None;
    }
    let mut inner = crate::sync::lock_recover(registry());
    let hit = inner
        .hits
        .entry(point.to_string())
        .and_modify(|h| *h += 1)
        .or_insert(1);
    let hit = *hit;
    let kind = inner
        .specs
        .iter()
        .find(|s| s.point == point && hit >= s.first_hit && hit - s.first_hit < s.count)
        .map(|s| s.kind)?;
    let token = splitmix(inner.seed ^ splitmix(hash_point(point)) ^ hit);
    if jigsaw_obs::enabled() {
        jigsaw_obs::global().counter("fault.fired").inc();
    }
    Some(Fired { kind, token })
}

fn hash_point(point: &str) -> u64 {
    point.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    })
}

/// Crosses a fallible `point`: [`FaultKind::Error`] comes back as
/// `Err`, panic faults panic, latency faults sleep, corruption is a
/// no-op (it only affects byte loaders using [`fire`] + [`scramble`]).
pub fn hit(point: &'static str) -> Result<(), FaultError> {
    match fire(point) {
        None
        | Some(Fired {
            kind: FaultKind::CorruptBytes,
            ..
        }) => Ok(()),
        Some(Fired {
            kind: FaultKind::Error,
            ..
        }) => Err(FaultError { point }),
        Some(Fired {
            kind: FaultKind::Panic,
            ..
        }) => panic!("injected fault: panic at {point}"),
        Some(Fired {
            kind: FaultKind::Latency { ns },
            ..
        }) => {
            std::thread::sleep(Duration::from_nanos(ns));
            Ok(())
        }
    }
}

/// Crosses an infallible `point`: like [`hit`], but an injected
/// [`FaultKind::Error`] also panics — the isolation layer above
/// (worker `catch_unwind`, kernel degradation) turns it back into a
/// typed outcome.
pub fn trip(point: &'static str) {
    if let Err(e) = hit(point) {
        panic!("injected fault: {e}");
    }
}

/// Deterministically corrupts `bytes` from a [`Fired::token`]: flips a
/// spread of bits across the buffer *and* always mangles the first
/// byte, so length-prefixed formats with a magic header fail to decode
/// rather than silently parsing flipped values.
pub fn scramble(token: u64, bytes: &mut [u8]) {
    if bytes.is_empty() {
        return;
    }
    bytes[0] ^= 0xFF;
    let flips = (bytes.len() / 64).clamp(1, 64);
    let mut x = token | 1;
    for _ in 0..flips {
        x = splitmix(x);
        let idx = (x as usize) % bytes.len();
        bytes[idx] ^= (1 << (x >> 60)) as u8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fault tests share the process-global registry; serialize them.
    /// (Specs here only target `test.*` points, so concurrently running
    /// non-fault tests never see them fire.)
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disarmed_points_are_free_and_silent() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        assert!(!armed());
        assert!(fire("test.anything").is_none());
        assert!(hit("test.anything").is_ok());
        trip("test.anything");
    }

    #[test]
    fn specs_fire_on_exact_hit_ranges() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        inject(FaultSpec::at("test.range", FaultKind::Error, 2).times(2));
        assert!(hit("test.range").is_ok(), "hit 1 passes");
        assert_eq!(
            hit("test.range"),
            Err(FaultError {
                point: "test.range"
            }),
            "hit 2 fires"
        );
        assert!(hit("test.range").is_err(), "hit 3 fires");
        assert!(hit("test.range").is_ok(), "hit 4 passes");
        reset();
    }

    #[test]
    fn once_fires_exactly_once_and_only_at_its_point() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        inject(FaultSpec::once("test.once", FaultKind::Error));
        assert!(hit("test.other").is_ok(), "other points untouched");
        assert!(hit("test.once").is_err());
        assert!(hit("test.once").is_ok());
        reset();
    }

    #[test]
    fn panic_kind_panics_with_marker() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        inject(FaultSpec::once("test.panic", FaultKind::Panic));
        let err = std::panic::catch_unwind(|| trip("test.panic")).unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("injected fault"), "{msg}");
        reset();
    }

    #[test]
    fn scramble_is_seed_deterministic_and_breaks_headers() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_seed(7);
        inject(FaultSpec::always("test.bytes", FaultKind::CorruptBytes));
        let fired = fire("test.bytes").expect("armed");
        let original = vec![0xAAu8; 256];
        let mut a = original.clone();
        let mut b = original.clone();
        scramble(fired.token, &mut a);
        scramble(fired.token, &mut b);
        assert_eq!(a, b, "same token, same corruption");
        assert_ne!(a, original);
        assert_ne!(a[0], original[0], "header byte always mangled");
        // A later hit corrupts differently (token depends on the hit).
        let fired2 = fire("test.bytes").expect("armed");
        let mut c = original.clone();
        scramble(fired2.token, &mut c);
        assert_ne!(c, a, "hit-dependent corruption stream");
        reset();
    }

    #[test]
    fn latency_kind_sleeps_then_proceeds() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        inject(FaultSpec::once(
            "test.slow",
            FaultKind::Latency { ns: 2_000_000 },
        ));
        let started = std::time::Instant::now();
        assert!(hit("test.slow").is_ok());
        assert!(started.elapsed() >= Duration::from_millis(2));
        reset();
    }
}
