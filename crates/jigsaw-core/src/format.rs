//! The reorder-aware storage format (paper §3.3, Figure 6).
//!
//! Three index levels plus the compressed values:
//!
//! * `col_idx` (top, red in Figure 6) — per `BLOCK_TILE` strip, the
//!   original column index occupying each window slot after the
//!   zero-column reorder ([`crate::reorder::PAD`] marks padding),
//! * `block_col_idx` (middle, blue) — per `MMA_TILE`, the 16
//!   window-relative source positions in reordered order,
//! * `sptc_metadata` (innermost) — the 2-bit positional metadata the
//!   SpTC consumes, packed per `mma.sp` k-step (a pair of windows) and
//!   optionally interleaved so one `ldmatrix` serves two k-steps
//!   (paper §3.4.3),
//! * `values` — the compressed nonzeros, each 16×8 block stored
//!   contiguously in Z-swizzled order.

use dlmc::Matrix;
use sptc::compress::compress_row_2_4;
use sptc::metadata::{interleave_two_ops, ROWS};
use sptc::F16;

use crate::config::MMA_TILE;
use crate::reorder::{ReorderPlan, StripPlan, PAD};
use crate::swizzle::{zorder, BLOCK_ELEMS};

/// Compressed strip payload.
#[derive(Clone, Debug)]
pub struct StripFormat {
    /// First row of the strip in A.
    pub row0: usize,
    /// Strip height.
    pub height: usize,
    /// Windows (16-column groups) the strip computes.
    pub windows: usize,
    /// Top-level index: original column per window slot (`windows*16`).
    pub col_idx: Vec<u32>,
    /// Middle index: per tile `(window, tile_row)`, 16 source positions.
    pub block_col_idx: Vec<u8>,
    /// Compressed values: one Z-swizzled 128-element block per
    /// `(window, tile_row)`, window-major.
    pub values: Vec<F16>,
    /// SpTC metadata words; layout per [`JigsawFormat::interleaved`].
    pub metadata: Vec<u32>,
}

/// The full compressed matrix.
#[derive(Clone, Debug)]
pub struct JigsawFormat {
    /// Matrix height.
    pub m: usize,
    /// Matrix width (K).
    pub k: usize,
    /// `BLOCK_TILE_M` of the plan that produced this format.
    pub block_tile_m: usize,
    /// Whether metadata uses the interleaved two-op layout.
    pub interleaved: bool,
    /// Per-strip payloads.
    pub strips: Vec<StripFormat>,
}

impl JigsawFormat {
    /// Compresses `a` according to `plan`.
    ///
    /// Panics if a tile recorded in the plan no longer satisfies 2:4 —
    /// the plan and matrix must match.
    pub fn build(a: &Matrix, plan: &ReorderPlan, interleaved: bool) -> JigsawFormat {
        let strips = plan
            .strips
            .iter()
            .map(|sp| build_strip(a, sp, interleaved))
            .collect();
        JigsawFormat {
            m: plan.m,
            k: plan.k,
            block_tile_m: plan.block_tile_m,
            interleaved,
            strips,
        }
    }

    /// Number of `mma.sp` k-steps (window pairs) strip `s` runs.
    pub fn k_steps(&self, s: usize) -> usize {
        self.strips[s].windows.div_ceil(2)
    }

    /// Compressed value at `(window, tile_row, r, slot)` of strip `s`
    /// (slot 0..8 of the compressed row).
    pub fn value(&self, s: usize, window: usize, tile_row: usize, r: usize, slot: usize) -> F16 {
        let strip = &self.strips[s];
        let tile_rows = strip.height / MMA_TILE;
        let block = window * tile_rows + tile_row;
        strip.values[block * BLOCK_ELEMS + zorder(r, slot)]
    }

    /// The 16 metadata words of `mma.sp` k-step `pair` in `(strip,
    /// tile_row)`, decoding the interleave if present.
    pub fn metadata_words(&self, s: usize, tile_row: usize, pair: usize) -> [u32; ROWS] {
        let strip = &self.strips[s];
        let tile_rows = strip.height / MMA_TILE;
        let pairs = strip.windows.div_ceil(2);
        debug_assert!(pair < pairs);
        if !self.interleaved {
            let base = (tile_row * pairs + pair) * ROWS;
            let mut words = [0u32; ROWS];
            words.copy_from_slice(&strip.metadata[base..base + ROWS]);
            return words;
        }
        // Interleaved: steps are stored two at a time in 32-word blocks.
        let duo = pair / 2;
        let duos = pairs.div_ceil(2);
        debug_assert!(tile_row < tile_rows);
        let base = (tile_row * duos + duo) * 32;
        let block: [u32; 32] = strip.metadata[base..base + 32]
            .try_into()
            .expect("interleave block is 32 words");
        let (op0, op1) = sptc::metadata::deinterleave_two_ops(&block);
        if pair.is_multiple_of(2) {
            op0
        } else {
            op1
        }
    }

    /// Bytes of the format as laid out by this implementation
    /// (values f16, `col_idx` u32, `block_col_idx` u8, metadata u32).
    pub fn measured_bytes(&self) -> usize {
        self.strips
            .iter()
            .map(|s| {
                s.values.len() * 2
                    + s.col_idx.len() * 4
                    + s.block_col_idx.len()
                    + s.metadata.len() * 4
            })
            .sum()
    }

    /// The paper's §4.6 analytic footprint in bytes (which charges 4
    /// bytes per index entry and ignores the savings from deleted
    /// zero columns): `5MK/8 + 4MK/BLOCK_TILE + 4MK/MMA_TILE`.
    pub fn paper_analytic_bytes(m: usize, k: usize, block_tile: usize) -> f64 {
        let mk = (m * k) as f64;
        5.0 * mk / 8.0 + 4.0 * mk / block_tile as f64 + 4.0 * mk / MMA_TILE as f64
    }

    /// The paper's footprint as a fraction of the dense f16 matrix
    /// (`2MK` bytes): 56.25% / 50% / 46.87% for `BLOCK_TILE` 16/32/64.
    pub fn paper_analytic_fraction(block_tile: usize) -> f64 {
        // Independent of M and K.
        Self::paper_analytic_bytes(16, 16, block_tile) / (2.0 * 16.0 * 16.0)
    }
}

fn build_strip(a: &Matrix, sp: &StripPlan, interleaved: bool) -> StripFormat {
    let tile_rows = sp.tile_rows();
    let windows = sp.windows();
    let mut block_col_idx = Vec::with_capacity(windows * tile_rows * MMA_TILE);
    let mut values = Vec::with_capacity(windows * tile_rows * BLOCK_ELEMS);

    // Per-(window, tile_row): compress the reordered tile.
    // Metadata is assembled per k-step (window pair) afterwards.
    // meta_half[tile_row][window][r] = 16-bit half-word of row r.
    let mut meta_half = vec![vec![[0u16; ROWS]; windows]; tile_rows];

    // Iteration must stay window-major (the value layout depends on
    // it) while meta_half is tile_row-major, hence the index loops.
    #[allow(clippy::needless_range_loop)]
    for w in 0..windows {
        for tr in 0..tile_rows {
            let reorder = sp.tile(w, tr);
            block_col_idx.extend_from_slice(&reorder.perm);

            let mut block = vec![F16::ZERO; BLOCK_ELEMS];
            for r in 0..MMA_TILE {
                // Materialize the reordered 16-element row.
                let mut row = [F16::ZERO; MMA_TILE];
                for (pos, cell) in row.iter_mut().enumerate() {
                    if let Some(col) = sp.source_column(w, tr, pos) {
                        let rr = sp.row0 + tr * MMA_TILE + r;
                        if rr < a.rows {
                            *cell = a.get(rr, col);
                        }
                    }
                }
                let compressed = compress_row_2_4(&row).unwrap_or_else(|| {
                    panic!(
                        "plan promised 2:4 at strip row0={} window={w} tile={tr} row={r}",
                        sp.row0
                    )
                });
                let mut half = 0u16;
                for (slot, (&v, &idx)) in compressed
                    .values
                    .iter()
                    .zip(compressed.indices.iter())
                    .enumerate()
                {
                    block[zorder(r, slot)] = v;
                    half |= u16::from(idx & 0b11) << (2 * slot);
                }
                meta_half[tr][w][r] = half;
            }
            values.extend_from_slice(&block);
        }
    }

    // Assemble per-k-step metadata words: low 16 bits = even window,
    // high 16 bits = odd window (the second half of the mma.sp K).
    let pairs = windows.div_ceil(2);
    let mut metadata = Vec::new();
    for meta_tr in &meta_half {
        let step_words: Vec<[u32; ROWS]> = (0..pairs)
            .map(|p| {
                let mut words = [0u32; ROWS];
                for (r, word) in words.iter_mut().enumerate() {
                    let lo = u32::from(meta_tr[2 * p][r]);
                    let hi = if 2 * p + 1 < windows {
                        u32::from(meta_tr[2 * p + 1][r])
                    } else {
                        0
                    };
                    *word = lo | (hi << 16);
                }
                words
            })
            .collect();
        if interleaved {
            for duo in step_words.chunks(2) {
                let zero = [0u32; ROWS];
                let op1 = duo.get(1).unwrap_or(&zero);
                metadata.extend_from_slice(&interleave_two_ops(&duo[0], op1));
            }
        } else {
            for w in &step_words {
                metadata.extend_from_slice(w);
            }
        }
    }

    StripFormat {
        row0: sp.row0,
        height: sp.height,
        windows,
        col_idx: sp.col_order.clone(),
        block_col_idx,
        values,
        metadata,
    }
}

/// Original column feeding reordered position `pos` (0..16) of window
/// `w` in `(strip, tile_row)` — `None` for padded slots. Mirrors
/// [`StripPlan::source_column`] but reads the stored format, which is
/// what the kernel does.
pub fn format_source_column(
    f: &JigsawFormat,
    s: usize,
    window: usize,
    tile_row: usize,
    pos: usize,
) -> Option<usize> {
    let strip = &f.strips[s];
    let tile_rows = strip.height / MMA_TILE;
    let tile = window * tile_rows + tile_row;
    let src_slot = strip.block_col_idx[tile * MMA_TILE + pos] as usize;
    match strip.col_idx[window * MMA_TILE + src_slot] {
        PAD => None,
        c => Some(c as usize),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::JigsawConfig;
    use dlmc::{ValueDist, VectorSparseSpec};

    fn build(sparsity: f64, v: usize, interleaved: bool) -> (Matrix, JigsawFormat) {
        let a = VectorSparseSpec {
            rows: 64,
            cols: 128,
            sparsity,
            v,
            dist: ValueDist::SmallInt,
            seed: 21,
        }
        .generate();
        let plan = ReorderPlan::build(&a, &JigsawConfig::v4(32));
        let format = JigsawFormat::build(&a, &plan, interleaved);
        (a, format)
    }

    #[test]
    fn format_shapes_are_consistent() {
        let (_, f) = build(0.9, 4, false);
        for s in &f.strips {
            let tile_rows = s.height / MMA_TILE;
            assert_eq!(s.col_idx.len(), s.windows * MMA_TILE);
            assert_eq!(s.block_col_idx.len(), s.windows * tile_rows * MMA_TILE);
            assert_eq!(s.values.len(), s.windows * tile_rows * BLOCK_ELEMS);
            let pairs = s.windows.div_ceil(2);
            assert_eq!(s.metadata.len(), tile_rows * pairs * ROWS);
        }
    }

    #[test]
    fn interleaved_metadata_same_words() {
        let (_, plain) = build(0.9, 4, false);
        let (_, inter) = build(0.9, 4, true);
        for s in 0..plain.strips.len() {
            let tile_rows = plain.strips[s].height / MMA_TILE;
            let pairs = plain.strips[s].windows.div_ceil(2);
            for tr in 0..tile_rows {
                for p in 0..pairs {
                    assert_eq!(
                        plain.metadata_words(s, tr, p),
                        inter.metadata_words(s, tr, p),
                        "strip {s} tile {tr} pair {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn values_decompress_back_to_source() {
        // Walk every stored value through its metadata position and
        // check it matches the original matrix element.
        let (a, f) = build(0.85, 2, false);
        for (s, strip) in f.strips.iter().enumerate() {
            let tile_rows = strip.height / MMA_TILE;
            for w in 0..strip.windows {
                for tr in 0..tile_rows {
                    let words = f.metadata_words(s, tr, w / 2);
                    for (r, &word) in words.iter().enumerate().take(MMA_TILE) {
                        let idx = sptc::metadata::unpack_row_metadata(word);
                        // This window occupies the low or high 8 slots.
                        let off = (w % 2) * 8;
                        for slot in 0..8 {
                            let v = f.value(s, w, tr, r, slot);
                            let in_group = idx[off + slot] as usize;
                            let pos = (slot / 2) * 4 + in_group;
                            let expect = format_source_column(&f, s, w, tr, pos)
                                .map(|c| a.get(strip.row0 + tr * MMA_TILE + r, c))
                                .unwrap_or(F16::ZERO);
                            if !v.is_zero() {
                                assert_eq!(v, expect, "s{s} w{w} tr{tr} r{r} slot{slot}");
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn paper_footprint_fractions() {
        assert!((JigsawFormat::paper_analytic_fraction(16) - 0.5625).abs() < 1e-9);
        assert!((JigsawFormat::paper_analytic_fraction(32) - 0.5).abs() < 1e-9);
        assert!((JigsawFormat::paper_analytic_fraction(64) - 0.46875).abs() < 1e-9);
    }

    #[test]
    fn measured_bytes_shrink_with_sparsity() {
        let (_, f95) = build(0.95, 8, true);
        let (_, f80) = build(0.80, 8, true);
        assert!(f95.measured_bytes() < f80.measured_bytes());
    }
}
