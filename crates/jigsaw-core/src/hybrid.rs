//! Hybrid execution — the paper's §4.7 future-work extension.
//!
//! Below ~80% sparsity the pure-SpTC Jigsaw loses ground: windows that
//! cannot be 2:4-reordered trigger eviction retries that *grow* K, and
//! at the other extreme nearly-empty windows waste a full `mma.sp` on
//! a handful of nonzeros. §4.7 sketches the fix: route each data tile
//! to the execution unit that suits its density —
//!
//! * **dense tensor cores** for tiles too dense to reorder (no
//!   metadata, no eviction, `mma.m16n8k16` straight over the window),
//! * **SpTC** for tiles the reorder handles (the base Jigsaw path),
//! * **CUDA cores** for nearly-empty tiles where any tensor-core
//!   instruction would run mostly on zeros.
//!
//! This module implements that router on top of the existing reorder
//! machinery: windows are classified per strip, and the three routes
//! coexist in one kernel launch.

use dlmc::Matrix;
use gpu_sim::{
    simulate_kernel, BlockTrace, GpuSpec, KernelLaunch, KernelStats, MmaOp, TokenAlloc, WarpInstr,
};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::config::{JigsawConfig, MMA_TILE};
use crate::reorder::tile::{reorder_tile, TileReorder, DEFAULT_WORK_LIMIT};
use crate::reorder::{strip::PAD, ColumnMasks};

/// Routing thresholds.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct HybridConfig {
    /// Base kernel configuration (tiling, pipeline flags).
    pub base: JigsawConfig,
    /// Windows with at most this many live columns go to the CUDA
    /// cores (a tensor instruction would be mostly idle).
    pub cuda_max_live: usize,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            base: JigsawConfig::v4(32),
            cuda_max_live: 2,
        }
    }
}

/// Which unit executes a window.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Route {
    /// SpTC with the per-tile reorders of the base path.
    Sparse(Vec<TileReorder>),
    /// Dense tensor core in original window order (no 2:4 needed).
    Dense,
    /// CUDA-core FMAs over the window's nonzeros.
    Cuda,
}

/// One strip's routed windows.
#[derive(Clone, Debug)]
pub struct HybridStrip {
    /// First row.
    pub row0: usize,
    /// Strip height.
    pub height: usize,
    /// Original column per slot, `windows * 16` entries, [`PAD`]-padded.
    pub col_order: Vec<u32>,
    /// Route per window.
    pub routes: Vec<Route>,
    /// All-zero columns skipped.
    pub zero_cols: usize,
    /// Nonzeros in the strip (drives the CUDA-route cost model).
    pub nnz: usize,
}

impl HybridStrip {
    /// Number of windows.
    pub fn windows(&self) -> usize {
        self.routes.len()
    }
}

/// The routed plan for a whole matrix.
#[derive(Clone, Debug)]
pub struct HybridPlan {
    /// Matrix height.
    pub m: usize,
    /// Matrix width.
    pub k: usize,
    /// Thresholds used.
    pub config: HybridConfig,
    /// Per-strip routing.
    pub strips: Vec<HybridStrip>,
}

/// Routing census.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct HybridStats {
    /// Windows on the SpTC route.
    pub sparse_windows: usize,
    /// Windows on the dense-tensor route.
    pub dense_windows: usize,
    /// Windows on the CUDA route.
    pub cuda_windows: usize,
}

impl HybridPlan {
    /// Builds the routed plan. Unlike the base reorder there is no
    /// eviction retry: a window that cannot satisfy 2:4 simply takes
    /// the dense route, so K never grows.
    pub fn build(a: &Matrix, config: HybridConfig) -> HybridPlan {
        assert_eq!(a.rows % MMA_TILE, 0);
        let bt = config.base.block_tile_m;
        let bank_aware = config.base.bank_conflict_elimination;
        let strip_starts: Vec<usize> = (0..a.rows).step_by(bt).collect();
        let strips: Vec<HybridStrip> = strip_starts
            .par_iter()
            .map(|&row0| {
                let height = bt.min(a.rows - row0);
                build_strip(a, row0, height, bank_aware, config.cuda_max_live)
            })
            .collect();
        HybridPlan {
            m: a.rows,
            k: a.cols,
            config,
            strips,
        }
    }

    /// Routing census.
    pub fn stats(&self) -> HybridStats {
        let mut s = HybridStats::default();
        for strip in &self.strips {
            for r in &strip.routes {
                match r {
                    Route::Sparse(_) => s.sparse_windows += 1,
                    Route::Dense => s.dense_windows += 1,
                    Route::Cuda => s.cuda_windows += 1,
                }
            }
        }
        s
    }

    /// Functional execution: `C = A × B` honoring the routes (all
    /// routes compute the same math; this validates coverage).
    pub fn execute(&self, a: &Matrix, b: &Matrix) -> Vec<f32> {
        assert_eq!(self.k, b.rows);
        let n = b.cols;
        let mut c = vec![0.0f32; self.m * n];
        for strip in &self.strips {
            for w in 0..strip.windows() {
                for slot in 0..MMA_TILE {
                    let col = strip.col_order[w * MMA_TILE + slot];
                    if col == PAD {
                        continue;
                    }
                    let col = col as usize;
                    for r in strip.row0..strip.row0 + strip.height {
                        let v = a.get(r, col);
                        if v.is_zero() {
                            continue;
                        }
                        let vf = v.to_f32();
                        let b_row = b.row(col);
                        let c_row = &mut c[r * n..(r + 1) * n];
                        for (acc, bv) in c_row.iter_mut().zip(b_row) {
                            *acc += vf * bv.to_f32();
                        }
                    }
                }
            }
        }
        c
    }

    /// Builds the timing launch.
    pub fn build_launch(&self, n: usize, spec: &GpuSpec) -> KernelLaunch {
        let cfg = &self.config.base;
        let n_blocks = n.div_ceil(cfg.block_tile_n);
        let mut blocks = Vec::with_capacity(self.strips.len() * n_blocks);
        for strip in &self.strips {
            // One trace per strip, shared across its N-tiles.
            let block = std::sync::Arc::new(build_block(strip, cfg, spec));
            blocks.extend(std::iter::repeat_n(block, n_blocks));
        }
        let stats = self.stats();
        let stored = (stats.sparse_windows + stats.dense_windows) * MMA_TILE * 16 * 2
            + stats.cuda_windows * 64;
        KernelLaunch {
            blocks,
            dram_bytes: (stored + self.k * n * 2 + self.m * n * 2) as u64,
            block_bias: Vec::new(),
        }
    }

    /// Simulates the hybrid kernel.
    pub fn simulate(&self, n: usize, spec: &GpuSpec) -> KernelStats {
        simulate_kernel(&self.build_launch(n, spec), spec)
    }
}

fn column_masks(a: &Matrix, row0: usize, slots: &[u32]) -> ColumnMasks {
    let mut masks = [0u16; MMA_TILE];
    for (s, &col) in slots.iter().enumerate() {
        if col == PAD {
            continue;
        }
        for dr in 0..MMA_TILE {
            let r = row0 + dr;
            if r < a.rows && !a.get(r, col as usize).is_zero() {
                masks[s] |= 1 << dr;
            }
        }
    }
    masks
}

fn build_strip(
    a: &Matrix,
    row0: usize,
    height: usize,
    bank_aware: bool,
    cuda_max_live: usize,
) -> HybridStrip {
    let tile_rows = height / MMA_TILE;
    let mut live: Vec<u32> = Vec::new();
    let mut zero_cols = 0usize;
    let mut nnz = 0usize;
    for c in 0..a.cols {
        if a.column_zero_in_strip(c, row0, row0 + height) {
            zero_cols += 1;
        } else {
            live.push(c as u32);
            nnz += (row0..row0 + height)
                .filter(|&r| !a.get(r, c).is_zero())
                .count();
        }
    }

    let mut col_order = Vec::new();
    let mut routes = Vec::new();
    for chunk in live.chunks(MMA_TILE) {
        let mut slots = [PAD; MMA_TILE];
        slots[..chunk.len()].copy_from_slice(chunk);
        if chunk.len() <= cuda_max_live {
            routes.push(Route::Cuda);
        } else {
            // Try the 2:4 reorder for every 16-row tile in the strip;
            // any failure sends the whole window to the dense route.
            let mut tiles = Vec::with_capacity(tile_rows);
            let mut ok = true;
            for tr in 0..tile_rows {
                let masks = column_masks(a, row0 + tr * MMA_TILE, &slots);
                match reorder_tile(&masks, bank_aware, DEFAULT_WORK_LIMIT) {
                    Some(t) => tiles.push(t),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            routes.push(if ok {
                Route::Sparse(tiles)
            } else {
                Route::Dense
            });
        }
        col_order.extend_from_slice(&slots);
    }

    HybridStrip {
        row0,
        height,
        col_order,
        routes,
        zero_cols,
        nnz,
    }
}

fn build_block(strip: &HybridStrip, cfg: &JigsawConfig, spec: &GpuSpec) -> BlockTrace {
    let warps = cfg.warps_per_block();
    let mmas_per_step = cfg.mmas_per_warp_per_step();
    let fma_per_cycle = spec.cuda_fp16_fma_per_cycle_per_scheduler as u32;

    // Partition windows by route.
    let sparse: Vec<&Route> = strip
        .routes
        .iter()
        .filter(|r| matches!(r, Route::Sparse(_)))
        .collect();
    let dense = strip
        .routes
        .iter()
        .filter(|r| matches!(r, Route::Dense))
        .count();
    let cuda = strip
        .routes
        .iter()
        .filter(|r| matches!(r, Route::Cuda))
        .count();

    let sparse_pairs = sparse.len().div_ceil(2);
    let b_slab = (32 * (cfg.block_tile_n + 8) * 2 / warps) as u32;
    let a_slab = ((cfg.block_tile_m * 16 * 2 + (cfg.block_tile_m / 16) * 64) / warps) as u32;

    let trace_for = |_wi: usize| {
        let mut t = TokenAlloc::new();
        let mut trace: Vec<WarpInstr> = Vec::new();
        trace.push(WarpInstr::CudaOp {
            cycles: 20,
            consumes: vec![],
            produces: None,
        });
        let mut acc: Vec<Option<u32>> = vec![None; mmas_per_step];

        // SpTC route: the base Jigsaw inner loop (condensed: deep
        // pipeline + interleaved metadata, conflict-free B).
        for p in 0..sparse_pairs {
            trace.push(WarpInstr::CpAsync {
                bytes: b_slab,
                group: 0,
                consumes: vec![],
            });
            trace.push(WarpInstr::CpAsync {
                bytes: a_slab,
                group: 0,
                consumes: vec![],
            });
            trace.push(WarpInstr::CommitGroup { group: 0 });
            trace.push(WarpInstr::WaitGroup {
                pending_allowed: u8::from(p + 1 < sparse_pairs),
            });
            trace.push(WarpInstr::Barrier);
            let m_tok = t.fresh();
            if p % 2 == 0 {
                trace.push(WarpInstr::Ldmatrix {
                    phases: 1,
                    total_ways: 1,
                    produces: Some(m_tok),
                    consumes: vec![],
                });
            }
            let a_tok = t.fresh();
            trace.push(WarpInstr::Ldmatrix {
                phases: 4,
                total_ways: 4,
                produces: Some(a_tok),
                consumes: vec![],
            });
            for slot in acc.iter_mut() {
                let b_tok = t.fresh();
                trace.push(WarpInstr::Ldmatrix {
                    phases: 4,
                    total_ways: 4,
                    produces: Some(b_tok),
                    consumes: vec![],
                });
                let d = t.fresh();
                let mut consumes = vec![a_tok, b_tok, m_tok];
                if let Some(prev) = slot {
                    consumes.push(*prev);
                }
                trace.push(WarpInstr::Mma {
                    op: MmaOp::SparseM16N8K32,
                    consumes,
                    produces: Some(d),
                });
                *slot = Some(d);
            }
        }

        // Dense route: one k16 window per dense mma batch — twice the
        // tensor work per window, but no metadata and no eviction.
        // Double-buffered like the sparse route.
        if dense > 0 {
            trace.push(WarpInstr::CpAsync {
                bytes: b_slab / 2,
                group: 0,
                consumes: vec![],
            });
            trace.push(WarpInstr::CommitGroup { group: 0 });
        }
        for d in 0..dense {
            if d + 1 < dense {
                trace.push(WarpInstr::CpAsync {
                    bytes: b_slab / 2,
                    group: 0,
                    consumes: vec![],
                });
                trace.push(WarpInstr::CommitGroup { group: 0 });
            }
            trace.push(WarpInstr::WaitGroup {
                pending_allowed: u8::from(d + 1 < dense),
            });
            trace.push(WarpInstr::Barrier);
            let a_tok = t.fresh();
            trace.push(WarpInstr::Ldmatrix {
                phases: 4,
                total_ways: 4,
                produces: Some(a_tok),
                consumes: vec![],
            });
            for slot in acc.iter_mut() {
                let b_tok = t.fresh();
                trace.push(WarpInstr::Ldmatrix {
                    phases: 2,
                    total_ways: 2,
                    produces: Some(b_tok),
                    consumes: vec![],
                });
                let d = t.fresh();
                let mut consumes = vec![a_tok, b_tok];
                if let Some(prev) = slot {
                    consumes.push(*prev);
                }
                trace.push(WarpInstr::Mma {
                    op: MmaOp::DenseM16N8K16,
                    consumes,
                    produces: Some(d),
                });
                *slot = Some(d);
            }
        }

        // CUDA route: gather + FMA over the few live columns.
        if cuda > 0 {
            let nnz_share = (strip.nnz / warps).max(1) as u32;
            let useful = nnz_share * (cfg.warp_tile_n as u32);
            let g = t.fresh();
            trace.push(WarpInstr::LdGlobal {
                bytes: cuda as u32 * 64,
                transactions: cuda as u32,
                produces: Some(g),
                l2_hit: true,
                consumes: vec![],
            });
            trace.push(WarpInstr::CudaOp {
                cycles: (useful / fma_per_cycle).max(1),
                consumes: vec![g],
                produces: None,
            });
        }

        trace.push(WarpInstr::StGlobal {
            bytes: (cfg.warp_tile_m * cfg.warp_tile_n * 2) as u32,
            consumes: acc.into_iter().flatten().collect(),
        });
        trace
    };

    BlockTrace {
        warps: (0..warps).map(trace_for).collect(),
        smem_bytes: cfg.smem_bytes(),
        gmem: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlmc::{dense_rhs, ValueDist, VectorSparseSpec};

    fn gen(sparsity: f64, v: usize, seed: u64) -> Matrix {
        VectorSparseSpec {
            rows: 64,
            cols: 128,
            sparsity,
            v,
            dist: ValueDist::SmallInt,
            seed,
        }
        .generate()
    }

    #[test]
    fn execution_matches_reference_at_all_densities() {
        for sparsity in [0.3, 0.5, 0.7, 0.9] {
            let a = gen(sparsity, 2, 8);
            let b = dense_rhs(128, 24, ValueDist::SmallInt, 9);
            let plan = HybridPlan::build(&a, HybridConfig::default());
            assert_eq!(
                plan.execute(&a, &b),
                a.matmul_reference(&b),
                "sparsity {sparsity}"
            );
        }
    }

    #[test]
    fn dense_input_routes_to_dense_tensor_cores() {
        let a = Matrix::from_f32(32, 64, &[1.0; 32 * 64]);
        let plan = HybridPlan::build(&a, HybridConfig::default());
        let stats = plan.stats();
        assert!(stats.dense_windows > 0);
        assert_eq!(stats.sparse_windows, 0, "dense windows cannot be 2:4");
        // Crucially, K never grows: windows == ceil(live/16).
        let windows: usize = plan.strips.iter().map(|s| s.windows()).sum();
        assert_eq!(windows, (64usize.div_ceil(16)) * plan.strips.len());
    }

    #[test]
    fn sparse_input_routes_to_sptc() {
        let a = gen(0.95, 8, 10);
        let plan = HybridPlan::build(&a, HybridConfig::default());
        let stats = plan.stats();
        assert!(stats.sparse_windows > 0);
        assert_eq!(stats.dense_windows, 0);
    }

    #[test]
    fn nearly_empty_strips_route_to_cuda() {
        let mut a = Matrix::zeros(32, 64);
        a.set(3, 10, sptc::F16::ONE);
        a.set(20, 11, sptc::F16::ONE);
        let plan = HybridPlan::build(&a, HybridConfig::default());
        let stats = plan.stats();
        assert_eq!(stats.cuda_windows, plan.strips.len());
        assert_eq!(stats.sparse_windows + stats.dense_windows, 0);
    }

    #[test]
    fn hybrid_competitive_below_80_percent_without_retry() {
        // §4.7's dense fallback: at moderate sparsity the eviction-based
        // retry of the pure-SpTC path pads windows down to ~8 live
        // columns — throughput-equivalent to the dense-tensor route —
        // so the hybrid must stay competitive (here: within 30%) while
        // eliminating the reorder-retry search entirely.
        let spec = GpuSpec::a100();
        let a = VectorSparseSpec {
            rows: 512,
            cols: 512,
            sparsity: 0.55,
            v: 2,
            dist: ValueDist::Uniform,
            seed: 11,
        }
        .generate();
        let base_plan = crate::ReorderPlan::build(&a, &JigsawConfig::v4(32));
        assert!(
            base_plan.stats().evictions > 0,
            "55% sparsity must trigger the base path's retries"
        );
        let base = crate::JigsawSpmm::plan(&a, JigsawConfig::v4(32))
            .unwrap()
            .simulate(256, &spec)
            .duration_cycles;
        let plan = HybridPlan::build(&a, HybridConfig::default());
        let hybrid = plan.simulate(256, &spec).duration_cycles;
        assert!(plan.stats().dense_windows > 0, "dense fallback engaged");
        assert!(
            hybrid < base * 1.3,
            "hybrid {hybrid} should stay within 30% of base {base}"
        );
        // And K never grows: window count stays at ceil(live/16).
        for strip in &plan.strips {
            assert!(strip.windows() * 16 <= a.cols + 15);
        }
    }

    #[test]
    fn hybrid_wins_on_scrappy_tiles() {
        // A matrix of nearly-empty strips: the CUDA route beats paying
        // a full mma.sp pipeline per two nonzero columns.
        let mut a = Matrix::zeros(512, 512);
        for strip in 0..512 / 32 {
            a.set(strip * 32 + 3, (strip * 7) % 512, sptc::F16::ONE);
            a.set(strip * 32 + 17, (strip * 13) % 512, sptc::F16::ONE);
        }
        let spec = GpuSpec::a100();
        let base = crate::JigsawSpmm::plan(&a, JigsawConfig::v4(32))
            .unwrap()
            .simulate(256, &spec)
            .duration_cycles;
        let plan = HybridPlan::build(&a, HybridConfig::default());
        assert!(plan.stats().cuda_windows > 0);
        let hybrid = plan.simulate(256, &spec).duration_cycles;
        assert!(
            hybrid <= base,
            "hybrid {hybrid} should not lose to base {base} on scrappy tiles"
        );
    }

    #[test]
    fn hybrid_tracks_base_at_high_sparsity() {
        let spec = GpuSpec::a100();
        let a = gen(0.95, 8, 12);
        let base = crate::JigsawSpmm::plan(&a, JigsawConfig::v4(32))
            .unwrap()
            .simulate(64, &spec)
            .duration_cycles;
        let hybrid = HybridPlan::build(&a, HybridConfig::default())
            .simulate(64, &spec)
            .duration_cycles;
        // Same route for nearly everything -> within 2x of each other.
        assert!(hybrid < base * 2.0 && base < hybrid * 2.0);
    }
}
