//! Lowering the Jigsaw SpMM kernel to `gpu-sim` warp traces.
//!
//! The kernel follows the paper's §3.1/§3.4 structure: each thread
//! block owns a `BLOCK_TILE_M × BLOCK_TILE_N` tile of C; per 32-column
//! k-step it stages the gathered B slab and the compressed A slab in
//! shared memory with `cp.async`, then every warp runs `ldmatrix` +
//! `mma.sp.m16n8k32` over its `WARP_TILE`. The [`crate::config::JigsawConfig`]
//! toggles reproduce the ablation versions:
//!
//! * no `bank_conflict_elimination` → the B tile is stored unpadded, so
//!   every `ldmatrix` phase is an 8-way bank conflict (Figure 7 (a)),
//! * no `deep_pipeline` → `col_idx_array` for the next step is loaded
//!   synchronously, and the B-slab `cp.async` stalls on it (long
//!   scoreboard, §3.4.2),
//! * no `metadata_interleave` → metadata loads issue per k-step with a
//!   branchy half-warp pattern instead of one `ldmatrix` per two steps
//!   (§3.4.3).

use gpu_sim::{BlockTrace, KernelLaunch, MemRef, MemSegment, MmaOp, TokenAlloc, WarpInstr};

use crate::config::{JigsawConfig, MMA_TILE};
use crate::format::JigsawFormat;
use crate::reorder::{TileReorder, PAD};

/// Virtual address-space bases for the cache model's annotations
/// (DESIGN.md §18). The regions never alias; only B and C segments are
/// `scaled` (shifted by the per-block N-tile bias), so the compressed
/// A payload is genuinely shared across a strip's N-tile replicas
/// while each replica reads its own B/C columns.
const B_BASE: u64 = 1 << 41;
const C_BASE: u64 = 1 << 42;
const FMT_BASE: u64 = 1 << 43;
/// Per-strip stride inside the format region.
const STRIP_STRIDE: u64 = 1 << 28;
/// Offset of the staged A/metadata payload within a strip's region
/// (below it: the col_idx arrays).
const A_OFF: u64 = 1 << 24;

/// Bank-conflict ways of one `ldmatrix` 8-row phase under the padded
/// layout: rows collide iff their source positions are congruent mod 8
/// (Figure 7 (b)); the replay count is the largest residue class.
fn phase_ways_padded(half: &[u8]) -> u32 {
    let mut counts = [0u32; 8];
    for &p in half {
        counts[(p % 8) as usize] += 1;
    }
    counts.iter().copied().max().unwrap_or(1).max(1)
}

/// Total ways of the 4-phase B `ldmatrix` for one k-step: two phases
/// per window, two windows. `None` tile (past the last window) is
/// conflict-free.
fn b_ldmatrix_ways(padded: bool, t0: Option<&TileReorder>, t1: Option<&TileReorder>) -> (u32, u32) {
    let phases = 4u32;
    if !padded {
        // Unpadded 64-wide f16 rows: all 8 rows of every phase start in
        // the same 4-bank group -> 8-way replay per phase.
        return (phases, 8 * phases);
    }
    let mut total = 0u32;
    for t in [t0, t1] {
        match t {
            Some(t) => {
                total += phase_ways_padded(&t.perm[0..8]);
                total += phase_ways_padded(&t.perm[8..16]);
            }
            None => total += 2,
        }
    }
    (phases, total)
}

/// Builds the kernel launch for `C[M×N] = A × B` with A in `format`.
pub fn build_launch(format: &JigsawFormat, n: usize, config: &JigsawConfig) -> KernelLaunch {
    config.validate().expect("invalid tiling configuration");
    assert_eq!(
        format.block_tile_m, config.block_tile_m,
        "format was planned for a different BLOCK_TILE_M"
    );
    let n_blocks = n.div_ceil(config.block_tile_n);
    let mut blocks = Vec::with_capacity(format.strips.len() * n_blocks);
    let mut block_bias = Vec::with_capacity(format.strips.len() * n_blocks);
    for (si, _) in format.strips.iter().enumerate() {
        // All n-blocks of a strip execute the same trace: build it
        // once and share it, so large-N launches stay O(strips) in
        // memory instead of O(strips × n_blocks). The trace's B/C
        // segments are built for N-tile 0 and marked `scaled`; each
        // replica's bias shifts them to its own column slice.
        let block = std::sync::Arc::new(build_block(format, si, n, config));
        blocks.extend(std::iter::repeat_n(block, n_blocks));
        block_bias.extend((0..n_blocks).map(|j| (j * config.block_tile_n * 2) as u64));
    }

    // Compulsory DRAM traffic: the stored format once, B once, C once.
    let dram_bytes =
        format.measured_bytes() as u64 + (format.k * n * 2) as u64 + (format.m * n * 2) as u64;
    KernelLaunch {
        blocks,
        dram_bytes,
        block_bias,
    }
}

fn build_block(format: &JigsawFormat, si: usize, n: usize, config: &JigsawConfig) -> BlockTrace {
    let strip = &format.strips[si];
    let tile_rows = strip.height / MMA_TILE;
    let pairs = strip.windows.div_ceil(2);
    let warps = config.warps_per_block();
    let warps_n = config.block_tile_n / config.warp_tile_n;
    let mmas_per_step = config.mmas_per_warp_per_step();

    let mut warp_traces = Vec::with_capacity(warps);
    let mut gmem = Vec::with_capacity(warps);
    for wi in 0..warps {
        let wm = wi / warps_n; // which 16-row tile row this warp owns
        let (trace, refs) = build_warp_trace(
            format,
            si,
            wi,
            wm.min(tile_rows.saturating_sub(1)),
            pairs,
            warps,
            mmas_per_step,
            n,
            config,
        );
        warp_traces.push(trace);
        gmem.push(refs);
    }

    BlockTrace {
        warps: warp_traces,
        smem_bytes: config.smem_bytes(),
        gmem,
    }
}

#[allow(clippy::too_many_arguments)]
fn build_warp_trace(
    format: &JigsawFormat,
    si: usize,
    wi: usize,
    tile_row: usize,
    pairs: usize,
    warps: usize,
    mmas_per_step: usize,
    n: usize,
    config: &JigsawConfig,
) -> (Vec<WarpInstr>, Vec<MemRef>) {
    let strip = &format.strips[si];
    let mut t = TokenAlloc::new();
    let mut trace: Vec<WarpInstr> = Vec::new();
    // One entry per CpAsync/LdGlobal/StGlobal, in emit order — the
    // engine's L1 probe walks this in lock-step with the trace.
    let mut refs: Vec<MemRef> = Vec::new();
    let padded = config.bank_conflict_elimination;
    let deep = config.deep_pipeline;
    let warps_n = config.block_tile_n / config.warp_tile_n;
    let strip_base = FMT_BASE + si as u64 * STRIP_STRIDE;

    // Per-warp share of the staged bytes per k-step.
    let b_slab = (32 * (config.block_tile_n + if padded { 8 } else { 0 }) * 2 / warps) as u32;
    let a_slab = ((config.block_tile_m * 16 * 2 + (config.block_tile_m / 16) * 64) / warps) as u32;
    let ci_bytes = (32 * 4 / warps).max(4) as u32;

    // This warp's C rows: `warp_tile_m` rows starting at its 16-row
    // tile, offset to its n-subtile columns (for N-tile 0; `scaled`).
    let c_refs = |config: &JigsawConfig| -> MemRef {
        let col_off = ((wi % warps_n) * config.warp_tile_n * 2) as u64;
        (0..config.warp_tile_m)
            .map(|i| MemSegment {
                addr: C_BASE
                    + (strip.row0 + tile_row * MMA_TILE + i) as u64 * n as u64 * 2
                    + col_off,
                bytes: (config.warp_tile_n * 2) as u32,
                scaled: true,
            })
            .collect()
    };

    if pairs == 0 {
        // Nothing to compute: zero-fill C and leave.
        trace.push(WarpInstr::CudaOp {
            cycles: 4,
            consumes: vec![],
            produces: None,
        });
        trace.push(WarpInstr::StGlobal {
            bytes: (config.warp_tile_m * config.warp_tile_n * 2) as u32,
            consumes: vec![],
        });
        refs.push(c_refs(config));
        return (trace, refs);
    }

    // Block prologue: grid/index setup, format header decode, C-tile
    // register initialization.
    trace.push(WarpInstr::CudaOp {
        cycles: 20,
        consumes: vec![],
        produces: None,
    });

    // Tracks commit order so WaitGroup pending counts are exact.
    let mut outstanding: Vec<&'static str> = Vec::new();

    // This warp's share of the per-step col_idx array (unscaled: all
    // N-tile replicas of the strip re-read the same words).
    let ci_ref = |step: usize| -> MemRef {
        vec![MemSegment {
            addr: strip_base + (step * warps + wi) as u64 * ci_bytes as u64,
            bytes: ci_bytes,
            scaled: false,
        }]
    };
    // This warp's share of the 32 gathered B rows of pair `p`: whole
    // rows of the N-tile-0 column slice, skipping PAD entries. The B
    // row address is what the cache model is really about — row reuse
    // across k-steps and across N-tile replicas is where vector
    // sparsity pays.
    let b_ref = |p: usize| -> MemRef {
        let rows_per_warp = (32 / warps).max(1);
        let lo = (wi * rows_per_warp).min(32);
        let hi = (lo + rows_per_warp).min(32);
        (lo..hi)
            .filter_map(|r| strip.col_idx.get(2 * p * MMA_TILE + r))
            .filter(|&&col| col != PAD)
            .map(|&col| MemSegment {
                addr: B_BASE + col as u64 * n as u64 * 2,
                bytes: (config.block_tile_n * 2) as u32,
                scaled: true,
            })
            .collect()
    };
    // This warp's share of the staged compressed-A/metadata slab.
    let a_ref = |step: usize| -> MemRef {
        vec![MemSegment {
            addr: strip_base + A_OFF + (step * warps + wi) as u64 * a_slab as u64,
            bytes: a_slab,
            scaled: false,
        }]
    };

    // Issues the staged loads for k-step `p` and commits them as one
    // group. Returns nothing; updates `outstanding`.
    let issue_loads = |p: usize,
                       trace: &mut Vec<WarpInstr>,
                       refs: &mut Vec<MemRef>,
                       t: &mut TokenAlloc,
                       outstanding: &mut Vec<&'static str>| {
        let addr_tok = if deep {
            // Deep pipeline: prefetch col_idx for step p+1 asynchronously
            // (its own group); the col_idx for *this* step was staged two
            // iterations ago and reads from shared memory without a
            // global-latency stall.
            if p + 1 < pairs {
                trace.push(WarpInstr::CpAsync {
                    bytes: ci_bytes,
                    group: 1,
                    consumes: vec![],
                });
                refs.push(ci_ref(p + 1));
                trace.push(WarpInstr::CommitGroup { group: 1 });
                outstanding.push("ci");
            }
            let ci = t.fresh();
            trace.push(WarpInstr::LdShared {
                conflict_ways: 1,
                produces: Some(ci),
                consumes: vec![],
            });
            let addr = t.fresh();
            trace.push(WarpInstr::CudaOp {
                cycles: 2,
                consumes: vec![ci],
                produces: Some(addr),
            });
            addr
        } else {
            // Shallow pipeline: col_idx arrives through a synchronous
            // global load; the B gather below stalls on it.
            let ci = t.fresh();
            trace.push(WarpInstr::LdGlobal {
                bytes: ci_bytes,
                transactions: 1,
                produces: Some(ci),
                l2_hit: false,
                consumes: vec![],
            });
            refs.push(ci_ref(p));
            let addr = t.fresh();
            trace.push(WarpInstr::CudaOp {
                cycles: 2,
                consumes: vec![ci],
                produces: Some(addr),
            });
            addr
        };
        trace.push(WarpInstr::CpAsync {
            bytes: b_slab,
            group: 0,
            consumes: vec![addr_tok],
        });
        refs.push(b_ref(p));
        trace.push(WarpInstr::CpAsync {
            bytes: a_slab,
            group: 0,
            consumes: vec![],
        });
        refs.push(a_ref(p));
        trace.push(WarpInstr::CommitGroup { group: 0 });
        outstanding.push("data");
    };

    // Prologue: stage step 0.
    issue_loads(0, &mut trace, &mut refs, &mut t, &mut outstanding);

    // Rolling accumulator tokens, one chain per n-subtile.
    let mut acc: Vec<Option<u32>> = vec![None; mmas_per_step];
    // Metadata token shared across a duo of k-steps when interleaved.
    let mut meta_tok: Option<u32> = None;

    for p in 0..pairs {
        if p + 1 < pairs {
            issue_loads(p + 1, &mut trace, &mut refs, &mut t, &mut outstanding);
        }
        // Wait until the data group of step p has landed — the oldest
        // still-outstanding data group; everything committed after it
        // may stay in flight.
        let total_committed = outstanding.len();
        let data_idx = outstanding
            .iter()
            .position(|&k| k == "data")
            .expect("data group was committed");
        let pending_allowed = (total_committed - data_idx - 1) as u8;
        trace.push(WarpInstr::WaitGroup { pending_allowed });
        // Engine drains completed groups; mirror that bookkeeping.
        outstanding.drain(..=data_idx);
        trace.push(WarpInstr::Barrier);

        // Metadata for this step.
        let m_tok = if config.metadata_interleave {
            if p % 2 == 0 {
                let tok = t.fresh();
                trace.push(WarpInstr::Ldmatrix {
                    phases: 1,
                    total_ways: 1,
                    produces: Some(tok),
                    consumes: vec![],
                });
                meta_tok = Some(tok);
                tok
            } else {
                meta_tok.expect("odd step reuses the duo's metadata")
            }
        } else {
            // Naive pattern: half the lanes branch to load, plus the
            // divergence/selection overhead the paper describes.
            let tok = t.fresh();
            trace.push(WarpInstr::LdShared {
                conflict_ways: 1,
                produces: Some(tok),
                consumes: vec![],
            });
            trace.push(WarpInstr::CudaOp {
                cycles: 2,
                consumes: vec![tok],
                produces: None,
            });
            tok
        };

        // Compressed-A fragments: one ldmatrix.x4, Z-swizzled layout is
        // conflict-free.
        let a_tok = t.fresh();
        trace.push(WarpInstr::Ldmatrix {
            phases: 4,
            total_ways: 4,
            produces: Some(a_tok),
            consumes: vec![],
        });

        // B fragment conflict profile for this (step, tile row).
        let t0 = (2 * p < strip.windows).then(|| strip_tile(format, si, 2 * p, tile_row));
        let t1 = (2 * p + 1 < strip.windows).then(|| strip_tile(format, si, 2 * p + 1, tile_row));
        let (phases, ways) = b_ldmatrix_ways(padded, t0.as_ref(), t1.as_ref());

        for acc_slot in acc.iter_mut().take(mmas_per_step) {
            let b_tok = t.fresh();
            trace.push(WarpInstr::Ldmatrix {
                phases,
                total_ways: ways,
                produces: Some(b_tok),
                consumes: vec![],
            });
            let d_tok = t.fresh();
            let mut consumes = vec![a_tok, b_tok, m_tok];
            if let Some(prev) = acc_slot {
                consumes.push(*prev);
            }
            trace.push(WarpInstr::Mma {
                op: MmaOp::SparseM16N8K32,
                consumes,
                produces: Some(d_tok),
            });
            *acc_slot = Some(d_tok);
        }
        // Loop bookkeeping (index increments, predicates).
        trace.push(WarpInstr::CudaOp {
            cycles: 1,
            consumes: vec![],
            produces: None,
        });
    }

    // Epilogue: write the warp's C tile.
    let final_accs: Vec<u32> = acc.into_iter().flatten().collect();
    trace.push(WarpInstr::StGlobal {
        bytes: (config.warp_tile_m * config.warp_tile_n * 2) as u32,
        consumes: final_accs,
    });
    refs.push(c_refs(config));
    (trace, refs)
}

/// Reconstructs the tile reorder of `(window, tile_row)` from the
/// stored `block_col_idx` — the kernel reads the format, not the plan.
fn strip_tile(format: &JigsawFormat, si: usize, window: usize, tile_row: usize) -> TileReorder {
    let strip = &format.strips[si];
    let tile_rows = strip.height / MMA_TILE;
    let tile = window * tile_rows + tile_row;
    let mut perm = [0u8; MMA_TILE];
    perm.copy_from_slice(&strip.block_col_idx[tile * MMA_TILE..(tile + 1) * MMA_TILE]);
    TileReorder {
        perm,
        conflict_pairs: crate::reorder::tile::conflict_pairs_of(&perm),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reorder::ReorderPlan;
    use dlmc::{ValueDist, VectorSparseSpec};
    use gpu_sim::{simulate_kernel, GpuSpec};

    fn format_for(sparsity: f64, v: usize, config: &JigsawConfig) -> JigsawFormat {
        let a = VectorSparseSpec {
            rows: 256,
            cols: 512,
            sparsity,
            v,
            dist: ValueDist::Uniform,
            seed: 33,
        }
        .generate();
        let plan = ReorderPlan::build(&a, config);
        JigsawFormat::build(&a, &plan, config.metadata_interleave)
    }

    #[test]
    fn launch_grid_shape() {
        let cfg = JigsawConfig::v4(64);
        let f = format_for(0.9, 4, &cfg);
        let launch = build_launch(&f, 256, &cfg);
        // 256/64 strips x 256/64 n-blocks.
        assert_eq!(launch.blocks.len(), 4 * 4);
        assert_eq!(launch.blocks[0].warps.len(), 8);
    }

    #[test]
    fn unpadded_kernel_has_bank_conflicts_padded_does_not_mostly() {
        let v0 = JigsawConfig::v0();
        let v1 = JigsawConfig::v1();
        let f0 = format_for(0.95, 8, &v0);
        let f1 = format_for(0.95, 8, &v1);
        let spec = GpuSpec::a100();
        let s0 = simulate_kernel(&build_launch(&f0, 512, &v0), &spec);
        let s1 = simulate_kernel(&build_launch(&f1, 512, &v1), &spec);
        assert!(
            s0.totals.smem_bank_conflicts > 20 * s1.totals.smem_bank_conflicts.max(1),
            "v0 {} vs v1 {}",
            s0.totals.smem_bank_conflicts,
            s1.totals.smem_bank_conflicts
        );
        assert!(s0.duration_cycles > s1.duration_cycles);
    }

    #[test]
    fn deep_pipeline_cuts_long_scoreboard() {
        let v1 = JigsawConfig::v1();
        let v2 = JigsawConfig::v2();
        let f1 = format_for(0.95, 8, &v1);
        let f2 = format_for(0.95, 8, &v2);
        let spec = GpuSpec::a100();
        let s1 = simulate_kernel(&build_launch(&f1, 512, &v1), &spec);
        let s2 = simulate_kernel(&build_launch(&f2, 512, &v2), &spec);
        assert!(
            s2.long_scoreboard_per_instr < s1.long_scoreboard_per_instr,
            "v1 {} vs v2 {}",
            s1.long_scoreboard_per_instr,
            s2.long_scoreboard_per_instr
        );
        assert!(s2.duration_cycles <= s1.duration_cycles);
    }

    #[test]
    fn interleave_reduces_smem_instructions() {
        let v2 = JigsawConfig::v2();
        let v3 = JigsawConfig::v3();
        let f2 = format_for(0.95, 8, &v2);
        let f3 = format_for(0.95, 8, &v3);
        let spec = GpuSpec::a100();
        let s2 = simulate_kernel(&build_launch(&f2, 512, &v2), &spec);
        let s3 = simulate_kernel(&build_launch(&f3, 512, &v3), &spec);
        let reduction =
            1.0 - s3.totals.smem_instructions as f64 / s2.totals.smem_instructions as f64;
        // Paper: 7.78% fewer shared-memory access instructions.
        assert!(
            (0.02..0.15).contains(&reduction),
            "smem instruction reduction {reduction}"
        );
        assert!(s3.duration_cycles <= s2.duration_cycles);
    }

    #[test]
    fn sparser_input_runs_faster() {
        let cfg = JigsawConfig::v4(32);
        let spec = GpuSpec::a100();
        let f80 = format_for(0.80, 8, &cfg);
        let f98 = format_for(0.98, 8, &cfg);
        let s80 = simulate_kernel(&build_launch(&f80, 512, &cfg), &spec);
        let s98 = simulate_kernel(&build_launch(&f98, 512, &cfg), &spec);
        assert!(
            s98.duration_cycles < s80.duration_cycles,
            "98%: {} vs 80%: {}",
            s98.duration_cycles,
            s80.duration_cycles
        );
    }

    #[test]
    fn empty_strip_block_is_trivial() {
        let a = dlmc::Matrix::zeros(64, 64);
        let cfg = JigsawConfig::v4(64);
        let plan = ReorderPlan::build(&a, &cfg);
        let f = JigsawFormat::build(&a, &plan, true);
        let launch = build_launch(&f, 64, &cfg);
        let stats = simulate_kernel(&launch, &GpuSpec::a100());
        assert_eq!(stats.totals.mma_instructions, 0);
        assert!(stats.duration_cycles > 0.0);
    }
}
