//! # jigsaw-core — the paper's primary contribution
//!
//! Reproduction of *"Jigsaw: Accelerating SpMM with Vector Sparsity on
//! Sparse Tensor Core"* (ICPP 2024): a vector-sparse `C = A × B` SpMM
//! that runs unstructured 1-D-pruned weight matrices on the 2:4-only
//! Sparse Tensor Core by
//!
//! 1. **multi-granularity sparsity reorder** ([`reorder`]) — zero
//!    columns move to the end of each `BLOCK_TILE` row strip and are
//!    skipped; each 16×16 `MMA_TILE` is column-reordered into the 2:4
//!    pattern (Algorithm 1, with reorder-retry eviction),
//! 2. **reorder-aware storage format** ([`format`]) — `col_idx_array` /
//!    `block_col_idx_array` / SpTC metadata plus Z-swizzled compressed
//!    values, and
//! 3. **kernel optimizations** ([`kernel`]) — bank-conflict
//!    elimination, the deepened async-copy pipeline, and the
//!    interleaved metadata loading pattern.
//!
//! The SpTC itself and the A100 are emulated by the [`sptc`] and
//! [`gpu_sim`] substrate crates (see DESIGN.md §2).
//!
//! ```
//! use dlmc::{dense_rhs, ValueDist, VectorSparseSpec};
//! use jigsaw_core::{JigsawConfig, JigsawSpmm};
//!
//! let a = VectorSparseSpec::new(128, 256, 0.9, 4, 7).generate();
//! let b = dense_rhs(256, 64, ValueDist::Uniform, 8);
//! let spmm = JigsawSpmm::plan(&a, JigsawConfig::v4(32)).expect("valid plan");
//! let run = spmm.run(&b, &gpu_sim::GpuSpec::a100());
//! assert_eq!(run.c.len(), 128 * 64);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod compiled;
pub mod config;
pub mod errors;
pub mod exec;
pub mod fault;
pub mod format;
pub mod hybrid;
pub mod kernel;
pub mod pool;
pub mod reorder;
pub mod serialize;
pub mod session;
pub mod spmm;
pub mod swizzle;
pub mod sync;

pub use analysis::{forecast, jigsaw_expected_win, strip_census, ReorderForecast, StripCensus};
pub use compiled::{
    panel_cuts, panel_width, panelize_into, panelize_parts_into, CompiledKernel, ExecOptions,
    ExecOptionsBuilder, KernelKind, KernelPolicy, PanelizedB, Workload, PANEL_TARGET_BYTES,
};
pub use config::{ConfigBuilder, JigsawConfig, MMA_N, MMA_TILE};
pub use errors::{CompileError, ConfigError, ExecError, OptionsError, PlanError};
pub use exec::{execute_fast, execute_via_fragments, max_relative_error};
pub use fault::{FaultError, FaultKind, FaultSpec};
pub use format::{format_source_column, JigsawFormat};
pub use hybrid::{HybridConfig, HybridPlan, HybridStats, Route};
pub use kernel::build_launch;
pub use pool::{PoolBuf, PoolStats, WorkspacePool};
pub use reorder::{ReorderPlan, ReorderStats};
pub use session::{ForwardReport, Layer, Session, SessionError};
pub use spmm::{JigsawSpmm, SpmmRun, TuneReport};
pub use sync::{lock_recover, wait_recover, wait_timeout_recover};
