//! Reusable f32 workspace buffers for the execution hot path.
//!
//! Every SpMM execution needs two large transient buffers — the output
//! C and the converted-B panel scratch — whose sizes repeat from call
//! to call in steady-state serving. A [`WorkspacePool`] keeps returned
//! buffers on a shelf so the next acquisition is a `memset`, not an
//! allocation: a warm server performs **zero** per-request C/scratch
//! allocations, observable through [`WorkspacePool::stats`] (and the
//! global `pool.hits` / `pool.misses` counters when tracing is on).

use std::ops::{Deref, DerefMut};
use std::sync::Mutex;

use jigsaw_obs::Counter;

use crate::fault::{self, points};
use crate::sync::lock_recover;

/// Default number of buffers a pool retains.
const DEFAULT_MAX_RETAINED: usize = 16;

/// Snapshot of a pool's accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquisitions satisfied by a shelved buffer of sufficient
    /// capacity (no allocation).
    pub hits: u64,
    /// Acquisitions that had to allocate or grow a buffer.
    pub misses: u64,
    /// Buffers currently shelved.
    pub resident: usize,
}

impl PoolStats {
    /// Hit fraction of all acquisitions (0 when nothing was acquired).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A thread-safe shelf of reusable `Vec<f32>` buffers.
///
/// Acquire with [`WorkspacePool::acquire`]; the returned [`PoolBuf`]
/// hands its storage back on drop. Capacity-based matching means one
/// pool serves mixed sizes (different models, different batch widths):
/// a buffer big enough for the largest request satisfies every smaller
/// one without reallocating.
#[derive(Debug, Default)]
pub struct WorkspacePool {
    shelf: Mutex<Vec<Vec<f32>>>,
    max_retained: usize,
    hits: Counter,
    misses: Counter,
}

impl WorkspacePool {
    /// A pool retaining up to a default number of buffers.
    pub fn new() -> WorkspacePool {
        Self::with_max_retained(DEFAULT_MAX_RETAINED)
    }

    /// A pool retaining up to `max_retained` returned buffers; further
    /// returns are dropped (freed) instead of shelved.
    pub fn with_max_retained(max_retained: usize) -> WorkspacePool {
        WorkspacePool {
            shelf: Mutex::new(Vec::new()),
            max_retained,
            hits: Counter::new(),
            misses: Counter::new(),
        }
    }

    /// Acquires a zeroed buffer of exactly `len` elements.
    ///
    /// A shelved buffer whose capacity already covers `len` is a *hit*
    /// (re-zeroed, never reallocated); anything else is a *miss* that
    /// allocates. Matching is best-fit — the smallest adequate buffer
    /// is taken — so a small acquisition (C) never consumes the shelf's
    /// large buffer (scratch) and forces the next large acquisition to
    /// reallocate. Mirrored onto the global `pool.hits` /
    /// `pool.misses` counters when `jigsaw_obs` tracing is enabled.
    pub fn acquire(&self, len: usize) -> PoolBuf<'_> {
        fault::trip(points::POOL_ACQUIRE);
        let reused = {
            let mut shelf = lock_recover(&self.shelf);
            let found = shelf
                .iter()
                .enumerate()
                .filter(|(_, b)| b.capacity() >= len)
                .min_by_key(|(_, b)| b.capacity())
                .map(|(i, _)| i);
            found.map(|i| shelf.swap_remove(i))
        };
        let hit = reused.is_some();
        if hit {
            self.hits.inc();
        } else {
            self.misses.inc();
        }
        if jigsaw_obs::enabled() {
            jigsaw_obs::global()
                .counter(if hit { "pool.hits" } else { "pool.misses" })
                .inc();
        }
        let mut buf = reused.unwrap_or_default();
        buf.clear();
        buf.resize(len, 0.0);
        PoolBuf { buf, pool: self }
    }

    /// Accounting snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            resident: lock_recover(&self.shelf).len(),
        }
    }

    // `lock_recover` matters here specifically: PoolBuf returns its
    // storage from Drop, which also runs mid-unwind — a poisoned shelf
    // must not turn one panic into a double panic (abort).
    fn give_back(&self, buf: Vec<f32>) {
        let mut shelf = lock_recover(&self.shelf);
        if shelf.len() < self.max_retained {
            shelf.push(buf);
        }
    }
}

/// A pooled buffer; derefs to `[f32]` and returns its storage to the
/// pool on drop. Use [`PoolBuf::into_vec`] to keep the storage instead
/// (counts as permanently borrowing it from the pool).
#[derive(Debug)]
pub struct PoolBuf<'p> {
    buf: Vec<f32>,
    pool: &'p WorkspacePool,
}

impl PoolBuf<'_> {
    /// Detaches the buffer from the pool, keeping its contents.
    pub fn into_vec(mut self) -> Vec<f32> {
        std::mem::take(&mut self.buf)
    }
}

impl Deref for PoolBuf<'_> {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        &self.buf
    }
}

impl DerefMut for PoolBuf<'_> {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.buf
    }
}

impl Drop for PoolBuf<'_> {
    fn drop(&mut self) {
        if self.buf.capacity() > 0 {
            self.pool.give_back(std::mem::take(&mut self.buf));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_acquire_misses_then_hits() {
        let pool = WorkspacePool::new();
        {
            let mut b = pool.acquire(128);
            b[0] = 3.0;
        }
        assert_eq!(
            pool.stats(),
            PoolStats {
                hits: 0,
                misses: 1,
                resident: 1
            }
        );
        {
            let b = pool.acquire(100);
            assert!(b.iter().all(|&v| v == 0.0), "reused buffer is zeroed");
            assert_eq!(b.len(), 100);
        }
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn too_small_shelved_buffer_is_a_miss() {
        let pool = WorkspacePool::new();
        drop(pool.acquire(16));
        let b = pool.acquire(1024);
        assert_eq!(b.len(), 1024);
        let s = pool.stats();
        assert_eq!(s.misses, 2);
    }

    #[test]
    fn best_fit_keeps_mixed_size_pairs_allocation_free() {
        // The execute_pooled pattern: every call acquires a small C
        // then a large scratch. First-fit would hand the large buffer
        // to the small request and re-allocate the large one forever;
        // best-fit reaches steady state after the cold call.
        let pool = WorkspacePool::new();
        for _ in 0..4 {
            let c = pool.acquire(100);
            let scratch = pool.acquire(1000);
            drop(scratch);
            drop(c);
        }
        let s = pool.stats();
        assert_eq!(s.misses, 2, "only the cold call allocates: {s:?}");
        assert_eq!(s.hits, 6);
    }

    #[test]
    fn retention_is_bounded() {
        let pool = WorkspacePool::with_max_retained(2);
        let a = pool.acquire(8);
        let b = pool.acquire(8);
        let c = pool.acquire(8);
        drop(a);
        drop(b);
        drop(c);
        assert_eq!(pool.stats().resident, 2, "third return is dropped");
    }

    #[test]
    fn into_vec_detaches_storage() {
        let pool = WorkspacePool::new();
        let v = pool.acquire(4).into_vec();
        assert_eq!(v.len(), 4);
        assert_eq!(pool.stats().resident, 0, "detached buffer never returns");
    }
}
