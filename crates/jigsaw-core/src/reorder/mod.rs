//! Multi-granularity sparsity reorder (paper §3.2): the `BLOCK_TILE`
//! zero-column extraction composed with the `MMA_TILE` Algorithm-1
//! reorder, applied strip-by-strip over the whole matrix.

pub mod strip;
pub mod tile;

use dlmc::Matrix;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

pub use strip::{live_columns, pack_strip, reorder_strip, StripPlan, PAD};
pub use tile::{
    quad_compatible, reorder_tile, reorder_tile_bidirectional, tile_satisfies_in_place,
    ColumnMasks, TileReorder, TILE,
};

use crate::config::JigsawConfig;

/// The reorder decisions for a whole matrix: one [`StripPlan`] per
/// `BLOCK_TILE_M` row strip.
#[derive(Clone, Debug)]
pub struct ReorderPlan {
    /// Matrix height.
    pub m: usize,
    /// Matrix width (the reduction dimension K).
    pub k: usize,
    /// `BLOCK_TILE_M` used.
    pub block_tile_m: usize,
    /// Per-strip plans, in row order.
    pub strips: Vec<StripPlan>,
}

/// Aggregate statistics of a reorder (drives Figure 11).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ReorderStats {
    /// Paper §4.3 success: the reordered data satisfies 2:4 while
    /// keeping every strip's K no bigger than the original (no severe
    /// reorder retry).
    pub success: bool,
    /// Total 16-column windows across strips (the SpTC work quantum).
    pub total_windows: usize,
    /// Windows the unreordered matrix would need (`ceil(K/16)` per
    /// strip) — the dense-K baseline.
    pub baseline_windows: usize,
    /// All-zero columns skipped, summed over strips.
    pub zero_cols_skipped: usize,
    /// Reorder-retry evictions, summed over strips.
    pub evictions: usize,
    /// Fraction of K each strip computes, averaged (lower = more
    /// compute skipped).
    pub avg_k_fraction: f64,
}

impl ReorderPlan {
    /// Reorders `a` at the granularity `config` selects.
    ///
    /// Precondition: `a.rows` is a multiple of `MMA_TILE` (16) —
    /// [`crate::JigsawSpmm::plan`] checks this and returns
    /// `PlanError::RowsNotTileAligned` before reaching here.
    pub fn build(a: &Matrix, config: &JigsawConfig) -> ReorderPlan {
        Self::build_traced(a, config, &jigsaw_obs::Span::disabled())
    }

    /// [`ReorderPlan::build`] with per-phase spans attached to
    /// `parent`: a `plan.block_reorder` child covering the zero-column
    /// split of every strip and a `plan.tile_reorder` child covering
    /// the window packing + Algorithm-1 reorder.
    pub fn build_traced(
        a: &Matrix,
        config: &JigsawConfig,
        parent: &jigsaw_obs::Span,
    ) -> ReorderPlan {
        assert_eq!(
            a.rows % TILE,
            0,
            "matrix rows must be a multiple of MMA_TILE (16)"
        );
        let bt = config.block_tile_m;
        let bank_aware = config.bank_conflict_elimination;
        let strip_starts: Vec<usize> = (0..a.rows).step_by(bt).collect();

        // BLOCK_TILE phase: zero-column split, one pass over strips.
        let block_span = parent.child("plan.block_reorder");
        let live_sets: Vec<(usize, Vec<u32>, usize)> = strip_starts
            .par_iter()
            .map(|&row0| {
                let height = bt.min(a.rows - row0);
                let (live, zero_cols) = strip::live_columns(a, row0, height);
                (row0, live, zero_cols)
            })
            .collect();
        if block_span.is_recording() {
            block_span.attr("strips", strip_starts.len());
            block_span.attr(
                "zero_cols",
                live_sets.iter().map(|(_, _, z)| *z).sum::<usize>(),
            );
        }
        block_span.finish();

        // MMA_TILE phase: window packing with eviction retry.
        let tile_span = parent.child("plan.tile_reorder");
        let strips: Vec<StripPlan> = live_sets
            .into_par_iter()
            .map(|(row0, live, zero_cols)| {
                let height = bt.min(a.rows - row0);
                strip::pack_strip(a, row0, height, bank_aware, live, zero_cols)
            })
            .collect();
        if tile_span.is_recording() {
            tile_span.attr(
                "evictions",
                strips.iter().map(|s| s.evictions).sum::<usize>(),
            );
            tile_span.attr("windows", strips.iter().map(|s| s.windows()).sum::<usize>());
        }
        tile_span.finish();

        ReorderPlan {
            m: a.rows,
            k: a.cols,
            block_tile_m: bt,
            strips,
        }
    }

    /// Windows per strip the *unreordered* matrix needs.
    pub fn baseline_windows_per_strip(&self) -> usize {
        self.k.div_ceil(TILE)
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> ReorderStats {
        let per_strip_budget = self.baseline_windows_per_strip();
        let total_windows: usize = self.strips.iter().map(|s| s.windows()).sum();
        let baseline_windows = per_strip_budget * self.strips.len();
        let success = self.strips.iter().all(|s| s.windows() <= per_strip_budget);
        let zero_cols_skipped = self.strips.iter().map(|s| s.zero_cols).sum();
        let evictions = self.strips.iter().map(|s| s.evictions).sum();
        let avg_k_fraction = if baseline_windows == 0 {
            0.0
        } else {
            total_windows as f64 / baseline_windows as f64
        };
        ReorderStats {
            success,
            total_windows,
            baseline_windows,
            zero_cols_skipped,
            evictions,
            avg_k_fraction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlmc::{ValueDist, VectorSparseSpec};

    fn gen(rows: usize, cols: usize, sparsity: f64, v: usize, seed: u64) -> Matrix {
        VectorSparseSpec {
            rows,
            cols,
            sparsity,
            v,
            dist: ValueDist::Uniform,
            seed,
        }
        .generate()
    }

    #[test]
    fn plan_counts_strips() {
        let a = gen(128, 128, 0.9, 4, 1);
        let plan = ReorderPlan::build(&a, &JigsawConfig::v4(32));
        assert_eq!(plan.strips.len(), 4);
        for s in &plan.strips {
            assert_eq!(s.height, 32);
        }
    }

    #[test]
    fn high_sparsity_wide_vectors_succeed_and_skip_work() {
        let a = gen(256, 512, 0.95, 8, 2);
        let plan = ReorderPlan::build(&a, &JigsawConfig::v4(16));
        let stats = plan.stats();
        assert!(stats.success);
        assert!(stats.avg_k_fraction < 0.5, "{}", stats.avg_k_fraction);
        assert!(stats.zero_cols_skipped > 0);
    }

    #[test]
    fn dense_matrix_fails_success_criterion() {
        // Fully dense: live columns can only pack 8 per window -> K
        // doubles -> "failure" by the paper's definition.
        let a = Matrix::from_f32(32, 64, &[1.0; 32 * 64]);
        let plan = ReorderPlan::build(&a, &JigsawConfig::v4(32));
        let stats = plan.stats();
        assert!(!stats.success);
        assert!(stats.avg_k_fraction > 1.0);
    }

    #[test]
    fn smaller_block_tile_skips_more_at_low_sparsity() {
        // Paper §4.3: at 80% sparsity the success rate (and zero-column
        // yield) drops as BLOCK_TILE grows.
        let a = gen(512, 256, 0.8, 8, 3);
        let f16 = ReorderPlan::build(&a, &JigsawConfig::v4(16)).stats();
        let f64_ = ReorderPlan::build(&a, &JigsawConfig::v4(64)).stats();
        assert!(
            f16.avg_k_fraction <= f64_.avg_k_fraction,
            "BT16 {} vs BT64 {}",
            f16.avg_k_fraction,
            f64_.avg_k_fraction
        );
    }

    #[test]
    fn stats_baseline_windows() {
        let a = gen(64, 160, 0.9, 2, 4);
        let plan = ReorderPlan::build(&a, &JigsawConfig::v4(64));
        assert_eq!(plan.baseline_windows_per_strip(), 10);
        assert_eq!(plan.stats().baseline_windows, 10);
    }
}
