//! `BLOCK_TILE`-granularity column reorder (paper §3.2, Figure 5).
//!
//! For each row strip of height `BLOCK_TILE_M`, columns of A that are
//! all-zero *within the strip* move to the end and are skipped entirely
//! — the kernel never issues SpTC work for them. The surviving columns
//! are packed into 16-column `MMA_TILE` windows; each 16-row tile of a
//! window is reordered by Algorithm 1 ([`super::tile`]). When a window
//! cannot be reordered, the *reorder retry* evicts the column least
//! represented in compatible quads; evicted columns queue up and form
//! trailing windows of their own (Figure 5 (c)→(d)).

use dlmc::Matrix;

use super::tile::{
    column_compatibility_frequency, reorder_tile, ColumnMasks, TileReorder, DEFAULT_WORK_LIMIT,
    TILE,
};

/// Sentinel for a padded (all-zero) slot in a window's column order.
pub const PAD: u32 = u32::MAX;

/// Reorder result for one `BLOCK_TILE` row strip.
#[derive(Clone, Debug)]
pub struct StripPlan {
    /// First row of the strip.
    pub row0: usize,
    /// Strip height (a multiple of 16).
    pub height: usize,
    /// Original column index occupying each window slot, `windows * 16`
    /// entries; [`PAD`] marks zero-filled slots. This is the
    /// `col_idx_array` of the reorder-aware storage format.
    pub col_order: Vec<u32>,
    /// Per-tile column permutations, indexed `window * tile_rows +
    /// tile_row` — the `block_col_idx_array`.
    pub tiles: Vec<TileReorder>,
    /// Columns of A that were all-zero within the strip (skipped).
    pub zero_cols: usize,
    /// Reorder-retry evictions performed.
    pub evictions: usize,
}

impl StripPlan {
    /// Number of 16-column windows the strip computes.
    pub fn windows(&self) -> usize {
        self.col_order.len() / TILE
    }

    /// 16-row tile rows in the strip.
    pub fn tile_rows(&self) -> usize {
        self.height / TILE
    }

    /// The tile reorder for `(window, tile_row)`.
    pub fn tile(&self, window: usize, tile_row: usize) -> &TileReorder {
        &self.tiles[window * self.tile_rows() + tile_row]
    }

    /// Original column for reordered position `pos` of `(window,
    /// tile_row)`, or `None` for a padded slot.
    pub fn source_column(&self, window: usize, tile_row: usize, pos: usize) -> Option<usize> {
        let src_slot = self.tile(window, tile_row).perm[pos] as usize;
        match self.col_order[window * TILE + src_slot] {
            PAD => None,
            c => Some(c as usize),
        }
    }
}

/// Builds the column row-occupancy masks of one 16-row tile over the
/// window's slots.
fn window_masks(m: &Matrix, row0: usize, slots: &[u32]) -> ColumnMasks {
    debug_assert_eq!(slots.len(), TILE);
    let mut masks = [0u16; TILE];
    for (s, &col) in slots.iter().enumerate() {
        if col == PAD {
            continue;
        }
        let mut mask = 0u16;
        for dr in 0..TILE {
            let r = row0 + dr;
            if r < m.rows && !m.get(r, col as usize).is_zero() {
                mask |= 1 << dr;
            }
        }
        masks[s] = mask;
    }
    masks
}

/// The `BLOCK_TILE` step in isolation: partitions the strip's columns
/// into the live set (in original order) and a count of all-zero
/// columns to skip. This is the first phase of [`reorder_strip`],
/// exposed so the planner can time the block reorder separately from
/// the tile reorder.
pub fn live_columns(m: &Matrix, row0: usize, height: usize) -> (Vec<u32>, usize) {
    let mut live: Vec<u32> = Vec::new();
    let mut zero_cols = 0usize;
    for c in 0..m.cols {
        if m.column_zero_in_strip(c, row0, row0 + height) {
            zero_cols += 1;
        } else {
            live.push(c as u32);
        }
    }
    (live, zero_cols)
}

/// The `MMA_TILE` step in isolation: packs an already-partitioned live
/// column set into 16-column windows with Algorithm-1 reorder and
/// eviction retry. Second phase of [`reorder_strip`].
pub fn pack_strip(
    m: &Matrix,
    row0: usize,
    height: usize,
    bank_aware: bool,
    live: Vec<u32>,
    zero_cols: usize,
) -> StripPlan {
    assert_eq!(height % TILE, 0, "strip height must be a multiple of 16");
    let tile_rows = height / TILE;

    let mut col_order: Vec<u32> = Vec::new();
    let mut tiles: Vec<TileReorder> = Vec::new();
    let mut evictions = 0usize;

    // Process the live queue window by window; evicted columns re-queue
    // and form trailing windows.
    let mut queue = std::collections::VecDeque::from(live);
    while !queue.is_empty() {
        let mut slots: Vec<u32> = Vec::with_capacity(TILE);
        while slots.len() < TILE {
            match queue.pop_front() {
                Some(c) => slots.push(c),
                None => slots.push(PAD),
            }
        }

        // MMA_TILE step with reorder retry.
        loop {
            let per_tile: Vec<Option<(TileReorder, ColumnMasks)>> = (0..tile_rows)
                .map(|tr| {
                    let masks = window_masks(m, row0 + tr * TILE, &slots);
                    reorder_tile(&masks, bank_aware, DEFAULT_WORK_LIMIT).map(|r| (r, masks))
                })
                .collect();

            if per_tile.iter().all(|t| t.is_some()) {
                for t in per_tile {
                    tiles.push(t.unwrap().0);
                }
                col_order.extend_from_slice(&slots);
                break;
            }

            // Retry: evict the column least frequent in compatible
            // quads, summed over the failing tiles (never a pad slot).
            let mut freq_total = [0u64; TILE];
            for (tr, t) in per_tile.iter().enumerate() {
                if t.is_none() {
                    let masks = window_masks(m, row0 + tr * TILE, &slots);
                    let freq = column_compatibility_frequency(&masks);
                    for (s, &f) in freq.iter().enumerate() {
                        freq_total[s] += u64::from(f);
                    }
                }
            }
            let victim = (0..TILE)
                .filter(|&s| slots[s] != PAD)
                .min_by_key(|&s| freq_total[s])
                .expect("a window that fails must contain live columns");
            let col = slots[victim];
            slots[victim] = PAD;
            queue.push_back(col);
            evictions += 1;
        }
    }

    StripPlan {
        row0,
        height,
        col_order,
        tiles,
        zero_cols,
        evictions,
    }
}

/// Reorders one row strip — the `BLOCK_TILE` zero-column split
/// ([`live_columns`]) followed by `MMA_TILE` window packing
/// ([`pack_strip`]). `bank_aware` enables the §3.4.1 preference.
pub fn reorder_strip(m: &Matrix, row0: usize, height: usize, bank_aware: bool) -> StripPlan {
    let (live, zero_cols) = live_columns(m, row0, height);
    pack_strip(m, row0, height, bank_aware, live, zero_cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlmc::{ValueDist, VectorSparseSpec};
    use sptc::F16;

    fn plan_covers_all_nonzero_columns(m: &Matrix, plan: &StripPlan) {
        use std::collections::HashSet;
        let mut seen: HashSet<u32> = HashSet::new();
        for &c in &plan.col_order {
            if c != PAD {
                assert!(seen.insert(c), "column {c} appears twice");
            }
        }
        for c in 0..m.cols {
            let zero = m.column_zero_in_strip(c, plan.row0, plan.row0 + plan.height);
            assert_eq!(
                !zero,
                seen.contains(&(c as u32)),
                "column {c} coverage mismatch (zero={zero})"
            );
        }
    }

    #[test]
    fn empty_strip_has_no_windows() {
        let m = Matrix::zeros(32, 64);
        let plan = reorder_strip(&m, 0, 32, true);
        assert_eq!(plan.windows(), 0);
        assert_eq!(plan.zero_cols, 64);
        assert_eq!(plan.evictions, 0);
    }

    #[test]
    fn single_nonzero_column() {
        let mut m = Matrix::zeros(16, 64);
        m.set(3, 17, F16::ONE);
        let plan = reorder_strip(&m, 0, 16, true);
        assert_eq!(plan.windows(), 1);
        assert_eq!(plan.zero_cols, 63);
        plan_covers_all_nonzero_columns(&m, &plan);
        // The lone column sits in slot 0 of the window.
        assert_eq!(plan.col_order[0], 17);
        assert!(plan.col_order[1..].iter().all(|&c| c == PAD));
    }

    #[test]
    fn dense_strip_needs_evictions_or_full_windows() {
        // A fully dense 16x32 strip: no column is zero, every window of
        // 16 dense columns fails 2:4 (4 dense per quad) -> evictions
        // must occur, and every nonzero column must still be computed.
        let m = Matrix::from_f32(16, 32, &[1.0; 16 * 32]);
        let plan = reorder_strip(&m, 0, 16, false);
        plan_covers_all_nonzero_columns(&m, &plan);
        assert!(plan.evictions > 0);
        // Dense data blows K up: 8 live columns per window max.
        assert!(plan.windows() >= 4);
        // Every tile's perm must be a valid permutation.
        for t in &plan.tiles {
            assert!(t.is_permutation());
        }
    }

    #[test]
    fn vector_sparse_strip_reorders_cleanly() {
        let m = VectorSparseSpec {
            rows: 64,
            cols: 128,
            sparsity: 0.9,
            v: 8,
            dist: ValueDist::Uniform,
            seed: 3,
        }
        .generate();
        let plan = reorder_strip(&m, 0, 64, true);
        plan_covers_all_nonzero_columns(&m, &plan);
        assert_eq!(plan.tiles.len(), plan.windows() * plan.tile_rows());
        // At 90% sparsity with v=8 the live columns fit in far fewer
        // windows than K/16.
        assert!(plan.windows() <= 128 / 16);
    }

    #[test]
    fn multi_tile_row_strips_get_independent_perms() {
        let m = VectorSparseSpec {
            rows: 32,
            cols: 64,
            sparsity: 0.8,
            v: 2,
            dist: ValueDist::Uniform,
            seed: 7,
        }
        .generate();
        let plan = reorder_strip(&m, 0, 32, true);
        assert_eq!(plan.tile_rows(), 2);
        for w in 0..plan.windows() {
            let t0 = plan.tile(w, 0);
            let t1 = plan.tile(w, 1);
            assert!(t0.is_permutation() && t1.is_permutation());
        }
    }

    #[test]
    fn source_column_roundtrip() {
        let mut m = Matrix::zeros(16, 20);
        for c in 0..20 {
            m.set(c % 16, c, F16::ONE);
        }
        let plan = reorder_strip(&m, 0, 16, true);
        let mut recovered: Vec<usize> = Vec::new();
        for w in 0..plan.windows() {
            for pos in 0..TILE {
                if let Some(c) = plan.source_column(w, 0, pos) {
                    recovered.push(c);
                }
            }
        }
        recovered.sort_unstable();
        assert_eq!(recovered, (0..20).collect::<Vec<_>>());
    }
}
