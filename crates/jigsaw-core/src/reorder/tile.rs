//! `MMA_TILE`-granularity column reorder (paper Algorithm 1).
//!
//! A 16×16 tile satisfies the SpTC requirement when its 16 columns can
//! be partitioned into four *compatible column groups* of four — groups
//! in which no row has more than two nonzeros. Compatibility is a
//! per-aligned-group property, so the search is an exact-cover problem:
//! choose 4 disjoint compatible quads covering all 16 columns.
//!
//! The paper prunes the naive enumeration with a bidirectional search
//! (quads → disjoint 8-column groups → complementary pairs). We
//! implement the same pruning as a memoized depth-first exact cover
//! over column bitmasks: dead sub-problems (column subsets proven
//! unpartitionable) are never revisited, which dominates the
//! bidirectional formulation while returning identical answers. A work
//! limit keeps pathological tiles cheap, mirroring the paper's concern
//! for reorder overhead.
//!
//! §3.4.1's bank-conflict-aware preference is implemented as a scoring
//! pass: among valid partitions, prefer ones whose `ldmatrix` phases
//! (positions 0..8 and 8..16 after reorder) avoid pairing source
//! positions that are congruent mod 8 — exactly the "rows 1 and 9, 2
//! and 10, ..." collisions of Figure 7 (b).

/// Number of columns/rows in an `MMA_TILE`.
pub const TILE: usize = 16;

/// Per-column row-occupancy bitmasks for one 16-row tile.
pub type ColumnMasks = [u16; TILE];

/// A tile reorder solution: `perm[i]` is the *source* position (within
/// the window, 0..16) of the column placed at position `i`. Positions
/// `0..4`, `4..8`, `8..12`, `12..16` are the four aligned quads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TileReorder {
    /// New position → source position.
    pub perm: [u8; TILE],
    /// Source-position pairs congruent mod 8 sharing an `ldmatrix`
    /// phase — each costs a bank-conflict replay per B load.
    pub conflict_pairs: u32,
}

impl TileReorder {
    /// The identity reorder (tile already satisfies 2:4 in place).
    pub fn identity() -> TileReorder {
        let mut perm = [0u8; TILE];
        for (i, p) in perm.iter_mut().enumerate() {
            *p = i as u8;
        }
        TileReorder {
            perm,
            conflict_pairs: conflict_pairs_of(&perm),
        }
    }

    /// True when `perm` is a permutation of `0..16`.
    pub fn is_permutation(&self) -> bool {
        let mut seen = [false; TILE];
        for &p in &self.perm {
            if (p as usize) >= TILE || seen[p as usize] {
                return false;
            }
            seen[p as usize] = true;
        }
        true
    }
}

/// Counts mod-8-congruent source-position pairs within each 8-position
/// `ldmatrix` phase of the reordered tile.
pub fn conflict_pairs_of(perm: &[u8; TILE]) -> u32 {
    let mut total = 0u32;
    for half in perm.chunks_exact(8) {
        let mut residue_counts = [0u32; 8];
        for &p in half {
            residue_counts[(p % 8) as usize] += 1;
        }
        total += residue_counts
            .iter()
            .map(|&c| c * c.saturating_sub(1) / 2)
            .sum::<u32>();
    }
    total
}

/// True when the four columns form a compatible group: no row holds
/// three or more nonzeros among them (Algorithm 1 lines 2-8, as a
/// branch-free majority-3 test over the row masks).
#[inline]
pub fn quad_compatible(a: u16, b: u16, c: u16, d: u16) -> bool {
    let ab = a & b;
    let cd = c & d;
    // Rows with >= 3 of the four bits set.
    let triples = (ab & (c | d)) | (cd & (a | b));
    triples == 0
}

/// True when the tile already satisfies 2:4 with its current column
/// order (aligned quads are compatible).
pub fn tile_satisfies_in_place(masks: &ColumnMasks) -> bool {
    masks
        .chunks_exact(4)
        .all(|q| quad_compatible(q[0], q[1], q[2], q[3]))
}

/// How many compatible quads each column participates in — Algorithm
/// 1's frequency signal used to pick the eviction victim on failure.
pub fn column_compatibility_frequency(masks: &ColumnMasks) -> [u32; TILE] {
    let mut freq = [0u32; TILE];
    for i in 0..TILE {
        for j in i + 1..TILE {
            for k in j + 1..TILE {
                for w in k + 1..TILE {
                    if quad_compatible(masks[i], masks[j], masks[k], masks[w]) {
                        freq[i] += 1;
                        freq[j] += 1;
                        freq[k] += 1;
                        freq[w] += 1;
                    }
                }
            }
        }
    }
    freq
}

/// Search budget: compatibility checks allowed per tile before giving
/// up (treated as reorder failure, like the paper's complexity cap).
pub const DEFAULT_WORK_LIMIT: u32 = 200_000;

/// How many complete partitions to score when hunting for a
/// conflict-free one.
const MAX_SCORED_SOLUTIONS: u32 = 48;

struct Search<'a> {
    masks: &'a ColumnMasks,
    work: u32,
    limit: u32,
    solutions_seen: u32,
    best: Option<TileReorder>,
    bank_aware: bool,
    dead: std::collections::HashSet<u16>,
}

impl Search<'_> {
    fn record(&mut self, quads: &[[u8; 4]]) -> bool {
        // A partition leaves the quad *pairing* free: which two quads
        // share an 8-position ldmatrix phase. When bank-aware, pick the
        // pairing with the fewest mod-8 collisions.
        let orders: &[[usize; 4]] = if self.bank_aware {
            &[[0, 1, 2, 3], [0, 2, 1, 3], [0, 3, 1, 2]]
        } else {
            &[[0, 1, 2, 3]]
        };
        let cand = orders
            .iter()
            .map(|order| {
                let mut perm = [0u8; TILE];
                for (slot, &qi) in order.iter().enumerate() {
                    perm[slot * 4..slot * 4 + 4].copy_from_slice(&quads[qi]);
                }
                TileReorder {
                    perm,
                    conflict_pairs: conflict_pairs_of(&perm),
                }
            })
            .min_by_key(|r| r.conflict_pairs)
            .expect("at least one pairing");
        self.solutions_seen += 1;
        if self
            .best
            .is_none_or(|b| cand.conflict_pairs < b.conflict_pairs)
        {
            self.best = Some(cand);
        }
        // Stop conditions: a conflict-free partition, a non-bank-aware
        // caller satisfied by any partition, or the scoring budget.

        cand.conflict_pairs == 0 || !self.bank_aware || self.solutions_seen >= MAX_SCORED_SOLUTIONS
    }

    /// Returns true when the search should stop unwinding.
    fn dfs(&mut self, remaining: u16, quads: &mut Vec<[u8; 4]>) -> bool {
        if remaining == 0 {
            return self.record(quads);
        }
        if self.dead.contains(&remaining) || self.work >= self.limit {
            return false;
        }
        let found_before = self.solutions_seen;
        let first = remaining.trailing_zeros() as u8;
        let rest: Vec<u8> = (first + 1..TILE as u8)
            .filter(|&c| remaining & (1 << c) != 0)
            .collect();
        let n = rest.len();
        for i in 0..n {
            for j in i + 1..n {
                for k in j + 1..n {
                    self.work += 1;
                    let (a, b, c, d) = (first, rest[i], rest[j], rest[k]);
                    if !quad_compatible(
                        self.masks[a as usize],
                        self.masks[b as usize],
                        self.masks[c as usize],
                        self.masks[d as usize],
                    ) {
                        continue;
                    }
                    let quad_mask = (1u16 << a) | (1u16 << b) | (1u16 << c) | (1u16 << d);
                    quads.push([a, b, c, d]);
                    let stop = self.dfs(remaining & !quad_mask, quads);
                    quads.pop();
                    if stop {
                        return true;
                    }
                    if self.work >= self.limit {
                        return false;
                    }
                }
            }
        }
        if self.solutions_seen == found_before && self.work < self.limit {
            self.dead.insert(remaining);
        }
        false
    }
}

/// Runs Algorithm 1 on one tile: finds a column permutation making every
/// aligned quad compatible, preferring bank-conflict-free groupings when
/// `bank_aware` is set. Returns `None` when no partition exists (or the
/// work limit trips) — the caller then evicts a column and retries.
pub fn reorder_tile(masks: &ColumnMasks, bank_aware: bool, work_limit: u32) -> Option<TileReorder> {
    // Fast path: the tile is already 2:4 (common at high sparsity).
    // The identity permutation is always conflict-free — each ldmatrix
    // phase reads the 8 consecutive source positions, which occupy 8
    // distinct mod-8 residues.
    if tile_satisfies_in_place(masks) {
        return Some(TileReorder::identity());
    }
    let mut s = Search {
        masks,
        work: 0,
        limit: work_limit,
        solutions_seen: 0,
        best: None,
        bank_aware,
        dead: std::collections::HashSet::new(),
    };
    s.dfs(u16::MAX, &mut Vec::with_capacity(4));
    s.best
}

/// The paper's Algorithm 1, implemented *literally* (lines 9-17's
/// bidirectional search): enumerate all compatible quads, combine
/// disjoint pairs into 8-column groups, then find two complementary
/// 8-groups. Kept as the validation reference for the memoized DFS in
/// [`reorder_tile`] (and as the slow side of the search ablation
/// bench); both must agree on feasibility for every tile.
pub fn reorder_tile_bidirectional(masks: &ColumnMasks) -> Option<TileReorder> {
    // Line 2-8: all compatible column groups of four.
    let mut quads: Vec<(u16, [u8; 4])> = Vec::new();
    for i in 0..TILE as u8 {
        for j in i + 1..TILE as u8 {
            for k in j + 1..TILE as u8 {
                for w in k + 1..TILE as u8 {
                    if quad_compatible(
                        masks[i as usize],
                        masks[j as usize],
                        masks[k as usize],
                        masks[w as usize],
                    ) {
                        let mask = (1u16 << i) | (1u16 << j) | (1u16 << k) | (1u16 << w);
                        quads.push((mask, [i, j, k, w]));
                    }
                }
            }
        }
    }
    // Line 9-13: disjoint quad pairs -> 8-column groups (dedup by mask).
    let mut eights: std::collections::HashMap<u16, ([u8; 4], [u8; 4])> =
        std::collections::HashMap::new();
    for (a, &(ma, qa)) in quads.iter().enumerate() {
        for &(mb, qb) in quads.iter().skip(a + 1) {
            if ma & mb == 0 {
                eights.entry(ma | mb).or_insert((qa, qb));
            }
        }
    }
    // Line 14-17: two complementary 8-groups.
    for (&mask, &(q0, q1)) in &eights {
        if let Some(&(q2, q3)) = eights.get(&!mask) {
            let mut perm = [0u8; TILE];
            perm[0..4].copy_from_slice(&q0);
            perm[4..8].copy_from_slice(&q1);
            perm[8..12].copy_from_slice(&q2);
            perm[12..16].copy_from_slice(&q3);
            return Some(TileReorder {
                perm,
                conflict_pairs: conflict_pairs_of(&perm),
            });
        }
    }
    None
}

/// Verifies that applying `perm` to columns with these masks yields a
/// 2:4-satisfying tile — the postcondition tests assert.
pub fn reorder_satisfies(masks: &ColumnMasks, reorder: &TileReorder) -> bool {
    let permuted: Vec<u16> = reorder.perm.iter().map(|&p| masks[p as usize]).collect();
    permuted
        .chunks_exact(4)
        .all(|q| quad_compatible(q[0], q[1], q[2], q[3]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn masks_from_rows(rows: &[[u8; TILE]; TILE]) -> ColumnMasks {
        let mut masks = [0u16; TILE];
        for (r, row) in rows.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                if v != 0 {
                    masks[c] |= 1 << r;
                }
            }
        }
        masks
    }

    #[test]
    fn quad_compatibility_basics() {
        // Disjoint columns: compatible.
        assert!(quad_compatible(0b0001, 0b0010, 0b0100, 0b1000));
        // Three columns sharing a row: incompatible.
        assert!(!quad_compatible(0b1, 0b1, 0b1, 0));
        // Two sharing a row: fine.
        assert!(quad_compatible(0b1, 0b1, 0, 0));
        // All-zero quad: fine.
        assert!(quad_compatible(0, 0, 0, 0));
    }

    #[test]
    fn all_zero_tile_reorders_trivially() {
        let masks = [0u16; TILE];
        let r = reorder_tile(&masks, true, DEFAULT_WORK_LIMIT).unwrap();
        assert!(r.is_permutation());
        assert!(reorder_satisfies(&masks, &r));
    }

    #[test]
    fn two_to_four_dense_rows_need_reorder() {
        // Columns 0..8 all dense (every row), columns 8..16 zero. In
        // place, quad (0,1,2,3) has 4 nonzeros per row -> fails; the
        // fix spreads dense columns 2 per quad.
        let mut masks = [0u16; TILE];
        for m in masks.iter_mut().take(8) {
            *m = u16::MAX;
        }
        assert!(!tile_satisfies_in_place(&masks));
        let r = reorder_tile(&masks, false, DEFAULT_WORK_LIMIT).unwrap();
        assert!(reorder_satisfies(&masks, &r));
        // Each quad must contain exactly 2 dense columns.
        for q in r.perm.chunks_exact(4) {
            let dense = q.iter().filter(|&&p| p < 8).count();
            assert_eq!(dense, 2);
        }
    }

    #[test]
    fn nine_dense_columns_cannot_reorder() {
        let mut masks = [0u16; TILE];
        for m in masks.iter_mut().take(9) {
            *m = u16::MAX;
        }
        assert!(reorder_tile(&masks, false, DEFAULT_WORK_LIMIT).is_none());
    }

    #[test]
    fn paper_figure5_style_example() {
        // A tile where an aligned quad has a row with 3 nonzeros but a
        // compatible rearrangement exists.
        let mut rows = [[0u8; TILE]; TILE];
        // Row 0 has nonzeros in columns 0, 1, 2 (violates in place).
        rows[0][0] = 1;
        rows[0][1] = 1;
        rows[0][2] = 1;
        // Scatter a few more.
        rows[3][5] = 1;
        rows[7][9] = 1;
        let masks = masks_from_rows(&rows);
        assert!(!tile_satisfies_in_place(&masks));
        let r = reorder_tile(&masks, true, DEFAULT_WORK_LIMIT).unwrap();
        assert!(r.is_permutation());
        assert!(reorder_satisfies(&masks, &r));
    }

    #[test]
    fn bank_aware_reduces_conflicts_in_aggregate() {
        // Sparse tiles with many valid partitions: the bank-aware
        // search must produce (weakly) fewer mod-8 collisions than the
        // first-solution search, and usually none at all.
        let mut rng = StdRng::seed_from_u64(5);
        let mut aware_total = 0u32;
        let mut naive_total = 0u32;
        for _ in 0..30 {
            let mut masks = [0u16; TILE];
            for m in masks.iter_mut() {
                // ~3 nonzero rows per column so in-place 2:4 often fails
                // and a genuine search happens.
                *m = (0..3)
                    .map(|_| 1u16 << rng.gen_range(0..16))
                    .fold(0, |a, b| a | b);
            }
            let aware = reorder_tile(&masks, true, DEFAULT_WORK_LIMIT);
            let naive = reorder_tile(&masks, false, DEFAULT_WORK_LIMIT);
            assert_eq!(aware.is_some(), naive.is_some());
            if let (Some(a), Some(n)) = (aware, naive) {
                assert!(reorder_satisfies(&masks, &a));
                assert!(reorder_satisfies(&masks, &n));
                aware_total += a.conflict_pairs;
                naive_total += n.conflict_pairs;
            }
        }
        assert!(
            aware_total <= naive_total,
            "aware {aware_total} vs naive {naive_total}"
        );
    }

    #[test]
    fn identity_used_when_already_2_4_and_clean() {
        // Identity perm: halves {0..8} and {8..16} each contain every
        // mod-8 residue once -> wait, identity positions 0..8 have
        // residues 0..8 distinct, so identity is conflict-free.
        let id = TileReorder::identity();
        assert_eq!(id.conflict_pairs, 0);
        let masks = [0u16; TILE];
        let r = reorder_tile(&masks, true, DEFAULT_WORK_LIMIT).unwrap();
        assert_eq!(r.perm, id.perm);
    }

    #[test]
    fn conflict_scoring_counts_mod8_pairs() {
        // Swap positions so 0 and 8 share the first half.
        let mut perm = TileReorder::identity().perm;
        perm.swap(1, 8); // first half: 0,8,2,...; second half: 1,9,...
        assert_eq!(conflict_pairs_of(&perm), 2); // (0,8) and (1,9)
    }

    #[test]
    fn dfs_and_bidirectional_search_agree_on_feasibility() {
        let mut rng = StdRng::seed_from_u64(123);
        for bits in [1u32, 2, 4, 8] {
            for _ in 0..25 {
                let mut masks = [0u16; TILE];
                for m in masks.iter_mut() {
                    *m = (0..bits)
                        .map(|_| 1u16 << rng.gen_range(0..16))
                        .fold(0, |a, b| a | b);
                }
                let dfs = reorder_tile(&masks, false, DEFAULT_WORK_LIMIT);
                let bidi = reorder_tile_bidirectional(&masks);
                assert_eq!(
                    dfs.is_some(),
                    bidi.is_some(),
                    "feasibility mismatch (bits={bits}) for {masks:?}"
                );
                if let Some(r) = bidi {
                    assert!(r.is_permutation());
                    assert!(reorder_satisfies(&masks, &r));
                }
            }
        }
    }

    #[test]
    fn frequency_counts_symmetry() {
        let masks = [0u16; TILE];
        let freq = column_compatibility_frequency(&masks);
        // Every quad is compatible: each column in C(15,3) = 455 quads.
        assert!(freq.iter().all(|&f| f == 455));
    }

    #[test]
    fn random_2_4_feasible_tiles_always_reorder(/* fuzz-ish */) {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..50 {
            // Construct a feasible tile by generating a valid partition
            // then shuffling columns.
            let mut masks = [0u16; TILE];
            for q in 0..4 {
                // Two "heavy" columns per quad sharing rows freely.
                masks[q * 4] = rng.gen();
                masks[q * 4 + 1] = rng.gen();
                // Two zero columns.
            }
            let mut shuffled = masks;
            shuffled.shuffle(&mut rng);
            let r = reorder_tile(&shuffled, false, DEFAULT_WORK_LIMIT)
                .expect("feasible by construction");
            assert!(reorder_satisfies(&shuffled, &r));
        }
    }
}
