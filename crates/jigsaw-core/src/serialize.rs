//! On-disk serialization of the reorder-aware format — the deployment
//! path: preprocess the stationary weights once (the expensive reorder),
//! ship the compressed artifact, and load it at inference time without
//! re-planning.
//!
//! The encoding is a small, versioned little-endian binary layout; no
//! external format crates are needed.

use std::io::{self, Read, Write};

use sptc::F16;

use crate::format::{JigsawFormat, StripFormat};

/// Magic bytes prefixing every serialized format.
pub const MAGIC: &[u8; 4] = b"JGSW";
/// Current encoding version.
pub const VERSION: u32 = 1;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Serializes a [`JigsawFormat`] to bytes.
pub fn to_bytes(f: &JigsawFormat) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, VERSION);
    put_u64(&mut out, f.m as u64);
    put_u64(&mut out, f.k as u64);
    put_u32(&mut out, f.block_tile_m as u32);
    put_u32(&mut out, u32::from(f.interleaved));
    put_u32(&mut out, f.strips.len() as u32);
    for s in &f.strips {
        put_u64(&mut out, s.row0 as u64);
        put_u32(&mut out, s.height as u32);
        put_u32(&mut out, s.windows as u32);
        put_u32(&mut out, s.col_idx.len() as u32);
        for &c in &s.col_idx {
            put_u32(&mut out, c);
        }
        put_u32(&mut out, s.block_col_idx.len() as u32);
        out.extend_from_slice(&s.block_col_idx);
        put_u32(&mut out, s.values.len() as u32);
        for v in &s.values {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        put_u32(&mut out, s.metadata.len() as u32);
        for &w in &s.metadata {
            put_u32(&mut out, w);
        }
    }
    out
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.pos + n > self.data.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated jigsaw format",
            ));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Deserializes a [`JigsawFormat`] from bytes.
pub fn from_bytes(data: &[u8]) -> io::Result<JigsawFormat> {
    let mut c = Cursor { data, pos: 0 };
    if c.take(4)? != MAGIC {
        return Err(bad("not a jigsaw format file"));
    }
    let version = c.u32()?;
    if version != VERSION {
        return Err(bad(&format!("unsupported version {version}")));
    }
    let m = c.u64()? as usize;
    let k = c.u64()? as usize;
    let block_tile_m = c.u32()? as usize;
    let interleaved = c.u32()? != 0;
    let nstrips = c.u32()? as usize;
    // Bound the strip count by what the header claims the matrix is.
    if block_tile_m == 0 || nstrips != m.div_ceil(block_tile_m) {
        return Err(bad("strip count inconsistent with dimensions"));
    }
    let mut strips = Vec::with_capacity(nstrips);
    for _ in 0..nstrips {
        let row0 = c.u64()? as usize;
        let height = c.u32()? as usize;
        let windows = c.u32()? as usize;
        let n_col = c.u32()? as usize;
        let mut col_idx = Vec::with_capacity(n_col);
        for _ in 0..n_col {
            col_idx.push(c.u32()?);
        }
        let n_bci = c.u32()? as usize;
        let block_col_idx = c.take(n_bci)?.to_vec();
        let n_vals = c.u32()? as usize;
        let mut values = Vec::with_capacity(n_vals);
        for _ in 0..n_vals {
            values.push(F16::from_bits(c.u16()?));
        }
        let n_meta = c.u32()? as usize;
        let mut metadata = Vec::with_capacity(n_meta);
        for _ in 0..n_meta {
            metadata.push(c.u32()?);
        }
        strips.push(StripFormat {
            row0,
            height,
            windows,
            col_idx,
            block_col_idx,
            values,
            metadata,
        });
    }
    if c.pos != data.len() {
        return Err(bad("trailing bytes"));
    }
    Ok(JigsawFormat {
        m,
        k,
        block_tile_m,
        interleaved,
        strips,
    })
}

/// Writes the format to any sink.
pub fn write_to<W: Write>(f: &JigsawFormat, mut w: W) -> io::Result<()> {
    w.write_all(&to_bytes(f))
}

/// Reads the format from any source.
pub fn read_from<R: Read>(mut r: R) -> io::Result<JigsawFormat> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    from_bytes(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{execute_fast, JigsawConfig, JigsawSpmm};
    use dlmc::{dense_rhs, ValueDist, VectorSparseSpec};

    fn sample_format() -> JigsawFormat {
        let a = VectorSparseSpec {
            rows: 64,
            cols: 96,
            sparsity: 0.9,
            v: 4,
            dist: ValueDist::SmallInt,
            seed: 70,
        }
        .generate();
        JigsawSpmm::plan(&a, JigsawConfig::v4(32)).format
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let f = sample_format();
        let bytes = to_bytes(&f);
        let g = from_bytes(&bytes).unwrap();
        assert_eq!(f.m, g.m);
        assert_eq!(f.k, g.k);
        assert_eq!(f.block_tile_m, g.block_tile_m);
        assert_eq!(f.interleaved, g.interleaved);
        assert_eq!(f.strips.len(), g.strips.len());
        for (a, b) in f.strips.iter().zip(&g.strips) {
            assert_eq!(a.col_idx, b.col_idx);
            assert_eq!(a.block_col_idx, b.block_col_idx);
            assert_eq!(a.values, b.values);
            assert_eq!(a.metadata, b.metadata);
        }
    }

    #[test]
    fn loaded_format_computes_identically() {
        let a = VectorSparseSpec {
            rows: 64,
            cols: 96,
            sparsity: 0.85,
            v: 2,
            dist: ValueDist::SmallInt,
            seed: 71,
        }
        .generate();
        let b = dense_rhs(96, 16, ValueDist::SmallInt, 72);
        let f = JigsawSpmm::plan(&a, JigsawConfig::v4(16)).format;
        let g = from_bytes(&to_bytes(&f)).unwrap();
        assert_eq!(execute_fast(&g, &b), a.matmul_reference(&b));
    }

    #[test]
    fn rejects_corruption() {
        let f = sample_format();
        let mut bytes = to_bytes(&f);
        assert!(from_bytes(&bytes[..10]).is_err(), "truncation");
        bytes[0] = b'X';
        assert!(from_bytes(&bytes).is_err(), "bad magic");
        let mut bytes = to_bytes(&f);
        bytes[4] = 99; // version
        assert!(from_bytes(&bytes).is_err(), "bad version");
        let mut bytes = to_bytes(&f);
        bytes.push(0);
        assert!(from_bytes(&bytes).is_err(), "trailing bytes");
    }

    #[test]
    fn file_roundtrip() {
        let f = sample_format();
        let dir = std::env::temp_dir().join("jigsaw-serialize-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("weights.jgsw");
        write_to(&f, std::fs::File::create(&path).unwrap()).unwrap();
        let g = read_from(std::fs::File::open(&path).unwrap()).unwrap();
        assert_eq!(f.measured_bytes(), g.measured_bytes());
    }
}
