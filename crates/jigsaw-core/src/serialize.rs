//! On-disk serialization of the reorder-aware format — the deployment
//! path: preprocess the stationary weights once (the expensive reorder),
//! ship the compressed artifact, and load it at inference time without
//! re-planning.
//!
//! The encoding is a small, versioned little-endian binary layout; no
//! external format crates are needed.

use std::io::{self, Read, Write};

use sptc::metadata::ROWS;
use sptc::F16;

use crate::config::MMA_TILE;
use crate::format::{JigsawFormat, StripFormat};
use crate::reorder::PAD;
use crate::swizzle::BLOCK_ELEMS;

/// Magic bytes prefixing every serialized format.
pub const MAGIC: &[u8; 4] = b"JGSW";
/// Current encoding version.
pub const VERSION: u32 = 1;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Serializes a [`JigsawFormat`] to bytes.
pub fn to_bytes(f: &JigsawFormat) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, VERSION);
    put_u64(&mut out, f.m as u64);
    put_u64(&mut out, f.k as u64);
    put_u32(&mut out, f.block_tile_m as u32);
    put_u32(&mut out, u32::from(f.interleaved));
    put_u32(&mut out, f.strips.len() as u32);
    for s in &f.strips {
        put_u64(&mut out, s.row0 as u64);
        put_u32(&mut out, s.height as u32);
        put_u32(&mut out, s.windows as u32);
        put_u32(&mut out, s.col_idx.len() as u32);
        for &c in &s.col_idx {
            put_u32(&mut out, c);
        }
        put_u32(&mut out, s.block_col_idx.len() as u32);
        out.extend_from_slice(&s.block_col_idx);
        put_u32(&mut out, s.values.len() as u32);
        for v in &s.values {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        put_u32(&mut out, s.metadata.len() as u32);
        for &w in &s.metadata {
            put_u32(&mut out, w);
        }
    }
    out
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if n > self.remaining() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated jigsaw format",
            ));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Smallest possible encoded strip: `row0` (u64), `height` + `windows`
/// (u32 each), and the four array length fields (u32 each).
const STRIP_MIN_BYTES: usize = 8 + 4 + 4 + 4 * 4;

/// Reads a length field, requiring it to equal the `expected` element
/// count implied by the header and to fit in the bytes remaining —
/// so a corrupt length can neither over-allocate nor desynchronize
/// the stream. `expected` is `None` when the shape formula overflowed.
fn checked_len(
    c: &mut Cursor<'_>,
    expected: Option<usize>,
    elem_bytes: usize,
    what: &str,
) -> io::Result<usize> {
    let expected = expected.ok_or_else(|| bad(&format!("{what} length overflows")))?;
    let n = c.u32()? as usize;
    if n != expected {
        return Err(bad(&format!(
            "{what} length {n} inconsistent with header (expected {expected})"
        )));
    }
    let bytes = n
        .checked_mul(elem_bytes)
        .ok_or_else(|| bad(&format!("{what} length overflows")))?;
    if bytes > c.remaining() {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("truncated {what}"),
        ));
    }
    Ok(n)
}

/// Deserializes a [`JigsawFormat`] from bytes.
///
/// Hardened against corrupt or adversarial input: every length field is
/// checked against both the bytes actually remaining and the shape the
/// header (`m`, `k`, `block_tile_m`, `interleaved`) implies *before*
/// any allocation, and index entries are range-checked. Malformed input
/// yields [`io::ErrorKind::InvalidData`] or
/// [`io::ErrorKind::UnexpectedEof`] — never a panic or an allocation
/// larger than the input itself.
pub fn from_bytes(data: &[u8]) -> io::Result<JigsawFormat> {
    let mut c = Cursor { data, pos: 0 };
    if c.take(4)? != MAGIC {
        return Err(bad("not a jigsaw format file"));
    }
    let version = c.u32()?;
    if version != VERSION {
        return Err(bad(&format!("unsupported version {version}")));
    }
    let m = usize::try_from(c.u64()?).map_err(|_| bad("m does not fit in usize"))?;
    let k = usize::try_from(c.u64()?).map_err(|_| bad("k does not fit in usize"))?;
    let block_tile_m = c.u32()? as usize;
    let interleaved = match c.u32()? {
        0 => false,
        1 => true,
        v => return Err(bad(&format!("invalid interleaved flag {v}"))),
    };
    let nstrips = c.u32()? as usize;
    if block_tile_m == 0 || !block_tile_m.is_multiple_of(MMA_TILE) {
        return Err(bad("block_tile_m must be a nonzero multiple of 16"));
    }
    if !m.is_multiple_of(MMA_TILE) {
        return Err(bad("m must be a multiple of 16"));
    }
    if nstrips != m.div_ceil(block_tile_m) {
        return Err(bad("strip count inconsistent with dimensions"));
    }
    // A claimed strip count the remaining bytes cannot possibly hold is
    // rejected before reserving space for it.
    if nstrips > c.remaining() / STRIP_MIN_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "strip count exceeds remaining bytes",
        ));
    }
    let mut strips = Vec::with_capacity(nstrips);
    for i in 0..nstrips {
        let row0 = usize::try_from(c.u64()?).map_err(|_| bad("row0 does not fit in usize"))?;
        if row0 != i * block_tile_m {
            return Err(bad(&format!("strip {i} row0 {row0} out of sequence")));
        }
        let height = c.u32()? as usize;
        if height != block_tile_m.min(m - row0) {
            return Err(bad(&format!(
                "strip {i} height {height} inconsistent with m/block_tile_m"
            )));
        }
        let tile_rows = height / MMA_TILE;
        let windows = c.u32()? as usize;
        let pairs = windows.div_ceil(2);

        let n_col = checked_len(&mut c, windows.checked_mul(MMA_TILE), 4, "col_idx")?;
        let mut col_idx = Vec::with_capacity(n_col);
        for _ in 0..n_col {
            let entry = c.u32()?;
            if entry != PAD && entry as usize >= k {
                return Err(bad(&format!(
                    "col_idx entry {entry} out of range (k = {k})"
                )));
            }
            col_idx.push(entry);
        }

        let n_bci = checked_len(
            &mut c,
            windows
                .checked_mul(tile_rows)
                .and_then(|n| n.checked_mul(MMA_TILE)),
            1,
            "block_col_idx",
        )?;
        let block_col_idx = c.take(n_bci)?.to_vec();
        if let Some(&entry) = block_col_idx.iter().find(|&&e| e as usize >= MMA_TILE) {
            return Err(bad(&format!("block_col_idx entry {entry} out of range")));
        }

        let n_vals = checked_len(
            &mut c,
            windows
                .checked_mul(tile_rows)
                .and_then(|n| n.checked_mul(BLOCK_ELEMS)),
            2,
            "values",
        )?;
        let mut values = Vec::with_capacity(n_vals);
        for _ in 0..n_vals {
            values.push(F16::from_bits(c.u16()?));
        }

        let expected_meta = if interleaved {
            tile_rows
                .checked_mul(pairs.div_ceil(2))
                .and_then(|n| n.checked_mul(32))
        } else {
            tile_rows
                .checked_mul(pairs)
                .and_then(|n| n.checked_mul(ROWS))
        };
        let n_meta = checked_len(&mut c, expected_meta, 4, "metadata")?;
        let mut metadata = Vec::with_capacity(n_meta);
        for _ in 0..n_meta {
            metadata.push(c.u32()?);
        }

        strips.push(StripFormat {
            row0,
            height,
            windows,
            col_idx,
            block_col_idx,
            values,
            metadata,
        });
    }
    if c.pos != data.len() {
        return Err(bad("trailing bytes"));
    }
    Ok(JigsawFormat {
        m,
        k,
        block_tile_m,
        interleaved,
        strips,
    })
}

/// Writes the format to any sink.
pub fn write_to<W: Write>(f: &JigsawFormat, mut w: W) -> io::Result<()> {
    w.write_all(&to_bytes(f))
}

/// Reads the format from any source.
pub fn read_from<R: Read>(mut r: R) -> io::Result<JigsawFormat> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    from_bytes(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{execute_fast, JigsawConfig, JigsawSpmm};
    use dlmc::{dense_rhs, ValueDist, VectorSparseSpec};

    fn sample_format() -> JigsawFormat {
        let a = VectorSparseSpec {
            rows: 64,
            cols: 96,
            sparsity: 0.9,
            v: 4,
            dist: ValueDist::SmallInt,
            seed: 70,
        }
        .generate();
        JigsawSpmm::plan(&a, JigsawConfig::v4(32)).unwrap().format
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let f = sample_format();
        let bytes = to_bytes(&f);
        let g = from_bytes(&bytes).unwrap();
        assert_eq!(f.m, g.m);
        assert_eq!(f.k, g.k);
        assert_eq!(f.block_tile_m, g.block_tile_m);
        assert_eq!(f.interleaved, g.interleaved);
        assert_eq!(f.strips.len(), g.strips.len());
        for (a, b) in f.strips.iter().zip(&g.strips) {
            assert_eq!(a.col_idx, b.col_idx);
            assert_eq!(a.block_col_idx, b.block_col_idx);
            assert_eq!(a.values, b.values);
            assert_eq!(a.metadata, b.metadata);
        }
    }

    #[test]
    fn loaded_format_computes_identically() {
        let a = VectorSparseSpec {
            rows: 64,
            cols: 96,
            sparsity: 0.85,
            v: 2,
            dist: ValueDist::SmallInt,
            seed: 71,
        }
        .generate();
        let b = dense_rhs(96, 16, ValueDist::SmallInt, 72);
        let f = JigsawSpmm::plan(&a, JigsawConfig::v4(16)).unwrap().format;
        let g = from_bytes(&to_bytes(&f)).unwrap();
        assert_eq!(execute_fast(&g, &b), a.matmul_reference(&b));
    }

    #[test]
    fn rejects_corruption() {
        let f = sample_format();
        let mut bytes = to_bytes(&f);
        assert!(from_bytes(&bytes[..10]).is_err(), "truncation");
        bytes[0] = b'X';
        assert!(from_bytes(&bytes).is_err(), "bad magic");
        let mut bytes = to_bytes(&f);
        bytes[4] = 99; // version
        assert!(from_bytes(&bytes).is_err(), "bad version");
        let mut bytes = to_bytes(&f);
        bytes.push(0);
        assert!(from_bytes(&bytes).is_err(), "trailing bytes");
    }

    #[test]
    fn rejects_every_truncation_point() {
        // Every proper prefix — which includes a cut at every field
        // boundary — must error, never panic or over-allocate.
        let bytes = to_bytes(&sample_format());
        for len in 0..bytes.len() {
            assert!(from_bytes(&bytes[..len]).is_err(), "prefix of {len} bytes");
        }
    }

    #[test]
    fn rejects_inconsistent_headers() {
        let f = sample_format();
        let good = to_bytes(&f);

        // Header field offsets: magic 0..4, version 4..8, m 8..16,
        // k 16..24, block_tile_m 24..28, interleaved 28..32,
        // nstrips 32..36.
        let patch = |off: usize, val: &[u8]| {
            let mut b = good.clone();
            b[off..off + val.len()].copy_from_slice(val);
            from_bytes(&b)
        };

        // Huge m: strip count check fires long before any allocation.
        assert!(patch(8, &u64::MAX.to_le_bytes()).is_err(), "huge m");
        // m not a multiple of 16.
        assert!(patch(8, &17u64.to_le_bytes()).is_err(), "ragged m");
        // Zero / ragged block_tile_m.
        assert!(patch(24, &0u32.to_le_bytes()).is_err(), "zero block_tile_m");
        assert!(
            patch(24, &24u32.to_le_bytes()).is_err(),
            "ragged block_tile_m"
        );
        // Interleaved flag outside {0, 1}.
        assert!(
            patch(28, &7u32.to_le_bytes()).is_err(),
            "bad interleaved flag"
        );
        // Strip count that the remaining bytes cannot hold.
        assert!(patch(32, &u32::MAX.to_le_bytes()).is_err(), "huge nstrips");
        // Shrunk k invalidates stored column indices.
        assert!(
            patch(16, &1u64.to_le_bytes()).is_err(),
            "col_idx out of k range"
        );
    }

    #[test]
    fn rejects_inconsistent_strip_fields() {
        let f = sample_format();
        let good = to_bytes(&f);
        // First strip starts right after the 36-byte header:
        // row0 36..44, height 44..48, windows 48..52, col_idx len 52..56.
        let patch = |off: usize, val: &[u8]| {
            let mut b = good.clone();
            b[off..off + val.len()].copy_from_slice(val);
            from_bytes(&b)
        };
        assert!(
            patch(36, &9u64.to_le_bytes()).is_err(),
            "row0 out of sequence"
        );
        assert!(patch(44, &48u32.to_le_bytes()).is_err(), "wrong height");
        // Inflated windows forces col_idx length mismatch (or EOF).
        assert!(patch(48, &u32::MAX.to_le_bytes()).is_err(), "huge windows");
        // Inflated col_idx length disagrees with windows*16.
        assert!(
            patch(52, &u32::MAX.to_le_bytes()).is_err(),
            "huge col_idx len"
        );
    }

    #[test]
    fn single_bit_flips_never_panic() {
        // Any corruption must surface as Ok (benign value change) or
        // Err — from_bytes must not panic regardless of which bit
        // flips. Covers every byte with one bit flip each.
        let bytes = to_bytes(&sample_format());
        for i in 0..bytes.len() {
            let mut b = bytes.clone();
            b[i] ^= 1 << (i % 8);
            let _ = from_bytes(&b);
        }
    }

    #[test]
    fn file_roundtrip() {
        let f = sample_format();
        let dir = std::env::temp_dir().join("jigsaw-serialize-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("weights.jgsw");
        write_to(&f, std::fs::File::create(&path).unwrap()).unwrap();
        let g = read_from(std::fs::File::open(&path).unwrap()).unwrap();
        assert_eq!(f.measured_bytes(), g.measured_bytes());
    }
}
