//! Inference-session API: the paper's amortization argument (§3.1 —
//! "the reorder only takes one-time light preprocessing, whose cost can
//! be amortized over inferences") made concrete. A [`Session`] plans a
//! stack of stationary weight matrices once, then runs forward passes
//! where each layer's SpMM output feeds the next layer's B operand.

use dlmc::Matrix;
use gpu_sim::{GpuSpec, KernelStats};
use sptc::F16;

use crate::config::JigsawConfig;
use crate::spmm::JigsawSpmm;

/// One planned layer.
pub struct Layer {
    /// Layer name (for reports).
    pub name: String,
    /// The planned weight matrix (`rows × cols`).
    pub spmm: JigsawSpmm,
    /// Weight matrix height (output features).
    pub rows: usize,
    /// Weight matrix width (input features).
    pub cols: usize,
}

/// A planned stack of layers sharing one device.
pub struct Session {
    layers: Vec<Layer>,
    spec: GpuSpec,
    /// Cumulative simulated cycles across all forward passes.
    pub total_cycles: f64,
    /// Forward passes run.
    pub passes: usize,
}

/// Per-pass report.
#[derive(Clone, Debug)]
pub struct ForwardReport {
    /// Per-layer simulated kernel stats, in execution order.
    pub layers: Vec<(String, KernelStats)>,
    /// Sum of the layer durations, cycles.
    pub total_cycles: f64,
}

impl Session {
    /// Creates an empty session for a device.
    pub fn new(spec: GpuSpec) -> Session {
        Session {
            layers: Vec::new(),
            spec,
            total_cycles: 0.0,
            passes: 0,
        }
    }

    /// Plans and appends a layer. Consecutive layers must chain:
    /// this layer's `cols` must equal the previous layer's `rows`.
    pub fn add_layer(&mut self, name: &str, weights: &Matrix, config: JigsawConfig) -> &Layer {
        if let Some(prev) = self.layers.last() {
            assert_eq!(
                weights.cols, prev.rows,
                "layer {name} input dim {} must match previous output dim {}",
                weights.cols, prev.rows
            );
        }
        let spmm = JigsawSpmm::plan(weights, config);
        self.layers.push(Layer {
            name: name.to_string(),
            spmm,
            rows: weights.rows,
            cols: weights.cols,
        });
        self.layers.last().expect("just pushed")
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Runs a forward pass: `x_{i+1} = W_i × x_i`, rounding activations
    /// through f16 between layers (as a real fp16 pipeline would).
    /// Returns the final activations and the per-layer timing report.
    pub fn forward(&mut self, input: &Matrix) -> (Matrix, ForwardReport) {
        assert!(!self.layers.is_empty(), "session has no layers");
        assert_eq!(
            input.rows,
            self.layers[0].cols,
            "input features must match the first layer"
        );
        let n = input.cols;
        let mut activations = input.clone();
        let mut report = ForwardReport {
            layers: Vec::with_capacity(self.layers.len()),
            total_cycles: 0.0,
        };
        for layer in &self.layers {
            let run = layer.spmm.run(&activations, &self.spec);
            report.total_cycles += run.stats.duration_cycles;
            report
                .layers
                .push((layer.name.clone(), run.stats));
            // f32 accumulators round back to f16 activations.
            activations = Matrix {
                rows: layer.rows,
                cols: n,
                data: run.c.iter().map(|&v| F16::from_f32(v)).collect(),
            };
        }
        self.total_cycles += report.total_cycles;
        self.passes += 1;
        (activations, report)
    }

    /// The amortization ledger: planning happened once, execution
    /// `passes` times — average simulated cycles per pass so far.
    pub fn avg_cycles_per_pass(&self) -> f64 {
        if self.passes == 0 {
            0.0
        } else {
            self.total_cycles / self.passes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlmc::{dense_rhs, ValueDist, VectorSparseSpec};

    fn weights(rows: usize, cols: usize, seed: u64) -> Matrix {
        VectorSparseSpec {
            rows,
            cols,
            sparsity: 0.9,
            v: 4,
            dist: ValueDist::SmallInt,
            seed,
        }
        .generate()
    }

    #[test]
    fn forward_chains_layers_correctly() {
        let w0 = weights(64, 32, 1);
        let w1 = weights(32, 64, 2);
        let mut session = Session::new(GpuSpec::a100());
        session.add_layer("up", &w0, JigsawConfig::v4(32));
        session.add_layer("down", &w1, JigsawConfig::v4(16));
        assert_eq!(session.depth(), 2);

        let x = dense_rhs(32, 8, ValueDist::SmallInt, 3);
        let (y, report) = session.forward(&x);
        assert_eq!(y.rows, 32);
        assert_eq!(y.cols, 8);
        assert_eq!(report.layers.len(), 2);

        // Reference: the same chain with explicit f16 rounding.
        let h0: Vec<F16> = w0
            .matmul_reference(&x)
            .iter()
            .map(|&v| F16::from_f32(v))
            .collect();
        let h0 = Matrix { rows: 64, cols: 8, data: h0 };
        let y_ref: Vec<F16> = w1
            .matmul_reference(&h0)
            .iter()
            .map(|&v| F16::from_f32(v))
            .collect();
        assert_eq!(y.data, y_ref);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn mismatched_layer_dims_panic() {
        let mut session = Session::new(GpuSpec::a100());
        session.add_layer("a", &weights(64, 32, 1), JigsawConfig::v4(32));
        session.add_layer("b", &weights(32, 32, 2), JigsawConfig::v4(32));
    }

    #[test]
    fn amortization_ledger_accumulates() {
        let mut session = Session::new(GpuSpec::a100());
        session.add_layer("only", &weights(64, 64, 4), JigsawConfig::v4(32));
        let x = dense_rhs(64, 8, ValueDist::SmallInt, 5);
        assert_eq!(session.avg_cycles_per_pass(), 0.0);
        let (_, r1) = session.forward(&x);
        let (_, r2) = session.forward(&x);
        assert_eq!(session.passes, 2);
        assert!((r1.total_cycles - r2.total_cycles).abs() < 1e-9, "deterministic");
        assert!((session.avg_cycles_per_pass() - r1.total_cycles).abs() < 1e-9);
    }
}
