//! Inference-session API: the paper's amortization argument (§3.1 —
//! "the reorder only takes one-time light preprocessing, whose cost can
//! be amortized over inferences") made concrete. A [`Session`] plans a
//! stack of stationary weight matrices once, then runs forward passes
//! where each layer's SpMM output feeds the next layer's B operand.

use std::fmt;

use dlmc::Matrix;
use gpu_sim::{GpuSpec, KernelStats};
use sptc::F16;

use crate::config::JigsawConfig;
use crate::errors::PlanError;
use crate::pool::{PoolStats, WorkspacePool};
use crate::spmm::JigsawSpmm;

/// Why a [`Session`] operation was rejected. A serving layer sits on
/// top of this API, so dimension mistakes in a request must surface as
/// values, not process-killing panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionError {
    /// A new layer's input width does not chain with the previous
    /// layer's output height.
    LayerDimMismatch {
        /// Name of the offending layer.
        layer: String,
        /// The new layer's input dimension (`weights.cols`).
        input_dim: usize,
        /// The previous layer's output dimension (`rows`).
        expected: usize,
    },
    /// `forward` was called on a session with no layers.
    EmptySession,
    /// The input's feature dimension does not match the first layer.
    InputDimMismatch {
        /// The input's feature dimension (`input.rows`).
        input_dim: usize,
        /// The first layer's input dimension.
        expected: usize,
    },
    /// Planning the layer's weights failed.
    Plan(PlanError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::LayerDimMismatch {
                layer,
                input_dim,
                expected,
            } => write!(
                f,
                "layer {layer} input dim {input_dim} must match previous output dim {expected}"
            ),
            SessionError::EmptySession => write!(f, "session has no layers"),
            SessionError::InputDimMismatch {
                input_dim,
                expected,
            } => write!(
                f,
                "input features {input_dim} must match the first layer ({expected})"
            ),
            SessionError::Plan(e) => write!(f, "planning failed: {e}"),
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::Plan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlanError> for SessionError {
    fn from(e: PlanError) -> SessionError {
        SessionError::Plan(e)
    }
}

/// One planned layer.
#[derive(Clone, Debug)]
pub struct Layer {
    /// Layer name (for reports).
    pub name: String,
    /// The planned weight matrix (`rows × cols`).
    pub spmm: JigsawSpmm,
    /// Weight matrix height (output features).
    pub rows: usize,
    /// Weight matrix width (input features).
    pub cols: usize,
}

/// A planned stack of layers sharing one device.
pub struct Session {
    layers: Vec<Layer>,
    spec: GpuSpec,
    /// Reused C/scratch buffers across layers and passes: after the
    /// first pass warms it, forward passes allocate nothing.
    pool: WorkspacePool,
    /// Cumulative simulated cycles across all forward passes.
    pub total_cycles: f64,
    /// Forward passes run.
    pub passes: usize,
}

/// Per-pass report.
#[derive(Clone, Debug)]
pub struct ForwardReport {
    /// Per-layer simulated kernel stats, in execution order.
    pub layers: Vec<(String, KernelStats)>,
    /// Sum of the layer durations, cycles.
    pub total_cycles: f64,
}

impl Session {
    /// Creates an empty session for a device.
    pub fn new(spec: GpuSpec) -> Session {
        Session {
            layers: Vec::new(),
            spec,
            pool: WorkspacePool::new(),
            total_cycles: 0.0,
            passes: 0,
        }
    }

    /// Plans and appends a layer. Consecutive layers must chain:
    /// this layer's `cols` must equal the previous layer's `rows`.
    pub fn add_layer(
        &mut self,
        name: &str,
        weights: &Matrix,
        config: JigsawConfig,
    ) -> Result<&Layer, SessionError> {
        if let Some(prev) = self.layers.last() {
            if weights.cols != prev.rows {
                return Err(SessionError::LayerDimMismatch {
                    layer: name.to_string(),
                    input_dim: weights.cols,
                    expected: prev.rows,
                });
            }
        }
        let spmm = JigsawSpmm::plan(weights, config)?;
        self.layers.push(Layer {
            name: name.to_string(),
            spmm,
            rows: weights.rows,
            cols: weights.cols,
        });
        Ok(self.layers.last().expect("just pushed"))
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Runs a forward pass: `x_{i+1} = W_i × x_i`, rounding activations
    /// through f16 between layers (as a real fp16 pipeline would).
    /// Returns the final activations and the per-layer timing report.
    pub fn forward(&mut self, input: &Matrix) -> Result<(Matrix, ForwardReport), SessionError> {
        if self.layers.is_empty() {
            return Err(SessionError::EmptySession);
        }
        if input.rows != self.layers[0].cols {
            return Err(SessionError::InputDimMismatch {
                input_dim: input.rows,
                expected: self.layers[0].cols,
            });
        }
        let n = input.cols;
        let mut activations = input.clone();
        let mut report = ForwardReport {
            layers: Vec::with_capacity(self.layers.len()),
            total_cycles: 0.0,
        };
        for layer in &self.layers {
            // Pooled execution: C and the B-conversion scratch come
            // from (and return to) the session's workspace pool.
            let c = layer
                .spmm
                .compiled()
                .execute_pooled(&activations, &self.pool);
            let stats = layer.spmm.simulate(n, &self.spec);
            report.total_cycles += stats.duration_cycles;
            report.layers.push((layer.name.clone(), stats));
            // f32 accumulators round back to f16 activations.
            activations = Matrix {
                rows: layer.rows,
                cols: n,
                data: c.iter().map(|&v| F16::from_f32(v)).collect(),
            };
        }
        self.total_cycles += report.total_cycles;
        self.passes += 1;
        Ok((activations, report))
    }

    /// Workspace-pool accounting: after the first forward pass warms
    /// the pool, `misses` stops growing.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// The amortization ledger: planning happened once, execution
    /// `passes` times — average simulated cycles per pass so far.
    pub fn avg_cycles_per_pass(&self) -> f64 {
        if self.passes == 0 {
            0.0
        } else {
            self.total_cycles / self.passes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlmc::{dense_rhs, ValueDist, VectorSparseSpec};

    fn weights(rows: usize, cols: usize, seed: u64) -> Matrix {
        VectorSparseSpec {
            rows,
            cols,
            sparsity: 0.9,
            v: 4,
            dist: ValueDist::SmallInt,
            seed,
        }
        .generate()
    }

    #[test]
    fn forward_chains_layers_correctly() {
        let w0 = weights(64, 32, 1);
        let w1 = weights(32, 64, 2);
        let mut session = Session::new(GpuSpec::a100());
        session.add_layer("up", &w0, JigsawConfig::v4(32)).unwrap();
        session
            .add_layer("down", &w1, JigsawConfig::v4(16))
            .unwrap();
        assert_eq!(session.depth(), 2);

        let x = dense_rhs(32, 8, ValueDist::SmallInt, 3);
        let (y, report) = session.forward(&x).unwrap();
        assert_eq!(y.rows, 32);
        assert_eq!(y.cols, 8);
        assert_eq!(report.layers.len(), 2);

        // Reference: the same chain with explicit f16 rounding.
        let h0: Vec<F16> = w0
            .matmul_reference(&x)
            .iter()
            .map(|&v| F16::from_f32(v))
            .collect();
        let h0 = Matrix {
            rows: 64,
            cols: 8,
            data: h0,
        };
        let y_ref: Vec<F16> = w1
            .matmul_reference(&h0)
            .iter()
            .map(|&v| F16::from_f32(v))
            .collect();
        assert_eq!(y.data, y_ref);
    }

    #[test]
    fn mismatched_layer_dims_error() {
        let mut session = Session::new(GpuSpec::a100());
        session
            .add_layer("a", &weights(64, 32, 1), JigsawConfig::v4(32))
            .unwrap();
        let err = session
            .add_layer("b", &weights(32, 32, 2), JigsawConfig::v4(32))
            .unwrap_err();
        assert_eq!(
            err,
            SessionError::LayerDimMismatch {
                layer: "b".to_string(),
                input_dim: 32,
                expected: 64,
            }
        );
        // The rejected layer was not appended.
        assert_eq!(session.depth(), 1);
        assert!(err.to_string().contains("must match"));
    }

    #[test]
    fn forward_input_errors_are_values() {
        let mut session = Session::new(GpuSpec::a100());
        let x = dense_rhs(64, 8, ValueDist::SmallInt, 5);
        assert_eq!(session.forward(&x).unwrap_err(), SessionError::EmptySession);
        session
            .add_layer("only", &weights(64, 32, 6), JigsawConfig::v4(32))
            .unwrap();
        assert_eq!(
            session.forward(&x).unwrap_err(),
            SessionError::InputDimMismatch {
                input_dim: 64,
                expected: 32,
            }
        );
        // Failed passes leave the ledger untouched.
        assert_eq!(session.passes, 0);
        assert_eq!(session.total_cycles, 0.0);
    }

    #[test]
    fn invalid_layer_config_propagates_as_plan_error() {
        use crate::errors::{ConfigError, PlanError};
        let mut session = Session::new(GpuSpec::a100());
        let err = session
            .add_layer("bad", &weights(64, 32, 7), JigsawConfig::v4(40))
            .unwrap_err();
        assert_eq!(
            err,
            SessionError::Plan(PlanError::Config(ConfigError::BlockTileNotMmaAligned {
                block_tile_m: 40,
            }))
        );
        assert_eq!(session.depth(), 0);
    }

    #[test]
    fn forward_passes_reuse_pooled_workspace() {
        let mut session = Session::new(GpuSpec::a100());
        session
            .add_layer("only", &weights(64, 64, 4), JigsawConfig::v4(32))
            .unwrap();
        let x = dense_rhs(64, 8, ValueDist::SmallInt, 5);
        session.forward(&x).unwrap();
        let cold = session.pool_stats();
        assert!(cold.misses >= 2, "first pass allocates C + scratch");
        session.forward(&x).unwrap();
        session.forward(&x).unwrap();
        let warm = session.pool_stats();
        assert_eq!(warm.misses, cold.misses, "warm passes never allocate");
        assert!(warm.hits >= 4, "warm passes are all pool hits: {warm:?}");
    }

    #[test]
    fn amortization_ledger_accumulates() {
        let mut session = Session::new(GpuSpec::a100());
        session
            .add_layer("only", &weights(64, 64, 4), JigsawConfig::v4(32))
            .unwrap();
        let x = dense_rhs(64, 8, ValueDist::SmallInt, 5);
        assert_eq!(session.avg_cycles_per_pass(), 0.0);
        let (_, r1) = session.forward(&x).unwrap();
        let (_, r2) = session.forward(&x).unwrap();
        assert_eq!(session.passes, 2);
        assert!(
            (r1.total_cycles - r2.total_cycles).abs() < 1e-9,
            "deterministic"
        );
        assert!((session.avg_cycles_per_pass() - r1.total_cycles).abs() < 1e-9);
    }
}
