//! Public API: plan once, run many — matching the paper's observation
//! that the weight matrix is stationary during inference, so the
//! reorder is a one-time preprocessing whose cost amortizes.

use std::sync::{Arc, OnceLock};

use dlmc::Matrix;
use gpu_sim::{simulate_kernel, GpuSpec, KernelStats};
use serde::{Deserialize, Serialize};

use jigsaw_obs::Span;

use crate::compiled::{CompiledKernel, ExecOptions};
use crate::config::{JigsawConfig, MMA_TILE};
use crate::errors::PlanError;
use crate::exec::execute_via_fragments;
use crate::format::JigsawFormat;
use crate::kernel::build_launch;
use crate::reorder::{ReorderPlan, ReorderStats};

/// A planned (reordered + compressed) sparse matrix, ready to multiply
/// against any B.
#[derive(Clone, Debug)]
pub struct JigsawSpmm {
    /// The kernel configuration the plan was built for.
    pub config: JigsawConfig,
    /// The compressed reorder-aware format.
    pub format: JigsawFormat,
    /// Reorder quality statistics (Figure 11's signals).
    pub reorder_stats: ReorderStats,
    /// Microkernel selection for [`JigsawSpmm::run`]: which dispatch
    /// variant executes and whether the opt-in sorted stream is
    /// allowed (defaults to auto selection, bit-exact guarantees
    /// intact).
    pub exec_options: ExecOptions,
    /// Lazily compiled execution plan (built on first run, shared by
    /// clones made after that point).
    compiled: OnceLock<Arc<CompiledKernel>>,
}

/// Result of a timed SpMM: the product and the simulated kernel report.
#[derive(Clone, Debug)]
pub struct SpmmRun {
    /// Row-major `M × N` output in f32 (the accumulator precision).
    pub c: Vec<f32>,
    /// Simulated execution report.
    pub stats: KernelStats,
}

/// Summary of a v4 autotuning decision.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TuneReport {
    /// Chosen `BLOCK_TILE_M`.
    pub block_tile_m: usize,
    /// Simulated duration of each candidate, cycles.
    pub candidate_cycles: Vec<(usize, f64)>,
}

impl JigsawSpmm {
    /// Plans the sparse matrix: multi-granularity reorder + compression.
    ///
    /// Returns a typed [`PlanError`] (never panics) when the config's
    /// tiling is invalid or the matrix height is not a multiple of
    /// `MMA_TILE`. When tracing is enabled (`jigsaw_obs::set_enabled`)
    /// the phases are recorded as a `plan` root span in the global
    /// registry.
    pub fn plan(a: &Matrix, config: JigsawConfig) -> Result<JigsawSpmm, PlanError> {
        let root = Span::root("plan");
        Self::plan_traced(a, config, &root)
    }

    /// [`JigsawSpmm::plan`] with the per-phase spans
    /// (`plan.block_reorder`, `plan.tile_reorder`, `plan.compress`)
    /// attached to a caller-provided parent — how a serving layer pulls
    /// planning into a request trace.
    pub fn plan_traced(
        a: &Matrix,
        config: JigsawConfig,
        parent: &Span,
    ) -> Result<JigsawSpmm, PlanError> {
        crate::fault::hit(crate::fault::points::PLAN)?;
        config.validate()?;
        if !a.rows.is_multiple_of(MMA_TILE) {
            return Err(PlanError::RowsNotTileAligned {
                rows: a.rows,
                tile: MMA_TILE,
            });
        }
        parent.attr("block_tile_m", config.block_tile_m);
        let plan = ReorderPlan::build_traced(a, &config, parent);
        let reorder_stats = plan.stats();
        let compress = parent.child("plan.compress");
        let format = JigsawFormat::build(a, &plan, config.metadata_interleave);
        if compress.is_recording() {
            compress.attr("windows", reorder_stats.total_windows);
        }
        compress.finish();
        Ok(JigsawSpmm {
            config,
            format,
            reorder_stats,
            exec_options: ExecOptions::default(),
            compiled: OnceLock::new(),
        })
    }

    /// Plans with v4 autotuning: builds the plan at every candidate
    /// `BLOCK_TILE_M`, simulates a kernel at the given `n`, keeps the
    /// fastest (paper §4.1 "we empirically tune the size of
    /// BLOCK_TILE").
    pub fn plan_tuned(
        a: &Matrix,
        n: usize,
        spec: &GpuSpec,
    ) -> Result<(JigsawSpmm, TuneReport), PlanError> {
        Self::plan_tuned_over(a, n, spec, &JigsawConfig::BLOCK_TILE_CANDIDATES)
    }

    /// [`JigsawSpmm::plan_tuned`] over a caller-chosen candidate set.
    /// An empty set is [`PlanError::NoCandidates`]; an invalid
    /// candidate tiling fails the whole tune with its own error rather
    /// than being silently skipped. Each candidate gets a
    /// `plan.candidate` span carrying its simulated cycles.
    pub fn plan_tuned_over(
        a: &Matrix,
        n: usize,
        spec: &GpuSpec,
        block_tile_candidates: &[usize],
    ) -> Result<(JigsawSpmm, TuneReport), PlanError> {
        let root = Span::root("plan_tuned");
        let mut best: Option<(JigsawSpmm, f64)> = None;
        let mut candidates = Vec::new();
        for &bt in block_tile_candidates {
            let span = root.child("plan.candidate");
            span.attr("block_tile_m", bt);
            let planned = JigsawSpmm::plan_traced(a, JigsawConfig::v4(bt), &span)?;
            let launch = build_launch(&planned.format, n, &planned.config);
            let cycles = simulate_kernel(&launch, spec).duration_cycles;
            span.cycles(cycles);
            span.finish();
            candidates.push((bt, cycles));
            if best.as_ref().is_none_or(|(_, c)| cycles < *c) {
                best = Some((planned, cycles));
            }
        }
        let (planned, _) = best.ok_or(PlanError::NoCandidates)?;
        root.attr("chosen_block_tile_m", planned.config.block_tile_m);
        let report = TuneReport {
            block_tile_m: planned.config.block_tile_m,
            candidate_cycles: candidates,
        };
        Ok((planned, report))
    }

    /// The compiled execution plan of this format, built on first use
    /// and cached for every later run (see [`CompiledKernel`]).
    pub fn compiled(&self) -> &Arc<CompiledKernel> {
        self.compiled
            .get_or_init(|| Arc::new(CompiledKernel::compile(&self.format)))
    }

    /// Sets the microkernel selection for later [`JigsawSpmm::run`]
    /// calls (builder-style; see [`ExecOptions`]).
    pub fn with_exec_options(mut self, opts: ExecOptions) -> JigsawSpmm {
        self.exec_options = opts;
        self
    }

    /// Computes `C = A × B` and simulates the kernel's execution.
    ///
    /// Values come from the compiled plan through the microkernel
    /// dispatch layer under [`JigsawSpmm::exec_options`] (default:
    /// auto selection — the scalar rung stays bit-identical to
    /// [`crate::execute_fast`], the differential-testing oracle).
    pub fn run(&self, b: &Matrix, spec: &GpuSpec) -> SpmmRun {
        let c = self.compiled().execute_opts(b, &self.exec_options);
        let stats = self.simulate(b.cols, spec);
        SpmmRun { c, stats }
    }

    /// Timing only (no values computed) — what the benchmark sweeps use.
    pub fn simulate(&self, n: usize, spec: &GpuSpec) -> KernelStats {
        let launch = build_launch(&self.format, n, &self.config);
        simulate_kernel(&launch, spec)
    }

    /// Computes the product through the full SpTC fragment emulation
    /// (slow; bit-faithful to the hardware data path).
    pub fn run_via_fragments(&self, b: &Matrix) -> Vec<f32> {
        execute_via_fragments(&self.format, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlmc::{dense_rhs, ValueDist, VectorSparseSpec};

    fn workload(sparsity: f64, v: usize) -> (Matrix, Matrix) {
        let a = VectorSparseSpec {
            rows: 128,
            cols: 256,
            sparsity,
            v,
            dist: ValueDist::SmallInt,
            seed: 50,
        }
        .generate();
        let b = dense_rhs(256, 64, ValueDist::SmallInt, 51);
        (a, b)
    }

    #[test]
    fn plan_and_run_end_to_end() {
        let (a, b) = workload(0.9, 4);
        let spmm = JigsawSpmm::plan(&a, JigsawConfig::v4(32)).unwrap();
        assert!(spmm.reorder_stats.success);
        let run = spmm.run(&b, &GpuSpec::a100());
        assert_eq!(run.c, a.matmul_reference(&b));
        assert!(run.stats.duration_cycles > 0.0);
        assert!(run.stats.totals.mma_instructions > 0);
    }

    #[test]
    fn tuned_plan_picks_a_candidate() {
        let (a, _) = workload(0.95, 8);
        let (spmm, report) = JigsawSpmm::plan_tuned(&a, 256, &GpuSpec::a100()).unwrap();
        assert_eq!(report.candidate_cycles.len(), 3);
        assert_eq!(spmm.config.block_tile_m, report.block_tile_m);
        let best = report
            .candidate_cycles
            .iter()
            .map(|&(_, c)| c)
            .fold(f64::INFINITY, f64::min);
        let chosen = report
            .candidate_cycles
            .iter()
            .find(|&&(bt, _)| bt == report.block_tile_m)
            .unwrap()
            .1;
        assert_eq!(best, chosen);
    }

    #[test]
    fn fragment_path_agrees_with_fast_path() {
        let (a, b) = workload(0.85, 2);
        let spmm = JigsawSpmm::plan(&a, JigsawConfig::v4(16)).unwrap();
        assert_eq!(spmm.run_via_fragments(&b), a.matmul_reference(&b));
    }

    #[test]
    fn malformed_inputs_are_typed_errors_not_panics() {
        use crate::errors::{ConfigError, PlanError};
        let (a, _) = workload(0.9, 4);
        // Off-grid BLOCK_TILE_M from v4 surfaces at plan time.
        assert_eq!(
            JigsawSpmm::plan(&a, JigsawConfig::v4(40)).unwrap_err(),
            PlanError::Config(ConfigError::BlockTileNotMmaAligned { block_tile_m: 40 })
        );
        // Rows not divisible by MMA_TILE.
        let short = VectorSparseSpec {
            rows: 24,
            cols: 64,
            sparsity: 0.9,
            v: 4,
            dist: ValueDist::SmallInt,
            seed: 9,
        }
        .generate();
        assert_eq!(
            JigsawSpmm::plan(&short, JigsawConfig::v4(16)).unwrap_err(),
            PlanError::RowsNotTileAligned { rows: 24, tile: 16 }
        );
        // Empty autotune candidate set.
        assert_eq!(
            JigsawSpmm::plan_tuned_over(&a, 64, &GpuSpec::a100(), &[]).unwrap_err(),
            PlanError::NoCandidates
        );
    }

    /// Serializes tests that toggle the global tracing flag.
    static OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn plan_phases_are_traced_with_wall_time() {
        let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        jigsaw_obs::set_enabled(true);
        let (a, _) = workload(0.9, 4);
        let (root, handle) = jigsaw_obs::Span::trace("test.plan");
        JigsawSpmm::plan_traced(&a, JigsawConfig::v4(32), &root).unwrap();
        root.finish();
        jigsaw_obs::set_enabled(false);
        let rec = handle.take().expect("trace recorded");
        for phase in ["plan.block_reorder", "plan.tile_reorder", "plan.compress"] {
            let span = rec.find(phase).unwrap_or_else(|| panic!("{phase} missing"));
            // Wall time is captured per phase (may be 0ns on a coarse
            // clock, but the field is populated by construction).
            assert!(span.wall_ns < 10_000_000_000, "{phase} sane wall time");
        }
        assert!(rec
            .find("plan.tile_reorder")
            .unwrap()
            .attr("evictions")
            .is_some());
    }

    #[test]
    fn tuned_candidates_are_traced_with_cycles() {
        let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        jigsaw_obs::set_enabled(true);
        jigsaw_obs::global().reset();
        let (a, _) = workload(0.95, 8);
        let _ = JigsawSpmm::plan_tuned(&a, 128, &GpuSpec::a100()).unwrap();
        jigsaw_obs::set_enabled(false);
        let rec = jigsaw_obs::global()
            .latest_trace("plan_tuned")
            .expect("root span recorded");
        let candidates: Vec<_> = rec
            .children
            .iter()
            .filter(|c| c.name == "plan.candidate")
            .collect();
        assert_eq!(candidates.len(), 3);
        for c in &candidates {
            assert!(c.cycles.unwrap() > 0.0);
            assert!(c.find("plan.tile_reorder").is_some());
        }
    }
}
