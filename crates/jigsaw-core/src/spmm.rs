//! Public API: plan once, run many — matching the paper's observation
//! that the weight matrix is stationary during inference, so the
//! reorder is a one-time preprocessing whose cost amortizes.

use dlmc::Matrix;
use gpu_sim::{simulate_kernel, GpuSpec, KernelStats};
use serde::{Deserialize, Serialize};

use crate::config::JigsawConfig;
use crate::exec::{execute_fast, execute_via_fragments};
use crate::format::JigsawFormat;
use crate::kernel::build_launch;
use crate::reorder::{ReorderPlan, ReorderStats};

/// A planned (reordered + compressed) sparse matrix, ready to multiply
/// against any B.
#[derive(Clone, Debug)]
pub struct JigsawSpmm {
    /// The kernel configuration the plan was built for.
    pub config: JigsawConfig,
    /// The compressed reorder-aware format.
    pub format: JigsawFormat,
    /// Reorder quality statistics (Figure 11's signals).
    pub reorder_stats: ReorderStats,
}

/// Result of a timed SpMM: the product and the simulated kernel report.
#[derive(Clone, Debug)]
pub struct SpmmRun {
    /// Row-major `M × N` output in f32 (the accumulator precision).
    pub c: Vec<f32>,
    /// Simulated execution report.
    pub stats: KernelStats,
}

/// Summary of a v4 autotuning decision.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TuneReport {
    /// Chosen `BLOCK_TILE_M`.
    pub block_tile_m: usize,
    /// Simulated duration of each candidate, cycles.
    pub candidate_cycles: Vec<(usize, f64)>,
}

impl JigsawSpmm {
    /// Plans the sparse matrix: multi-granularity reorder + compression.
    pub fn plan(a: &Matrix, config: JigsawConfig) -> JigsawSpmm {
        let plan = ReorderPlan::build(a, &config);
        let reorder_stats = plan.stats();
        let format = JigsawFormat::build(a, &plan, config.metadata_interleave);
        JigsawSpmm {
            config,
            format,
            reorder_stats,
        }
    }

    /// Plans with v4 autotuning: builds the plan at every candidate
    /// `BLOCK_TILE_M`, simulates a kernel at the given `n`, keeps the
    /// fastest (paper §4.1 "we empirically tune the size of
    /// BLOCK_TILE").
    pub fn plan_tuned(a: &Matrix, n: usize, spec: &GpuSpec) -> (JigsawSpmm, TuneReport) {
        let mut best: Option<(JigsawSpmm, f64)> = None;
        let mut candidates = Vec::new();
        for bt in JigsawConfig::BLOCK_TILE_CANDIDATES {
            let planned = JigsawSpmm::plan(a, JigsawConfig::v4(bt));
            let launch = build_launch(&planned.format, n, &planned.config);
            let cycles = simulate_kernel(&launch, spec).duration_cycles;
            candidates.push((bt, cycles));
            if best.as_ref().is_none_or(|(_, c)| cycles < *c) {
                best = Some((planned, cycles));
            }
        }
        let (planned, _) = best.expect("candidates is non-empty");
        let report = TuneReport {
            block_tile_m: planned.config.block_tile_m,
            candidate_cycles: candidates,
        };
        (planned, report)
    }

    /// Computes `C = A × B` and simulates the kernel's execution.
    pub fn run(&self, b: &Matrix, spec: &GpuSpec) -> SpmmRun {
        let c = execute_fast(&self.format, b);
        let stats = self.simulate(b.cols, spec);
        SpmmRun { c, stats }
    }

    /// Timing only (no values computed) — what the benchmark sweeps use.
    pub fn simulate(&self, n: usize, spec: &GpuSpec) -> KernelStats {
        let launch = build_launch(&self.format, n, &self.config);
        simulate_kernel(&launch, spec)
    }

    /// Computes the product through the full SpTC fragment emulation
    /// (slow; bit-faithful to the hardware data path).
    pub fn run_via_fragments(&self, b: &Matrix) -> Vec<f32> {
        execute_via_fragments(&self.format, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlmc::{dense_rhs, ValueDist, VectorSparseSpec};

    fn workload(sparsity: f64, v: usize) -> (Matrix, Matrix) {
        let a = VectorSparseSpec {
            rows: 128,
            cols: 256,
            sparsity,
            v,
            dist: ValueDist::SmallInt,
            seed: 50,
        }
        .generate();
        let b = dense_rhs(256, 64, ValueDist::SmallInt, 51);
        (a, b)
    }

    #[test]
    fn plan_and_run_end_to_end() {
        let (a, b) = workload(0.9, 4);
        let spmm = JigsawSpmm::plan(&a, JigsawConfig::v4(32));
        assert!(spmm.reorder_stats.success);
        let run = spmm.run(&b, &GpuSpec::a100());
        assert_eq!(run.c, a.matmul_reference(&b));
        assert!(run.stats.duration_cycles > 0.0);
        assert!(run.stats.totals.mma_instructions > 0);
    }

    #[test]
    fn tuned_plan_picks_a_candidate() {
        let (a, _) = workload(0.95, 8);
        let (spmm, report) = JigsawSpmm::plan_tuned(&a, 256, &GpuSpec::a100());
        assert_eq!(report.candidate_cycles.len(), 3);
        assert_eq!(spmm.config.block_tile_m, report.block_tile_m);
        let best = report
            .candidate_cycles
            .iter()
            .map(|&(_, c)| c)
            .fold(f64::INFINITY, f64::min);
        let chosen = report
            .candidate_cycles
            .iter()
            .find(|&&(bt, _)| bt == report.block_tile_m)
            .unwrap()
            .1;
        assert_eq!(best, chosen);
    }

    #[test]
    fn fragment_path_agrees_with_fast_path() {
        let (a, b) = workload(0.85, 2);
        let spmm = JigsawSpmm::plan(&a, JigsawConfig::v4(16));
        assert_eq!(spmm.run_via_fragments(&b), a.matmul_reference(&b));
    }
}
