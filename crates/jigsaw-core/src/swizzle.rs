//! Z-shaped (Morton) swizzle for compressed value blocks.
//!
//! The reorder-aware storage format stores each compressed 16×8 value
//! block contiguously "in a Z-shaped swizzle pattern" (paper §3.3,
//! Figure 6 (c)) so that the fragment loads of a warp touch consecutive
//! addresses. We use the Morton order over (row, col): bit-interleaved,
//! row bits in the even positions.

/// Rows of a compressed block.
pub const BLOCK_ROWS: usize = 16;
/// Columns of a compressed block (one window's kept elements per row).
pub const BLOCK_COLS: usize = 8;
/// Elements per block.
pub const BLOCK_ELEMS: usize = BLOCK_ROWS * BLOCK_COLS;

/// Morton index of `(row, col)` within a 16×8 block.
#[inline]
pub fn zorder(row: usize, col: usize) -> usize {
    debug_assert!(row < BLOCK_ROWS && col < BLOCK_COLS);
    // Interleave 4 row bits with 3 col bits: r3 r2|c2 r1|c1 r0|c0 ->
    // pairwise interleave low 3 bits, row bit 3 on top.
    let mut idx = 0usize;
    for b in 0..3 {
        idx |= ((row >> b) & 1) << (2 * b + 1);
        idx |= ((col >> b) & 1) << (2 * b);
    }
    idx | (((row >> 3) & 1) << 6)
}

/// Inverse of [`zorder`].
#[inline]
pub fn zorder_inverse(idx: usize) -> (usize, usize) {
    debug_assert!(idx < BLOCK_ELEMS);
    let mut row = 0usize;
    let mut col = 0usize;
    for b in 0..3 {
        row |= ((idx >> (2 * b + 1)) & 1) << b;
        col |= ((idx >> (2 * b)) & 1) << b;
    }
    row |= ((idx >> 6) & 1) << 3;
    (row, col)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zorder_is_a_bijection() {
        let mut seen = [false; BLOCK_ELEMS];
        for r in 0..BLOCK_ROWS {
            for c in 0..BLOCK_COLS {
                let idx = zorder(r, c);
                assert!(idx < BLOCK_ELEMS);
                assert!(!seen[idx], "({r},{c}) collides at {idx}");
                seen[idx] = true;
                assert_eq!(zorder_inverse(idx), (r, c));
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zorder_is_z_shaped() {
        // The first four indices walk a 2x2 Z: (0,0) (0,1) (1,0) (1,1).
        assert_eq!(zorder(0, 0), 0);
        assert_eq!(zorder(0, 1), 1);
        assert_eq!(zorder(1, 0), 2);
        assert_eq!(zorder(1, 1), 3);
    }

    #[test]
    fn locality_of_quads() {
        // A 2x2 sub-quad always occupies 4 consecutive indices.
        for r in (0..BLOCK_ROWS).step_by(2) {
            for c in (0..BLOCK_COLS).step_by(2) {
                let base = zorder(r, c);
                assert_eq!(base % 4, 0);
                let quad = [
                    zorder(r, c),
                    zorder(r, c + 1),
                    zorder(r + 1, c),
                    zorder(r + 1, c + 1),
                ];
                assert_eq!(quad, [base, base + 1, base + 2, base + 3]);
            }
        }
    }
}
