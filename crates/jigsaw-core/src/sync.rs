//! Poison-recovering lock helpers.
//!
//! A panic while holding a `std::sync::Mutex` poisons it, and every
//! later `lock().expect(...)` turns one isolated panic into a cascade
//! that takes down unrelated threads. All state guarded by mutexes in
//! this workspace is kept consistent *before* any fallible call (or is
//! repaired by a drop-guard), so recovering from poison is always
//! safe — these helpers make that the workspace-wide idiom.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Locks `m`, recovering the guard if a previous holder panicked.
pub fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait`] that recovers from poison instead of panicking.
pub fn wait_recover<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(g).unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait_timeout`] that recovers from poison; returns the
/// guard and whether the wait timed out.
pub fn wait_timeout_recover<'a, T>(
    cv: &Condvar,
    g: MutexGuard<'a, T>,
    dur: Duration,
) -> (MutexGuard<'a, T>, bool) {
    let (g, res) = cv
        .wait_timeout(g, dur)
        .unwrap_or_else(PoisonError::into_inner);
    (g, res.timed_out())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn lock_recover_survives_poison() {
        let m = Mutex::new(41);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.lock().unwrap();
            panic!("poison it");
        }));
        assert!(m.is_poisoned());
        let mut g = lock_recover(&m);
        *g += 1;
        assert_eq!(*g, 42);
    }
}
