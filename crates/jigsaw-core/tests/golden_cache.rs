//! Checked-in golden cache counters for one small SpMM plan simulated
//! with the sectored hierarchy on (DESIGN.md §18).
//!
//! The property suite (`gpu-sim/tests/cache_properties.rs`) proves the
//! cache model's invariants; this test pins the *exact* per-kernel
//! L1/L2 counters of a fixed plan so any drift in the address
//! annotations, the replacement policy, or the L2 replay order fails
//! CI deterministically. To regenerate after an *intentional* model
//! change, run:
//!
//! ```text
//! JIGSAW_GOLDEN_PRINT=1 cargo test -p jigsaw-core --test golden_cache -- --nocapture
//! ```
//!
//! and paste the printed constants over `EXPECTED` below.

use dlmc::{ValueDist, VectorSparseSpec};
use gpu_sim::GpuSpec;
use jigsaw_core::{JigsawConfig, JigsawSpmm};

#[derive(Debug, PartialEq, Eq)]
struct GoldenCounters {
    name: &'static str,
    n: usize,
    l1_accesses: u64,
    l1_hits: u64,
    l1_sector_reads: u64,
    l1_evictions: u64,
    l1_mshr_merges: u64,
    l2_accesses: u64,
    l2_hits: u64,
    l2_sector_reads: u64,
    l2_evictions: u64,
}

const EXPECTED: &[GoldenCounters] = &[
    GoldenCounters {
        name: "v4_16",
        n: 64,
        l1_accesses: 872,
        l1_hits: 0,
        l1_sector_reads: 872,
        l1_evictions: 0,
        l1_mshr_merges: 0,
        l2_accesses: 872,
        l2_hits: 296,
        l2_sector_reads: 576,
        l2_evictions: 0,
    },
    GoldenCounters {
        name: "v4_16",
        n: 128,
        l1_accesses: 1744,
        l1_hits: 0,
        l1_sector_reads: 1744,
        l1_evictions: 0,
        l1_mshr_merges: 0,
        l2_accesses: 1744,
        l2_hits: 752,
        l2_sector_reads: 992,
        l2_evictions: 0,
    },
];

#[test]
fn cache_counters_match_committed_golden_values() {
    let a = VectorSparseSpec {
        rows: 64,
        cols: 128,
        sparsity: 0.9,
        v: 4,
        dist: ValueDist::Uniform,
        seed: 7,
    }
    .generate();
    let kernel = JigsawSpmm::plan(&a, JigsawConfig::v4(16)).expect("plan");
    let spec = GpuSpec::a100_with_caches();

    let mut got = Vec::new();
    for n in [64usize, 128] {
        let stats = kernel.simulate(n, &spec);
        let c = stats.cache.expect("cache model on");
        got.push(GoldenCounters {
            name: "v4_16",
            n,
            l1_accesses: c.l1.accesses,
            l1_hits: c.l1.hits,
            l1_sector_reads: c.l1.sector_reads,
            l1_evictions: c.l1.evictions,
            l1_mshr_merges: c.l1.mshr_merges,
            l2_accesses: c.l2.accesses,
            l2_hits: c.l2.hits,
            l2_sector_reads: c.l2.sector_reads,
            l2_evictions: c.l2.evictions,
        });
        // The hierarchy invariant holds regardless of golden drift.
        assert_eq!(c.l2.accesses, c.l1.sector_reads);
    }

    if std::env::var_os("JIGSAW_GOLDEN_PRINT").is_some() {
        for g in &got {
            println!(
                "    GoldenCounters {{\n        name: \"{}\",\n        n: {},\n        \
                 l1_accesses: {},\n        l1_hits: {},\n        l1_sector_reads: {},\n        \
                 l1_evictions: {},\n        l1_mshr_merges: {},\n        l2_accesses: {},\n        \
                 l2_hits: {},\n        l2_sector_reads: {},\n        l2_evictions: {},\n    }},",
                g.name,
                g.n,
                g.l1_accesses,
                g.l1_hits,
                g.l1_sector_reads,
                g.l1_evictions,
                g.l1_mshr_merges,
                g.l2_accesses,
                g.l2_hits,
                g.l2_sector_reads,
                g.l2_evictions,
            );
        }
        return;
    }
    assert_eq!(got.len(), EXPECTED.len());
    for (g, e) in got.iter().zip(EXPECTED) {
        assert_eq!(g, e, "cache counters drifted for {} N={}", e.name, e.n);
    }
}
