//! Checked-in golden vectors for the scalar SpMM path.
//!
//! The differential suites (`properties.rs`, `kernel_parity.rs`) prove
//! the variants agree with *each other*; these tests pin the scalar
//! path to committed outputs so drift that moves the whole family at
//! once — a format change, an RNG change in `dlmc`, a reorder tweak —
//! fails CI on any host, x86 or aarch64, with or without SIMD.
//!
//! Expected products are committed as hex-encoded f32 bit patterns
//! (bit-exact comparison; no tolerance). To regenerate after an
//! *intentional* semantic change, run:
//!
//! ```text
//! JIGSAW_GOLDEN_PRINT=1 cargo test -p jigsaw-core --test golden_vectors -- --nocapture
//! ```
//!
//! and paste the printed arrays over the constants below.

use dlmc::{dense_rhs, ValueDist, VectorSparseSpec};
use jigsaw_core::{
    execute_fast, CompiledKernel, ExecOptions, JigsawConfig, JigsawFormat, ReorderPlan,
};

struct GoldenCase {
    name: &'static str,
    rows: usize,
    cols: usize,
    n: usize,
    sparsity: f64,
    v: usize,
    dist: ValueDist,
    seed: u64,
    expected_bits: &'static [u32],
}

fn run_case(case: &GoldenCase) {
    let a = VectorSparseSpec {
        rows: case.rows,
        cols: case.cols,
        sparsity: case.sparsity,
        v: case.v,
        dist: case.dist,
        seed: case.seed,
    }
    .generate();
    let b = dense_rhs(case.cols, case.n, case.dist, case.seed + 1);
    let plan = ReorderPlan::build(&a, &JigsawConfig::v4(16));
    let format = JigsawFormat::build(&a, &plan, true);
    let fast = execute_fast(&format, &b);
    let compiled = CompiledKernel::compile(&format).execute_opts(&b, &ExecOptions::scalar());
    assert_eq!(fast, compiled, "{}: scalar == execute_fast", case.name);

    let got_bits: Vec<u32> = fast.iter().map(|v| v.to_bits()).collect();
    if std::env::var_os("JIGSAW_GOLDEN_PRINT").is_some() {
        let hex: Vec<String> = got_bits.iter().map(|b| format!("0x{b:08x}")).collect();
        println!(
            "// {} ({} values)\n&[{}],",
            case.name,
            hex.len(),
            hex.join(", ")
        );
        return;
    }
    assert_eq!(
        got_bits.len(),
        case.expected_bits.len(),
        "{}: product size",
        case.name
    );
    for (i, (&got, &want)) in got_bits.iter().zip(case.expected_bits).enumerate() {
        assert_eq!(
            got,
            want,
            "{}: C[{}] = {} (bits 0x{:08x}), golden 0x{:08x}",
            case.name,
            i,
            f32::from_bits(got),
            got,
            want
        );
    }
}

/// 16×32 A (SmallInt, s=0.85, v=2, seed 1001) × 32×4 B (seed 1002),
/// 64 values. Every entry is an exactly-representable small integer.
#[rustfmt::skip]
const SMALL_INT_BITS: &[u32] = &[
    0x41880000, 0xc1b80000, 0xc1b00000, 0x41900000, 0xbf800000, 0x41c80000, 0x41c00000, 0xc1d80000,
    0x40400000, 0xbf800000, 0x41c00000, 0x41e00000, 0xc0a00000, 0x40a00000, 0xc1e80000, 0xc2080000,
    0xc1200000, 0x41300000, 0xc1500000, 0x42080000, 0xc1600000, 0xc0e00000, 0xc0800000, 0x41c00000,
    0xc2180000, 0xc0e00000, 0xbf800000, 0xc1100000, 0x41c00000, 0x41c80000, 0xc0800000, 0x40800000,
    0xc1a00000, 0xc21c0000, 0xc0400000, 0xc1700000, 0xc0e00000, 0xc2100000, 0xc0000000, 0xc0a00000,
    0xc1880000, 0xc1600000, 0xc0e00000, 0x41e80000, 0xc2180000, 0xc1d80000, 0xc0a00000, 0xc0a00000,
    0xc1700000, 0x41600000, 0x41e00000, 0xc1a80000, 0xc1500000, 0x41800000, 0x41c00000, 0xc1d80000,
    0xc2200000, 0xc0a00000, 0xc1000000, 0xc1400000, 0x41100000, 0x41800000, 0x41500000, 0x41100000,
];

/// 32×48 A (Uniform, s=0.9, v=4, seed 2002) × 48×3 B (seed 2003),
/// 96 values in scalar (execute_fast) accumulation order.
#[rustfmt::skip]
const UNIFORM_BITS: &[u32] = &[
    0x3e74e91c, 0x3f81b114, 0x3ef47650, 0xbf5caccd, 0x3ed4658a, 0xbf5a808d, 0xbed9c10e, 0xbe2e103c,
    0x3da945ca, 0x3db74480, 0x3f27d434, 0x3f22ea34, 0xbed96747, 0xbecc61c6, 0xbeaf83fe, 0xbea2b497,
    0xbf93cf49, 0xbf9ebaf0, 0x3f493d50, 0x3fad5e4a, 0x3f527db2, 0x3fb82b50, 0x3fa11c04, 0x3eb750fe,
    0xbf80dfac, 0x3ee6fc9c, 0xbf9d3aba, 0x3f093554, 0x3e33ee7e, 0x3e813790, 0xbed7a5be, 0x3e38d3c3,
    0xbeea9fa6, 0x3f01260a, 0xbe1dbb3c, 0x3db1f3cc, 0xbe9cfc40, 0x3ee8b1e2, 0xbfa678c7, 0x3edf8fb7,
    0x3f19f724, 0x3f605c91, 0x3e73be94, 0xbe08b809, 0x3e910cbc, 0x3ed7eb3a, 0x3ee15b26, 0x3e77f6b6,
    0x3ed417e7, 0x3f0b0d01, 0x3ea34050, 0xbec925c7, 0x3f0a11ea, 0xbf088804, 0x3e8e2ec6, 0xbe267508,
    0xbf79e003, 0x3e87b4f4, 0x3f2164fa, 0x3f99d028, 0x3dd49f00, 0x3efd5786, 0xbfa1aade, 0xbdd90d68,
    0x3f02dcb3, 0x3f97bca7, 0xbf1a4ef5, 0x3d75c610, 0x400d34de, 0x3f33625a, 0x3e1231c8, 0xbfafa92f,
    0x3e97310a, 0xbf169455, 0xbfe1f13e, 0xbf360d61, 0xbce45b40, 0x3d6b19b0, 0xbf2f7e9e, 0x3d387c9c,
    0xbfe53989, 0x3d87f51c, 0x3e8e5c4c, 0xbd8f87ec, 0x3f1a941c, 0xbeb92b85, 0x3fa76782, 0x3faa2a4a,
    0x3f6f0a11, 0xbd1dd720, 0xbfb092c0, 0xbe1d4fe0, 0xbed1d6da, 0xc01f90d0, 0xbf0d7915, 0xbf97a6f3,
];

#[test]
fn golden_small_int_16x32_n4() {
    run_case(&GoldenCase {
        name: "small_int_16x32_n4",
        rows: 16,
        cols: 32,
        n: 4,
        sparsity: 0.85,
        v: 2,
        dist: ValueDist::SmallInt,
        seed: 1001,
        expected_bits: SMALL_INT_BITS,
    });
}

#[test]
fn golden_uniform_32x48_n3() {
    run_case(&GoldenCase {
        name: "uniform_32x48_n3",
        rows: 32,
        cols: 48,
        n: 3,
        sparsity: 0.9,
        v: 4,
        dist: ValueDist::Uniform,
        seed: 2002,
        expected_bits: UNIFORM_BITS,
    });
}
