//! Cross-ISA differential parity suite for the microkernel dispatch
//! registry (`jigsaw_core::compiled::dispatch`).
//!
//! Contract under test (DESIGN.md §13):
//!
//! * the `scalar` variant is **bit-identical** to [`execute_fast`] —
//!   the differential oracle — on every input,
//! * every fused same-order variant (`avx2_fma`, `avx512f`, `neon`,
//!   and the register-blocked `narrow_n`) keeps the oracle's
//!   accumulation *order* and differs only by per-step fused
//!   rounding: bit-exact on integer-valued data, within the stated
//!   tolerance (floored relative error ≤ 1e-5, ≈ 84 ulps at unit
//!   scale) on arbitrary data,
//! * the opt-in `sorted_stream` variant changes accumulation order and
//!   is held to ≤ 1e-4,
//! * forced selection works by name through the `JIGSAW_KERNEL`
//!   environment variable, and a forced-but-absent ISA falls back
//!   cleanly to a correct product — never a panic.
//!
//! Variants whose ISA the host lacks are **skipped with a log line**
//! (not silently passed) so CI output shows exactly what ran.

use proptest::prelude::*;

use dlmc::{dense_rhs, Matrix, ValueDist, VectorSparseSpec};
use jigsaw_core::compiled::dispatch::{self, ALL_KERNELS};
use jigsaw_core::{
    execute_fast, max_relative_error, CompiledKernel, ExecOptions, JigsawConfig, JigsawFormat,
    KernelKind, KernelPolicy, ReorderPlan,
};

/// Serializes tests that read or write the process-global
/// `JIGSAW_KERNEL` environment variable.
static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Options pinning one variant through the typed policy API.
fn forced(kind: KernelKind) -> ExecOptions {
    ExecOptions::from(KernelPolicy::Forced(kind))
}

fn compile(a: &Matrix, interleaved: bool) -> (JigsawFormat, CompiledKernel) {
    let bt = if a.rows.is_multiple_of(32) { 32 } else { 16 };
    let plan = ReorderPlan::build(a, &JigsawConfig::v4(bt));
    let format = JigsawFormat::build(a, &plan, interleaved);
    let kernel = CompiledKernel::compile(&format);
    (format, kernel)
}

/// Logs and returns the variants this host can actually execute.
/// Skipping is loud by design: a parity suite that silently passes on
/// a host without the ISA is indistinguishable from one that ran.
fn runnable_variants() -> Vec<KernelKind> {
    let mut out = Vec::new();
    for kind in ALL_KERNELS {
        if kind.available() {
            out.push(kind);
        } else {
            eprintln!(
                "kernel_parity: SKIP variant {:?} ({}) — ISA not available on this host",
                kind,
                kind.name()
            );
        }
    }
    out
}

/// A kind that no single host can run: x86-64 lacks NEON, aarch64
/// lacks AVX-512F, and other architectures lack both.
fn absent_kind() -> KernelKind {
    if KernelKind::Neon.available() {
        KernelKind::Avx512f
    } else {
        KernelKind::Neon
    }
}

/// Strategy: a small vector-sparse matrix spec, including very sparse
/// configurations that leave whole strips empty.
fn arb_matrix(dist: ValueDist) -> impl Strategy<Value = Matrix> {
    (
        1usize..=4,   // strips of 16 rows
        1usize..=6,   // column blocks of 16
        0.5f64..0.99, // sparsity
        prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
        any::<u64>(),
    )
        .prop_map(move |(mr, kc, sparsity, v, seed)| {
            VectorSparseSpec {
                rows: mr * 16,
                cols: kc * 16,
                sparsity,
                v,
                dist,
                seed,
            }
            .generate()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The scalar variant — forced explicitly, so immune to any
    /// `JIGSAW_KERNEL` value — is bit-identical to `execute_fast` on
    /// arbitrary (non-integer) values, layouts, and odd N.
    #[test]
    fn scalar_is_bit_identical_to_execute_fast(
        a in arb_matrix(ValueDist::Uniform),
        n in 1usize..=24,
        interleaved in any::<bool>(),
    ) {
        let b = dense_rhs(a.cols, n, ValueDist::Uniform, 17);
        let (format, kernel) = compile(&a, interleaved);
        prop_assert_eq!(
            kernel.execute_opts(&b, &ExecOptions::scalar()),
            execute_fast(&format, &b)
        );
    }

    /// On integer-valued data every product and partial sum is exactly
    /// representable, so fused rounding and reordered accumulation
    /// both vanish: every runnable variant must be bit-identical to
    /// the oracle.
    #[test]
    fn all_variants_are_bit_exact_on_integer_data(
        a in arb_matrix(ValueDist::SmallInt),
        n in 1usize..=24,
        interleaved in any::<bool>(),
    ) {
        let b = dense_rhs(a.cols, n, ValueDist::SmallInt, 23);
        let (format, kernel) = compile(&a, interleaved);
        let oracle = execute_fast(&format, &b);
        for &kind in available_for_proptest() {
            prop_assert_eq!(
                &kernel.execute_opts(&b, &forced(kind)),
                &oracle,
                "variant {}",
                kind.name()
            );
        }
    }

    /// The prepaneled entry point is bit-identical to the two-phase
    /// path for **every** runnable variant: handing the kernel a
    /// `PanelizedB` built by `panelize_into` (the extracted phase 1)
    /// runs the same grid over the same bits, so skipping phase 1
    /// cannot perturb a single output bit — on any values, not just
    /// integers.
    #[test]
    fn prepaneled_execute_is_bit_identical_to_two_phase(
        a in arb_matrix(ValueDist::Uniform),
        n in 1usize..=24,
        interleaved in any::<bool>(),
    ) {
        let b = dense_rhs(a.cols, n, ValueDist::Uniform, 37);
        let (_, kernel) = compile(&a, interleaved);
        let mut panels = vec![0.0f32; a.cols * n];
        jigsaw_core::panelize_into(&b, &mut panels).unwrap();
        let pb = jigsaw_core::PanelizedB::new(a.cols, n, &panels).unwrap();
        for &kind in available_for_proptest() {
            let two_phase = kernel.execute_opts(&b, &forced(kind));
            let mut c = vec![0.0f32; kernel.m * n];
            kernel
                .execute_prepaneled_into_opts(&pb, &mut c, &forced(kind))
                .unwrap();
            prop_assert_eq!(&c, &two_phase, "variant {}", kind.name());
        }
    }

    /// On arbitrary values the fused same-order variants stay within
    /// 1e-5 floored relative error of the scalar oracle; the
    /// order-changing sorted stream stays within 1e-4.
    #[test]
    fn fused_variants_stay_within_stated_tolerance(
        a in arb_matrix(ValueDist::Uniform),
        n in 1usize..=24,
        interleaved in any::<bool>(),
    ) {
        let b = dense_rhs(a.cols, n, ValueDist::Uniform, 29);
        let (_, kernel) = compile(&a, interleaved);
        let oracle = kernel.execute_opts(&b, &ExecOptions::scalar());
        for &kind in available_for_proptest() {
            let got = kernel.execute_opts(&b, &forced(kind));
            let bound = if kind == KernelKind::SortedStream { 1e-4 } else { 1e-5 };
            let err = max_relative_error(&got, &oracle);
            prop_assert!(
                err <= bound,
                "variant {} err {} exceeds {}",
                kind.name(),
                err,
                bound
            );
        }
    }
}

/// `runnable_variants` would flood proptest output with one skip line
/// per case; log once per process instead.
fn available_for_proptest() -> &'static [KernelKind] {
    use std::sync::OnceLock;
    static AVAILABLE: OnceLock<Vec<KernelKind>> = OnceLock::new();
    AVAILABLE.get_or_init(runnable_variants)
}

/// Fixed config exercising the edge shapes the proptest strategies
/// only sometimes reach: an entirely empty strip, an empty leading
/// strip, and N not divisible by any lane width.
#[test]
fn every_variant_handles_empty_strips_and_odd_n() {
    // Rows 16..32 (the second of three strips) are all zero.
    let mut data = vec![0.0f32; 48 * 64];
    for r in (0..48).filter(|r| !(16..32).contains(r)) {
        for c in 0..64 {
            if (r * 31 + c * 7) % 5 == 0 {
                data[r * 64 + c] = ((r + c) % 7) as f32 - 3.0;
            }
        }
    }
    let a = Matrix::from_f32(48, 64, &data);
    for n in [1, 13, 17] {
        let b = dense_rhs(64, n, ValueDist::SmallInt, 31);
        let (format, kernel) = compile(&a, true);
        let oracle = execute_fast(&format, &b);
        assert_eq!(oracle, a.matmul_reference(&b), "oracle sanity, n={n}");
        for kind in runnable_variants() {
            assert_eq!(
                kernel.execute_opts(&b, &forced(kind)),
                oracle,
                "variant {} n={n}",
                kind.name()
            );
        }
    }
}

/// `JIGSAW_KERNEL=<name>` forces each runnable variant by name (both
/// full and short spellings), and the forced run still computes the
/// right product.
#[test]
fn env_var_forces_each_available_variant_by_name() {
    let _g = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    dispatch::unpoison_all();
    let a = VectorSparseSpec {
        rows: 32,
        cols: 64,
        sparsity: 0.9,
        v: 4,
        dist: ValueDist::SmallInt,
        seed: 41,
    }
    .generate();
    let b = dense_rhs(64, 9, ValueDist::SmallInt, 42);
    let (format, kernel) = compile(&a, true);
    let oracle = execute_fast(&format, &b);
    for kind in runnable_variants() {
        for name in [kind.name().to_string(), kind.name().to_uppercase()] {
            std::env::set_var("JIGSAW_KERNEL", &name);
            assert_eq!(
                dispatch::selected_kind(&ExecOptions::default()),
                kind,
                "JIGSAW_KERNEL={name} selects {kind:?}"
            );
            assert_eq!(
                kernel.execute_opts(&b, &ExecOptions::default()),
                oracle,
                "JIGSAW_KERNEL={name} computes the product"
            );
        }
    }
    std::env::remove_var("JIGSAW_KERNEL");
}

/// Forcing an ISA the host lacks — by env var or by options — never
/// panics: selection falls back to a runnable kernel and the product
/// is still bit-exact on integer data.
#[test]
fn forcing_an_absent_isa_falls_back_to_a_correct_product() {
    let _g = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    dispatch::unpoison_all();
    let absent = absent_kind();
    assert!(!absent.available(), "picked a truly absent ISA");
    let a = VectorSparseSpec {
        rows: 48,
        cols: 80,
        sparsity: 0.85,
        v: 2,
        dist: ValueDist::SmallInt,
        seed: 51,
    }
    .generate();
    let b = dense_rhs(80, 11, ValueDist::SmallInt, 52);
    let (format, kernel) = compile(&a, false);
    let oracle = execute_fast(&format, &b);

    let sel = dispatch::selected_kind(&forced(absent));
    assert_ne!(sel, absent, "absent force resolves elsewhere");
    assert!(sel.available(), "fallback is runnable");
    assert_eq!(kernel.execute_opts(&b, &forced(absent)), oracle);

    std::env::set_var("JIGSAW_KERNEL", absent.name());
    assert_eq!(kernel.execute_opts(&b, &ExecOptions::default()), oracle);
    std::env::remove_var("JIGSAW_KERNEL");
}

/// An unparseable `JIGSAW_KERNEL` value is ignored (auto selection),
/// not an error.
#[test]
fn garbage_env_value_is_ignored() {
    let _g = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    dispatch::unpoison_all();
    std::env::set_var("JIGSAW_KERNEL", "warp-specialized");
    let kind = dispatch::selected_kind(&ExecOptions::default());
    std::env::remove_var("JIGSAW_KERNEL");
    assert!(kind.available());
    assert_ne!(kind, KernelKind::SortedStream, "auto never picks sorted");
}
