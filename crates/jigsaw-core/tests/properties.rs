//! Property-based tests of the reorder and format invariants.

use proptest::prelude::*;

use dlmc::{dense_rhs, Matrix, ValueDist, VectorSparseSpec};
use jigsaw_core::reorder::tile::{
    reorder_satisfies, reorder_tile, tile_satisfies_in_place, ColumnMasks, DEFAULT_WORK_LIMIT,
};
use jigsaw_core::reorder::{ReorderPlan, PAD};
use jigsaw_core::{execute_fast, format_source_column, CompiledKernel, JigsawConfig, JigsawFormat};

/// Strategy: an arbitrary 16-column mask set with bounded density.
fn arb_masks(max_bits: usize) -> impl Strategy<Value = ColumnMasks> {
    proptest::collection::vec(proptest::collection::vec(0usize..16, 0..=max_bits), 16).prop_map(
        |cols| {
            let mut masks = [0u16; 16];
            for (i, bits) in cols.into_iter().enumerate() {
                for b in bits {
                    masks[i] |= 1 << b;
                }
            }
            masks
        },
    )
}

/// Strategy: a small vector-sparse matrix spec.
fn arb_matrix() -> impl Strategy<Value = Matrix> {
    (
        1usize..=4,   // strips of 16 rows
        1usize..=6,   // column blocks of 16
        0.5f64..0.99, // sparsity
        prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
        any::<u64>(),
    )
        .prop_map(|(mr, kc, sparsity, v, seed)| {
            VectorSparseSpec {
                rows: mr * 16,
                cols: kc * 16,
                sparsity,
                v,
                dist: ValueDist::SmallInt,
                seed,
            }
            .generate()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tile_reorder_output_is_valid(masks in arb_masks(4), bank_aware in any::<bool>()) {
        if let Some(r) = reorder_tile(&masks, bank_aware, DEFAULT_WORK_LIMIT) {
            prop_assert!(r.is_permutation());
            prop_assert!(reorder_satisfies(&masks, &r));
        }
    }

    #[test]
    fn in_place_satisfaction_implies_reorder_success(masks in arb_masks(2)) {
        if tile_satisfies_in_place(&masks) {
            prop_assert!(reorder_tile(&masks, true, DEFAULT_WORK_LIMIT).is_some());
        }
    }

    #[test]
    fn plan_covers_every_nonzero_column_exactly_once(a in arb_matrix()) {
        let bt = 32usize.min(a.rows);
        let plan = ReorderPlan::build(&a, &JigsawConfig::v4(if a.rows % 32 == 0 { bt } else { 16 }));
        for strip in &plan.strips {
            let mut seen = std::collections::HashSet::new();
            for &c in &strip.col_order {
                if c != PAD {
                    prop_assert!(seen.insert(c), "column {c} duplicated");
                }
            }
            for c in 0..a.cols {
                let zero = a.column_zero_in_strip(c, strip.row0, strip.row0 + strip.height);
                prop_assert_eq!(!zero, seen.contains(&(c as u32)));
            }
        }
    }

    #[test]
    fn format_spmm_equals_reference(a in arb_matrix(), n_blocks in 1usize..=3) {
        let n = n_blocks * 8;
        let b = dense_rhs(a.cols, n, ValueDist::SmallInt, 99);
        let bt = if a.rows % 32 == 0 { 32 } else { 16 };
        let plan = ReorderPlan::build(&a, &JigsawConfig::v4(bt));
        for interleaved in [false, true] {
            let format = JigsawFormat::build(&a, &plan, interleaved);
            prop_assert_eq!(execute_fast(&format, &b), a.matmul_reference(&b));
        }
    }

    /// The compiled nonzero stream is exactly the `(value, column)`
    /// sequence a direct walk of the format produces: every slot's
    /// metadata offset re-applied, every position re-resolved through
    /// `format_source_column`, in `execute_fast`'s accumulation order.
    #[test]
    fn compiled_stream_matches_format_source_column_walk(
        a in arb_matrix(),
        interleaved in any::<bool>(),
    ) {
        let bt = if a.rows % 32 == 0 { 32 } else { 16 };
        let plan = ReorderPlan::build(&a, &JigsawConfig::v4(bt));
        let format = JigsawFormat::build(&a, &plan, interleaved);
        let kernel = CompiledKernel::compile(&format);
        prop_assert_eq!(kernel.m, format.m);
        prop_assert_eq!(kernel.k, format.k);
        let mut rows_seen = 0usize;
        let mut nnz_seen = 0usize;
        for (si, strip) in format.strips.iter().enumerate() {
            for tr in 0..strip.height / 16 {
                for r in 0..16 {
                    let row = strip.row0 + tr * 16 + r;
                    let mut expect: Vec<(f32, usize)> = Vec::new();
                    for w in 0..strip.windows {
                        let words = format.metadata_words(si, tr, w / 2);
                        let idx = sptc::metadata::unpack_row_metadata(words[r]);
                        let off = (w % 2) * 8;
                        for slot in 0..8 {
                            let v = format.value(si, w, tr, r, slot);
                            if v.is_zero() {
                                continue;
                            }
                            let pos = (slot / 2) * 4 + idx[off + slot] as usize;
                            if let Some(col) = format_source_column(&format, si, w, tr, pos) {
                                expect.push((v.to_f32(), col));
                            }
                        }
                    }
                    let got: Vec<(f32, usize)> = kernel.row_stream(row).collect();
                    prop_assert_eq!(&got, &expect, "row {}", row);
                    rows_seen += 1;
                    nnz_seen += got.len();
                }
            }
        }
        prop_assert_eq!(rows_seen, format.m);
        prop_assert_eq!(nnz_seen, kernel.nnz());
    }

    /// Compiled execution is bit-identical to `execute_fast` (the
    /// differential oracle) across layouts and odd N.
    #[test]
    fn compiled_execution_matches_fast_bit_exactly(
        a in arb_matrix(),
        n in 1usize..=24,
        interleaved in any::<bool>(),
    ) {
        let b = dense_rhs(a.cols, n, ValueDist::SmallInt, 7);
        let bt = if a.rows % 32 == 0 { 32 } else { 16 };
        let plan = ReorderPlan::build(&a, &JigsawConfig::v4(bt));
        let format = JigsawFormat::build(&a, &plan, interleaved);
        let kernel = CompiledKernel::compile(&format);
        prop_assert_eq!(kernel.execute(&b), execute_fast(&format, &b));
        prop_assert_eq!(kernel.execute(&b), a.matmul_reference(&b));
    }

    #[test]
    fn reorder_stats_are_consistent(a in arb_matrix()) {
        let bt = if a.rows % 32 == 0 { 32 } else { 16 };
        let plan = ReorderPlan::build(&a, &JigsawConfig::v4(bt));
        let stats = plan.stats();
        let windows: usize = plan.strips.iter().map(|s| s.windows()).sum();
        prop_assert_eq!(stats.total_windows, windows);
        // Success criterion matches per-strip budget.
        let budget = plan.baseline_windows_per_strip();
        prop_assert_eq!(
            stats.success,
            plan.strips.iter().all(|s| s.windows() <= budget)
        );
        // A zero matrix computes nothing; dense computes at least K.
        if a.nnz() == 0 {
            prop_assert_eq!(stats.total_windows, 0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Serialize → deserialize is lossless: the restored format
    /// re-serializes to the same bytes and computes the same product.
    #[test]
    fn serialize_round_trips(a in arb_matrix(), interleaved in any::<bool>()) {
        let bt = if a.rows % 32 == 0 { 32 } else { 16 };
        let plan = ReorderPlan::build(&a, &JigsawConfig::v4(bt));
        let format = JigsawFormat::build(&a, &plan, interleaved);
        let bytes = jigsaw_core::serialize::to_bytes(&format);
        let restored = jigsaw_core::serialize::from_bytes(&bytes).expect("own bytes parse");
        prop_assert_eq!(jigsaw_core::serialize::to_bytes(&restored), bytes);
        let b = dense_rhs(a.cols, 8, ValueDist::SmallInt, 5);
        prop_assert_eq!(execute_fast(&restored, &b), execute_fast(&format, &b));
    }

    /// Every strict prefix of a valid artifact is rejected with an
    /// error — truncation never panics or over-allocates.
    #[test]
    fn truncated_artifacts_error_cleanly(a in arb_matrix(), cut in 0.0f64..1.0) {
        let bt = if a.rows % 32 == 0 { 32 } else { 16 };
        let plan = ReorderPlan::build(&a, &JigsawConfig::v4(bt));
        let format = JigsawFormat::build(&a, &plan, false);
        let bytes = jigsaw_core::serialize::to_bytes(&format);
        let len = ((bytes.len() - 1) as f64 * cut) as usize;
        prop_assert!(jigsaw_core::serialize::from_bytes(&bytes[..len]).is_err());
    }

    /// A single flipped bit is either detected or yields a format of
    /// the same dimensions — never a panic.
    #[test]
    fn bit_flips_never_panic(a in arb_matrix(), pos in any::<u64>(), bit in 0u8..8) {
        let bt = if a.rows % 32 == 0 { 32 } else { 16 };
        let plan = ReorderPlan::build(&a, &JigsawConfig::v4(bt));
        let format = JigsawFormat::build(&a, &plan, false);
        let mut bytes = jigsaw_core::serialize::to_bytes(&format);
        let at = (pos as usize) % bytes.len();
        bytes[at] ^= 1 << bit;
        if let Ok(parsed) = jigsaw_core::serialize::from_bytes(&bytes) {
            // Whatever passed validation is self-consistent: it
            // re-serializes to exactly the bytes it was parsed from.
            prop_assert_eq!(jigsaw_core::serialize::to_bytes(&parsed), bytes);
        }
    }
}
