//! Property tests for the measured-feedback cost table
//! (`jigsaw_core::compiled::tune`).
//!
//! The serialized table is a *disk artifact*: the serve registry
//! persists it next to the model artifacts and reloads it on warm
//! restart, so the round-trip must be **bit-exact** — an EWMA that
//! drifts by one ulp across restarts would make tuned selection
//! depend on how many times the server bounced. These properties
//! drive randomized populations of the table through
//! `to_bytes`/`load_bytes` and compare every cell by `f64::to_bits`,
//! and check that tuned selection degrades past poisoned winners the
//! same way the static ladder does.

use proptest::prelude::*;

use jigsaw_core::compiled::dispatch::{self, ALL_KERNELS};
use jigsaw_core::compiled::tune::{n_bucket, s_bucket, CostTable, Workload, TUNED_CANDIDATES};
use jigsaw_core::{ExecOptions, KernelKind, KernelPolicy};

/// A random workload spanning every (n, density) bucket.
fn arb_workload() -> impl Strategy<Value = Workload> {
    (1usize..=600, 0.0f64..=1.0).prop_map(|(n, density)| Workload { n, density })
}

/// A random tuning candidate (the kinds the table may rank).
fn arb_candidate() -> impl Strategy<Value = KernelKind> {
    (0..TUNED_CANDIDATES.len()).prop_map(|i| TUNED_CANDIDATES[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any population of the table — random kinds, workloads, work
    /// sizes, and timings, including EWMA refinements of the same
    /// cell — survives `to_bytes` → `load_bytes` with every cost
    /// bit-identical and every ranking preserved.
    #[test]
    fn cost_table_round_trips_through_disk_artifact_bytes_bit_exactly(
        records in proptest::collection::vec(
            (arb_candidate(), arb_workload(), 1u64..=1 << 40, 1u64..=1 << 40),
            1..64,
        ),
    ) {
        let table = CostTable::new();
        for (kind, wl, work, ns) in &records {
            table.record(*kind, *wl, *work, *ns);
        }
        let bytes = table.to_bytes();

        let reloaded = CostTable::new();
        let cells = reloaded.load_bytes(&bytes).expect("own bytes reload");
        prop_assert_eq!(cells, table.len());
        prop_assert!(reloaded.is_seeded(), "a loaded table counts as seeded");
        for (kind, wl, _, _) in &records {
            let a = table.cost(*kind, *wl).expect("recorded cell");
            let b = reloaded.cost(*kind, *wl).expect("reloaded cell");
            prop_assert_eq!(a.to_bits(), b.to_bits(), "cost drifted in the round-trip");
        }
        // Ranking is a pure function of the costs, so it survives too.
        for (_, wl, _, _) in &records {
            prop_assert_eq!(table.best(*wl), reloaded.best(*wl));
        }
        // Serialization is canonical: re-serializing the reloaded
        // table yields the same bytes.
        prop_assert_eq!(bytes, reloaded.to_bytes());
    }

    /// Corrupting any single byte of a serialized table never loads
    /// silently wrong data: the load either fails with an error or —
    /// when the flipped byte happens to produce another valid document
    /// (e.g. inside an EWMA's mantissa) — still yields a structurally
    /// valid table.
    #[test]
    fn corrupt_artifact_bytes_never_panic(
        records in proptest::collection::vec(
            (arb_candidate(), arb_workload(), 1u64..=1 << 30, 1u64..=1 << 30),
            1..8,
        ),
        pos in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let table = CostTable::new();
        for (kind, wl, work, ns) in &records {
            table.record(*kind, *wl, *work, *ns);
        }
        let mut bytes = table.to_bytes();
        let i = (pos % bytes.len() as u64) as usize;
        bytes[i] ^= flip;
        let reloaded = CostTable::new();
        if let Ok(n) = reloaded.load_bytes(&bytes) {
            prop_assert_eq!(n, reloaded.len());
        } else {
            prop_assert!(reloaded.is_empty(), "failed load leaves the table empty");
        }
        // Truncation at any point is always an error.
        let cut = CostTable::new();
        prop_assert!(cut.load_bytes(&table.to_bytes()[..i]).is_err());
    }

    /// Bucketing is total: every workload lands in exactly one of the
    /// 6×5 cells, and the bucket edges are monotone in n and density.
    #[test]
    fn every_workload_lands_in_one_bucket(wl in arb_workload()) {
        let (nb, sb) = wl.bucket();
        prop_assert!(nb < 6 && sb < 5);
        prop_assert_eq!(nb, n_bucket(wl.n));
        prop_assert_eq!(sb, s_bucket(wl.density));
        prop_assert!(n_bucket(wl.n + 1) >= nb, "n buckets are monotone");
        prop_assert!(s_bucket((wl.density - 0.01).max(0.0)) >= sb, "sparser never densifies");
    }
}

/// Tuned selection with a poisoned winner falls back to the
/// next-cheapest *unpoisoned* candidate — the measured ranking and the
/// degrade ladder compose instead of fighting. Runs against the
/// process-global table the dispatch layer consults, so it exercises
/// the real `KernelPolicy::Tuned` path end to end.
#[test]
fn tuned_selection_degrades_past_poisoned_winners_in_cost_order() {
    if !KernelKind::Avx2Fma.available() {
        eprintln!("tune_table: SKIP poisoned-winner test — needs three available candidates");
        return;
    }
    // A bucket no other test or online record plausibly touches.
    let wl = Workload {
        n: 300_000,
        density: 0.93,
    };
    let table = jigsaw_core::compiled::tune::table();
    // Rank three always-available candidates at costs far below any
    // real measurement so stray online records cannot outrank them.
    table.seed_cell(KernelKind::NarrowN, wl, 1e-12);
    table.seed_cell(KernelKind::Avx2Fma, wl, 2e-12);
    table.seed_cell(KernelKind::Scalar, wl, 3e-12);
    let opts = ExecOptions::tuned();

    dispatch::unpoison_all();
    assert_eq!(
        dispatch::selected_kind_shaped(&opts, Some(wl)),
        KernelKind::NarrowN
    );

    // Poison the winner: selection slides to the runner-up…
    dispatch::poison(KernelKind::NarrowN);
    assert_eq!(
        dispatch::selected_kind_shaped(&opts, Some(wl)),
        KernelKind::Avx2Fma
    );

    // …and keeps sliding in measured-cost order, never resurrecting a
    // poisoned variant.
    dispatch::poison(KernelKind::Avx2Fma);
    let kind = dispatch::selected_kind_shaped(&opts, Some(wl));
    assert!(
        kind != KernelKind::NarrowN && kind != KernelKind::Avx2Fma,
        "poisoned variants stay dead, got {kind:?}"
    );
    assert!(kind.available(), "fallback is runnable");

    // With every seeded candidate poisoned, tuned selection still
    // resolves through the static ladder instead of panicking.
    for kind in ALL_KERNELS {
        if kind != KernelKind::Scalar && kind != KernelKind::SortedStream {
            dispatch::poison(kind);
        }
    }
    assert_eq!(
        dispatch::selected_kind_shaped(&opts, Some(wl)),
        KernelKind::Scalar
    );
    dispatch::unpoison_all();
}

/// The typed policy API round-trips through `From` and the builder,
/// and the builder rejects contradictions instead of silently
/// dropping an option.
#[test]
fn kernel_policy_builder_round_trips_and_validates() {
    let opts = ExecOptions::builder()
        .policy(KernelPolicy::Tuned)
        .build()
        .expect("tuned policy is valid alone");
    assert_eq!(opts.policy(), KernelPolicy::Tuned);
    assert!(
        ExecOptions::builder()
            .policy(KernelPolicy::Tuned)
            .sorted_stream(true)
            .build()
            .is_err(),
        "sorted_stream can never run under Tuned"
    );
}
