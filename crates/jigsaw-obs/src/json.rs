//! Minimal JSON document model — writer and parser — with **stable**
//! output: object keys render in insertion order, so the same data
//! always serializes to the same bytes. This is what makes
//! `results/BENCH_<exp>.json` diffable across PRs.
//!
//! std-only on purpose: `jigsaw-obs` sits below every other workspace
//! crate, so it cannot pull `serde` (or anything else) in.

use std::fmt;

/// A JSON value. Integers keep their own variants so `u64` counters
/// round-trip without the f64 precision cliff at 2^53.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (counters).
    UInt(u64),
    /// A finite float. Non-finite values render as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order when rendered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, ready for [`Json::with`].
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// An empty array, ready for [`Json::push`].
    pub fn arr() -> Json {
        Json::Arr(Vec::new())
    }

    /// Appends a field (objects only — no-op otherwise), returning
    /// `self` for fluent building.
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        if let Json::Obj(fields) = &mut self {
            fields.push((key.to_string(), value.into()));
        }
        self
    }

    /// Appends an element (arrays only — no-op otherwise).
    pub fn push(mut self, value: impl Into<Json>) -> Json {
        if let Json::Arr(items) = &mut self {
            items.push(value.into());
        }
        self
    }

    /// Field lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object keys in render order (empty for non-objects).
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(fields) => fields.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    /// Array view (empty slice for non-arrays).
    pub fn items(&self) -> &[Json] {
        match self {
            Json::Arr(items) => items,
            _ => &[],
        }
    }

    /// The value as an f64, when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(v) => Some(v as f64),
            Json::UInt(v) => Some(v as f64),
            Json::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a u64, when an unsigned (or non-negative) integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(v) => Some(v),
            Json::Int(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as a string slice, when a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Json, indent: usize) {
    const STEP: usize = 2;
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(n) => out.push_str(&n.to_string()),
        Json::UInt(n) => out.push_str(&n.to_string()),
        Json::Float(f) => {
            if f.is_finite() {
                // Rust's `{}` for f64 never emits exponents and always
                // round-trips — both valid JSON and stable.
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        Json::Str(s) => escape_into(out, s),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent + STEP));
                write_value(out, item, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Json::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent + STEP));
                escape_into(out, k);
                out.push_str(": ");
                write_value(out, val, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(&mut out, self, 0);
        f.write_str(&out)
    }
}

/// Parse failure: byte offset plus a short message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: &str) -> Result<T, ParseError> {
        Err(ParseError {
            at: self.pos,
            message: message.to_string(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected {:?}", b as char))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(&format!("expected {word}"))
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return self.err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by \uXXXX with the low half.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return self.err("invalid \\u escape"),
                            }
                        }
                        _ => return self.err("unknown escape"),
                    }
                }
                b if b < 0x20 => return self.err("raw control character in string"),
                b => {
                    // Re-assemble UTF-8 multibyte sequences.
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return self.err("truncated UTF-8 sequence");
                    }
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return self.err("invalid UTF-8 in string"),
                    }
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return self.err("truncated \\u escape");
        }
        let hex = &self.bytes[self.pos..self.pos + 4];
        let s = std::str::from_utf8(hex).map_err(|_| ParseError {
            at: self.pos,
            message: "invalid hex".into(),
        })?;
        let v = u32::from_str_radix(s, 16).map_err(|_| ParseError {
            at: self.pos,
            message: "invalid hex".into(),
        })?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        if !float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        match text.parse::<f64>() {
            Ok(v) => Ok(Json::Float(v)),
            Err(_) => self.err("invalid number"),
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return self.err("expected ',' or ']'"),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return self.err("expected ',' or '}'"),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => self.err("unexpected character"),
            None => self.err("unexpected end of input"),
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(s: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters after value");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_keeps_insertion_order() {
        let doc = Json::obj()
            .with("zebra", 1u64)
            .with("apple", "two")
            .with("mid", 3.5);
        assert_eq!(doc.keys(), vec!["zebra", "apple", "mid"]);
        let text = doc.to_string();
        let z = text.find("zebra").unwrap();
        let a = text.find("apple").unwrap();
        assert!(z < a, "render order is insertion order");
    }

    #[test]
    fn round_trip_preserves_structure() {
        let doc = Json::obj()
            .with("name", "bench \"quoted\" \\ path\nline")
            .with("count", 18_446_744_073_709_551_615u64)
            .with("neg", -42i64)
            .with("pi", 3.25)
            .with("flag", true)
            .with("none", Json::Null)
            .with(
                "items",
                Json::arr()
                    .push(1u64)
                    .push("x")
                    .push(Json::obj().with("k", 2u64)),
            );
        let text = doc.to_string();
        let back = parse(&text).expect("render output parses");
        assert_eq!(back, doc);
        // Stability: rendering twice is byte-identical.
        assert_eq!(text, parse(&text).unwrap().to_string());
    }

    #[test]
    fn u64_counters_do_not_lose_precision() {
        let text = Json::obj().with("c", u64::MAX).to_string();
        let back = parse(&text).unwrap();
        assert_eq!(back.get("c").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        let text = Json::obj().with("bad", f64::NAN).to_string();
        assert!(text.contains("null"));
        assert!(parse(&text).is_ok(), "output is always valid JSON");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("true false").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn parser_handles_escapes_and_unicode() {
        let v = parse(r#""aé\n\tA π""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "aé\n\tA π");
        let pair = parse(r#""😀""#).unwrap();
        assert_eq!(pair.as_str().unwrap(), "😀");
    }
}
