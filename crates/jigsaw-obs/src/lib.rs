//! # jigsaw-obs — the observability spine of the Jigsaw workspace
//!
//! Hierarchical [`Span`]s (wall time + simulated-cycle annotations +
//! attributes), monotonic [`Counter`]s and [`Gauge`]s, and a
//! thread-safe [`ObsRegistry`] with two sinks: a sectioned
//! Nsight-style text report ([`TextSink`]) and a stable JSON export
//! ([`JsonSink`]). Std-only, zero dependencies — same footprint rules
//! as `jigsaw-serve`.
//!
//! Tracing is off by default. Everything funnels through one flag:
//! when disabled, span constructors return no-op handles and the cost
//! of instrumented code is a single relaxed atomic load
//! ([`enabled`]), verified by the `obs_overhead` criterion bench in
//! `bench-harness`.
//!
//! ```
//! jigsaw_obs::set_enabled(true);
//! let (root, handle) = jigsaw_obs::Span::trace("serve.request");
//! root.attr("model", "bert-large");
//! {
//!     let kernel = root.child("kernel");
//!     kernel.cycles(6400.0);
//! } // finishes on drop
//! root.finish();
//! let record = handle.take().expect("root finished");
//! assert!(record.find("kernel").is_some());
//! # jigsaw_obs::set_enabled(false);
//! ```

pub mod json;
pub mod metrics;
pub mod registry;
pub mod report;
pub mod span;

pub use json::{parse, Json, ParseError};
pub use metrics::{Counter, Gauge};
pub use registry::{global, ObsRegistry, Snapshot};
pub use report::{JsonSink, NoopSink, Sink, TextSink};
pub use span::{AttrValue, Span, SpanRecord, TraceHandle};

/// Whether span recording is globally enabled. One relaxed atomic
/// load — the entire overhead of disabled instrumentation.
pub fn enabled() -> bool {
    global().enabled()
}

/// Turns global span recording on or off.
pub fn set_enabled(on: bool) {
    global().set_enabled(on)
}
