//! Monotonic counters and last-value gauges.
//!
//! Both are cheap `AtomicU64` cells behind an `Arc`, so handles can be
//! cached in hot loops (one atomic RMW per bump) while the registry
//! keeps the authoritative name → cell map for snapshots.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing event count.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds `n` events.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one event.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Zeroes the counter in place — registry resets use this so
    /// handles cached in hot paths stay valid.
    pub(crate) fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins measurement (stores `f64` bits in an `AtomicU64`).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Gauge {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Records the latest value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Latest recorded value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Zeroes the gauge in place (see `Counter::reset`).
    pub(crate) fn reset(&self) {
        self.0.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_across_clones() {
        let c = Counter::new();
        let c2 = c.clone();
        c.inc();
        c2.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c2.get(), 5);
    }

    #[test]
    fn gauge_is_last_value_wins() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(2.5);
        g.set(-1.25);
        assert_eq!(g.get(), -1.25);
    }

    #[test]
    fn counter_is_thread_safe() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }
}
