//! The process-global observability registry: named counters and
//! gauges plus a bounded ring of recently finished root traces, all
//! behind one enable flag.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::json::Json;
use crate::metrics::{Counter, Gauge};
use crate::span::SpanRecord;

/// How many finished root traces the registry retains.
const TRACE_RING_CAP: usize = 256;

/// Thread-safe home for named counters/gauges and recent traces.
///
/// Most code uses the process-global instance via [`crate::global`];
/// independent registries (e.g. one per model registry in a test) are
/// supported by constructing [`ObsRegistry::new`] directly.
pub struct ObsRegistry {
    enabled: AtomicBool,
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    traces: Mutex<VecDeque<SpanRecord>>,
}

impl Default for ObsRegistry {
    fn default() -> ObsRegistry {
        ObsRegistry::new()
    }
}

impl ObsRegistry {
    /// An empty registry with tracing disabled.
    pub fn new() -> ObsRegistry {
        ObsRegistry {
            enabled: AtomicBool::new(false),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            traces: Mutex::new(VecDeque::new()),
        }
    }

    /// Whether span recording is on. One relaxed load — this is the
    /// entire cost of disabled instrumentation.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns span recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// The counter registered under `name`, creating it on first use.
    /// The returned handle stays live after the call, so hot paths can
    /// fetch once and bump forever.
    pub fn counter(&self, name: &str) -> Counter {
        self.counters
            .lock()
            .expect("obs counters lock")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauges
            .lock()
            .expect("obs gauges lock")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Stores a finished root trace in the bounded ring (oldest
    /// evicted first).
    pub fn record_trace(&self, record: SpanRecord) {
        let mut ring = self.traces.lock().expect("obs traces lock");
        if ring.len() == TRACE_RING_CAP {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// Most recent root trace named `name`, if any.
    pub fn latest_trace(&self, name: &str) -> Option<SpanRecord> {
        let ring = self.traces.lock().expect("obs traces lock");
        ring.iter().rev().find(|t| t.name == name).cloned()
    }

    /// A point-in-time copy of every counter, gauge, and retained
    /// trace.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .expect("obs counters lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("obs gauges lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let traces = self
            .traces
            .lock()
            .expect("obs traces lock")
            .iter()
            .cloned()
            .collect();
        Snapshot {
            counters,
            gauges,
            traces,
        }
    }

    /// Zeroes every counter and gauge **in place** — handles cached in
    /// hot paths stay valid — and clears retained traces. The enable
    /// flag is untouched. Meant for tests and between-experiment
    /// resets.
    pub fn reset(&self) {
        for c in self.counters.lock().expect("obs counters lock").values() {
            c.reset();
        }
        for g in self.gauges.lock().expect("obs gauges lock").values() {
            g.reset();
        }
        self.traces.lock().expect("obs traces lock").clear();
    }
}

/// A point-in-time copy of a registry's contents, ready for a sink.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Counter totals, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Retained root traces, oldest first.
    pub traces: Vec<SpanRecord>,
}

impl Snapshot {
    /// Stable JSON export: sorted counter/gauge maps plus trace trees.
    pub fn to_json(&self) -> Json {
        let mut counters = Json::obj();
        for (k, v) in &self.counters {
            counters = counters.with(k, *v);
        }
        let mut gauges = Json::obj();
        for (k, v) in &self.gauges {
            gauges = gauges.with(k, *v);
        }
        let mut traces = Json::arr();
        for t in &self.traces {
            traces = traces.push(t.to_json());
        }
        Json::obj()
            .with("counters", counters)
            .with("gauges", gauges)
            .with("traces", traces)
    }
}

/// The process-global registry.
pub fn global() -> &'static ObsRegistry {
    static GLOBAL: OnceLock<ObsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(ObsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;

    #[test]
    fn counters_are_shared_by_name() {
        let reg = ObsRegistry::new();
        reg.counter("sim.waves").add(3);
        reg.counter("sim.waves").inc();
        reg.gauge("plan.k_fraction").set(0.5);
        let snap = reg.snapshot();
        assert_eq!(snap.counters, vec![("sim.waves".to_string(), 4)]);
        assert_eq!(snap.gauges, vec![("plan.k_fraction".to_string(), 0.5)]);
    }

    #[test]
    fn trace_ring_is_bounded_and_searchable() {
        let reg = ObsRegistry::new();
        for i in 0..(TRACE_RING_CAP + 10) {
            reg.record_trace(SpanRecord {
                name: format!("t{i}"),
                start_ns: i as u64,
                wall_ns: 1,
                cycles: None,
                attrs: Vec::new(),
                children: Vec::new(),
            });
        }
        let snap = reg.snapshot();
        assert_eq!(snap.traces.len(), TRACE_RING_CAP);
        assert_eq!(snap.traces[0].name, "t10", "oldest evicted");
        assert!(reg.latest_trace("t9").is_none());
        assert_eq!(
            reg.latest_trace(&format!("t{}", TRACE_RING_CAP + 9))
                .unwrap()
                .start_ns,
            (TRACE_RING_CAP + 9) as u64
        );
    }

    #[test]
    fn root_spans_land_in_global_registry() {
        crate::set_enabled(true);
        global().reset();
        let span = Span::root("unit.root_span");
        span.attr("n", 7u64);
        span.finish();
        let rec = global().latest_trace("unit.root_span").expect("recorded");
        assert_eq!(rec.attrs.len(), 1);
    }

    #[test]
    fn snapshot_json_parses_back() {
        let reg = ObsRegistry::new();
        reg.counter("a").inc();
        reg.gauge("b").set(1.5);
        let json = reg.snapshot().to_json();
        let parsed = crate::json::parse(&json.to_string()).expect("valid");
        assert_eq!(parsed.keys(), vec!["counters", "gauges", "traces"]);
        assert_eq!(
            parsed.get("counters").unwrap().get("a").unwrap().as_u64(),
            Some(1)
        );
    }
}
