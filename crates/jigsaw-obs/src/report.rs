//! Sinks: consumers of a registry [`Snapshot`].
//!
//! Two real sinks ship — the sectioned [`TextSink`] matching the
//! Nsight-like report style used elsewhere in the workspace, and the
//! stable-key [`JsonSink`] — plus [`NoopSink`], the disabled compile
//! path that emits nothing.

use std::fmt::Write as _;

use crate::registry::Snapshot;
use crate::span::SpanRecord;

/// A destination for observability snapshots.
pub trait Sink {
    /// Renders the snapshot, or `None` when the sink discards it.
    fn emit(&self, snap: &Snapshot) -> Option<String>;
}

/// Sectioned text report in the workspace's Nsight-like style.
#[derive(Clone, Copy, Debug, Default)]
pub struct TextSink;

fn write_span(out: &mut String, span: &SpanRecord, depth: usize) {
    let indent = "  ".repeat(depth + 2);
    let label = format!("{indent}{}", span.name);
    let _ = write!(out, "{label:<40} {:>12.1} us", span.wall_ns as f64 / 1e3);
    if let Some(c) = span.cycles {
        let _ = write!(out, " {c:>14.0} cyc");
    }
    for (k, v) in &span.attrs {
        use crate::span::AttrValue::*;
        let _ = match v {
            Bool(b) => write!(out, "  {k}={b}"),
            Int(i) => write!(out, "  {k}={i}"),
            UInt(u) => write!(out, "  {k}={u}"),
            Float(f) => write!(out, "  {k}={f}"),
            Str(s) => write!(out, "  {k}={s}"),
        };
    }
    out.push('\n');
    for child in &span.children {
        write_span(out, child, depth + 1);
    }
}

impl Sink for TextSink {
    fn emit(&self, snap: &Snapshot) -> Option<String> {
        let mut out = String::new();
        out.push_str("== Observability Report ==\n");
        if !snap.counters.is_empty() {
            out.push_str("  Section: Counters\n");
            for (name, value) in &snap.counters {
                let _ = writeln!(out, "    {name:<40} {value:>12}");
            }
        }
        if !snap.gauges.is_empty() {
            out.push_str("  Section: Gauges\n");
            for (name, value) in &snap.gauges {
                let _ = writeln!(out, "    {name:<40} {value:>12.3}");
            }
        }
        if !snap.traces.is_empty() {
            out.push_str("  Section: Traces\n");
            for trace in &snap.traces {
                write_span(&mut out, trace, 0);
            }
        }
        Some(out)
    }
}

/// Stable JSON export (insertion-order keys, see [`crate::json`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct JsonSink;

impl Sink for JsonSink {
    fn emit(&self, snap: &Snapshot) -> Option<String> {
        Some(snap.to_json().to_string())
    }
}

/// Discards every snapshot — the disabled compile path.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn emit(&self, _snap: &Snapshot) -> Option<String> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ObsRegistry;

    fn sample() -> Snapshot {
        let reg = ObsRegistry::new();
        reg.counter("sim.waves").add(12);
        reg.gauge("queue.depth").set(3.0);
        reg.record_trace(SpanRecord {
            name: "serve.request".to_string(),
            start_ns: 0,
            wall_ns: 2_500,
            cycles: Some(640.0),
            attrs: vec![(
                "model".to_string(),
                crate::span::AttrValue::Str("m0".into()),
            )],
            children: vec![SpanRecord {
                name: "kernel".to_string(),
                start_ns: 100,
                wall_ns: 1_000,
                cycles: Some(640.0),
                attrs: Vec::new(),
                children: Vec::new(),
            }],
        });
        reg.snapshot()
    }

    #[test]
    fn text_sink_sections_and_nesting() {
        let text = TextSink.emit(&sample()).unwrap();
        assert!(text.contains("== Observability Report =="));
        assert!(text.contains("Section: Counters"));
        assert!(text.contains("sim.waves"));
        assert!(text.contains("Section: Traces"));
        assert!(text.contains("serve.request"));
        // Child is indented deeper than its parent.
        let parent_col = text.lines().find(|l| l.contains("serve.request")).unwrap();
        let child_col = text.lines().find(|l| l.contains("kernel")).unwrap();
        let lead = |s: &str| s.len() - s.trim_start().len();
        assert!(lead(child_col) > lead(parent_col));
    }

    #[test]
    fn json_sink_is_parseable() {
        let text = JsonSink.emit(&sample()).unwrap();
        let parsed = crate::json::parse(&text).expect("valid JSON");
        assert_eq!(
            parsed
                .get("counters")
                .unwrap()
                .get("sim.waves")
                .unwrap()
                .as_u64(),
            Some(12)
        );
        assert_eq!(parsed.get("traces").unwrap().items().len(), 1);
    }

    #[test]
    fn noop_sink_emits_nothing() {
        assert!(NoopSink.emit(&sample()).is_none());
    }
}
