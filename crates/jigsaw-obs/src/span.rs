//! Hierarchical spans: named wall-time intervals with optional
//! simulated-cycle annotations and key=value attributes, assembled into
//! a tree as they finish.
//!
//! The whole API is gated on one global flag ([`crate::enabled`]): a
//! disabled span is `Span(None)` and every method is a no-op, so the
//! cost of instrumented-but-untraced code is a single relaxed atomic
//! load at span creation.

use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;

/// Process-wide epoch all `start_ns` offsets are relative to.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// An attribute value attached to a span.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::UInt(v)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::UInt(v as u64)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

impl AttrValue {
    fn to_json(&self) -> Json {
        match self {
            AttrValue::Bool(v) => Json::Bool(*v),
            AttrValue::Int(v) => Json::Int(*v),
            AttrValue::UInt(v) => Json::UInt(*v),
            AttrValue::Float(v) => Json::Float(*v),
            AttrValue::Str(v) => Json::Str(v.clone()),
        }
    }
}

/// A finished span: the immutable record a [`Span`] leaves behind.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Span name (e.g. `plan.tile_reorder`).
    pub name: String,
    /// Start offset from the process epoch, nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration, nanoseconds.
    pub wall_ns: u64,
    /// Simulated-cycle annotation, when the span covered simulated
    /// device work.
    pub cycles: Option<f64>,
    /// Attributes, in attachment order.
    pub attrs: Vec<(String, AttrValue)>,
    /// Child spans, in finish order.
    pub children: Vec<SpanRecord>,
}

impl SpanRecord {
    /// Depth-first search for a span named `name` (including `self`).
    pub fn find(&self, name: &str) -> Option<&SpanRecord> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Total spans in the tree (including `self`).
    pub fn span_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(SpanRecord::span_count)
            .sum::<usize>()
    }

    /// Attribute lookup.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Stable JSON export of the whole tree.
    pub fn to_json(&self) -> Json {
        let mut attrs = Json::obj();
        for (k, v) in &self.attrs {
            attrs = attrs.with(k, v.to_json());
        }
        let mut children = Json::arr();
        for c in &self.children {
            children = children.push(c.to_json());
        }
        Json::obj()
            .with("name", self.name.as_str())
            .with("start_ns", self.start_ns)
            .with("wall_ns", self.wall_ns)
            .with("cycles", self.cycles.map(Json::Float))
            .with("attrs", attrs)
            .with("children", children)
    }
}

/// Where children of an active span accumulate.
type ChildSink = Arc<Mutex<Vec<SpanRecord>>>;

/// Retrieves the root record of a trace started with [`Span::trace`]
/// after the root span finishes.
#[derive(Clone, Debug)]
pub struct TraceHandle(ChildSink);

impl TraceHandle {
    /// Takes the finished root record, if the root has finished.
    pub fn take(&self) -> Option<SpanRecord> {
        self.0.lock().expect("trace handle lock").pop()
    }
}

enum Dest {
    /// The finished record goes to a parent (or trace-handle) vector.
    Sink(ChildSink),
    /// The finished record goes to the global registry's trace ring.
    Registry,
}

struct Active {
    name: String,
    started: Instant,
    start_ns: u64,
    cycles: Mutex<Option<f64>>,
    attrs: Mutex<Vec<(String, AttrValue)>>,
    children: ChildSink,
    dest: Dest,
}

/// A live span. Create roots with [`Span::root`] (record lands in the
/// global registry) or [`Span::trace`] (record lands in a caller-held
/// [`TraceHandle`]); nest with [`Span::child`]. Finishing — explicitly
/// via [`Span::finish`] or implicitly on drop — assembles the
/// [`SpanRecord`] and delivers it.
///
/// When tracing is disabled ([`crate::set_enabled`]) every constructor
/// returns a no-op span and every method returns immediately.
pub struct Span(Option<Box<Active>>);

impl Span {
    /// A no-op span, for threading through APIs when the caller has no
    /// trace context.
    pub fn disabled() -> Span {
        Span(None)
    }

    fn active(name: &str, dest: Dest) -> Span {
        let now = Instant::now();
        Span(Some(Box::new(Active {
            name: name.to_string(),
            started: now,
            start_ns: now.duration_since(epoch()).as_nanos() as u64,
            cycles: Mutex::new(None),
            attrs: Mutex::new(Vec::new()),
            children: Arc::new(Mutex::new(Vec::new())),
            dest,
        })))
    }

    /// A root span whose finished record is kept in the global
    /// registry's recent-trace ring. No-op when tracing is disabled.
    pub fn root(name: &str) -> Span {
        if !crate::enabled() {
            return Span::disabled();
        }
        Span::active(name, Dest::Registry)
    }

    /// A root span paired with a [`TraceHandle`] the caller can drain
    /// once the span finishes — the per-request trace pattern. No-op
    /// (and an always-empty handle) when tracing is disabled.
    pub fn trace(name: &str) -> (Span, TraceHandle) {
        let sink: ChildSink = Arc::new(Mutex::new(Vec::new()));
        if !crate::enabled() {
            return (Span::disabled(), TraceHandle(sink));
        }
        (
            Span::active(name, Dest::Sink(sink.clone())),
            TraceHandle(sink),
        )
    }

    /// A child span; its record attaches to this span's `children` when
    /// it finishes. Children of a disabled span are disabled.
    pub fn child(&self, name: &str) -> Span {
        match &self.0 {
            None => Span::disabled(),
            Some(a) => Span::active(name, Dest::Sink(a.children.clone())),
        }
    }

    /// Whether this span actually records anything.
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }

    /// Attaches a key=value attribute.
    pub fn attr(&self, key: &str, value: impl Into<AttrValue>) {
        if let Some(a) = &self.0 {
            a.attrs
                .lock()
                .expect("span attrs lock")
                .push((key.to_string(), value.into()));
        }
    }

    /// Annotates the span with simulated device cycles.
    pub fn cycles(&self, cycles: f64) {
        if let Some(a) = &self.0 {
            *a.cycles.lock().expect("span cycles lock") = Some(cycles);
        }
    }

    /// Grafts an already-finished record as a child — used when one
    /// piece of work (e.g. a shared batch) belongs to several traces.
    pub fn add_child_record(&self, record: SpanRecord) {
        if let Some(a) = &self.0 {
            a.children.lock().expect("span children lock").push(record);
        }
    }

    /// Finishes the span now (drop does the same).
    pub fn finish(self) {
        drop(self);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(a) = self.0.take() else { return };
        let record = SpanRecord {
            name: a.name,
            start_ns: a.start_ns,
            wall_ns: a.started.elapsed().as_nanos() as u64,
            cycles: *a.cycles.lock().expect("span cycles lock"),
            attrs: std::mem::take(&mut *a.attrs.lock().expect("span attrs lock")),
            children: std::mem::take(&mut *a.children.lock().expect("span children lock")),
        };
        match a.dest {
            Dest::Sink(sink) => sink.lock().expect("span sink lock").push(record),
            Dest::Registry => crate::global().record_trace(record),
        }
    }
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => f.write_str("Span(disabled)"),
            Some(a) => f.debug_struct("Span").field("name", &a.name).finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        // Tests in this binary may toggle the global flag; use the
        // explicitly disabled constructor.
        let span = Span::disabled();
        assert!(!span.is_recording());
        let child = span.child("x");
        assert!(!child.is_recording());
        span.attr("k", 1u64);
        span.cycles(10.0);
        span.finish();
    }

    #[test]
    fn trace_nesting_assembles_a_tree() {
        crate::set_enabled(true);
        let (root, handle) = Span::trace("request");
        root.attr("model", "m0");
        {
            let admission = root.child("admission");
            admission.attr("ok", true);
            admission.finish();
        }
        {
            let batch = root.child("batch");
            let kernel = batch.child("kernel");
            kernel.cycles(1234.5);
            kernel.finish();
            batch.child("split").finish();
            batch.finish();
        }
        assert!(handle.take().is_none(), "root still live");
        root.finish();
        let rec = handle.take().expect("root finished");
        assert_eq!(rec.name, "request");
        assert_eq!(rec.span_count(), 5);
        assert_eq!(rec.children.len(), 2);
        let kernel = rec.find("kernel").expect("nested find");
        assert_eq!(kernel.cycles, Some(1234.5));
        assert_eq!(
            rec.find("admission").unwrap().attr("ok"),
            Some(&AttrValue::Bool(true))
        );
        assert!(rec.find("nope").is_none());
        // Wall times are sane: parent covers children.
        assert!(rec.wall_ns >= kernel.wall_ns);
    }

    #[test]
    fn span_json_round_trips() {
        crate::set_enabled(true);
        let (root, handle) = Span::trace("plan");
        root.child("block_reorder").finish();
        let t = root.child("tile_reorder");
        t.attr("evictions", 3u64);
        t.finish();
        root.cycles(99.0);
        root.finish();
        let rec = handle.take().unwrap();
        let json = rec.to_json();
        let parsed = crate::json::parse(&json.to_string()).expect("valid JSON");
        assert_eq!(parsed.get("name").unwrap().as_str(), Some("plan"));
        assert_eq!(parsed.get("cycles").unwrap().as_f64(), Some(99.0));
        assert_eq!(parsed.get("children").unwrap().items().len(), 2);
        assert_eq!(
            parsed.keys(),
            vec!["name", "start_ns", "wall_ns", "cycles", "attrs", "children"],
            "stable key order"
        );
    }

    #[test]
    fn grafted_records_appear_as_children() {
        crate::set_enabled(true);
        let (batch, bh) = Span::trace("batch");
        batch.child("kernel").finish();
        batch.finish();
        let batch_rec = bh.take().unwrap();

        let (root, handle) = Span::trace("request");
        root.add_child_record(batch_rec.clone());
        root.finish();
        let rec = handle.take().unwrap();
        assert!(rec.find("kernel").is_some());
        assert_eq!(rec.children[0], batch_rec);
    }
}
