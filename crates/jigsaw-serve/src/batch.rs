//! Request/response types and the column-concatenation algebra that
//! makes micro-batching *exact*: the kernel computes each output column
//! of `C = A × B` from the matching column of B alone, so concatenating
//! several requests' B operands along N, running one SpMM, and
//! splitting C back is bit-identical to running each request solo.
//! Batching buys throughput (simulated cost is sublinear in N — paper
//! Fig 10) without perturbing a single output bit.
//!
//! Two assembly paths produce the batch's dense operand:
//! [`concat_columns`] builds a concatenated F16 `Matrix` (the two-touch
//! oracle — the kernel re-copies it F16→f32 into panel scratch), while
//! [`assemble_panels`] fuses both copies, emitting each part's columns
//! directly into the kernel's panel-major f32 layout. The two are
//! bit-exact; the server picks per model via
//! `ExecOptions::fused_assembly`.

use std::fmt;
use std::time::Duration;

use dlmc::Matrix;
use jigsaw_core::fault::{self, points, FaultError};
use jigsaw_core::{panelize_parts_into, ExecError};

/// How a request was rejected at admission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// The named model is not registered.
    UnknownModel(String),
    /// The request's B height does not match the model's K.
    DimMismatch {
        /// Model the request addressed.
        model: String,
        /// The model's reduction dimension.
        expected_k: usize,
        /// The request's `b.rows`.
        got: usize,
    },
    /// The request is wider than any batch the server may form.
    TooWide {
        /// The request's `b.cols`.
        n: usize,
        /// The server's `max_batch_n`.
        max_batch_n: usize,
    },
    /// The request carries no columns.
    EmptyRequest,
    /// The model's queue is at capacity — backpressure.
    QueueFull {
        /// Model whose queue is full.
        model: String,
        /// The configured per-model queue capacity.
        cap: usize,
    },
    /// The server is draining and accepts no new work.
    ShuttingDown,
    /// The model's circuit breaker is open after repeated failures —
    /// fast-reject instead of queuing behind a failing backend.
    CircuitOpen {
        /// Model whose circuit is open.
        model: String,
        /// How long until the breaker admits a probe.
        retry_after: Duration,
        /// Shard whose breaker tripped (`None` on an unsharded
        /// server; the shard router always fills it in).
        shard: Option<usize>,
    },
    /// No live shard can take the request: the model's home shard is
    /// down and it holds no replicas elsewhere (or routing itself was
    /// fault-injected). Only the shard router produces this.
    ShardUnavailable {
        /// Model the request addressed.
        model: String,
        /// The model's home shard on the ring.
        shard: usize,
    },
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitError::UnknownModel(m) => write!(f, "unknown model {m:?}"),
            AdmitError::DimMismatch {
                model,
                expected_k,
                got,
            } => write!(
                f,
                "model {model:?} expects B with {expected_k} rows, request has {got}"
            ),
            AdmitError::TooWide { n, max_batch_n } => write!(
                f,
                "request width {n} exceeds the maximum batch width {max_batch_n}"
            ),
            AdmitError::EmptyRequest => write!(f, "request has zero columns"),
            AdmitError::QueueFull { model, cap } => {
                write!(f, "queue for model {model:?} is full ({cap} requests)")
            }
            AdmitError::ShuttingDown => write!(f, "server is shutting down"),
            AdmitError::CircuitOpen {
                model,
                retry_after,
                shard,
            } => match shard {
                Some(s) => write!(
                    f,
                    "circuit open for model {model:?} on shard {s}; retry after {retry_after:?}"
                ),
                None => write!(
                    f,
                    "circuit open for model {model:?}; retry after {retry_after:?}"
                ),
            },
            AdmitError::ShardUnavailable { model, shard } => write!(
                f,
                "no live shard for model {model:?} (home shard {shard} down, no replicas)"
            ),
        }
    }
}

impl std::error::Error for AdmitError {}

/// Per-request accounting attached to every response.
#[derive(Clone, Debug, Default)]
pub struct RequestStats {
    /// This request's proportional share (`n_i / n_batch`) of the
    /// batch's simulated duration, cycles.
    pub device_cycles: f64,
    /// The whole batch's simulated duration, cycles.
    pub batch_cycles: f64,
    /// Requests coalesced into the batch (≥ 1).
    pub batch_requests: usize,
    /// Total B columns of the batch.
    pub batch_n: usize,
    /// Whether serving this batch planned (or disk-loaded) the model —
    /// a cache miss the batch paid for.
    pub cold: bool,
    /// Host nanoseconds spent planning/loading on a cold fetch
    /// (0 on a warm hit).
    pub plan_host_ns: u64,
    /// Host nanoseconds the request spent queued before execution
    /// (threaded server only; 0 in the virtual-clock simulator).
    pub queue_host_ns: u64,
}

/// One completed SpMM request: the `rows × cols` product (f32
/// accumulator precision, row-major) plus its accounting.
#[derive(Clone, Debug)]
pub struct SpmmResponse {
    /// Output rows (the model's M).
    pub rows: usize,
    /// Output columns (the request's N).
    pub cols: usize,
    /// Row-major `rows × cols` product.
    pub c: Vec<f32>,
    /// Accounting for this request.
    pub stats: RequestStats,
    /// The request's span tree (admission → queue → batch → kernel …)
    /// when tracing was enabled at submit time; `None` otherwise.
    pub trace: Option<jigsaw_obs::SpanRecord>,
}

/// Why a batch could not be assembled or split — the typed edges of
/// the column-concatenation algebra (shared by the two-touch
/// [`concat_columns`] path and the fused [`assemble_panels`] emit
/// path). Admission validates requests before they reach a batch, so
/// hitting one of these in the server is a logic bug surfaced as a
/// value (and, for the fused path, a degrade to the two-touch oracle),
/// never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchError {
    /// A batch of zero parts has no well-defined K.
    EmptyBatch,
    /// A part carries zero columns — admission rejects these as
    /// [`AdmitError::EmptyRequest`], so one inside a batch means the
    /// batch was assembled from an unvalidated path.
    ZeroWidthPart {
        /// Index of the offending part / width.
        index: usize,
    },
    /// Parts disagree on the reduction dimension.
    RowMismatch {
        /// Rows of part 0 (the batch's K).
        expected: usize,
        /// Rows of the offending part.
        got: usize,
        /// Index of the offending part.
        index: usize,
    },
    /// The product buffer does not hold `m × Σwidths` elements.
    SizeMismatch {
        /// Elements in the product buffer.
        c_len: usize,
        /// Output rows.
        m: usize,
        /// Sum of the requested widths.
        total: usize,
    },
    /// The fused path's panel scratch cannot hold the batch's
    /// `k × Σwidths` f32 image.
    ScratchTooSmall {
        /// Required `k × Σwidths` element count.
        needed: usize,
        /// Elements in the scratch handed in.
        got: usize,
    },
    /// An armed [`fault`] injection at `serve.assemble` fired during
    /// fused assembly — the server degrades the batch to the two-touch
    /// path.
    Fault(FaultError),
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::EmptyBatch => write!(f, "cannot assemble a batch of zero parts"),
            BatchError::ZeroWidthPart { index } => {
                write!(f, "batch part {index} has zero columns")
            }
            BatchError::RowMismatch {
                expected,
                got,
                index,
            } => write!(
                f,
                "batch part {index} has {got} rows, batch K is {expected}"
            ),
            BatchError::SizeMismatch { c_len, m, total } => write!(
                f,
                "product of {c_len} elements cannot split into {m}x{total}"
            ),
            BatchError::ScratchTooSmall { needed, got } => write!(
                f,
                "panel scratch holds {got} f32, the fused batch image needs {needed}"
            ),
            BatchError::Fault(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BatchError::Fault(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FaultError> for BatchError {
    fn from(e: FaultError) -> BatchError {
        BatchError::Fault(e)
    }
}

/// Folds the kernel-side typed edges into the batch vocabulary so the
/// fused path can thread `jigsaw_core` errors with `?`. The part
/// `index` (and, for an output-size mismatch, the `m`) are unknown at
/// this boundary and come back as 0 — these conversions only ever feed
/// the fused path's degrade decision, not admission errors.
impl From<ExecError> for BatchError {
    fn from(e: ExecError) -> BatchError {
        match e {
            ExecError::ScratchTooSmall { needed, got } => {
                BatchError::ScratchTooSmall { needed, got }
            }
            ExecError::BRowsMismatch { expected_k, got }
            | ExecError::PanelLayoutMismatch {
                expected_k,
                got_k: got,
            } => BatchError::RowMismatch {
                expected: expected_k,
                got,
                index: 0,
            },
            ExecError::OutputSizeMismatch { expected, got } => BatchError::SizeMismatch {
                c_len: got,
                m: 0,
                total: expected,
            },
        }
    }
}

/// Concatenates same-height matrices along the column axis.
///
/// Typed-error edges: an empty `parts` slice is
/// [`BatchError::EmptyBatch`], a zero-width part is
/// [`BatchError::ZeroWidthPart`], and disagreeing heights are
/// [`BatchError::RowMismatch`] — admission validates all three before
/// a request can reach a batch, so the server treats an `Err` here as
/// a failed batch, not a panic.
pub fn concat_columns(parts: &[&Matrix]) -> Result<Matrix, BatchError> {
    let Some(first) = parts.first() else {
        return Err(BatchError::EmptyBatch);
    };
    let rows = first.rows;
    for (index, p) in parts.iter().enumerate() {
        if p.cols == 0 {
            return Err(BatchError::ZeroWidthPart { index });
        }
        if p.rows != rows {
            return Err(BatchError::RowMismatch {
                expected: rows,
                got: p.rows,
                index,
            });
        }
    }
    let cols: usize = parts.iter().map(|p| p.cols).sum();
    let mut data = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for p in parts {
            data.extend_from_slice(p.row(r));
        }
    }
    Ok(Matrix { rows, cols, data })
}

/// Fused batch assembly: converts the parts' F16 columns **directly**
/// into the kernel's panel-major f32 layout in `scratch`, skipping the
/// intermediate concatenated `Matrix` entirely (the batched-B fusion
/// this module long promised). Returns the assembled `(k, Σwidths)`
/// shape, ready to wrap in a `jigsaw_core::PanelizedB` for
/// `CompiledKernel::execute_prepaneled_into_opts`.
///
/// Bit-exact with [`concat_columns`] followed by the kernel's phase-1
/// panelization — both write the same `F16 → f32` conversion of the
/// same element to the same slot — so the two-touch path remains the
/// differential oracle for this one.
///
/// Typed-error edges: the same [`BatchError::EmptyBatch`] /
/// [`BatchError::ZeroWidthPart`] / [`BatchError::RowMismatch`]
/// validation as [`concat_columns`], plus
/// [`BatchError::ScratchTooSmall`] when the pooled scratch cannot hold
/// `k × Σwidths` f32. Crosses the `serve.assemble` fault point: an
/// injected error comes back as [`BatchError::Fault`] and the server
/// degrades the batch to the two-touch path.
pub fn assemble_panels(
    parts: &[&Matrix],
    scratch: &mut [f32],
) -> Result<(usize, usize), BatchError> {
    let Some(first) = parts.first() else {
        return Err(BatchError::EmptyBatch);
    };
    let rows = first.rows;
    for (index, p) in parts.iter().enumerate() {
        if p.cols == 0 {
            return Err(BatchError::ZeroWidthPart { index });
        }
        if p.rows != rows {
            return Err(BatchError::RowMismatch {
                expected: rows,
                got: p.rows,
                index,
            });
        }
    }
    fault::hit(points::SERVE_ASSEMBLE)?;
    // Heights were validated above, so the core assembler's only live
    // edge is scratch capacity.
    panelize_parts_into(parts, scratch).map_err(BatchError::from)
}

/// Splits a row-major `m × Σwidths` product back into per-request
/// row-major blocks, inverting [`concat_columns`].
///
/// Typed-error edges mirror [`concat_columns`]: an empty `widths`
/// slice is [`BatchError::EmptyBatch`], a zero width is
/// [`BatchError::ZeroWidthPart`], and a product buffer that is not
/// `m × Σwidths` is [`BatchError::SizeMismatch`].
pub fn split_columns(c: &[f32], m: usize, widths: &[usize]) -> Result<Vec<Vec<f32>>, BatchError> {
    if widths.is_empty() {
        return Err(BatchError::EmptyBatch);
    }
    if let Some(index) = widths.iter().position(|&w| w == 0) {
        return Err(BatchError::ZeroWidthPart { index });
    }
    let total: usize = widths.iter().sum();
    if c.len() != m * total {
        return Err(BatchError::SizeMismatch {
            c_len: c.len(),
            m,
            total,
        });
    }
    let mut out: Vec<Vec<f32>> = widths.iter().map(|&w| Vec::with_capacity(m * w)).collect();
    let mut off = 0;
    for (j, &w) in widths.iter().enumerate() {
        for r in 0..m {
            out[j].extend_from_slice(&c[r * total + off..r * total + off + w]);
        }
        off += w;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlmc::{dense_rhs, ValueDist, VectorSparseSpec};
    use jigsaw_core::{execute_fast, JigsawConfig, JigsawSpmm};

    #[test]
    fn concat_then_split_roundtrips() {
        let b1 = dense_rhs(8, 3, ValueDist::SmallInt, 1);
        let b2 = dense_rhs(8, 5, ValueDist::SmallInt, 2);
        let cat = concat_columns(&[&b1, &b2]).unwrap();
        assert_eq!(cat.rows, 8);
        assert_eq!(cat.cols, 8);
        for r in 0..8 {
            assert_eq!(&cat.row(r)[..3], b1.row(r));
            assert_eq!(&cat.row(r)[3..], b2.row(r));
        }
    }

    #[test]
    fn batched_spmm_is_bit_identical_to_solo() {
        let a = VectorSparseSpec {
            rows: 64,
            cols: 96,
            sparsity: 0.9,
            v: 4,
            dist: ValueDist::SmallInt,
            seed: 11,
        }
        .generate();
        let planned = JigsawSpmm::plan(&a, JigsawConfig::v4(32)).unwrap();
        let parts: Vec<Matrix> = (0..3)
            .map(|i| dense_rhs(96, 4 + i, ValueDist::Uniform, 20 + i as u64))
            .collect();
        let refs: Vec<&Matrix> = parts.iter().collect();
        let batch_c = execute_fast(&planned.format, &concat_columns(&refs).unwrap());
        let widths: Vec<usize> = parts.iter().map(|p| p.cols).collect();
        let splits = split_columns(&batch_c, 64, &widths).unwrap();
        for (part, split) in parts.iter().zip(&splits) {
            assert_eq!(split, &execute_fast(&planned.format, part), "bit-exact");
        }
    }

    #[test]
    fn split_handles_degenerate_widths() {
        let c = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let parts = split_columns(&c, 2, &[1, 2]).unwrap();
        assert_eq!(parts[0], vec![1.0, 4.0]);
        assert_eq!(parts[1], vec![2.0, 3.0, 5.0, 6.0]);
    }

    #[test]
    fn concat_rejects_empty_batch_and_zero_width_parts() {
        assert_eq!(concat_columns(&[]), Err(BatchError::EmptyBatch));

        let ok = dense_rhs(8, 3, ValueDist::SmallInt, 1);
        let empty = Matrix {
            rows: 8,
            cols: 0,
            data: Vec::new(),
        };
        assert_eq!(
            concat_columns(&[&ok, &empty]),
            Err(BatchError::ZeroWidthPart { index: 1 })
        );
    }

    #[test]
    fn concat_rejects_row_mismatch_with_the_offending_index() {
        let b1 = dense_rhs(8, 3, ValueDist::SmallInt, 1);
        let b2 = dense_rhs(6, 2, ValueDist::SmallInt, 2);
        assert_eq!(
            concat_columns(&[&b1, &b2]),
            Err(BatchError::RowMismatch {
                expected: 8,
                got: 6,
                index: 1
            })
        );
    }

    #[test]
    fn fused_assembly_matches_concat_then_panelize_bit_exactly() {
        let parts: Vec<Matrix> = [(3usize, 31u64), (7, 32), (1, 33), (12, 34)]
            .iter()
            .map(|&(n, seed)| dense_rhs(48, n, ValueDist::Uniform, seed))
            .collect();
        let refs: Vec<&Matrix> = parts.iter().collect();
        let total: usize = parts.iter().map(|p| p.cols).sum();
        let mut fused = vec![0.0f32; 48 * total];
        assert_eq!(assemble_panels(&refs, &mut fused), Ok((48, total)));
        let cat = concat_columns(&refs).unwrap();
        let mut oracle = vec![0.0f32; 48 * total];
        jigsaw_core::panelize_into(&cat, &mut oracle).unwrap();
        assert_eq!(fused, oracle, "fused emit is bit-exact with two-touch");
    }

    #[test]
    fn fused_assembly_shares_concat_validation_and_adds_scratch_edge() {
        let mut scratch = vec![0.0f32; 64];
        assert_eq!(
            assemble_panels(&[], &mut scratch),
            Err(BatchError::EmptyBatch)
        );
        let ok = dense_rhs(8, 3, ValueDist::SmallInt, 1);
        let empty = Matrix {
            rows: 8,
            cols: 0,
            data: Vec::new(),
        };
        assert_eq!(
            assemble_panels(&[&ok, &empty], &mut scratch),
            Err(BatchError::ZeroWidthPart { index: 1 })
        );
        let short = dense_rhs(6, 2, ValueDist::SmallInt, 2);
        assert_eq!(
            assemble_panels(&[&ok, &short], &mut scratch),
            Err(BatchError::RowMismatch {
                expected: 8,
                got: 6,
                index: 1
            })
        );
        let mut tiny = vec![0.0f32; 8 * 3 - 1];
        assert_eq!(
            assemble_panels(&[&ok], &mut tiny),
            Err(BatchError::ScratchTooSmall {
                needed: 24,
                got: 23
            })
        );
    }

    #[test]
    fn split_rejects_empty_zero_width_and_size_mismatch() {
        let c = vec![0.0; 6];
        assert_eq!(split_columns(&c, 2, &[]), Err(BatchError::EmptyBatch));
        assert_eq!(
            split_columns(&c, 2, &[1, 0, 2]),
            Err(BatchError::ZeroWidthPart { index: 1 })
        );
        assert_eq!(
            split_columns(&c, 2, &[1, 3]),
            Err(BatchError::SizeMismatch {
                c_len: 6,
                m: 2,
                total: 4
            })
        );
    }
}
