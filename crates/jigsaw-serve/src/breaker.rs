//! Per-model circuit breaker: after K consecutive failures the model's
//! circuit opens and requests are fast-rejected with a retry-after
//! hint instead of queuing behind a backend that keeps failing.
//!
//! The clock is an abstract `f64` so one implementation serves both
//! runtimes: the threaded [`crate::server`] feeds host nanoseconds, the
//! virtual-clock [`crate::sim`] feeds cycles. State machine
//! (DESIGN.md §12):
//!
//! ```text
//! Closed --K consecutive failures--> Open
//! Open   --retry window elapses----> HalfOpen (one probe admitted)
//! HalfOpen --probe succeeds--------> Closed  (window resets)
//! HalfOpen --probe fails-----------> Open    (window doubles, capped)
//! ```

/// Breaker tuning, in the caller's clock units.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive failures that open the circuit.
    pub failure_threshold: u32,
    /// First open window: how long rejections last before a half-open
    /// probe is admitted.
    pub open_window: f64,
    /// Cap on the exponentially-doubled window of repeated re-opens.
    pub max_open_window: f64,
}

impl BreakerConfig {
    /// Defaults for a host-nanosecond clock (5 failures, 10 ms → 1 s).
    pub fn host_ns() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 5,
            open_window: 10_000_000.0,
            max_open_window: 1_000_000_000.0,
        }
    }

    /// Defaults for a device-cycle clock (5 failures, 100k → 10M
    /// cycles).
    pub fn cycles() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 5,
            open_window: 100_000.0,
            max_open_window: 10_000_000.0,
        }
    }
}

/// Where the breaker's state machine currently sits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: everything is admitted.
    Closed,
    /// Tripped: fast-reject until the window elapses.
    Open,
    /// Window elapsed: exactly one probe is in flight.
    HalfOpen,
}

/// Admission decision for one request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BreakerAdmit {
    /// Proceed (Closed, or the HalfOpen probe slot).
    Proceed,
    /// Fast-reject; retry after this many clock units.
    Reject {
        /// Clock units until the next probe will be admitted.
        retry_after: f64,
    },
}

/// One model's breaker. Not internally synchronized — callers hold it
/// in their own map behind their own lock.
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    /// When the current open window admits a probe (Open state only).
    probe_at: f64,
    /// Current window length (doubles per re-open, capped).
    window: f64,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            probe_at: 0.0,
            window: cfg.open_window,
        }
    }

    /// Current state, advancing Open → HalfOpen if the window has
    /// elapsed by `now`.
    pub fn state(&mut self, now: f64) -> BreakerState {
        if self.state == BreakerState::Open && now >= self.probe_at {
            self.state = BreakerState::HalfOpen;
        }
        self.state
    }

    /// Decides admission at time `now`. A `Proceed` from HalfOpen
    /// consumes the probe slot — further requests are rejected until
    /// the probe reports back.
    pub fn admit(&mut self, now: f64) -> BreakerAdmit {
        match self.state(now) {
            BreakerState::Closed => BreakerAdmit::Proceed,
            BreakerState::HalfOpen => {
                // One probe at a time: re-open pessimistically until
                // the probe reports; on_success/on_failure settle it.
                self.state = BreakerState::Open;
                self.probe_at = now + self.window;
                BreakerAdmit::Proceed
            }
            BreakerState::Open => BreakerAdmit::Reject {
                retry_after: (self.probe_at - now).max(0.0),
            },
        }
    }

    /// Reports a success: closes the circuit and resets the window.
    pub fn on_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
        self.window = self.cfg.open_window;
    }

    /// Reports a failure at time `now`: counts toward the threshold in
    /// Closed, re-opens with a doubled (capped) window after a probe.
    pub fn on_failure(&mut self, now: f64) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        match self.state {
            BreakerState::Closed => {
                if self.consecutive_failures >= self.cfg.failure_threshold {
                    self.state = BreakerState::Open;
                    self.probe_at = now + self.window;
                }
            }
            BreakerState::Open | BreakerState::HalfOpen => {
                // A failed probe (or a straggler failure) re-opens with
                // a longer window.
                self.window = (self.window * 2.0).min(self.cfg.max_open_window);
                self.state = BreakerState::Open;
                self.probe_at = now + self.window;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            open_window: 100.0,
            max_open_window: 400.0,
        }
    }

    #[test]
    fn opens_after_k_consecutive_failures() {
        let mut b = CircuitBreaker::new(cfg());
        for t in 0..2 {
            b.on_failure(t as f64);
            assert_eq!(b.admit(t as f64), BreakerAdmit::Proceed);
        }
        b.on_failure(2.0);
        match b.admit(2.0) {
            BreakerAdmit::Reject { retry_after } => {
                assert!((retry_after - 100.0).abs() < 1e-9)
            }
            other => panic!("expected reject, got {other:?}"),
        }
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = CircuitBreaker::new(cfg());
        b.on_failure(0.0);
        b.on_failure(1.0);
        b.on_success();
        b.on_failure(2.0);
        b.on_failure(3.0);
        assert_eq!(b.admit(4.0), BreakerAdmit::Proceed, "streak was reset");
    }

    #[test]
    fn half_open_probe_closes_on_success() {
        let mut b = CircuitBreaker::new(cfg());
        for t in 0..3 {
            b.on_failure(t as f64);
        }
        assert!(matches!(b.admit(50.0), BreakerAdmit::Reject { .. }));
        // Window elapsed: exactly one probe proceeds, followers reject.
        assert_eq!(b.admit(150.0), BreakerAdmit::Proceed);
        assert!(matches!(b.admit(151.0), BreakerAdmit::Reject { .. }));
        b.on_success();
        assert_eq!(b.state(152.0), BreakerState::Closed);
        assert_eq!(b.admit(152.0), BreakerAdmit::Proceed);
    }

    #[test]
    fn failed_probe_doubles_the_window_up_to_the_cap() {
        let mut b = CircuitBreaker::new(cfg());
        for _ in 0..3 {
            b.on_failure(0.0);
        }
        // The window anchors at the last failure (t=0), so the first
        // probe is admitted at exactly t=100.
        let mut now = 100.0;
        for expected in [200.0, 400.0, 400.0] {
            assert_eq!(b.admit(now), BreakerAdmit::Proceed, "probe admitted");
            b.on_failure(now);
            match b.admit(now) {
                BreakerAdmit::Reject { retry_after } => {
                    assert!(
                        (retry_after - expected).abs() < 1e-9,
                        "window {expected}, got {retry_after}"
                    );
                }
                other => panic!("expected reject, got {other:?}"),
            }
            now += expected;
        }
    }
}
