//! # jigsaw-serve — a batching, cache-backed SpMM inference service
//!
//! The serving layer the paper's amortization argument implies (§3.1:
//! the reorder is one-time preprocessing amortized over inferences) but
//! never builds: a multi-tenant front-end over `jigsaw-core` where
//!
//! 1. a **model registry** ([`registry`]) plans each weight matrix
//!    once, caches the plan under an LRU byte budget, and persists the
//!    serialized artifact so cold starts disk-load instead of
//!    re-running the reorder,
//! 2. an **admission + micro-batching** layer ([`server`], [`batch`])
//!    bounds per-model queues (rejections are typed values, not
//!    panics) and coalesces concurrent requests along N — exact,
//!    because SpMM output columns are independent, and nearly free,
//!    because simulated cost is sublinear in N (paper Fig 10),
//! 3. a **worker pool** ([`server`]) executes one simulated kernel per
//!    batch, charging each request its proportional cycle share, and
//! 4. a **metrics** layer ([`metrics`]) reports throughput, batch
//!    occupancy, cache hit rates, and p50/p95/p99 latency in the same
//!    text style as `gpu_sim`'s kernel reports.
//!
//! A deterministic virtual-clock twin of the policy ([`sim`]) plus a
//! seeded load generator ([`loadgen`], [`zoo`]) make serving
//! experiments reproducible end to end.
//!
//! Above the single-server stack, the [`shard`] subsystem scales out:
//! a consistent-hash [`shard::ShardRouter`] spreads model ids over N
//! independent server shards (each with its own registry LRU, worker
//! pool, and breakers), replicates hot models onto ring neighbors,
//! forwards/steals work off overloaded shards, and isolates shard
//! failures behind typed errors (DESIGN.md §14). A tail-tolerance
//! layer (DESIGN.md §17) adds per-shard health scoring with outlier
//! ejection, hedged requests under a token-bucket retry budget, and
//! kill→revive shard lifecycle, so gray failures (one slow shard)
//! don't set the fleet's p99.

#![warn(missing_docs)]

pub mod batch;
pub mod breaker;
pub mod loadgen;
pub mod metrics;
pub mod registry;
pub mod server;
pub mod shard;
pub mod sim;
pub mod zoo;

pub use batch::{
    assemble_panels, concat_columns, split_columns, AdmitError, BatchError, RequestStats,
    SpmmResponse,
};
pub use breaker::{BreakerAdmit, BreakerConfig, BreakerState, CircuitBreaker};
pub use loadgen::{
    generate_schedule, generate_zipf_schedule, rhs_for, run_closed_loop, LoadSpec, ZipfLoadSpec,
    ZipfRequest,
};
pub use metrics::{Histogram, ServeMetrics};
pub use registry::{
    CacheStats, ExecPlan, Fetch, ModelRegistry, PlannedModel, RegistryConfig, RegistryError,
};
pub use server::{ServeConfig, ServeError, Server, Ticket};
pub use shard::{
    simulate_sharded, HashRing, HealthConfig, HealthState, HedgeConfig, HedgePolicy, HotTracker,
    ReplicationConfig, RetryBudget, RouterMetrics, ShardConfig, ShardHealth, ShardLane,
    ShardRouter, ShardSimConfig, ShardSimReport, StealConfig,
};
pub use sim::{simulate_schedule, SimCompletion, SimConfig, SimFailure, SimReport, SimRequest};
pub use zoo::{default_zoo, scaled_zoo, ZooModel};
