//! Seeded workload generation: open-loop Poisson schedules for the
//! virtual-clock simulator and a closed-loop driver for the threaded
//! server. Both draw from a model zoo, so a "serving benchmark" is
//! reproducible from `(zoo seed, load seed)` alone.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dlmc::{dense_rhs, Matrix, ValueDist};

use crate::batch::SpmmResponse;
use crate::server::{ServeError, Server, Ticket};
use crate::sim::SimRequest;
use crate::zoo::ZooModel;

/// Open-loop workload shape.
#[derive(Clone, Debug)]
pub struct LoadSpec {
    /// Requests to generate.
    pub requests: usize,
    /// RNG seed (schedule and request widths).
    pub seed: u64,
    /// Request widths drawn uniformly from this set.
    pub n_choices: Vec<usize>,
    /// Mean inter-arrival gap, cycles (exponential).
    pub mean_gap_cycles: f64,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            requests: 64,
            seed: 0xD1CE,
            n_choices: vec![8, 16, 32],
            mean_gap_cycles: 2_000.0,
        }
    }
}

/// Generates a deterministic open-loop arrival schedule over the zoo:
/// Poisson arrivals, uniform model choice, uniform width choice.
pub fn generate_schedule(zoo: &[ZooModel], spec: &LoadSpec) -> Vec<SimRequest> {
    assert!(!zoo.is_empty(), "zoo must not be empty");
    assert!(!spec.n_choices.is_empty(), "need at least one width");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut at = 0.0f64;
    (0..spec.requests)
        .map(|id| {
            let u: f64 = rng.gen_range(0.0..1.0);
            at += -(1.0 - u).ln() * spec.mean_gap_cycles;
            let model = &zoo[rng.gen_range(0..zoo.len())];
            let n = spec.n_choices[rng.gen_range(0..spec.n_choices.len())];
            SimRequest {
                id,
                model: model.name.clone(),
                arrival_cycle: at,
                n,
                deadline_cycles: None,
            }
        })
        .collect()
}

/// Zipf-skewed open-loop workload: a large simulated user population
/// whose model choices follow a zipf popularity law, the traffic shape
/// that hot-spots a naive hash-sharded cluster.
#[derive(Clone, Debug)]
pub struct ZipfLoadSpec {
    /// Requests to generate.
    pub requests: usize,
    /// Simulated user population. Each request is issued by one user
    /// (drawn uniformly); the user id is deterministic in
    /// `(seed, request id)`, so ~10⁶-user runs need no per-user state.
    pub users: usize,
    /// RNG seed (popularity ranks, schedule, widths, users).
    pub seed: u64,
    /// Zipf exponent `s` (weight of rank r ∝ 1/rᔆ). 0 = uniform;
    /// ~1.0 is classic web-traffic skew.
    pub exponent: f64,
    /// Request widths drawn uniformly from this set.
    pub n_choices: Vec<usize>,
    /// Mean inter-arrival gap, cycles (exponential).
    pub mean_gap_cycles: f64,
    /// Dispatch deadline applied to every request, cycles after
    /// arrival (`None` waits forever).
    pub deadline_cycles: Option<f64>,
}

impl Default for ZipfLoadSpec {
    fn default() -> Self {
        ZipfLoadSpec {
            requests: 4096,
            users: 1_000_000,
            seed: 0x21BF,
            exponent: 1.0,
            n_choices: vec![8, 16, 32],
            mean_gap_cycles: 2_000.0,
            deadline_cycles: None,
        }
    }
}

/// One generated request plus the simulated user who issued it.
#[derive(Clone, Debug)]
pub struct ZipfRequest {
    /// The schedule entry (feed to the simulator / router).
    pub req: SimRequest,
    /// Simulated user id in `0..spec.users`.
    pub user: u64,
}

/// Generates a deterministic zipf-skewed schedule over the zoo.
///
/// Popularity ranks are a seeded shuffle of the zoo (so which model is
/// hot depends on the seed, not the zoo order), then each request
/// samples a model from the zipf cumulative weights, a width uniformly,
/// and a user uniformly from the population. Same `(zoo, spec)` ⇒
/// bit-identical schedule.
pub fn generate_zipf_schedule(zoo: &[ZooModel], spec: &ZipfLoadSpec) -> Vec<ZipfRequest> {
    assert!(!zoo.is_empty(), "zoo must not be empty");
    assert!(!spec.n_choices.is_empty(), "need at least one width");
    assert!(spec.users >= 1, "need at least one user");
    let mut rng = StdRng::seed_from_u64(spec.seed);

    // Seeded shuffle assigns popularity ranks to models.
    let mut ranked: Vec<usize> = (0..zoo.len()).collect();
    for i in (1..ranked.len()).rev() {
        ranked.swap(i, rng.gen_range(0..=i));
    }
    // Cumulative zipf weights over the ranked models.
    let mut cum: Vec<f64> = Vec::with_capacity(zoo.len());
    let mut total = 0.0f64;
    for rank in 0..zoo.len() {
        total += 1.0 / ((rank + 1) as f64).powf(spec.exponent);
        cum.push(total);
    }

    let mut at = 0.0f64;
    (0..spec.requests)
        .map(|id| {
            let u: f64 = rng.gen_range(0.0..1.0);
            at += -(1.0 - u).ln() * spec.mean_gap_cycles;
            let pick: f64 = rng.gen_range(0.0..total);
            let rank = cum.partition_point(|c| *c <= pick).min(zoo.len() - 1);
            let model = &zoo[ranked[rank]];
            let n = spec.n_choices[rng.gen_range(0..spec.n_choices.len())];
            let user = rng.gen_range(0..spec.users as u64);
            ZipfRequest {
                req: SimRequest {
                    id,
                    model: model.name.clone(),
                    arrival_cycle: at,
                    n,
                    deadline_cycles: spec.deadline_cycles,
                },
                user,
            }
        })
        .collect()
}

/// The B operand for a scheduled request — deterministic in
/// `(load seed, request id)`, so the threaded server and the solo
/// reference run see byte-identical inputs.
pub fn rhs_for(zoo: &[ZooModel], req: &SimRequest, seed: u64) -> Matrix {
    let model = zoo
        .iter()
        .find(|m| m.name == req.model)
        .expect("request references a zoo model");
    dense_rhs(
        model.k(),
        req.n,
        ValueDist::SmallInt,
        seed ^ (req.id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    )
}

/// Drives the threaded server closed-loop: `clients` submitter threads
/// each issue `per_client` requests back-to-back (next request after
/// the previous completes), drawing models/widths from a per-client
/// seeded stream. Returns each request's result, sorted by
/// `(client, sequence)` — deterministic *content*, concurrent timing.
pub fn run_closed_loop(
    server: &Server,
    zoo: &[ZooModel],
    clients: usize,
    per_client: usize,
    n_choices: &[usize],
    seed: u64,
) -> Vec<Result<SpmmResponse, ServeError>> {
    assert!(!zoo.is_empty() && !n_choices.is_empty());
    let results: Vec<Vec<Result<SpmmResponse, ServeError>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed ^ ((client as u64) << 32));
                    let mut out = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let model = &zoo[rng.gen_range(0..zoo.len())];
                        let n = n_choices[rng.gen_range(0..n_choices.len())];
                        let b = dense_rhs(
                            model.k(),
                            n,
                            ValueDist::SmallInt,
                            seed ^ ((client * 1000 + i) as u64),
                        );
                        let outcome: Result<Ticket, _> = server.submit(&model.name, b);
                        out.push(match outcome {
                            Ok(ticket) => ticket.wait(),
                            // Backpressure: a closed-loop client just
                            // moves on to its next request.
                            Err(e) => Err(ServeError::Registry(e.to_string())),
                        });
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::default_zoo;

    #[test]
    fn schedules_are_seed_deterministic() {
        let zoo = default_zoo(1);
        let spec = LoadSpec::default();
        let a = generate_schedule(&zoo, &spec);
        let b = generate_schedule(&zoo, &spec);
        assert_eq!(a.len(), spec.requests);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.model, y.model);
            assert_eq!(x.n, y.n);
            assert_eq!(x.arrival_cycle.to_bits(), y.arrival_cycle.to_bits());
        }
        let c = generate_schedule(&zoo, &LoadSpec { seed: 999, ..spec });
        assert!(
            a.iter()
                .zip(&c)
                .any(|(x, y)| x.arrival_cycle != y.arrival_cycle),
            "different seed, different schedule"
        );
    }

    #[test]
    fn arrivals_are_monotone_and_mixed() {
        let zoo = default_zoo(1);
        let spec = LoadSpec {
            requests: 200,
            ..LoadSpec::default()
        };
        let sched = generate_schedule(&zoo, &spec);
        for w in sched.windows(2) {
            assert!(w[0].arrival_cycle <= w[1].arrival_cycle);
        }
        let models: std::collections::HashSet<&str> =
            sched.iter().map(|r| r.model.as_str()).collect();
        assert!(models.len() > 1, "traffic mixes models");
    }

    #[test]
    fn zipf_schedule_is_seed_deterministic() {
        let zoo = crate::zoo::scaled_zoo(16, 5);
        let spec = ZipfLoadSpec {
            requests: 512,
            users: 1_000_000,
            ..ZipfLoadSpec::default()
        };
        let a = generate_zipf_schedule(&zoo, &spec);
        let b = generate_zipf_schedule(&zoo, &spec);
        assert_eq!(a.len(), 512);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.req.id, y.req.id);
            assert_eq!(x.req.model, y.req.model);
            assert_eq!(x.req.n, y.req.n);
            assert_eq!(x.user, y.user);
            assert_eq!(x.req.arrival_cycle.to_bits(), y.req.arrival_cycle.to_bits());
        }
        let c = generate_zipf_schedule(&zoo, &ZipfLoadSpec { seed: 7, ..spec });
        assert!(
            a.iter()
                .zip(&c)
                .any(|(x, y)| x.req.model != y.req.model
                    || x.req.arrival_cycle != y.req.arrival_cycle),
            "different seed, different schedule"
        );
    }

    #[test]
    fn zipf_traffic_is_skewed_and_users_are_spread() {
        let zoo = crate::zoo::scaled_zoo(16, 5);
        let sched = generate_zipf_schedule(
            &zoo,
            &ZipfLoadSpec {
                requests: 4096,
                exponent: 1.1,
                ..ZipfLoadSpec::default()
            },
        );
        let mut counts: std::collections::HashMap<&str, usize> = Default::default();
        let mut users: std::collections::HashSet<u64> = Default::default();
        for r in &sched {
            *counts.entry(r.req.model.as_str()).or_default() += 1;
            users.insert(r.user);
        }
        let max = *counts.values().max().unwrap();
        let uniform_share = sched.len() / zoo.len();
        assert!(
            max > uniform_share * 2,
            "zipf head concentrates traffic: max {max}, uniform {uniform_share}"
        );
        assert!(
            users.len() > 3000,
            "10⁶-user population: 4096 draws nearly all distinct ({})",
            users.len()
        );
        for w in sched.windows(2) {
            assert!(w[0].req.arrival_cycle <= w[1].req.arrival_cycle);
        }
    }

    #[test]
    fn rhs_is_deterministic_and_shaped() {
        let zoo = default_zoo(1);
        let sched = generate_schedule(&zoo, &LoadSpec::default());
        let b1 = rhs_for(&zoo, &sched[0], 42);
        let b2 = rhs_for(&zoo, &sched[0], 42);
        assert_eq!(b1, b2);
        assert_eq!(b1.cols, sched[0].n);
        let k = zoo.iter().find(|m| m.name == sched[0].model).unwrap().k();
        assert_eq!(b1.rows, k);
    }
}
