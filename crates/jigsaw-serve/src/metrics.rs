//! Serving metrics: counters, exact-percentile latency histograms, and
//! a text report in the style of `gpu_sim`'s Nsight-like sections.

use std::fmt::Write as _;

use crate::registry::CacheStats;

/// Exact-percentile sample store. Serving runs are bounded (thousands
/// of requests), so keeping every sample and computing nearest-rank
/// percentiles exactly is cheaper than being clever.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    samples: Vec<f64>,
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        self.samples.push(v);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Nearest-rank percentile, `p` in [0, 100]. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }
}

/// Aggregated serving metrics for one run.
#[derive(Clone, Debug, Default)]
pub struct ServeMetrics {
    /// Requests admitted.
    pub submitted: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests rejected at admission (backpressure, bad dims, open
    /// breaker, …) — never admitted, so outside the conservation sum.
    pub rejected: u64,
    /// Admitted requests that terminated with an error (registry
    /// failure, worker panic).
    pub failed: u64,
    /// Admitted requests shed from the queue because their deadline
    /// expired before dispatch.
    pub shed_expired: u64,
    /// Worker panics caught and recovered (the worker re-entered its
    /// loop; every in-flight ticket was failed, not hung).
    pub worker_panics: u64,
    /// Queue depth at snapshot time (filled by `Server::metrics`;
    /// stays 0 inside the worker-held copy and in final reports, where
    /// the queues have drained).
    pub queue_depth: usize,
    /// Models whose circuit breaker is not Closed at snapshot time
    /// (filled by `Server::metrics` / the simulator).
    pub breakers_open: u64,
    /// Requests fast-rejected at admission because a circuit breaker
    /// was open (a subset of `rejected`). The shard router attributes
    /// these to the owning shard.
    pub breaker_rejects: u64,
    /// Batches executed.
    pub batches: u64,
    /// Σ requests over all batches (occupancy numerator).
    pub batch_requests_total: u64,
    /// Σ B columns over all batches.
    pub batch_n_total: u64,
    /// Largest total queue depth observed at admission.
    pub peak_queue_depth: usize,
    /// Total simulated device cycles spent executing batches
    /// (including cold planning charged to the device timeline, when
    /// the caller does so).
    pub device_cycles: f64,
    /// Per-request end-to-end latency in simulated cycles.
    pub latency_cycles: Histogram,
    /// Per-request end-to-end latency in host nanoseconds (threaded
    /// server only; empty in the virtual-clock simulator).
    pub latency_host_ns: Histogram,
}

impl ServeMetrics {
    /// The resilience conservation invariant: every admitted request
    /// reaches exactly one terminal state, so
    /// `submitted = completed + failed + shed_expired`.
    pub fn conserves(&self) -> bool {
        self.submitted == self.completed + self.failed + self.shed_expired
    }

    /// Mean requests coalesced per batch.
    pub fn avg_batch_occupancy(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batch_requests_total as f64 / self.batches as f64
        }
    }

    /// Mean B columns per batch.
    pub fn avg_batch_n(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batch_n_total as f64 / self.batches as f64
        }
    }

    /// Completed requests per 10⁹ simulated device cycles — the
    /// serving experiment's headline throughput number.
    pub fn requests_per_gcycle(&self) -> f64 {
        if self.device_cycles <= 0.0 {
            0.0
        } else {
            self.completed as f64 / (self.device_cycles / 1e9)
        }
    }

    /// Renders the text report, `gpu_sim::ncu_style_report` style.
    pub fn report(&self, name: &str, cache: &CacheStats) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {name} ==");
        out.push_str("  Section: Serving Throughput\n");
        let _ = writeln!(
            out,
            "    Requests admitted           {:>12}",
            self.submitted
        );
        let _ = writeln!(
            out,
            "    Requests completed          {:>12}",
            self.completed
        );
        let _ = writeln!(out, "    Requests rejected           {:>12}", self.rejected);
        let _ = writeln!(
            out,
            "    Device cycles               {:>12.0}",
            self.device_cycles
        );
        let _ = writeln!(
            out,
            "    Throughput                  {:>12.1} req/Gcycle",
            self.requests_per_gcycle()
        );
        out.push_str("  Section: Resilience\n");
        let _ = writeln!(out, "    Requests failed             {:>12}", self.failed);
        let _ = writeln!(
            out,
            "    Requests shed (expired)     {:>12}",
            self.shed_expired
        );
        let _ = writeln!(
            out,
            "    Worker panics recovered     {:>12}",
            self.worker_panics
        );
        let _ = writeln!(
            out,
            "    Queue depth / breakers open {:>12} / {}",
            self.queue_depth, self.breakers_open
        );
        let _ = writeln!(
            out,
            "    Breaker fast-rejects        {:>12}",
            self.breaker_rejects
        );
        out.push_str("  Section: Batching\n");
        let _ = writeln!(out, "    Batches executed            {:>12}", self.batches);
        let _ = writeln!(
            out,
            "    Avg requests per batch      {:>12.2}",
            self.avg_batch_occupancy()
        );
        let _ = writeln!(
            out,
            "    Avg batch N                 {:>12.1}",
            self.avg_batch_n()
        );
        let _ = writeln!(
            out,
            "    Peak queue depth            {:>12}",
            self.peak_queue_depth
        );
        out.push_str("  Section: Latency (simulated cycles)\n");
        let _ = writeln!(
            out,
            "    p50 / p95 / p99             {:>12.0} / {:.0} / {:.0}",
            self.latency_cycles.percentile(50.0),
            self.latency_cycles.percentile(95.0),
            self.latency_cycles.percentile(99.0)
        );
        let _ = writeln!(
            out,
            "    mean / max                  {:>12.0} / {:.0}",
            self.latency_cycles.mean(),
            self.latency_cycles.max()
        );
        if !self.latency_host_ns.is_empty() {
            out.push_str("  Section: Latency (host time)\n");
            let _ = writeln!(
                out,
                "    p50 / p95 / p99             {:>12.1} / {:.1} / {:.1} us",
                self.latency_host_ns.percentile(50.0) / 1e3,
                self.latency_host_ns.percentile(95.0) / 1e3,
                self.latency_host_ns.percentile(99.0) / 1e3
            );
        }
        out.push_str("  Section: Model Cache\n");
        let _ = writeln!(
            out,
            "    Hits / misses               {:>12} / {}",
            cache.hits, cache.misses
        );
        let _ = writeln!(
            out,
            "    Hit rate                    {:>12.1} %",
            100.0 * cache.hit_rate()
        );
        let _ = writeln!(
            out,
            "    Plans / disk loads          {:>12} / {}",
            cache.plans, cache.disk_loads
        );
        let _ = writeln!(
            out,
            "    Evictions                   {:>12}",
            cache.evictions
        );
        let _ = writeln!(
            out,
            "    Resident                    {:>12} models, {} bytes",
            cache.resident_models, cache.resident_bytes
        );
        let _ = writeln!(
            out,
            "    Cold host time              {:>12.2} ms",
            cache.cold_host_ns as f64 / 1e6
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_exact_nearest_rank() {
        let mut h = Histogram::default();
        for v in 1..=100 {
            h.record(v as f64);
        }
        assert_eq!(h.percentile(50.0), 50.0);
        assert_eq!(h.percentile(95.0), 95.0);
        assert_eq!(h.percentile(99.0), 99.0);
        assert_eq!(h.percentile(100.0), 100.0);
        assert_eq!(h.percentile(0.0), 1.0);
        assert_eq!(h.max(), 100.0);
        assert!((h.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.percentile(99.0), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn report_contains_all_sections() {
        let mut m = ServeMetrics {
            submitted: 10,
            completed: 9,
            rejected: 1,
            batches: 3,
            batch_requests_total: 9,
            batch_n_total: 72,
            device_cycles: 1e6,
            ..ServeMetrics::default()
        };
        m.latency_cycles.record(1000.0);
        m.latency_host_ns.record(5_000.0);
        let report = m.report("serve_test", &CacheStats::default());
        for needle in [
            "Serving Throughput",
            "Resilience",
            "Requests shed (expired)",
            "Worker panics recovered",
            "Batching",
            "Latency (simulated cycles)",
            "Latency (host time)",
            "Model Cache",
            "req/Gcycle",
            "Hit rate",
        ] {
            assert!(report.contains(needle), "missing {needle}:\n{report}");
        }
        assert!((m.avg_batch_occupancy() - 3.0).abs() < 1e-9);
        assert!((m.requests_per_gcycle() - 9000.0).abs() < 1e-6);
    }
}
