//! Model registry: plan each stationary weight matrix **once** per
//! (matrix, config) — the paper's amortization argument (§3.1) applied
//! to a multi-tenant server — and cache the result.
//!
//! Two storage tiers:
//!
//! * **resident** — the in-memory planned format, LRU-evicted to honor
//!   a byte budget (accounted at the serialized artifact size),
//! * **artifact** — the serialized format on disk (optional), so an
//!   evicted or restarted model reloads without re-running the reorder.
//!
//! Every fetch is classified hit / planned / disk-loaded and counted,
//! which is what the serving experiment's warm-vs-cold axis reads.
//!
//! The disk tier also carries the process-global kernel-tuning cost
//! table (`tune_table.jgtn`): [`ModelRegistry::new`] reloads a
//! persisted table bit-exactly, so a warm restart resumes with its
//! measured kernel rankings and skips recalibration, and
//! [`ModelRegistry::persist_tuning`] writes the current table back.

use std::collections::HashMap;
use std::fmt;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dlmc::Matrix;
use gpu_sim::{simulate_kernel, GpuSpec, KernelStats};
use jigsaw_core::compiled::dispatch;
use jigsaw_core::compiled::tune;
use jigsaw_core::fault::{self, points, FaultKind};
use jigsaw_core::serialize;
use jigsaw_core::{
    build_launch, execute_fast, lock_recover, CompiledKernel, ExecOptions, JigsawConfig,
    JigsawFormat, JigsawSpmm, PanelizedB, PlanError, PoolBuf, ReorderStats, WorkspacePool,
};
use jigsaw_obs::{Counter, Span};

use crate::batch::{assemble_panels, concat_columns, BatchError};

/// Artifact-load retry policy: total attempts and the base backoff
/// (doubled per retry). Kept small — the disk tier is local, so a
/// transient fault either clears immediately or is not transient.
const ARTIFACT_LOAD_ATTEMPTS: u32 = 3;
const ARTIFACT_RETRY_BASE: Duration = Duration::from_micros(100);

/// File name of the persisted kernel-tuning cost table inside the
/// artifact directory.
const TUNE_TABLE_FILE: &str = "tune_table.jgtn";

/// Where a tune table that failed to parse is renamed aside: kept for
/// debugging, never re-read on later restarts.
const TUNE_TABLE_QUARANTINE_FILE: &str = "tune_table.jgtn.corrupt";

/// Registry configuration.
#[derive(Clone, Debug)]
pub struct RegistryConfig {
    /// Byte budget for resident planned models, accounted at the
    /// serialized artifact size. The most recently fetched model is
    /// always kept resident, even if it alone exceeds the budget.
    pub budget_bytes: usize,
    /// Directory for serialized artifacts; `None` disables the disk
    /// tier (cold fetches then always re-plan).
    pub artifact_dir: Option<PathBuf>,
    /// Default microkernel selection for models registered without
    /// per-model options ([`ModelRegistry::register_with_options`]
    /// overrides it per model).
    pub exec_options: ExecOptions,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            budget_bytes: 64 << 20,
            artifact_dir: None,
            exec_options: ExecOptions::default(),
        }
    }
}

/// A planned model resident in the registry. Holds exactly what
/// execution needs — the compressed format and kernel config — so a
/// model restored from its artifact is indistinguishable at run time
/// from a freshly planned one.
#[derive(Clone, Debug)]
pub struct PlannedModel {
    /// Registry name.
    pub name: String,
    /// The compressed reorder-aware format.
    pub format: JigsawFormat,
    /// Kernel configuration the plan was built for.
    pub config: JigsawConfig,
    /// Reorder quality statistics — `None` when restored from an
    /// artifact (the artifact stores the format, not the plan).
    pub reorder_stats: Option<ReorderStats>,
    /// Serialized artifact size, the cache-accounting unit.
    pub artifact_bytes: usize,
    /// Host nanoseconds spent producing this resident copy (planning
    /// or disk load, including kernel compilation).
    pub plan_host_ns: u64,
    /// How this model executes — the top rung of the degradation
    /// ladder it currently sits on (DESIGN.md §12).
    pub exec: ExecPlan,
    /// Per-model microkernel selection threaded into every execution
    /// (DESIGN.md §13): which dispatch variant runs and whether the
    /// opt-in sorted stream is allowed.
    pub exec_options: ExecOptions,
}

/// The degradation ladder of one resident model:
/// compiled SIMD → compiled scalar → `execute_fast` on the format.
/// Every rung computes the same product (the scalar rung and
/// `execute_fast` are bit-identical; SIMD is within an ulp per step),
/// so degrading is invisible to callers except in latency and the
/// `degrade.*` counters.
#[derive(Clone, Debug)]
pub enum ExecPlan {
    /// The compiled kernel is available. `simd_poisoned` goes sticky
    /// after a caught SIMD-path panic; later runs go straight to the
    /// compiled scalar microkernel.
    Compiled {
        /// The ahead-of-time-resolved execution plan.
        kernel: Arc<CompiledKernel>,
        /// Set after the SIMD path panicked once (injected or real).
        simd_poisoned: Arc<AtomicBool>,
    },
    /// Kernel compilation itself failed — execute straight off the
    /// compressed format via [`execute_fast`].
    FormatFallback,
}

/// Bumps the degradation counters (always — they are cheap atomics and
/// chaos tests read them without enabling tracing).
fn count_degrade(rung: &'static str) {
    let reg = jigsaw_obs::global();
    reg.counter("degrade.fallbacks").inc();
    reg.counter(rung).inc();
}

impl PlannedModel {
    /// Output dimension (rows of C).
    pub fn m(&self) -> usize {
        self.format.m
    }

    /// Reduction dimension (required B height).
    pub fn k(&self) -> usize {
        self.format.k
    }

    /// True when this model is executing below the full-speed compiled
    /// SIMD rung.
    pub fn is_degraded(&self) -> bool {
        match &self.exec {
            ExecPlan::Compiled { simd_poisoned, .. } => simd_poisoned.load(Ordering::Relaxed),
            ExecPlan::FormatFallback => true,
        }
    }

    /// Marks this model's full-speed rung unusable and poisons the
    /// dispatch variant that was executing, so the resilience ladder
    /// retires a single bad microkernel process-wide while this model
    /// drops to its bit-exact scalar rung. Shape-aware: a tuned
    /// selection resolves through the cost table for the panicking
    /// execution's workload, so the variant that actually ran is the
    /// one that gets poisoned.
    fn poison_after_panic(&self, simd_poisoned: &AtomicBool, n: usize) {
        simd_poisoned.store(true, Ordering::Relaxed);
        let workload = match &self.exec {
            ExecPlan::Compiled { kernel, .. } => Some(kernel.workload(n)),
            ExecPlan::FormatFallback => None,
        };
        dispatch::poison(dispatch::selected_kind_shaped(&self.exec_options, workload));
        count_degrade("degrade.exec");
    }

    /// Computes `C = W × b` (row-major f32).
    pub fn execute(&self, b: &Matrix) -> Vec<f32> {
        match &self.exec {
            ExecPlan::Compiled {
                kernel,
                simd_poisoned,
            } => {
                if !simd_poisoned.load(Ordering::Relaxed) {
                    let run = catch_unwind(AssertUnwindSafe(|| {
                        kernel.execute_opts(b, &self.exec_options)
                    }));
                    match run {
                        Ok(c) => return c,
                        Err(_) => self.poison_after_panic(simd_poisoned, b.cols),
                    }
                }
                kernel.execute_scalar(b)
            }
            ExecPlan::FormatFallback => execute_fast(&self.format, b),
        }
    }

    /// Computes `C = W × b` with output and scratch drawn from `pool` —
    /// the server's zero-allocation steady-state path. A SIMD-path
    /// panic degrades in place: the buffers are re-zeroed (a partial
    /// write may have landed) and the scalar rung recomputes.
    pub fn execute_pooled<'p>(&self, b: &Matrix, pool: &'p WorkspacePool) -> PoolBuf<'p> {
        match &self.exec {
            ExecPlan::Compiled {
                kernel,
                simd_poisoned,
            } => {
                let mut c = pool.acquire(self.m() * b.cols);
                let mut scratch = pool.acquire(self.k() * b.cols);
                if !simd_poisoned.load(Ordering::Relaxed) {
                    let ran = catch_unwind(AssertUnwindSafe(|| {
                        kernel.execute_into_opts(b, &mut c, &mut scratch, &self.exec_options)
                    }));
                    match ran {
                        Ok(()) => return c,
                        Err(_) => {
                            self.poison_after_panic(simd_poisoned, b.cols);
                            c.fill(0.0);
                        }
                    }
                }
                kernel.execute_into_scalar(b, &mut c, &mut scratch);
                c
            }
            ExecPlan::FormatFallback => {
                let mut c = pool.acquire(self.m() * b.cols);
                c.copy_from_slice(&execute_fast(&self.format, b));
                c
            }
        }
    }

    /// Computes the batch product `C = W × [b₀ | … | bⱼ]` with buffers
    /// drawn from `pool` — the server's batch hot path. With the
    /// per-model `fused_assembly` opt-in and a healthy compiled SIMD
    /// rung, the parts' F16 columns are emitted straight into
    /// panel-major scratch ([`assemble_panels`]) and executed through
    /// the prepaneled entry point: the dense operand is touched once,
    /// in the layout the kernel consumes. Every fused failure — a
    /// typed assembly error, an injected `serve.assemble` fault, or a
    /// caught panic — degrades to the two-touch oracle
    /// ([`concat_columns`] + [`PlannedModel::execute_pooled`]),
    /// counted on `batch.fused_fallbacks`; fused successes count on
    /// `batch.fused_runs`. Both paths acquire the same buffer shapes,
    /// so the server's zero-allocation steady state is preserved
    /// either way. Returns the product plus whether the fused path
    /// produced it.
    pub fn execute_batch_pooled<'p>(
        &self,
        parts: &[&Matrix],
        pool: &'p WorkspacePool,
    ) -> Result<(PoolBuf<'p>, bool), BatchError> {
        if self.exec_options.fused_assembly() {
            if let ExecPlan::Compiled {
                kernel,
                simd_poisoned,
            } = &self.exec
            {
                if !simd_poisoned.load(Ordering::Relaxed) {
                    let total_n: usize = parts.iter().map(|p| p.cols).sum();
                    let mut c = pool.acquire(self.m() * total_n);
                    let mut scratch = pool.acquire(self.k() * total_n);
                    // Distinguishes a panic out of assembly (degrade
                    // only) from one out of the kernel (poison the
                    // variant, like every other execute path).
                    let mut assembled = false;
                    let ran = catch_unwind(AssertUnwindSafe(|| -> Result<(), BatchError> {
                        let (k, n) = assemble_panels(parts, &mut scratch)?;
                        assembled = true;
                        let b = PanelizedB::new(k, n, &scratch)?;
                        kernel.execute_prepaneled_into_opts(&b, &mut c, &self.exec_options)?;
                        Ok(())
                    }));
                    match ran {
                        Ok(Ok(())) => {
                            jigsaw_obs::global().counter("batch.fused_runs").inc();
                            return Ok((c, true));
                        }
                        Ok(Err(_)) => {
                            jigsaw_obs::global().counter("batch.fused_fallbacks").inc();
                        }
                        Err(_) => {
                            jigsaw_obs::global().counter("batch.fused_fallbacks").inc();
                            if assembled {
                                self.poison_after_panic(simd_poisoned, total_n);
                            }
                        }
                    }
                    // `c` and `scratch` drop back to the pool here; the
                    // two-touch path below re-acquires the same shapes
                    // (re-zeroed on acquire, so a partial fused write
                    // cannot leak through).
                }
            }
        }
        let bcat = concat_columns(parts)?;
        Ok((self.execute_pooled(&bcat, pool), false))
    }

    /// Simulates one kernel at output width `n`.
    pub fn simulate(&self, n: usize, spec: &GpuSpec) -> KernelStats {
        simulate_kernel(&build_launch(&self.format, n, &self.config), spec)
    }
}

/// Compiles the execution plan for a freshly planned / loaded format,
/// degrading to [`ExecPlan::FormatFallback`] when compilation fails
/// (injected `exec.compile` faults or a real stream overflow) instead
/// of surfacing the error — the model still serves, slower.
fn build_exec_plan(format: &JigsawFormat, parent: &Span) -> ExecPlan {
    match catch_unwind(AssertUnwindSafe(|| {
        CompiledKernel::try_compile_traced(format, parent)
    })) {
        Ok(Ok(kernel)) => ExecPlan::Compiled {
            kernel: Arc::new(kernel),
            simd_poisoned: Arc::new(AtomicBool::new(false)),
        },
        Ok(Err(_)) | Err(_) => {
            count_degrade("degrade.compile");
            ExecPlan::FormatFallback
        }
    }
}

/// How a fetch was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fetch {
    /// Already resident.
    Hit,
    /// Planned from the registered weights (reorder + compress).
    Planned,
    /// Restored from the on-disk artifact.
    DiskLoaded,
}

impl Fetch {
    /// True for anything other than a resident hit.
    pub fn is_cold(self) -> bool {
        self != Fetch::Hit
    }
}

/// Cache accounting counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Fetches served from resident memory.
    pub hits: u64,
    /// Fetches that found nothing resident.
    pub misses: u64,
    /// Misses satisfied by deserializing the artifact.
    pub disk_loads: u64,
    /// Misses satisfied by planning from weights.
    pub plans: u64,
    /// Models evicted to honor the byte budget.
    pub evictions: u64,
    /// Bytes currently resident (artifact-size accounting).
    pub resident_bytes: usize,
    /// Models currently resident.
    pub resident_models: usize,
    /// Total host nanoseconds spent planning or disk-loading.
    pub cold_host_ns: u64,
}

impl CacheStats {
    /// Hit fraction of all fetches (0 when nothing was fetched).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Registry failure.
#[derive(Debug)]
pub enum RegistryError {
    /// The named model was never registered.
    UnknownModel(String),
    /// The artifact tier failed (I/O or a corrupt artifact).
    Io(io::Error),
    /// Planning the registered weights failed (bad config or
    /// off-grid weights) — the typed error from `jigsaw-core`.
    Plan(PlanError),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownModel(m) => write!(f, "unknown model {m:?}"),
            RegistryError::Io(e) => write!(f, "artifact error: {e}"),
            RegistryError::Plan(e) => write!(f, "planning failed: {e}"),
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::Io(e) => Some(e),
            RegistryError::Plan(e) => Some(e),
            RegistryError::UnknownModel(_) => None,
        }
    }
}

impl From<io::Error> for RegistryError {
    fn from(e: io::Error) -> Self {
        RegistryError::Io(e)
    }
}

impl From<PlanError> for RegistryError {
    fn from(e: PlanError) -> Self {
        RegistryError::Plan(e)
    }
}

/// One attempt at reading the artifact bytes, crossing the
/// `registry.artifact_load` fault point: injected errors and latency
/// surface here; injected corruption deterministically scrambles the
/// bytes (the hardened decoder then rejects them downstream).
fn read_artifact_once(path: &Path) -> io::Result<Vec<u8>> {
    match fault::fire(points::ARTIFACT_LOAD) {
        Some(f) => match f.kind {
            FaultKind::Error => Err(io::Error::other(fault::FaultError {
                point: points::ARTIFACT_LOAD,
            })),
            FaultKind::Panic => panic!("injected fault: panic at {}", points::ARTIFACT_LOAD),
            FaultKind::Latency { ns } => {
                std::thread::sleep(Duration::from_nanos(ns));
                std::fs::read(path)
            }
            FaultKind::CorruptBytes => {
                let mut bytes = std::fs::read(path)?;
                fault::scramble(f.token, &mut bytes);
                Ok(bytes)
            }
        },
        None => std::fs::read(path),
    }
}

/// Loads and decodes an artifact with bounded exponential-backoff
/// retries: a transient fault (injected error, one corrupt read)
/// recovers on a later attempt; a persistent one surfaces its final
/// error. Retries are counted on `registry.load_retries`.
fn load_artifact(path: &Path) -> io::Result<(JigsawFormat, usize)> {
    let mut delay = ARTIFACT_RETRY_BASE;
    let mut attempt = 0;
    loop {
        attempt += 1;
        let result = read_artifact_once(path).and_then(|bytes| {
            let format = serialize::from_bytes(&bytes)?;
            Ok((format, bytes.len()))
        });
        match result {
            Ok(ok) => return Ok(ok),
            Err(e) => {
                if attempt >= ARTIFACT_LOAD_ATTEMPTS {
                    return Err(e);
                }
                jigsaw_obs::global().counter("registry.load_retries").inc();
                std::thread::sleep(delay);
                delay *= 2;
            }
        }
    }
}

struct Source {
    weights: Matrix,
    config: JigsawConfig,
    exec_options: ExecOptions,
}

struct Resident {
    model: Arc<PlannedModel>,
    last_use: u64,
}

/// The registry's event counters, on the shared observability counter
/// type ([`jigsaw_obs::Counter`]): lock-free to read, and snapshotted
/// into [`CacheStats`] by [`ModelRegistry::stats`]. Per-registry (not
/// global names) so independent registries — one per eviction policy in
/// the serving experiment — keep independent counts.
#[derive(Default)]
struct CacheCounters {
    hits: Counter,
    misses: Counter,
    disk_loads: Counter,
    plans: Counter,
    evictions: Counter,
    cold_host_ns: Counter,
}

struct Inner {
    sources: HashMap<String, Source>,
    resident: HashMap<String, Resident>,
    tick: u64,
    /// Non-monotonic occupancy accounting (rises and falls with
    /// eviction) — stays under the lock rather than on counters.
    resident_bytes: usize,
    resident_models: usize,
}

/// The multi-tenant model cache. All methods take `&self`; the registry
/// is shared across worker threads behind an `Arc`.
pub struct ModelRegistry {
    cfg: RegistryConfig,
    counters: CacheCounters,
    inner: Mutex<Inner>,
}

impl ModelRegistry {
    /// Creates a registry (and the artifact directory, if configured).
    ///
    /// When the artifact directory holds a persisted kernel-tuning
    /// cost table (written by [`ModelRegistry::persist_tuning`] on a
    /// previous run), it is reloaded bit-exactly into the
    /// process-global table — the warm restart resumes with its
    /// measured kernel rankings and tuned selection skips the
    /// calibration pass. A corrupt table is **quarantined**, never an
    /// error: the bytes are counted on `tune.table_load_errors`, the
    /// file is renamed aside to `tune_table.jgtn.corrupt` (counted on
    /// `tune.table_quarantined`) so the next restart doesn't re-parse
    /// known-bad bytes — and the poisoned evidence survives for
    /// debugging instead of being overwritten by the next
    /// [`persist_tuning`](ModelRegistry::persist_tuning). Tuning
    /// regrows from calibration, and models still serve. The read
    /// crosses the `registry.artifact_load` fault point, so chaos
    /// harnesses can corrupt it in flight.
    pub fn new(cfg: RegistryConfig) -> io::Result<ModelRegistry> {
        if let Some(dir) = &cfg.artifact_dir {
            std::fs::create_dir_all(dir)?;
            let table_path = dir.join(TUNE_TABLE_FILE);
            // The existence probe keeps registries without a persisted
            // table from consuming a fault-point hit on construction.
            if table_path.exists() {
                if let Ok(bytes) = read_artifact_once(&table_path) {
                    if tune::table().load_bytes(&bytes).is_err() {
                        jigsaw_obs::global().counter("tune.table_load_errors").inc();
                        if std::fs::rename(&table_path, dir.join(TUNE_TABLE_QUARANTINE_FILE))
                            .is_ok()
                        {
                            jigsaw_obs::global().counter("tune.table_quarantined").inc();
                        }
                    }
                }
            }
        }
        Ok(ModelRegistry {
            cfg,
            counters: CacheCounters::default(),
            inner: Mutex::new(Inner {
                sources: HashMap::new(),
                resident: HashMap::new(),
                tick: 0,
                resident_bytes: 0,
                resident_models: 0,
            }),
        })
    }

    /// Registers a model's weights with the registry-default
    /// microkernel selection. Planning is deferred to the first fetch;
    /// re-registering a name replaces the source and drops any
    /// resident plan.
    pub fn register(&self, name: &str, weights: Matrix, config: JigsawConfig) {
        self.register_with_options(name, weights, config, self.cfg.exec_options);
    }

    /// [`ModelRegistry::register`] with per-model microkernel
    /// selection: this model's executions force the given dispatch
    /// variant / sorted-stream opt-in (DESIGN.md §13) instead of the
    /// registry default.
    pub fn register_with_options(
        &self,
        name: &str,
        weights: Matrix,
        config: JigsawConfig,
        exec_options: ExecOptions,
    ) {
        let mut inner = lock_recover(&self.inner);
        if let Some(old) = inner.resident.remove(name) {
            inner.resident_bytes -= old.model.artifact_bytes;
            inner.resident_models -= 1;
        }
        inner.sources.insert(
            name.to_string(),
            Source {
                weights,
                config,
                exec_options,
            },
        );
    }

    /// The registered model's reduction dimension, if known.
    pub fn model_k(&self, name: &str) -> Option<usize> {
        let inner = lock_recover(&self.inner);
        inner.sources.get(name).map(|s| s.weights.cols)
    }

    /// Registered model names, sorted.
    pub fn model_names(&self) -> Vec<String> {
        let inner = lock_recover(&self.inner);
        let mut names: Vec<String> = inner.sources.keys().cloned().collect();
        names.sort();
        names
    }

    /// Snapshot of the accounting counters.
    pub fn stats(&self) -> CacheStats {
        let inner = lock_recover(&self.inner);
        CacheStats {
            hits: self.counters.hits.get(),
            misses: self.counters.misses.get(),
            disk_loads: self.counters.disk_loads.get(),
            plans: self.counters.plans.get(),
            evictions: self.counters.evictions.get(),
            resident_bytes: inner.resident_bytes,
            resident_models: inner.resident_models,
            cold_host_ns: self.counters.cold_host_ns.get(),
        }
    }

    /// Fetches a planned model, reporting how the fetch was satisfied.
    ///
    /// Cold fetches plan (or disk-load) while holding the registry
    /// lock: concurrent workers serialize on planning, which also
    /// guarantees a model is never planned twice.
    pub fn fetch(&self, name: &str) -> Result<(Arc<PlannedModel>, Fetch), RegistryError> {
        self.fetch_traced(name, &Span::disabled())
    }

    /// [`ModelRegistry::fetch`] with the cold-path plan spans attached
    /// to `parent` — how a cold fetch's reorder phases land inside a
    /// serving request's trace.
    pub fn fetch_traced(
        &self,
        name: &str,
        parent: &Span,
    ) -> Result<(Arc<PlannedModel>, Fetch), RegistryError> {
        let mut inner = lock_recover(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        let hit = inner.resident.get_mut(name).map(|r| {
            r.last_use = tick;
            r.model.clone()
        });
        if let Some(model) = hit {
            self.counters.hits.inc();
            parent.attr("fetch", "hit");
            return Ok((model, Fetch::Hit));
        }
        if !inner.sources.contains_key(name) {
            return Err(RegistryError::UnknownModel(name.to_string()));
        }
        self.counters.misses.inc();

        let started = Instant::now();
        let artifact_path = self
            .cfg
            .artifact_dir
            .as_ref()
            .map(|d| d.join(format!("{name}.jgsw")));
        let on_disk = artifact_path.as_ref().is_some_and(|p| p.exists());

        let (model, kind) = if on_disk {
            parent.attr("fetch", "disk_load");
            let path = artifact_path.as_ref().expect("checked above");
            // Retrying loader: transient faults recover; persistent
            // corruption surfaces as a typed error, never a crash.
            let (format, artifact_bytes) = load_artifact(path)?;
            let exec = build_exec_plan(&format, parent);
            let source = inner.sources.get(name).expect("checked above");
            let model = PlannedModel {
                name: name.to_string(),
                format,
                config: source.config,
                reorder_stats: None,
                artifact_bytes,
                plan_host_ns: started.elapsed().as_nanos() as u64,
                exec,
                exec_options: source.exec_options,
            };
            self.counters.disk_loads.inc();
            (model, Fetch::DiskLoaded)
        } else {
            parent.attr("fetch", "planned");
            let source = inner.sources.get(name).expect("checked above");
            let planned = JigsawSpmm::plan_traced(&source.weights, source.config, parent)?;
            let bytes = serialize::to_bytes(&planned.format);
            if let Some(path) = &artifact_path {
                std::fs::write(path, &bytes)?;
            }
            let exec = build_exec_plan(&planned.format, parent);
            let model = PlannedModel {
                name: name.to_string(),
                format: planned.format,
                config: planned.config,
                reorder_stats: Some(planned.reorder_stats),
                artifact_bytes: bytes.len(),
                plan_host_ns: started.elapsed().as_nanos() as u64,
                exec,
                exec_options: source.exec_options,
            };
            self.counters.plans.inc();
            (model, Fetch::Planned)
        };
        self.counters.cold_host_ns.add(model.plan_host_ns);

        let model = Arc::new(model);
        inner.resident_bytes += model.artifact_bytes;
        inner.resident_models += 1;
        inner.resident.insert(
            name.to_string(),
            Resident {
                model: model.clone(),
                last_use: tick,
            },
        );
        self.evict_over_budget(&mut inner, name);
        Ok((model, kind))
    }

    /// Fetches a planned model (plain form of [`ModelRegistry::fetch`]).
    pub fn get(&self, name: &str) -> Result<Arc<PlannedModel>, RegistryError> {
        self.fetch(name).map(|(m, _)| m)
    }

    /// Pre-plans every registered model (sorted order), warming the
    /// cache. Returns the number of cold fetches performed.
    pub fn warm_all(&self) -> Result<usize, RegistryError> {
        let mut cold = 0;
        for name in self.model_names() {
            if self.fetch(&name)?.1.is_cold() {
                cold += 1;
            }
        }
        Ok(cold)
    }

    /// Persists the process-global kernel-tuning cost table into the
    /// artifact directory (bit-exact serialization), so the next
    /// registry constructed over the same directory resumes tuned.
    /// Returns `false` when no artifact directory is configured.
    pub fn persist_tuning(&self) -> io::Result<bool> {
        let Some(dir) = &self.cfg.artifact_dir else {
            return Ok(false);
        };
        std::fs::write(dir.join(TUNE_TABLE_FILE), tune::table().to_bytes())?;
        Ok(true)
    }

    /// Drops every resident plan (artifacts remain on disk), as if the
    /// server restarted with a cold cache.
    pub fn drop_resident(&self) {
        let mut inner = lock_recover(&self.inner);
        let n = inner.resident.len() as u64;
        inner.resident.clear();
        self.counters.evictions.add(n);
        inner.resident_bytes = 0;
        inner.resident_models = 0;
    }

    /// Evicts least-recently-used residents (never `keep`) until the
    /// byte budget is honored.
    fn evict_over_budget(&self, inner: &mut Inner, keep: &str) {
        while inner.resident_bytes > self.cfg.budget_bytes {
            let victim = inner
                .resident
                .iter()
                .filter(|(name, _)| name.as_str() != keep)
                .min_by(|a, b| (a.1.last_use, a.0).cmp(&(b.1.last_use, b.0)))
                .map(|(name, _)| name.clone());
            let Some(victim) = victim else {
                // Only `keep` remains; it stays resident even over
                // budget so a fetch always returns a usable model.
                break;
            };
            let evicted = inner.resident.remove(&victim).expect("victim exists");
            inner.resident_bytes -= evicted.model.artifact_bytes;
            inner.resident_models -= 1;
            self.counters.evictions.inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::default_zoo;

    fn registry_with_zoo(budget: usize, dir: Option<PathBuf>) -> ModelRegistry {
        let reg = ModelRegistry::new(RegistryConfig {
            budget_bytes: budget,
            artifact_dir: dir,
            exec_options: ExecOptions::default(),
        })
        .unwrap();
        for m in default_zoo(40).into_iter().take(2) {
            reg.register(&m.name, m.weights(), m.config);
        }
        reg
    }

    #[test]
    fn fetch_plans_once_then_hits() {
        let reg = registry_with_zoo(usize::MAX, None);
        let (m1, k1) = reg.fetch("attention-small").unwrap();
        assert_eq!(k1, Fetch::Planned);
        let (m2, k2) = reg.fetch("attention-small").unwrap();
        assert_eq!(k2, Fetch::Hit);
        assert!(Arc::ptr_eq(&m1, &m2), "hit returns the same plan");
        let s = reg.stats();
        assert_eq!((s.hits, s.misses, s.plans), (1, 1, 1));
        assert!(s.hit_rate() > 0.49 && s.hit_rate() < 0.51);
    }

    #[test]
    fn invalid_model_config_is_a_typed_plan_error() {
        let reg = registry_with_zoo(usize::MAX, None);
        let m = &default_zoo(40)[0];
        // 40 is not a multiple of MMA_TILE, so planning must fail —
        // surfaced as RegistryError::Plan, never a panic.
        reg.register("broken", m.weights(), jigsaw_core::JigsawConfig::v4(40));
        match reg.fetch("broken") {
            Err(RegistryError::Plan(PlanError::Config(_))) => {}
            other => panic!("expected Plan(Config(_)), got {other:?}"),
        }
    }

    #[test]
    fn unknown_model_is_an_error() {
        let reg = registry_with_zoo(usize::MAX, None);
        assert!(matches!(
            reg.fetch("nope"),
            Err(RegistryError::UnknownModel(_))
        ));
    }

    #[test]
    fn eviction_honors_byte_budget() {
        let reg = registry_with_zoo(usize::MAX, None);
        let a = reg.get("attention-small").unwrap();
        let b = reg.get("embedding-proj").unwrap();
        let budget = a.artifact_bytes.max(b.artifact_bytes);

        // Re-run with a budget that fits only one model at a time.
        let reg = registry_with_zoo(budget, None);
        reg.get("attention-small").unwrap();
        reg.get("embedding-proj").unwrap();
        let s = reg.stats();
        assert!(s.resident_bytes <= budget, "budget respected");
        assert_eq!(s.resident_models, 1);
        assert_eq!(s.evictions, 1);
        // The evicted model re-plans on next touch.
        let (_, kind) = reg.fetch("attention-small").unwrap();
        assert_eq!(kind, Fetch::Planned);
    }

    #[test]
    fn artifacts_make_cold_fetches_disk_loads() {
        let dir = std::env::temp_dir().join("jigsaw-serve-registry-test");
        let _ = std::fs::remove_dir_all(&dir);
        let reg = registry_with_zoo(usize::MAX, Some(dir.clone()));
        reg.get("attention-small").unwrap();
        assert!(dir.join("attention-small.jgsw").exists());
        reg.drop_resident();
        let (m, kind) = reg.fetch("attention-small").unwrap();
        assert_eq!(kind, Fetch::DiskLoaded);
        assert!(m.reorder_stats.is_none(), "artifact stores no plan stats");
        let s = reg.stats();
        assert_eq!(s.disk_loads, 1);

        // Loaded format computes the same product as a fresh plan.
        let fresh = registry_with_zoo(usize::MAX, None);
        let f = fresh.get("attention-small").unwrap();
        let b = dlmc::dense_rhs(m.k(), 8, dlmc::ValueDist::SmallInt, 77);
        assert_eq!(m.execute(&b), f.execute(&b));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The acceptance check for tuned warm restarts: a cost table
    /// persisted through the registry's artifact directory is reloaded
    /// bit-exactly by the next registry over the same directory, and
    /// the reloaded table counts as seeded — `ensure_seeded` skips the
    /// calibration pass instead of overwriting the measurements.
    #[test]
    fn tune_table_persists_through_artifacts_and_warm_restart_skips_recalibration() {
        use jigsaw_core::KernelKind;
        let dir = std::env::temp_dir().join("jigsaw-serve-tune-persist-test");
        let _ = std::fs::remove_dir_all(&dir);

        // Seed the global table with a sentinel cell no online record
        // can produce on this host: Neon is unavailable on x86 (and
        // the cost is distinctive either way).
        let wl = tune::Workload {
            n: 70_000,
            density: 0.77,
        };
        let table = tune::table();
        table.seed_cell(KernelKind::Neon, wl, 0.123_456_789);
        let expected = table.cost(KernelKind::Neon, wl).unwrap();

        let reg = registry_with_zoo(usize::MAX, Some(dir.clone()));
        assert!(reg.persist_tuning().unwrap(), "artifact dir configured");
        assert!(dir.join(TUNE_TABLE_FILE).exists());

        // Simulate a restart: wipe the in-process table, then build a
        // fresh registry over the same artifact directory.
        table.clear();
        assert!(!table.is_seeded());
        let _warm = registry_with_zoo(usize::MAX, Some(dir.clone()));
        assert!(table.is_seeded(), "reload marks the table seeded");
        let reloaded = table.cost(KernelKind::Neon, wl).unwrap();
        assert_eq!(
            reloaded.to_bits(),
            expected.to_bits(),
            "persisted cost survives the restart bit-exactly"
        );
        // Seeded tables skip calibration entirely on first tuned use.
        let before = table.len();
        table.ensure_seeded();
        assert_eq!(table.len(), before, "no recalibration after reload");

        // A registry without a tuning artifact is unaffected, and a
        // corrupt artifact is quarantined without failing construction:
        // renamed aside so the next restart doesn't re-parse known-bad
        // bytes, and kept on disk as debugging evidence.
        assert!(!registry_with_zoo(usize::MAX, None)
            .persist_tuning()
            .unwrap());
        std::fs::write(dir.join(TUNE_TABLE_FILE), b"JGTNgarbage").unwrap();
        let _still_ok = registry_with_zoo(usize::MAX, Some(dir.clone()));
        assert!(
            !dir.join(TUNE_TABLE_FILE).exists(),
            "corrupt table moved out of the load path"
        );
        assert_eq!(
            std::fs::read(dir.join(TUNE_TABLE_QUARANTINE_FILE)).unwrap(),
            b"JGTNgarbage",
            "quarantine preserves the poisoned bytes verbatim"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn per_model_kernel_selection_is_honored() {
        use jigsaw_core::{KernelKind, KernelPolicy};
        let reg = ModelRegistry::new(RegistryConfig::default()).unwrap();
        let m = &default_zoo(40)[0];
        reg.register_with_options(
            "pinned-scalar",
            m.weights(),
            m.config,
            ExecOptions::from(KernelPolicy::Forced(KernelKind::Scalar)),
        );
        let model = reg.get("pinned-scalar").unwrap();
        assert_eq!(model.exec_options.forced_kernel(), Some(KernelKind::Scalar));
        assert!(!model.is_degraded(), "a forced variant is not degraded");
        // Forced scalar goes through the dispatch layer and stays
        // bit-identical to the format-walk oracle, floats included.
        let b = dlmc::dense_rhs(model.k(), 8, dlmc::ValueDist::Uniform, 3);
        assert_eq!(model.execute(&b), execute_fast(&model.format, &b));
    }

    #[test]
    fn corrupt_artifact_is_an_error_not_a_panic() {
        let dir = std::env::temp_dir().join("jigsaw-serve-corrupt-test");
        let _ = std::fs::remove_dir_all(&dir);
        let reg = registry_with_zoo(usize::MAX, Some(dir.clone()));
        reg.get("attention-small").unwrap();
        reg.drop_resident();
        // Truncate the artifact mid-file.
        let path = dir.join("attention-small.jgsw");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(
            reg.fetch("attention-small"),
            Err(RegistryError::Io(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
